//! Umbrella crate for the ISP border-handling reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can `use isp_border::prelude::*`. The actual
//! functionality lives in the `crates/` members:
//!
//! - [`isp_image`] — images, border patterns, masks, golden filters
//! - [`isp_ir`] — PTX-like IR, instruction counting, register estimation
//! - [`isp_sim`] — SIMT GPU simulator (devices, occupancy, interpreter)
//! - [`isp_core`] — iteration space partitioning + the analytic model
//! - [`isp_dsl`] — the embedded DSL and mini source-to-source compiler
//! - [`isp_filters`] — the five evaluated applications
//! - [`isp_exec`] — the cached execution engine (compile→plan→launch)

pub use isp_core;
pub use isp_dsl;
pub use isp_exec;
pub use isp_filters;
pub use isp_image;
pub use isp_ir;
pub use isp_sim;

/// Convenient glob import for examples and tests.
pub mod prelude {
    pub use isp_exec::{Engine, Measurement, Outcome, Request, Sweep, PAPER_BLOCK, PAPER_SIZES};
    pub use isp_image::{
        convolve, BorderPattern, BorderSpec, BorderedImage, Image, ImageGenerator, Mask, Roi,
    };
}
