//! Reference (host-side) evaluation of kernel expressions — the semantics
//! the compiled variants must reproduce pixel-for-pixel.

use crate::expr::{EBin, ECmp, EUn, Expr};
use crate::spec::KernelSpec;
use isp_image::{BorderSpec, BorderedImage, Image};

/// Evaluate `expr` at output pixel `(x, y)` against bordered inputs.
pub fn eval_expr(
    expr: &Expr,
    inputs: &[BorderedImage<'_, f32>],
    params: &[f32],
    x: usize,
    y: usize,
) -> f32 {
    eval_with_accs(expr, inputs, params, x, y, &[])
}

fn eval_with_accs(
    expr: &Expr,
    inputs: &[BorderedImage<'_, f32>],
    params: &[f32],
    x: usize,
    y: usize,
    accs: &[f32],
) -> f32 {
    let ev = |e: &Expr| eval_with_accs(e, inputs, params, x, y, accs);
    match expr {
        Expr::Input { input, dx, dy } => inputs[*input].get_offset(x, y, *dx, *dy),
        Expr::Const(v) => *v,
        Expr::Param(i) => params[*i],
        Expr::Acc(i) => accs[*i],
        Expr::Bin(op, a, b) => {
            let a = ev(a);
            let b = ev(b);
            match op {
                EBin::Add => a + b,
                EBin::Sub => a - b,
                EBin::Mul => a * b,
                EBin::Div => a / b,
                EBin::Min => a.min(b),
                EBin::Max => a.max(b),
            }
        }
        Expr::Un(op, a) => {
            let a = ev(a);
            match op {
                EUn::Neg => -a,
                EUn::Abs => a.abs(),
                EUn::Exp => a.exp(),
                EUn::Log => a.ln(),
                EUn::Sqrt => a.sqrt(),
                EUn::Rsqrt => 1.0 / a.sqrt(),
                EUn::Floor => a.floor(),
            }
        }
        Expr::Select {
            cmp,
            a,
            b,
            then,
            els,
        } => {
            let a = ev(a);
            let b = ev(b);
            let take = match cmp {
                ECmp::Lt => a < b,
                ECmp::Le => a <= b,
                ECmp::Gt => a > b,
                ECmp::Ge => a >= b,
                ECmp::Eq => a == b,
                ECmp::Ne => a != b,
            };
            if take {
                ev(then)
            } else {
                ev(els)
            }
        }
        Expr::FusedReduce { taps, ops, combine } => {
            // Identities: 0 for Add, +inf for Min, -inf for Max.
            let mut sums: Vec<f32> = ops
                .iter()
                .map(|op| match op {
                    EBin::Min => f32::INFINITY,
                    EBin::Max => f32::NEG_INFINITY,
                    _ => 0.0,
                })
                .collect();
            for tap in taps {
                for ((s, term), op) in sums.iter_mut().zip(tap).zip(ops) {
                    let v = ev(term);
                    *s = match op {
                        EBin::Min => s.min(v),
                        EBin::Max => s.max(v),
                        _ => *s + v,
                    };
                }
            }
            eval_with_accs(combine, inputs, params, x, y, &sums)
        }
    }
}

/// Run a kernel spec over whole images on the host — the golden output the
/// simulated GPU variants are compared against.
pub fn reference_run(
    spec: &KernelSpec,
    inputs: &[&Image<f32>],
    border: BorderSpec,
    params: &[f32],
) -> Image<f32> {
    assert_eq!(inputs.len(), spec.num_inputs, "input count mismatch");
    assert_eq!(params.len(), spec.user_params.len(), "param count mismatch");
    let (w, h) = inputs[0].dims();
    for img in inputs {
        assert_eq!(img.dims(), (w, h), "all inputs must agree in size");
    }
    let bordered: Vec<BorderedImage<'_, f32>> = inputs
        .iter()
        .map(|img| BorderedImage::new(img, border))
        .collect();
    Image::from_fn(w, h, |x, y| eval_expr(&spec.body, &bordered, params, x, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use isp_image::{convolve, ImageGenerator, Mask};

    #[test]
    fn convolution_spec_matches_image_crate_convolve() {
        let mask = Mask::gaussian(5, 1.2).unwrap();
        let spec = KernelSpec::convolution("g", &mask);
        let img = ImageGenerator::new(4).uniform_noise::<f32>(24, 16);
        for border in [
            BorderSpec::clamp(),
            BorderSpec::mirror(),
            BorderSpec::repeat(),
            BorderSpec::constant(0.3),
        ] {
            let via_dsl = reference_run(&spec, &[&img], border, &[]);
            let via_convolve = convolve(&img, &mask, border);
            let d = via_dsl.max_abs_diff(&via_convolve).unwrap();
            assert!(d < 1e-5, "{:?}: diff {d}", border.pattern);
        }
    }

    #[test]
    fn params_are_substituted() {
        let spec = KernelSpec::new(
            "scale",
            1,
            vec!["gain".into(), "bias".into()],
            Expr::at(0, 0) * Expr::param(0) + Expr::param(1),
        );
        let img = Image::<f32>::filled(4, 4, 2.0);
        let out = reference_run(&spec, &[&img], BorderSpec::clamp(), &[3.0, 1.0]);
        assert_eq!(out.get(2, 2), 7.0);
    }

    #[test]
    fn select_semantics() {
        use crate::expr::ECmp;
        let spec = KernelSpec::new(
            "threshold",
            1,
            vec![],
            Expr::select(ECmp::Gt, Expr::at(0, 0), 0.5f32, 1.0f32, 0.0f32),
        );
        let img = ImageGenerator::new(2).gradient_x::<f32>(16, 2);
        let out = reference_run(&spec, &[&img], BorderSpec::clamp(), &[]);
        assert_eq!(out.get(0, 0), 0.0);
        assert_eq!(out.get(15, 0), 1.0);
    }

    #[test]
    fn multi_input_point_op() {
        let spec = KernelSpec::new(
            "mag",
            2,
            vec![],
            (Expr::input_at(0, 0, 0) * Expr::input_at(0, 0, 0)
                + Expr::input_at(1, 0, 0) * Expr::input_at(1, 0, 0))
            .sqrt(),
        );
        let a = Image::<f32>::filled(4, 4, 3.0);
        let b = Image::<f32>::filled(4, 4, 4.0);
        let out = reference_run(&spec, &[&a, &b], BorderSpec::clamp(), &[]);
        assert!((out.get(1, 1) - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "input count")]
    fn wrong_input_count_panics() {
        let spec = KernelSpec::convolution("g", &Mask::box_filter(3).unwrap());
        let img = Image::<f32>::filled(4, 4, 1.0);
        let _ = reference_run(&spec, &[&img, &img], BorderSpec::clamp(), &[]);
    }
}
