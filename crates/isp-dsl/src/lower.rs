//! Lowering kernel specs to IR: border-check insertion, region
//! specialisation, and the naive / ISP-block / ISP-warp variant generators.
//!
//! This is the compiler's *Rewrite* half. Key properties:
//!
//! - **Listing-1-faithful naive baseline**: every access applies the full
//!   border function on both sides of both axes, exactly like Hipacc's
//!   generated boundary handling; the optimiser's CSE then merges identical
//!   checks across accesses (the NVCC effect the paper describes in §IV-A).
//!   No offset-sign pruning is performed — `nvcc` cannot prove `gx >= 0`
//!   value ranges either.
//! - **Region specialisation**: a region body receives a [`CheckProfile`]
//!   and emits only the checks its region requires (Body: none).
//! - **Body-first region switch**: the fat kernel first tests the hoisted
//!   "no border handling needed" predicate (Eq. 2 both axes) and jumps
//!   straight to the Body region; only border blocks walk the Listing 3
//!   cascade. This keeps the dominant region's switch overhead at its
//!   minimum — the stated goal of the partitioning ("maximize the number of
//!   blocks that execute the body region", §IV-A) — while border regions
//!   pay progressively more, reproducing the paper's Table I observation
//!   that corner/L/R regions show no clear benefit.
//! - **Branch-free patterns**: Clamp/Mirror re-index with `max/min/selp`
//!   sequences, Constant uses a guarded load + select, and `Repeat`'s while
//!   loop is unrolled to two predicated wraps per side (valid while the
//!   stencil radius is below twice the image size — checked at launch),
//!   so kernels stay loop-free and warps diverge only at region switches.

use crate::expr::{EBin, ECmp, EUn, Expr};
use crate::spec::KernelSpec;
use isp_core::{Region, Variant};
use isp_image::BorderPattern;
use isp_ir::kernel::{BlockId, Kernel};
use isp_ir::{BinOp, CmpOp, IrBuilder, Operand, SReg, Ty, UnOp, VReg};

/// Which image edges a body must guard against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckProfile {
    /// Guard reads past the left edge.
    pub left: bool,
    /// Guard reads past the right edge.
    pub right: bool,
    /// Guard reads past the top edge.
    pub top: bool,
    /// Guard reads past the bottom edge.
    pub bottom: bool,
}

impl CheckProfile {
    /// All four checks — the naive variant.
    pub fn all() -> Self {
        CheckProfile {
            left: true,
            right: true,
            top: true,
            bottom: true,
        }
    }

    /// No checks — point operators (no boundary condition attached, like a
    /// Hipacc `Accessor` without a `BoundaryCondition`).
    pub fn none() -> Self {
        CheckProfile {
            left: false,
            right: false,
            top: false,
            bottom: false,
        }
    }

    /// The checks a given ISP region requires.
    pub fn for_region(region: Region) -> Self {
        CheckProfile {
            left: region.checks_left(),
            right: region.checks_right(),
            top: region.checks_top(),
            bottom: region.checks_bottom(),
        }
    }
}

/// How input accesses are lowered: software border handling (pattern +
/// per-region check profile) or hardware texture fetches (the address mode
/// lives in the buffer binding, not the kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Software checks per Listing 1, possibly specialised per region.
    Software {
        /// The border handling pattern.
        pattern: BorderPattern,
        /// Which sides to check.
        profile: CheckProfile,
    },
    /// `tex.2d` fetches; the texture unit resolves the border.
    Texture,
    /// Reads come from the block's shared-memory tile (already staged with
    /// the halo): `shared[(tid.y + ry + dy) * tile_w + (tid.x + rx + dx)]`.
    SharedTile {
        /// Tile width `tx + 2*rx`.
        tile_w: u32,
        /// Horizontal halo radius.
        rx: u32,
        /// Vertical halo radius.
        ry: u32,
    },
}

/// The meaning of each scalar kernel parameter, in declaration order. The
/// host launch code fills values by matching on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// Image width `sx`.
    Width,
    /// Image height `sy`.
    Height,
    /// Row stride in elements.
    Stride,
    /// Eq. (2) block bound `BH_L`.
    BhL,
    /// Eq. (2) block bound `BH_R`.
    BhR,
    /// Eq. (2) block bound `BH_T`.
    BhT,
    /// Eq. (2) block bound `BH_B`.
    BhB,
    /// Listing 5 warp bound `W_L`.
    WL,
    /// Listing 5 warp bound `W_R`.
    WR,
    /// The `Constant` pattern's fill value.
    BorderConst,
    /// User parameter by index into `KernelSpec::user_params`.
    User(usize),
}

/// Per-region instruction paths through a fat kernel: the block ids executed
/// by threads routed to each region (entry + switch prefix + region body +
/// exit). Drives the Table I per-region histograms and the scheduler's
/// per-class footprints.
pub type RegionPaths = Vec<(Region, Vec<BlockId>)>;

/// Output of lowering one variant.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// The (unoptimised) kernel.
    pub kernel: Kernel,
    /// Scalar parameter layout.
    pub params: Vec<ParamKind>,
    /// Region paths (ISP variants only).
    pub region_paths: Option<RegionPaths>,
}

/// Values shared by every body: computed once in the entry block. In the fat
/// kernel these stay live across the region switch — the source of the ISP
/// register-pressure increase the paper's cost model charges for.
struct CommonRegs {
    gx: VReg,
    gy: VReg,
    tid_x: VReg,
    tid_y: VReg,
    width: VReg,
    height: VReg,
    stride: VReg,
    border_const: Option<VReg>,
    user: Vec<VReg>,
    bx: VReg,
    by: VReg,
}

/// Whether the spec ever reads a neighbour (and thus needs border handling).
fn needs_border(spec: &KernelSpec) -> bool {
    !spec.is_point_op()
}

/// Declare parameters in canonical order and return the layout.
fn declare_params(
    b: &mut IrBuilder,
    spec: &KernelSpec,
    pattern: BorderPattern,
    variant: Variant,
) -> Vec<ParamKind> {
    let mut layout = vec![ParamKind::Width, ParamKind::Height, ParamKind::Stride];
    b.param("width", Ty::S32);
    b.param("height", Ty::S32);
    b.param("stride", Ty::S32);
    if variant.is_isp() {
        for (name, kind) in [
            ("bh_l", ParamKind::BhL),
            ("bh_r", ParamKind::BhR),
            ("bh_t", ParamKind::BhT),
            ("bh_b", ParamKind::BhB),
        ] {
            b.param(name, Ty::S32);
            layout.push(kind);
        }
    }
    if variant == Variant::IspWarp {
        b.param("w_l", Ty::S32);
        b.param("w_r", Ty::S32);
        layout.push(ParamKind::WL);
        layout.push(ParamKind::WR);
    }
    if pattern == BorderPattern::Constant && needs_border(spec) {
        b.param("border_const", Ty::F32);
        layout.push(ParamKind::BorderConst);
    }
    for (i, name) in spec.user_params.iter().enumerate() {
        b.param(name, Ty::F32);
        layout.push(ParamKind::User(i));
    }
    layout
}

/// Emit the entry-block prologue: global coordinates, parameter loads, and
/// the image-edge guard. Returns the common registers and leaves the builder
/// positioned in a fresh unsealed block reached only by in-image threads.
fn emit_prologue(b: &mut IrBuilder, layout: &[ParamKind], exit: BlockId) -> CommonRegs {
    let bx = b.sreg(SReg::CtaIdX);
    let by = b.sreg(SReg::CtaIdY);
    let ntx = b.sreg(SReg::NTidX);
    let nty = b.sreg(SReg::NTidY);
    let tidx = b.sreg(SReg::TidX);
    let tidy = b.sreg(SReg::TidY);
    let gx = b.mad(Ty::S32, bx, ntx, tidx);
    let gy = b.mad(Ty::S32, by, nty, tidy);
    let (tid_x, tid_y) = (tidx, tidy);

    let mut width = None;
    let mut height = None;
    let mut stride = None;
    let mut border_const = None;
    let mut user = Vec::new();
    for (i, kind) in layout.iter().enumerate() {
        match kind {
            ParamKind::Width => width = Some(b.ld_param(i as u32)),
            ParamKind::Height => height = Some(b.ld_param(i as u32)),
            ParamKind::Stride => stride = Some(b.ld_param(i as u32)),
            ParamKind::BorderConst => border_const = Some(b.ld_param(i as u32)),
            ParamKind::User(_) => user.push(b.ld_param(i as u32)),
            // Bounds and warp bounds are loaded lazily by the switch code.
            _ => {}
        }
    }
    let width = width.expect("width param");
    let height = height.expect("height param");
    let stride = stride.expect("stride param");

    // Image-edge guard (right/bottom ragged blocks).
    let px = b.setp(CmpOp::Lt, gx, width);
    let py = b.setp(CmpOp::Lt, gy, height);
    let p = b.bin(BinOp::And, Ty::Pred, px, py);
    let inside = b.create_block("inside");
    b.cond_br(p, inside, exit);
    b.switch_to(inside);

    CommonRegs {
        gx,
        gy,
        tid_x,
        tid_y,
        width,
        height,
        stride,
        border_const,
        user,
        bx,
        by,
    }
}

/// Resolve one axis coordinate under `pattern`, emitting only the checks the
/// profile + offset sign require. Returns the resolved coordinate register
/// and, for `Constant`, the accumulated in-bounds predicate.
fn resolve_axis(
    b: &mut IrBuilder,
    pattern: BorderPattern,
    coord: VReg,
    size: VReg,
    check_lo: bool,
    check_hi: bool,
    inbounds: &mut Option<VReg>,
) -> VReg {
    let mut c = coord;
    match pattern {
        BorderPattern::Clamp => {
            if check_lo {
                c = b.bin(BinOp::Max, Ty::S32, c, 0i32);
            }
            if check_hi {
                let hi = b.bin(BinOp::Sub, Ty::S32, size, 1i32);
                c = b.bin(BinOp::Min, Ty::S32, c, hi);
            }
        }
        BorderPattern::Mirror => {
            // Single reflection per side, exactly what Hipacc generates.
            // Valid for `-size <= x < 2*size`, i.e. stencil radius < image
            // size — enforced at launch by the runner's precondition check.
            // The total reference semantics (`isp_image::resolve_1d`) folds
            // by the period `2*size` instead; the two agree everywhere on
            // this domain.
            if check_lo {
                // x < 0 -> -x - 1, which is two's-complement `not x`.
                let refl = b.un(UnOp::Not, Ty::S32, c);
                let p = b.setp(CmpOp::Lt, c, 0i32);
                c = b.selp(Ty::S32, refl, c, p);
            }
            if check_hi {
                // x >= sx -> 2*sx - x - 1.
                let twice = b.bin(BinOp::Shl, Ty::S32, size, 1i32);
                let upper = b.bin(BinOp::Sub, Ty::S32, twice, 1i32);
                let refl = b.bin(BinOp::Sub, Ty::S32, upper, c);
                let p = b.setp(CmpOp::Ge, c, size);
                c = b.selp(Ty::S32, refl, c, p);
            }
        }
        BorderPattern::Repeat => {
            // Listing 1's `while` loops, unrolled twice per side (the loop
            // trip count is bounded by radius / size, checked at launch).
            // This is what makes Repeat the costliest pattern — and the one
            // that benefits most from ISP, as the paper reports.
            if check_lo {
                for _ in 0..2 {
                    let wrapped = b.bin(BinOp::Add, Ty::S32, c, size);
                    let p = b.setp(CmpOp::Lt, c, 0i32);
                    c = b.selp(Ty::S32, wrapped, c, p);
                }
            }
            if check_hi {
                for _ in 0..2 {
                    let wrapped = b.bin(BinOp::Sub, Ty::S32, c, size);
                    let p = b.setp(CmpOp::Ge, c, size);
                    c = b.selp(Ty::S32, wrapped, c, p);
                }
            }
        }
        BorderPattern::Constant => {
            // No re-indexing; accumulate the in-bounds predicate.
            let mut and_in = |b: &mut IrBuilder, p: VReg| {
                *inbounds = Some(match *inbounds {
                    Some(acc) => b.bin(BinOp::And, Ty::Pred, acc, p),
                    None => p,
                });
            };
            if check_lo {
                let p = b.setp(CmpOp::Ge, c, 0i32);
                and_in(b, p);
            }
            if check_hi {
                let p = b.setp(CmpOp::Lt, c, size);
                and_in(b, p);
            }
        }
    }
    c
}

/// Lower one bordered input access.
fn lower_access(
    b: &mut IrBuilder,
    spec: &KernelSpec,
    mode: &AccessMode,
    common: &CommonRegs,
    input: usize,
    dx: i64,
    dy: i64,
) -> Operand {
    let _ = spec;
    let x = if dx == 0 {
        common.gx
    } else {
        b.bin(BinOp::Add, Ty::S32, common.gx, dx as i32)
    };
    let y = if dy == 0 {
        common.gy
    } else {
        b.bin(BinOp::Add, Ty::S32, common.gy, dy as i32)
    };

    let (pattern, profile) = match mode {
        AccessMode::Texture => {
            // Hardware path: no address arithmetic beyond the offsets.
            return Operand::Reg(b.tex(input as u32, x, y));
        }
        AccessMode::SharedTile { tile_w, rx, ry } => {
            // shared[(tid.y + ry + dy) * tile_w + (tid.x + rx + dx)]:
            // the x/y computed above are global coordinates; recompute in
            // tile space from the thread indices instead.
            let lx = b.bin(BinOp::Add, Ty::S32, common.tid_x, (*rx as i64 + dx) as i32);
            let ly = b.bin(BinOp::Add, Ty::S32, common.tid_y, (*ry as i64 + dy) as i32);
            let addr = b.mad(Ty::S32, ly, *tile_w as i32, lx);
            return Operand::Reg(b.lds(addr));
        }
        AccessMode::Software { pattern, profile } => (*pattern, profile),
    };

    // Listing 1 applies the full border function to every access: both
    // sides of an axis are checked whenever the region's profile demands
    // that axis's side, regardless of the offset sign (as Hipacc/NVCC do).
    let check_l = profile.left;
    let check_r = profile.right;
    let check_t = profile.top;
    let check_b = profile.bottom;

    let mut inbounds: Option<VReg> = None;
    let rx = resolve_axis(b, pattern, x, common.width, check_l, check_r, &mut inbounds);
    let ry = resolve_axis(
        b,
        pattern,
        y,
        common.height,
        check_t,
        check_b,
        &mut inbounds,
    );
    let addr = b.mad(Ty::S32, ry, common.stride, rx);

    match inbounds {
        Some(p) => {
            // Constant pattern: guard the load through a safe address and
            // substitute the fill value when out of bounds.
            let safe = b.selp(Ty::S32, addr, 0i32, p);
            let v = b.ld(Ty::F32, input as u32, safe);
            let cst = common
                .border_const
                .expect("Constant pattern declares a border_const parameter");
            Operand::Reg(b.selp(Ty::F32, v, cst, p))
        }
        None => Operand::Reg(b.ld(Ty::F32, input as u32, addr)),
    }
}

/// Recursively lower an expression to an operand. `accs` carries the
/// current accumulator values when lowering a `FusedReduce::combine`.
fn lower_expr(
    b: &mut IrBuilder,
    spec: &KernelSpec,
    mode: &AccessMode,
    common: &CommonRegs,
    expr: &Expr,
    accs: &[Operand],
) -> Operand {
    match expr {
        Expr::Input { input, dx, dy } => lower_access(b, spec, mode, common, *input, *dx, *dy),
        Expr::Const(v) => Operand::ImmF(*v),
        Expr::Param(i) => Operand::Reg(common.user[*i]),
        Expr::Acc(i) => accs[*i],
        Expr::Bin(op, l, r) => {
            let l = lower_expr(b, spec, mode, common, l, accs);
            let r = lower_expr(b, spec, mode, common, r, accs);
            let op = match op {
                EBin::Add => BinOp::Add,
                EBin::Sub => BinOp::Sub,
                EBin::Mul => BinOp::Mul,
                EBin::Div => BinOp::Div,
                EBin::Min => BinOp::Min,
                EBin::Max => BinOp::Max,
            };
            Operand::Reg(b.bin(op, Ty::F32, l, r))
        }
        Expr::Un(op, a) => {
            let a = lower_expr(b, spec, mode, common, a, accs);
            let op = match op {
                EUn::Neg => UnOp::Neg,
                EUn::Abs => UnOp::Abs,
                EUn::Exp => UnOp::Exp,
                EUn::Log => UnOp::Log,
                EUn::Sqrt => UnOp::Sqrt,
                EUn::Rsqrt => UnOp::Rsqrt,
                EUn::Floor => UnOp::Floor,
            };
            Operand::Reg(b.un(op, Ty::F32, a))
        }
        Expr::Select {
            cmp,
            a,
            b: rhs,
            then,
            els,
        } => {
            let a = lower_expr(b, spec, mode, common, a, accs);
            let r = lower_expr(b, spec, mode, common, rhs, accs);
            let cmp = match cmp {
                ECmp::Lt => CmpOp::Lt,
                ECmp::Le => CmpOp::Le,
                ECmp::Gt => CmpOp::Gt,
                ECmp::Ge => CmpOp::Ge,
                ECmp::Eq => CmpOp::Eq,
                ECmp::Ne => CmpOp::Ne,
            };
            let p = b.setp(cmp, a, r);
            let t = lower_expr(b, spec, mode, common, then, accs);
            let e = lower_expr(b, spec, mode, common, els, accs);
            Operand::Reg(b.selp(Ty::F32, t, e, p))
        }
        Expr::FusedReduce { taps, ops, combine } => {
            // Hipacc's `iterate`: one pass over the taps, all accumulators
            // advancing together, so per-tap temporaries die immediately.
            let mut sums: Vec<Operand> = ops
                .iter()
                .map(|op| match op {
                    EBin::Min => Operand::ImmF(f32::INFINITY),
                    EBin::Max => Operand::ImmF(f32::NEG_INFINITY),
                    _ => Operand::ImmF(0.0),
                })
                .collect();
            for tap in taps {
                for ((s, term), op) in sums.iter_mut().zip(tap).zip(ops) {
                    let v = lower_expr(b, spec, mode, common, term, accs);
                    let ir_op = match op {
                        EBin::Min => BinOp::Min,
                        EBin::Max => BinOp::Max,
                        _ => BinOp::Add,
                    };
                    *s = Operand::Reg(b.bin(ir_op, Ty::F32, *s, v));
                }
            }
            lower_expr(b, spec, mode, common, combine, &sums)
        }
    }
}

/// Emit a full body (expression + output store) into the current block.
fn emit_body(b: &mut IrBuilder, spec: &KernelSpec, mode: &AccessMode, common: &CommonRegs) {
    let value = lower_expr(b, spec, mode, common, &spec.body, &[]);
    let out_addr = b.mad(Ty::S32, common.gy, common.stride, common.gx);
    b.st(spec.num_inputs as u32, out_addr, value);
}

/// Lower the **naive** variant: one body with every (offset-possible) check.
pub fn lower_naive(spec: &KernelSpec, pattern: BorderPattern) -> Lowered {
    let mut b = IrBuilder::new(
        format!("{}_naive_{}", spec.name, pattern.name()),
        spec.num_inputs as u32 + 1,
    );
    let layout = declare_params(&mut b, spec, pattern, Variant::Naive);
    let exit = b.create_block("exit");
    let common = emit_prologue(&mut b, &layout, exit);
    let profile = if spec.is_point_op() {
        CheckProfile::none()
    } else {
        CheckProfile::all()
    };
    emit_body(
        &mut b,
        spec,
        &AccessMode::Software { pattern, profile },
        &common,
    );
    b.br(exit);
    b.switch_to(exit);
    b.ret();
    let kernel = b.finish();
    isp_ir::validate::assert_valid(&kernel);
    Lowered {
        kernel,
        params: layout,
        region_paths: None,
    }
}

/// Lower a **deliberately unchecked** variant: a stencil kernel with no
/// border handling whatsoever — the broken program the paper's introduction
/// warns about ("accessing unknown memory locations may result in undefined
/// behavior and lead to corrupted pixels"). Exists so tests and demos can
/// show the simulator catching the out-of-bounds reads that border handling
/// prevents. Never used by the compiler proper.
pub fn lower_unchecked(spec: &KernelSpec) -> Lowered {
    let mut b = IrBuilder::new(
        format!("{}_unchecked", spec.name),
        spec.num_inputs as u32 + 1,
    );
    let mut layout = vec![ParamKind::Width, ParamKind::Height, ParamKind::Stride];
    b.param("width", Ty::S32);
    b.param("height", Ty::S32);
    b.param("stride", Ty::S32);
    for (i, name) in spec.user_params.iter().enumerate() {
        b.param(name, Ty::F32);
        layout.push(ParamKind::User(i));
    }
    let exit = b.create_block("exit");
    let common = emit_prologue(&mut b, &layout, exit);
    emit_body(
        &mut b,
        spec,
        &AccessMode::Software {
            pattern: BorderPattern::Clamp, // irrelevant: no side is checked
            profile: CheckProfile::none(),
        },
        &common,
    );
    b.br(exit);
    b.switch_to(exit);
    b.ret();
    let kernel = b.finish();
    isp_ir::validate::assert_valid(&kernel);
    Lowered {
        kernel,
        params: layout,
        region_paths: None,
    }
}

/// Lower the **texture** variant: like the naive kernel but all input reads
/// are `tex.2d` fetches — no software border handling anywhere; the buffer's
/// texture address mode does the work.
pub fn lower_texture(spec: &KernelSpec, pattern: BorderPattern) -> Lowered {
    let mut b = IrBuilder::new(
        format!("{}_tex_{}", spec.name, pattern.name()),
        spec.num_inputs as u32 + 1,
    );
    // Texture kernels never need the border constant (it lives in the
    // texture descriptor) nor the ISP bounds.
    let mut layout = vec![ParamKind::Width, ParamKind::Height, ParamKind::Stride];
    b.param("width", Ty::S32);
    b.param("height", Ty::S32);
    b.param("stride", Ty::S32);
    for (i, name) in spec.user_params.iter().enumerate() {
        b.param(name, Ty::F32);
        layout.push(ParamKind::User(i));
    }
    let exit = b.create_block("exit");
    let common = emit_prologue(&mut b, &layout, exit);
    emit_body(&mut b, spec, &AccessMode::Texture, &common);
    b.br(exit);
    b.switch_to(exit);
    b.ret();
    let kernel = b.finish();
    isp_ir::validate::assert_valid(&kernel);
    let _ = pattern;
    Lowered {
        kernel,
        params: layout,
        region_paths: None,
    }
}

/// Lower an **ISP** variant (block- or warp-grained): entry prologue, the
/// Listing 3/5 switching cascade, and nine specialised region bodies.
pub fn lower_isp(spec: &KernelSpec, pattern: BorderPattern, variant: Variant) -> Lowered {
    assert!(variant.is_isp(), "use lower_naive for the naive variant");
    assert!(
        needs_border(spec),
        "point operators have no border to handle"
    );
    let warp = variant == Variant::IspWarp;
    let suffix = if warp { "ispw" } else { "isp" };
    let mut b = IrBuilder::new(
        format!("{}_{}_{}", spec.name, suffix, pattern.name()),
        spec.num_inputs as u32 + 1,
    );
    let layout = declare_params(&mut b, spec, pattern, variant);
    let exit = b.create_block("exit");
    let common = emit_prologue(&mut b, &layout, exit);

    // Load the bounds (and warp bounds) once, in the prologue block.
    let idx_of = |k: ParamKind| layout.iter().position(|&p| p == k).expect("declared") as u32;
    let bh_l = b.ld_param(idx_of(ParamKind::BhL));
    let bh_r = b.ld_param(idx_of(ParamKind::BhR));
    let bh_t = b.ld_param(idx_of(ParamKind::BhT));
    let bh_b = b.ld_param(idx_of(ParamKind::BhB));
    let (w_l, w_r, warp_x) = if warp {
        let w_l = b.ld_param(idx_of(ParamKind::WL));
        let w_r = b.ld_param(idx_of(ParamKind::WR));
        let tidx = b.sreg(SReg::TidX);
        let wx = b.bin(BinOp::Shr, Ty::S32, tidx, 5i32);
        (Some(w_l), Some(w_r), Some(wx))
    } else {
        (None, None, None)
    };

    // Create the nine region blocks.
    let region_block: Vec<BlockId> = Region::ALL
        .iter()
        .map(|r| b.create_block(format!("region_{}", r.name())))
        .collect();
    let rb = |r: Region| region_block[r.index()];

    // Switch cascade blocks: a body-first fast path, then Listing 3 order
    // (TL, TR, T, BL, BR, B, R, L) for border blocks.
    let sw_tl = b.create_block("sw_tl");
    let sw_tr = b.create_block("sw_tr");
    let sw_t = b.create_block("sw_t");
    let sw_bl = b.create_block("sw_bl");
    let sw_br = b.create_block("sw_br");
    let sw_b = b.create_block("sw_b");
    let sw_r = b.create_block("sw_r");
    let sw_l = b.create_block("sw_l");
    let refine = |b: &mut IrBuilder, name: &str| b.create_block(name.to_string());

    let (bx, by) = (common.bx, common.by);

    // Hoisted Eq. 2 predicates (computed once; the cascade reuses them).
    let in_x_lo = b.setp(CmpOp::Ge, bx, bh_l);
    let in_x_hi = b.setp(CmpOp::Lt, bx, bh_r);
    let in_y_lo = b.setp(CmpOp::Ge, by, bh_t);
    let in_y_hi = b.setp(CmpOp::Lt, by, bh_b);
    // Body fast path: no border handling on either axis.
    let in_x = b.bin(BinOp::And, Ty::Pred, in_x_lo, in_x_hi);
    let in_y = b.bin(BinOp::And, Ty::Pred, in_y_lo, in_y_hi);
    let is_body = b.bin(BinOp::And, Ty::Pred, in_x, in_y);
    b.cond_br(is_body, rb(Region::Body), sw_tl);

    // Border cascade (Listing 3 order) over the hoisted predicates.
    let neg = |b: &mut IrBuilder, p| b.un(UnOp::Not, Ty::Pred, p);

    b.switch_to(sw_tl);
    let at_l = neg(&mut b, in_x_lo);
    let at_t = neg(&mut b, in_y_lo);
    let p = b.bin(BinOp::And, Ty::Pred, at_l, at_t);
    if warp {
        let r = refine(&mut b, "refine_tl");
        b.cond_br(p, r, sw_tr);
        b.switch_to(r);
        let q = b.setp(CmpOp::Gt, warp_x.unwrap(), w_l.unwrap());
        b.cond_br(q, rb(Region::T), rb(Region::TL));
    } else {
        b.cond_br(p, rb(Region::TL), sw_tr);
    }

    b.switch_to(sw_tr);
    let at_r = neg(&mut b, in_x_hi);
    let at_t = neg(&mut b, in_y_lo);
    let p = b.bin(BinOp::And, Ty::Pred, at_r, at_t);
    if warp {
        let r = refine(&mut b, "refine_tr");
        b.cond_br(p, r, sw_t);
        b.switch_to(r);
        let q = b.setp(CmpOp::Lt, warp_x.unwrap(), w_r.unwrap());
        b.cond_br(q, rb(Region::T), rb(Region::TR));
    } else {
        b.cond_br(p, rb(Region::TR), sw_t);
    }

    b.switch_to(sw_t);
    let at_t = neg(&mut b, in_y_lo);
    b.cond_br(at_t, rb(Region::T), sw_bl);

    b.switch_to(sw_bl);
    let at_b = neg(&mut b, in_y_hi);
    let at_l = neg(&mut b, in_x_lo);
    let p = b.bin(BinOp::And, Ty::Pred, at_b, at_l);
    if warp {
        let r = refine(&mut b, "refine_bl");
        b.cond_br(p, r, sw_br);
        b.switch_to(r);
        let q = b.setp(CmpOp::Gt, warp_x.unwrap(), w_l.unwrap());
        b.cond_br(q, rb(Region::B), rb(Region::BL));
    } else {
        b.cond_br(p, rb(Region::BL), sw_br);
    }

    b.switch_to(sw_br);
    let at_b = neg(&mut b, in_y_hi);
    let at_r = neg(&mut b, in_x_hi);
    let p = b.bin(BinOp::And, Ty::Pred, at_b, at_r);
    if warp {
        let r = refine(&mut b, "refine_br");
        b.cond_br(p, r, sw_b);
        b.switch_to(r);
        let q = b.setp(CmpOp::Lt, warp_x.unwrap(), w_r.unwrap());
        b.cond_br(q, rb(Region::B), rb(Region::BR));
    } else {
        b.cond_br(p, rb(Region::BR), sw_b);
    }

    b.switch_to(sw_b);
    let at_b = neg(&mut b, in_y_hi);
    b.cond_br(at_b, rb(Region::B), sw_r);

    b.switch_to(sw_r);
    let at_r = neg(&mut b, in_x_hi);
    if warp {
        let r = refine(&mut b, "refine_r");
        b.cond_br(at_r, r, sw_l);
        b.switch_to(r);
        let q = b.setp(CmpOp::Lt, warp_x.unwrap(), w_r.unwrap());
        b.cond_br(q, rb(Region::Body), rb(Region::R));
    } else {
        b.cond_br(at_r, rb(Region::R), sw_l);
    }

    b.switch_to(sw_l);
    let at_l = neg(&mut b, in_x_lo);
    if warp {
        let r = refine(&mut b, "refine_l");
        b.cond_br(at_l, r, rb(Region::L));
        b.switch_to(r);
        let q = b.setp(CmpOp::Gt, warp_x.unwrap(), w_l.unwrap());
        b.cond_br(q, rb(Region::Body), rb(Region::L));
    } else {
        // A block reaching sw_l that is not at the left edge cannot exist
        // (the body test would have caught it); route the dead else edge to
        // L as well.
        b.cond_br(at_l, rb(Region::L), rb(Region::L));
    }

    // Emit the nine specialised bodies.
    for region in Region::ALL {
        b.switch_to(rb(region));
        emit_body(
            &mut b,
            spec,
            &AccessMode::Software {
                pattern,
                profile: CheckProfile::for_region(region),
            },
            &common,
        );
        b.br(exit);
    }
    b.switch_to(exit);
    b.ret();

    let kernel = b.finish();
    isp_ir::validate::assert_valid(&kernel);

    // Region paths for instruction accounting: entry + prologue (with the
    // body-first test) + cascade prefix (Listing 3 order) + refinement +
    // region + exit.
    let entry = kernel.entry();
    let inside = kernel.block_by_label("inside").expect("prologue block");
    let by_label = |l: &str| kernel.block_by_label(l).expect("switch block");
    let mut paths: RegionPaths = Vec::new();
    // Body takes the fast path out of the prologue.
    paths.push((
        Region::Body,
        vec![entry, inside, by_label("region_Body"), by_label("exit")],
    ));
    // Border regions walk the cascade; region i traverses i+1 switch blocks.
    let order: [(&str, Region); 8] = [
        ("sw_tl", Region::TL),
        ("sw_tr", Region::TR),
        ("sw_t", Region::T),
        ("sw_bl", Region::BL),
        ("sw_br", Region::BR),
        ("sw_b", Region::B),
        ("sw_r", Region::R),
        ("sw_l", Region::L),
    ];
    for (i, (_, region)) in order.iter().enumerate() {
        let mut path = vec![entry, inside];
        for (label, _) in order.iter().take(i + 1) {
            path.push(by_label(label));
        }
        if warp {
            let refine_label = format!("refine_{}", region.name().to_lowercase());
            if let Some(id) = kernel.block_by_label(&refine_label) {
                path.push(id);
            }
        }
        path.push(by_label(&format!("region_{}", region.name())));
        path.push(by_label("exit"));
        paths.push((*region, path));
    }

    Lowered {
        kernel,
        params: layout,
        region_paths: Some(paths),
    }
}

/// Lower the **tiled** variant for a fixed `block = (tx, ty)`: the block
/// cooperatively stages its `(tx + 2rx) x (ty + 2ry)` tile (with border
/// handling applied once per staged element), synchronises, then computes
/// entirely from shared memory — no border logic in the compute phase.
///
/// The staging loop is fully unrolled 2D cooperative loading: sub-tile
/// `(ox, oy)` is loaded by thread `(tid.x + ox*tx, tid.y + oy*ty)`, guarded
/// by a compile-time-known diamond only for the partial edge sub-tiles.
/// Threads never early-exit before the barrier (the CUDA `__syncthreads`
/// contract); only the final output store is guarded against the image
/// edge.
pub fn lower_tiled(spec: &KernelSpec, pattern: BorderPattern, block: (u32, u32)) -> Lowered {
    assert_eq!(spec.num_inputs, 1, "tiling stages a single input image");
    assert!(
        !spec.is_point_op(),
        "point operators gain nothing from tiling"
    );
    let (rx, ry) = spec.radii();
    let (tx, ty) = block;
    let tile_w = tx + 2 * rx as u32;
    let tile_h = ty + 2 * ry as u32;

    let mut b = IrBuilder::new(
        format!("{}_tiled{}x{}_{}", spec.name, tx, ty, pattern.name()),
        spec.num_inputs as u32 + 1,
    );
    b.set_shared_elems(tile_w * tile_h);
    let mut layout = vec![ParamKind::Width, ParamKind::Height, ParamKind::Stride];
    b.param("width", Ty::S32);
    b.param("height", Ty::S32);
    b.param("stride", Ty::S32);
    if pattern == BorderPattern::Constant {
        b.param("border_const", Ty::F32);
        layout.push(ParamKind::BorderConst);
    }
    for (i, name) in spec.user_params.iter().enumerate() {
        b.param(name, Ty::F32);
        layout.push(ParamKind::User(i));
    }

    // Prologue WITHOUT the early image-edge exit (everyone stages).
    let bx = b.sreg(SReg::CtaIdX);
    let by = b.sreg(SReg::CtaIdY);
    let ntx = b.sreg(SReg::NTidX);
    let nty = b.sreg(SReg::NTidY);
    let tid_x = b.sreg(SReg::TidX);
    let tid_y = b.sreg(SReg::TidY);
    let gx = b.mad(Ty::S32, bx, ntx, tid_x);
    let gy = b.mad(Ty::S32, by, nty, tid_y);
    let mut width = None;
    let mut height = None;
    let mut stride = None;
    let mut border_const = None;
    let mut user = Vec::new();
    // Parameter indices follow `layout` declaration order exactly.
    for (i, kind) in layout.iter().enumerate() {
        match kind {
            ParamKind::Width => width = Some(b.ld_param(i as u32)),
            ParamKind::Height => height = Some(b.ld_param(i as u32)),
            ParamKind::Stride => stride = Some(b.ld_param(i as u32)),
            ParamKind::BorderConst => border_const = Some(b.ld_param(i as u32)),
            ParamKind::User(_) => user.push(b.ld_param(i as u32)),
            _ => {}
        }
    }
    let common = CommonRegs {
        gx,
        gy,
        tid_x,
        tid_y,
        width: width.expect("width"),
        height: height.expect("height"),
        stride: stride.expect("stride"),
        border_const,
        user,
        bx,
        by,
    };

    // Staging: unrolled 2D cooperative halo loading.
    let staging_mode = AccessMode::Software {
        pattern,
        profile: CheckProfile::all(),
    };
    let sub_x = tile_w.div_ceil(tx);
    let sub_y = tile_h.div_ceil(ty);
    // Tile origin in global coordinates: (bx*tx - rx, by*ty - ry).
    let origin_x = b.bin(BinOp::Mul, Ty::S32, bx, tx as i32);
    let origin_x = b.bin(BinOp::Sub, Ty::S32, origin_x, rx as i32);
    let origin_y = b.bin(BinOp::Mul, Ty::S32, by, ty as i32);
    let origin_y = b.bin(BinOp::Sub, Ty::S32, origin_y, ry as i32);
    for oy in 0..sub_y {
        for ox in 0..sub_x {
            // Local tile coordinates this thread covers in this sub-tile.
            let lx = b.bin(BinOp::Add, Ty::S32, tid_x, (ox * tx) as i32);
            let ly = b.bin(BinOp::Add, Ty::S32, tid_y, (oy * ty) as i32);
            // Partial sub-tiles need a bounds diamond (compile-time known).
            let needs_guard_x = (ox + 1) * tx > tile_w;
            let needs_guard_y = (oy + 1) * ty > tile_h;
            let do_load = if needs_guard_x || needs_guard_y {
                let do_load = b.create_block(format!("stage_{ox}_{oy}"));
                let next = b.create_block(format!("staged_{ox}_{oy}"));
                let mut p = None;
                if needs_guard_x {
                    p = Some(b.setp(CmpOp::Lt, lx, tile_w as i32));
                }
                if needs_guard_y {
                    let py = b.setp(CmpOp::Lt, ly, tile_h as i32);
                    p = Some(match p {
                        Some(px) => b.bin(BinOp::And, Ty::Pred, px, py),
                        None => py,
                    });
                }
                b.cond_br(p.expect("guard predicate"), do_load, next);
                b.switch_to(do_load);
                Some(next)
            } else {
                None
            };
            // Global coordinates of the staged element + border handling.
            let sgx = b.bin(BinOp::Add, Ty::S32, origin_x, lx);
            let sgy = b.bin(BinOp::Add, Ty::S32, origin_y, ly);
            let mut inbounds: Option<VReg> = None;
            let (spattern, sprofile) = match &staging_mode {
                AccessMode::Software { pattern, profile } => (*pattern, *profile),
                _ => unreachable!(),
            };
            let rgx = resolve_axis(
                &mut b,
                spattern,
                sgx,
                common.width,
                sprofile.left,
                sprofile.right,
                &mut inbounds,
            );
            let rgy = resolve_axis(
                &mut b,
                spattern,
                sgy,
                common.height,
                sprofile.top,
                sprofile.bottom,
                &mut inbounds,
            );
            let gaddr = b.mad(Ty::S32, rgy, common.stride, rgx);
            let value = match inbounds {
                Some(p) => {
                    let safe = b.selp(Ty::S32, gaddr, 0i32, p);
                    let v = b.ld(Ty::F32, 0, safe);
                    let cst = common.border_const.expect("constant pattern param");
                    b.selp(Ty::F32, v, cst, p)
                }
                None => b.ld(Ty::F32, 0, gaddr),
            };
            let saddr = b.mad(Ty::S32, ly, tile_w as i32, lx);
            b.sts(saddr, value);
            if let Some(next) = do_load {
                b.br(next);
                b.switch_to(next);
            }
        }
    }

    // Barrier (its own block, per the validator's contract).
    let bar = b.create_block("bar");
    let compute = b.create_block("compute");
    let exit = b.create_block("exit");
    b.br(bar);
    b.switch_to(bar);
    b.bar();
    b.br(compute);

    // Compute from shared; guard only the output store.
    b.switch_to(compute);
    let tile_mode = AccessMode::SharedTile {
        tile_w,
        rx: rx as u32,
        ry: ry as u32,
    };
    let value = lower_expr(&mut b, spec, &tile_mode, &common, &spec.body, &[]);
    let px = b.setp(CmpOp::Lt, gx, common.width);
    let py = b.setp(CmpOp::Lt, gy, common.height);
    let p = b.bin(BinOp::And, Ty::Pred, px, py);
    let store = b.create_block("store");
    b.cond_br(p, store, exit);
    b.switch_to(store);
    let out_addr = b.mad(Ty::S32, gy, common.stride, gx);
    b.st(spec.num_inputs as u32, out_addr, value);
    b.br(exit);
    b.switch_to(exit);
    b.ret();

    let kernel = b.finish();
    isp_ir::validate::assert_valid(&kernel);
    Lowered {
        kernel,
        params: layout,
        region_paths: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isp_image::Mask;
    use isp_ir::InstrHistogram;

    fn gauss3() -> KernelSpec {
        KernelSpec::convolution("gauss3", &Mask::gaussian(3, 0.85).unwrap())
    }

    #[test]
    fn naive_variant_is_valid_for_all_patterns() {
        let spec = gauss3();
        for pattern in BorderPattern::ALL {
            let l = lower_naive(&spec, pattern);
            assert!(isp_ir::validate::validate(&l.kernel).is_empty());
            assert_eq!(l.params[0], ParamKind::Width);
            assert_eq!(l.region_paths, None);
            // Constant declares the fill parameter; the others do not.
            let has_const = l.params.contains(&ParamKind::BorderConst);
            assert_eq!(has_const, pattern == BorderPattern::Constant, "{pattern}");
        }
    }

    #[test]
    fn isp_variants_are_valid_and_fat() {
        let spec = gauss3();
        for pattern in BorderPattern::ALL {
            for variant in [Variant::IspBlock, Variant::IspWarp] {
                let naive = lower_naive(&spec, pattern);
                let isp = lower_isp(&spec, pattern, variant);
                assert!(isp_ir::validate::validate(&isp.kernel).is_empty());
                assert!(
                    isp.kernel.static_len() > 4 * naive.kernel.static_len(),
                    "{pattern}/{variant}: fat kernel should be several times larger"
                );
                let paths = isp.region_paths.as_ref().unwrap();
                assert_eq!(paths.len(), 9);
            }
        }
    }

    #[test]
    fn body_region_has_no_checks() {
        // The Body path of the ISP kernel must contain zero setp/max/min
        // border arithmetic beyond the guard and switch.
        let spec = gauss3();
        let isp = lower_isp(&spec, BorderPattern::Clamp, Variant::IspBlock);
        let body_block = isp.kernel.block_by_label("region_Body").unwrap();
        let h = InstrHistogram::of_blocks(&isp.kernel, [body_block]);
        assert_eq!(h.get(isp_ir::InstrCategory::Max), 0, "no clamps in Body");
        assert_eq!(h.get(isp_ir::InstrCategory::Min), 0);
        assert_eq!(h.get(isp_ir::InstrCategory::Setp), 0);
        // But it still loads and computes.
        assert_eq!(h.get(isp_ir::InstrCategory::Ld), 9);
        assert_eq!(h.get(isp_ir::InstrCategory::St), 1);
    }

    #[test]
    fn corner_regions_check_two_sides() {
        let spec = gauss3();
        let isp = lower_isp(&spec, BorderPattern::Clamp, Variant::IspBlock);
        let tl = isp.kernel.block_by_label("region_TL").unwrap();
        let l = isp.kernel.block_by_label("region_L").unwrap();
        let h_tl = InstrHistogram::of_blocks(&isp.kernel, [tl]);
        let h_l = InstrHistogram::of_blocks(&isp.kernel, [l]);
        // TL clamps on both left (max) and top (max), L only left.
        assert!(h_tl.get(isp_ir::InstrCategory::Max) > h_l.get(isp_ir::InstrCategory::Max));
        assert_eq!(
            h_tl.get(isp_ir::InstrCategory::Min),
            0,
            "TL never checks right/bottom"
        );
    }

    #[test]
    fn naive_checks_both_sides_like_listing1() {
        // Listing 1 fidelity: even a purely-right-looking kernel gets left
        // clamps in the naive variant (nvcc cannot prove gx+1 >= 0 either).
        let spec = KernelSpec::new("right", 1, vec![], Expr::at(1, 0) + Expr::at(2, 0));
        let l = lower_naive(&spec, BorderPattern::Clamp);
        let opt = isp_ir::opt::optimize(&l.kernel, isp_ir::opt::OptConfig::full());
        let h = InstrHistogram::of_kernel(&opt);
        assert!(h.get(isp_ir::InstrCategory::Max) > 0, "left clamp present");
        assert!(h.get(isp_ir::InstrCategory::Min) > 0, "right clamp present");
        // CSE merges the per-coordinate duplicates: 2 distinct x coordinates
        // + 1 y coordinate = 3 max / 3 min.
        assert_eq!(h.get(isp_ir::InstrCategory::Max), 3);
        assert_eq!(h.get(isp_ir::InstrCategory::Min), 3);
    }

    #[test]
    fn repeat_costs_more_checks_than_clamp() {
        let spec = gauss3();
        let clamp = lower_naive(&spec, BorderPattern::Clamp);
        let repeat = lower_naive(&spec, BorderPattern::Repeat);
        let hc = InstrHistogram::of_kernel(&clamp.kernel);
        let hr = InstrHistogram::of_kernel(&repeat.kernel);
        assert!(
            hr.arithmetic_total() > hc.arithmetic_total(),
            "repeat {:?} must out-cost clamp {:?}",
            hr.arithmetic_total(),
            hc.arithmetic_total()
        );
    }

    #[test]
    fn warp_variant_reads_warp_bounds() {
        let spec = gauss3();
        let w = lower_isp(&spec, BorderPattern::Clamp, Variant::IspWarp);
        assert!(w.params.contains(&ParamKind::WL));
        assert!(w.params.contains(&ParamKind::WR));
        let blk = lower_isp(&spec, BorderPattern::Clamp, Variant::IspBlock);
        assert!(!blk.params.contains(&ParamKind::WL));
        // Warp variant has the refinement blocks.
        assert!(w.kernel.block_by_label("refine_tl").is_some());
        assert!(blk.kernel.block_by_label("refine_tl").is_none());
    }

    #[test]
    fn region_paths_cover_cascade_prefixes() {
        let spec = gauss3();
        let isp = lower_isp(&spec, BorderPattern::Mirror, Variant::IspBlock);
        let paths = isp.region_paths.unwrap();
        let len_of = |r: Region| {
            paths
                .iter()
                .find(|(pr, _)| *pr == r)
                .map(|(_, p)| p.len())
                .unwrap()
        };
        // Later cascade entries traverse more switch blocks (the paper's
        // n_switch(p) differences).
        assert!(len_of(Region::TL) < len_of(Region::L));
        assert!(len_of(Region::TR) <= len_of(Region::B));
        // Body takes the fast path: the shortest route of all.
        for r in Region::ALL {
            if r != Region::Body {
                assert!(
                    len_of(Region::Body) < len_of(r),
                    "Body must be shortest vs {r}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "point operators")]
    fn isp_rejects_point_ops() {
        let spec = KernelSpec::new("id", 1, vec![], Expr::at(0, 0));
        let _ = lower_isp(&spec, BorderPattern::Clamp, Variant::IspBlock);
    }

    #[test]
    fn user_params_flow_to_layout() {
        let spec = KernelSpec::new(
            "scaled",
            1,
            vec!["gain".into()],
            Expr::at(-1, 0) * Expr::param(0),
        );
        let l = lower_naive(&spec, BorderPattern::Clamp);
        assert!(l.params.contains(&ParamKind::User(0)));
        let i = lower_isp(&spec, BorderPattern::Clamp, Variant::IspBlock);
        assert!(i.params.contains(&ParamKind::User(0)));
        assert!(i.params.contains(&ParamKind::BhL));
    }
}
