//! Kernel specifications: the user-facing description a filter author writes.

use crate::expr::Expr;
use isp_image::Mask;

/// A local-operator kernel specification — the analogue of a Hipacc `Kernel`
/// subclass: a name, the inputs it reads, runtime parameters, and the output
/// expression (with the window implied by the expression's accesses).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    /// Kernel name (used for IR names and reports).
    pub name: String,
    /// Number of input images.
    pub num_inputs: usize,
    /// Names of runtime `f32` parameters, indexed by [`Expr::Param`].
    pub user_params: Vec<String>,
    /// The output-pixel expression.
    pub body: Expr,
}

impl KernelSpec {
    /// Create a spec. The window is inferred from the body's accesses
    /// (Hipacc's domain inference); panics if the body references inputs or
    /// parameters beyond the declared counts.
    pub fn new(
        name: impl Into<String>,
        num_inputs: usize,
        user_params: Vec<String>,
        body: Expr,
    ) -> Self {
        let spec = KernelSpec {
            name: name.into(),
            num_inputs,
            user_params,
            body,
        };
        assert!(
            spec.body.accs_well_placed(),
            "kernel '{}': Acc placeholders outside a FusedReduce combine",
            spec.name
        );
        for (input, _, _) in spec.body.accesses() {
            assert!(
                input < spec.num_inputs,
                "kernel '{}' reads undeclared input {input}",
                spec.name
            );
        }
        if let Some(p) = spec.body.max_param() {
            assert!(
                p < spec.user_params.len(),
                "kernel '{}' reads undeclared parameter {p}",
                spec.name
            );
        }
        spec
    }

    /// Dense convolution with a mask over input 0, skipping zero
    /// coefficients (domain inference from the mask).
    ///
    /// The sum is a fused reduction (Hipacc's `iterate`), evaluated
    /// tap-at-a-time with a single running accumulator — both stack-safe for
    /// huge windows and register-pressure-realistic.
    pub fn convolution(name: impl Into<String>, mask: &Mask) -> Self {
        let terms: Vec<Expr> = mask
            .domain()
            .iter_offsets()
            .map(|(dx, dy)| Expr::Const(mask.coeff_at(dx, dy)) * Expr::at(dx, dy))
            .collect();
        let body = Expr::fused_sum(terms);
        Self::new(name, 1, vec![], body)
    }

    /// The stencil radii `(rx, ry)` inferred from the body's accesses.
    pub fn radii(&self) -> (usize, usize) {
        let mut rx = 0i64;
        let mut ry = 0i64;
        for (_, dx, dy) in self.body.accesses() {
            rx = rx.max(dx.abs());
            ry = ry.max(dy.abs());
        }
        (rx as usize, ry as usize)
    }

    /// The inferred window size `(m, n)` — `2r+1` per axis.
    pub fn window(&self) -> (usize, usize) {
        let (rx, ry) = self.radii();
        (2 * rx + 1, 2 * ry + 1)
    }

    /// Whether this is a point operator (no neighbourhood): point operators
    /// need no border handling at all.
    pub fn is_point_op(&self) -> bool {
        self.radii() == (0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use isp_image::Mask;

    #[test]
    fn convolution_from_mask() {
        let mask = Mask::gaussian(5, 1.0).unwrap();
        let spec = KernelSpec::convolution("gauss5", &mask);
        assert_eq!(spec.window(), (5, 5));
        assert_eq!(spec.radii(), (2, 2));
        assert_eq!(spec.body.accesses().len(), 25);
        assert!(!spec.is_point_op());
    }

    #[test]
    fn sparse_mask_skips_zero_coefficients() {
        let mask = Mask::laplace(3).unwrap();
        let spec = KernelSpec::convolution("laplace3", &mask);
        assert_eq!(spec.body.accesses().len(), 5);
        assert_eq!(spec.window(), (3, 3));
    }

    #[test]
    fn atrous_window_inferred_from_reach() {
        let base = Mask::gaussian(3, 0.85).unwrap();
        let dilated = Mask::atrous(&base, 4).unwrap();
        let spec = KernelSpec::convolution("atrous9", &dilated);
        assert_eq!(spec.window(), (9, 9));
        assert_eq!(spec.body.accesses().len(), 9, "only the 9 active taps");
    }

    #[test]
    fn point_op_detection() {
        let spec = KernelSpec::new(
            "tonemap",
            1,
            vec![],
            Expr::at(0, 0) / (Expr::at(0, 0) + 1.0),
        );
        assert!(spec.is_point_op());
        assert_eq!(spec.window(), (1, 1));
    }

    #[test]
    fn asymmetric_windows() {
        let body = Expr::at(-3, 0) + Expr::at(3, 0) + Expr::at(0, -1) + Expr::at(0, 1);
        let spec = KernelSpec::new("aniso", 1, vec![], body);
        assert_eq!(spec.window(), (7, 3));
    }

    #[test]
    #[should_panic(expected = "undeclared input")]
    fn undeclared_input_rejected() {
        let _ = KernelSpec::new("bad", 1, vec![], Expr::input_at(1, 0, 0));
    }

    #[test]
    #[should_panic(expected = "undeclared parameter")]
    fn undeclared_param_rejected() {
        let _ = KernelSpec::new("bad", 1, vec![], Expr::at(0, 0) * Expr::param(0));
    }
}
