//! CUDA-like source emission — the human-readable view of what the compiler
//! generates, mirroring the paper's Listings 1, 3, and 5. This output is for
//! inspection and documentation; execution goes through the IR.

use crate::expr::{EBin, ECmp, EUn, Expr};
use crate::lower::CheckProfile;
use crate::spec::KernelSpec;
use isp_core::{Region, Variant};
use isp_image::BorderPattern;
use std::fmt::Write;

/// Emit the border-resolution statements for one axis (paper Listing 1).
fn emit_axis_checks(
    out: &mut String,
    pattern: BorderPattern,
    var: &str,
    size: &str,
    check_lo: bool,
    check_hi: bool,
    indent: &str,
) {
    match pattern {
        BorderPattern::Clamp => {
            if check_lo {
                let _ = writeln!(out, "{indent}if ({var} < 0) {var} = 0;");
            }
            if check_hi {
                let _ = writeln!(out, "{indent}if ({var} >= {size}) {var} = {size} - 1;");
            }
        }
        BorderPattern::Mirror => {
            if check_lo {
                let _ = writeln!(out, "{indent}if ({var} < 0) {var} = -{var} - 1;");
            }
            if check_hi {
                let _ = writeln!(
                    out,
                    "{indent}if ({var} >= {size}) {var} = 2*{size} - {var} - 1;"
                );
            }
        }
        BorderPattern::Repeat => {
            if check_lo {
                let _ = writeln!(out, "{indent}while ({var} < 0) {var} += {size};");
            }
            if check_hi {
                let _ = writeln!(out, "{indent}while ({var} >= {size}) {var} -= {size};");
            }
        }
        BorderPattern::Constant => {
            if check_lo {
                let _ = writeln!(out, "{indent}in_bounds &= ({var} >= 0);");
            }
            if check_hi {
                let _ = writeln!(out, "{indent}in_bounds &= ({var} < {size});");
            }
        }
    }
}

fn expr_to_c(e: &Expr, spec: &KernelSpec) -> String {
    match e {
        Expr::Input { input, dx, dy } => format!("read{input}({dx},{dy})"),
        Expr::Const(v) => format!("{v:?}f"),
        Expr::Param(i) => spec.user_params[*i].clone(),
        Expr::Bin(op, a, b) => {
            let (a, b) = (expr_to_c(a, spec), expr_to_c(b, spec));
            match op {
                EBin::Add => format!("({a} + {b})"),
                EBin::Sub => format!("({a} - {b})"),
                EBin::Mul => format!("({a} * {b})"),
                EBin::Div => format!("({a} / {b})"),
                EBin::Min => format!("fminf({a}, {b})"),
                EBin::Max => format!("fmaxf({a}, {b})"),
            }
        }
        Expr::Un(op, a) => {
            let a = expr_to_c(a, spec);
            match op {
                EUn::Neg => format!("(-{a})"),
                EUn::Abs => format!("fabsf({a})"),
                EUn::Exp => format!("expf({a})"),
                EUn::Log => format!("logf({a})"),
                EUn::Sqrt => format!("sqrtf({a})"),
                EUn::Rsqrt => format!("rsqrtf({a})"),
                EUn::Floor => format!("floorf({a})"),
            }
        }
        Expr::Select {
            cmp,
            a,
            b,
            then,
            els,
        } => {
            let c = match cmp {
                ECmp::Lt => "<",
                ECmp::Le => "<=",
                ECmp::Gt => ">",
                ECmp::Ge => ">=",
                ECmp::Eq => "==",
                ECmp::Ne => "!=",
            };
            format!(
                "(({} {c} {}) ? {} : {})",
                expr_to_c(a, spec),
                expr_to_c(b, spec),
                expr_to_c(then, spec),
                expr_to_c(els, spec)
            )
        }
        Expr::Acc(i) => format!("acc{i}"),
        Expr::FusedReduce { taps, ops, combine } => {
            // Emitted as a GNU statement expression, the readable analogue
            // of the unrolled iterate loop in the generated kernel.
            let mut s = String::from("({ ");
            for (a, op) in ops.iter().enumerate() {
                let init = match op {
                    EBin::Min => "FLT_MAX",
                    EBin::Max => "-FLT_MAX",
                    _ => "0.f",
                };
                s.push_str(&format!("float acc{a} = {init}; "));
            }
            for tap in taps {
                for ((a, term), op) in tap.iter().enumerate().zip(ops) {
                    let update = match op {
                        EBin::Min => format!("acc{a} = fminf(acc{a}, {});", expr_to_c(term, spec)),
                        EBin::Max => format!("acc{a} = fmaxf(acc{a}, {});", expr_to_c(term, spec)),
                        _ => format!("acc{a} += {};", expr_to_c(term, spec)),
                    };
                    s.push_str(&update);
                    s.push(' ');
                }
            }
            s.push_str(&format!("{}; }})", expr_to_c(combine, spec)));
            s
        }
    }
}

/// Emit one region body (the read helper + expression + store).
fn emit_region_body(
    out: &mut String,
    spec: &KernelSpec,
    pattern: BorderPattern,
    profile: &CheckProfile,
    label: &str,
) {
    let _ = writeln!(out, "{label}: {{");
    let _ = writeln!(
        out,
        "    // checks: left={} right={} top={} bottom={}",
        profile.left, profile.right, profile.top, profile.bottom
    );
    let _ = writeln!(out, "    auto read0 = [&](int dx, int dy) {{");
    let _ = writeln!(out, "        int x = gx + dx, y = gy + dy;");
    if pattern == BorderPattern::Constant {
        let _ = writeln!(out, "        bool in_bounds = true;");
    }
    let mut checks = String::new();
    emit_axis_checks(
        &mut checks,
        pattern,
        "x",
        "width",
        profile.left,
        profile.right,
        "        ",
    );
    emit_axis_checks(
        &mut checks,
        pattern,
        "y",
        "height",
        profile.top,
        profile.bottom,
        "        ",
    );
    out.push_str(&checks);
    if pattern == BorderPattern::Constant {
        let _ = writeln!(
            out,
            "        return in_bounds ? input[y*stride + x] : border_const;"
        );
    } else {
        let _ = writeln!(out, "        return input[y*stride + x];");
    }
    let _ = writeln!(out, "    }};");
    let _ = writeln!(
        out,
        "    output[gy*stride + gx] = {};",
        expr_to_c(&spec.body, spec)
    );
    let _ = writeln!(out, "    return;");
    let _ = writeln!(out, "}}");
}

/// Render a full kernel variant as CUDA-like source.
pub fn emit_cuda(spec: &KernelSpec, pattern: BorderPattern, variant: Variant) -> String {
    let mut out = String::new();
    let suffix = match variant {
        Variant::Naive => "naive",
        Variant::IspBlock => "isp",
        Variant::IspWarp => "isp_warp",
        Variant::Texture => "tex",
        Variant::Tiled => "tiled",
    };
    let mut params =
        String::from("const float* input, float* output, int width, int height, int stride");
    if variant.is_isp() {
        params.push_str(", int BH_L, int BH_R, int BH_T, int BH_B");
    }
    if variant == Variant::IspWarp {
        params.push_str(", int W_L, int W_R");
    }
    if pattern == BorderPattern::Constant {
        params.push_str(", float border_const");
    }
    for p in &spec.user_params {
        let _ = write!(params, ", float {p}");
    }
    let _ = writeln!(
        out,
        "__global__ void {}_{}_{}({params}) {{",
        spec.name,
        suffix,
        pattern.name()
    );
    let _ = writeln!(out, "    int gx = blockIdx.x * blockDim.x + threadIdx.x;");
    let _ = writeln!(out, "    int gy = blockIdx.y * blockDim.y + threadIdx.y;");
    let _ = writeln!(out, "    if (gx >= width || gy >= height) return;");

    match variant {
        Variant::Naive => {
            emit_region_body(&mut out, spec, pattern, &CheckProfile::all(), "body");
        }
        Variant::Tiled => {
            // Compact sketch; the full staging/barrier structure lives in
            // the IR (see lower::lower_tiled) and is block-size specific.
            let _ = writeln!(
                out,
                "    // __shared__ float tile[(TX+2*RX)*(TY+2*RY)];\n\
                 \x20   // cooperative halo staging with border handling ...\n\
                 \x20   // __syncthreads();\n\
                 \x20   // compute from tile[] — no border checks needed"
            );
            emit_region_body(&mut out, spec, pattern, &CheckProfile::none(), "body");
        }
        Variant::Texture => {
            // Hardware path: a tex2D read helper, no checks anywhere.
            let _ = writeln!(out, "body: {{");
            let _ = writeln!(
                out,
                "    auto read0 = [&](int dx, int dy) {{ return tex2D<float>(input_tex, gx + dx, gy + dy); }};"
            );
            let _ = writeln!(
                out,
                "    output[gy*stride + gx] = {};",
                expr_to_c(&spec.body, spec)
            );
            let _ = writeln!(out, "    return;");
            let _ = writeln!(out, "}}");
        }
        Variant::IspBlock | Variant::IspWarp => {
            let warp = variant == Variant::IspWarp;
            if warp {
                let _ = writeln!(out, "    int warp_x = threadIdx.x >> 5;");
            }
            // Body-first fast path (the compiler's refinement of Listing 3:
            // the overwhelmingly common region exits after one test).
            let _ = writeln!(
                out,
                "    if (blockIdx.x >= BH_L && blockIdx.x < BH_R &&\n        blockIdx.y >= BH_T && blockIdx.y < BH_B) goto Body;"
            );
            // Listing 3 / Listing 5 switching cascade.
            let guard = |region: &str, refine: Option<(&str, &str)>| {
                let mut s = String::new();
                match refine {
                    Some((cond, cheap)) if warp => {
                        let _ = writeln!(s, "        if ({cond}) goto {cheap};");
                        let _ = writeln!(s, "        goto {region};");
                    }
                    _ => {
                        let _ = writeln!(s, "        goto {region};");
                    }
                }
                s
            };
            let _ = writeln!(out, "    if (blockIdx.x < BH_L && blockIdx.y < BH_T) {{");
            out.push_str(&guard("TL", Some(("warp_x > W_L", "T"))));
            let _ = writeln!(out, "    }}");
            let _ = writeln!(out, "    if (blockIdx.x >= BH_R && blockIdx.y < BH_T) {{");
            out.push_str(&guard("TR", Some(("warp_x < W_R", "T"))));
            let _ = writeln!(out, "    }}");
            let _ = writeln!(out, "    if (blockIdx.y < BH_T) goto T;");
            let _ = writeln!(out, "    if (blockIdx.y >= BH_B && blockIdx.x < BH_L) {{");
            out.push_str(&guard("BL", Some(("warp_x > W_L", "B"))));
            let _ = writeln!(out, "    }}");
            let _ = writeln!(out, "    if (blockIdx.y >= BH_B && blockIdx.x >= BH_R) {{");
            out.push_str(&guard("BR", Some(("warp_x < W_R", "B"))));
            let _ = writeln!(out, "    }}");
            let _ = writeln!(out, "    if (blockIdx.y >= BH_B) goto B;");
            let _ = writeln!(out, "    if (blockIdx.x >= BH_R) {{");
            out.push_str(&guard("R", Some(("warp_x < W_R", "Body"))));
            let _ = writeln!(out, "    }}");
            let _ = writeln!(out, "    if (blockIdx.x < BH_L) {{");
            out.push_str(&guard("L", Some(("warp_x > W_L", "Body"))));
            let _ = writeln!(out, "    }}");
            let _ = writeln!(out, "    goto Body;");
            for region in Region::ALL {
                emit_region_body(
                    &mut out,
                    spec,
                    pattern,
                    &CheckProfile::for_region(region),
                    region.name(),
                );
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use isp_image::Mask;

    fn gauss3() -> KernelSpec {
        KernelSpec::convolution("gauss3", &Mask::gaussian(3, 0.85).unwrap())
    }

    #[test]
    fn naive_source_contains_all_checks() {
        let src = emit_cuda(&gauss3(), BorderPattern::Clamp, Variant::Naive);
        assert!(src.contains("__global__ void gauss3_naive_clamp"));
        assert!(src.contains("if (x < 0) x = 0;"));
        assert!(src.contains("if (x >= width) x = width - 1;"));
        assert!(src.contains("if (y >= height) y = height - 1;"));
        assert!(!src.contains("goto TL"), "naive has no region switch");
    }

    #[test]
    fn isp_source_mirrors_listing3() {
        let src = emit_cuda(&gauss3(), BorderPattern::Mirror, Variant::IspBlock);
        assert!(src.contains("if (blockIdx.x < BH_L && blockIdx.y < BH_T)"));
        assert!(src.contains("goto TL;"));
        assert!(src.contains("goto Body;"));
        assert!(src.contains("TL: {"));
        assert!(src.contains("Body: {"));
        // Body region emits no checks at all.
        let body_start = src.find("Body: {").unwrap();
        let body = &src[body_start..src.len().min(body_start + 400)];
        assert!(
            !body.contains("if (x <"),
            "Body region must be check-free:\n{body}"
        );
        assert!(src.contains("-x - 1"), "mirror reflection emitted");
    }

    #[test]
    fn warp_source_mirrors_listing5() {
        let src = emit_cuda(&gauss3(), BorderPattern::Clamp, Variant::IspWarp);
        assert!(src.contains("int warp_x = threadIdx.x >> 5;"));
        assert!(src.contains("if (warp_x > W_L) goto T;"));
        assert!(src.contains("if (warp_x < W_R) goto Body;"));
        assert!(src.contains("int W_L, int W_R"));
    }

    #[test]
    fn repeat_uses_while_loops_and_constant_uses_guard() {
        let src = emit_cuda(&gauss3(), BorderPattern::Repeat, Variant::Naive);
        assert!(src.contains("while (x < 0) x += width;"));
        assert!(src.contains("while (y >= height) y -= height;"));
        let src = emit_cuda(&gauss3(), BorderPattern::Constant, Variant::Naive);
        assert!(src.contains("bool in_bounds = true;"));
        assert!(src.contains("in_bounds ? input[y*stride + x] : border_const"));
        assert!(src.contains("float border_const"));
    }

    #[test]
    fn user_params_appear_in_signature() {
        let spec = KernelSpec::new(
            "thresh",
            1,
            vec!["level".into()],
            Expr::select(ECmp::Gt, Expr::at(0, 0), Expr::param(0), 1.0f32, 0.0f32),
        );
        let src = emit_cuda(&spec, BorderPattern::Clamp, Variant::Naive);
        assert!(src.contains(", float level"));
        assert!(src.contains("> level) ? 1.0f : 0.0f"));
    }
}

/// Render a kernel variant as OpenCL-like source (Hipacc emits both CUDA and
/// OpenCL; the structural differences are the qualifiers, the work-item
/// intrinsics, and spelling `get_group_id` for `blockIdx`).
pub fn emit_opencl(spec: &KernelSpec, pattern: BorderPattern, variant: Variant) -> String {
    // Reuse the CUDA emission and rewrite the dialect-specific tokens. The
    // switching structure, checks, and expressions are identical.
    let cuda = emit_cuda(spec, pattern, variant);
    cuda.replace("__global__ void", "__kernel void")
        .replace("const float* input", "__global const float* restrict input")
        .replace("float* output", "__global float* restrict output")
        .replace("blockIdx.x * blockDim.x + threadIdx.x", "get_global_id(0)")
        .replace("blockIdx.y * blockDim.y + threadIdx.y", "get_global_id(1)")
        .replace("blockIdx.x", "get_group_id(0)")
        .replace("blockIdx.y", "get_group_id(1)")
        .replace("threadIdx.x", "get_local_id(0)")
        .replace(
            "tex2D<float>(input_tex, ",
            "read_imagef(input_tex, sampler, (int2)(",
        )
}

#[cfg(test)]
mod opencl_tests {
    use super::*;
    use isp_image::Mask;

    #[test]
    fn opencl_dialect_tokens() {
        let spec = KernelSpec::convolution("g3", &Mask::gaussian(3, 0.85).unwrap());
        let src = emit_opencl(&spec, BorderPattern::Clamp, Variant::IspBlock);
        assert!(src.contains("__kernel void g3_isp_clamp"));
        assert!(src.contains("__global const float* restrict input"));
        assert!(src.contains("int gx = get_global_id(0);"));
        assert!(src.contains("if (get_group_id(0) < BH_L && get_group_id(1) < BH_T)"));
        assert!(!src.contains("blockIdx"), "no CUDA intrinsics may remain");
        assert!(!src.contains("__global__"));
    }

    #[test]
    fn opencl_naive_matches_structure() {
        let spec = KernelSpec::convolution("g3", &Mask::gaussian(3, 0.85).unwrap());
        let src = emit_opencl(&spec, BorderPattern::Repeat, Variant::Naive);
        assert!(src.contains("while (x < 0) x += width;"));
        assert!(!src.contains("goto TL"));
    }
}
