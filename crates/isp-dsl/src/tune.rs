//! Block-size autotuning.
//!
//! The paper stresses that the benefit of ISP "depends on the image size as
//! well as the user-defined block size" (§IV-A.3) and that wide blocks use
//! memory more efficiently (§V-B), but leaves the block size to the user.
//! This module closes that loop: rank candidate block sizes by a predicted
//! absolute cost assembled from the same ingredients as the Eq. (10) model —
//! per-region weighted instruction costs, Eq. (8) block populations,
//! occupancy, block-shape coalescing, and ragged-grid padding waste — and
//! pick the variant per candidate with the isp+m rule.

use crate::compile::CompiledKernel;
use crate::runner::geometry_for;
use isp_core::{IndexBounds, Variant};
use isp_sim::device::transactions_per_access_for_block;
use isp_sim::{occupancy, Gpu};

/// Candidate block sizes worth trying on these devices (warp-aligned widths,
/// 64–512 threads).
pub const DEFAULT_CANDIDATES: [(u32, u32); 8] = [
    (32, 2),
    (32, 4),
    (32, 8),
    (64, 2),
    (64, 4),
    (128, 1),
    (128, 2),
    (256, 1),
];

/// One evaluated candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunePoint {
    /// Block size `(tx, ty)`.
    pub block: (u32, u32),
    /// The better variant at this block size (per the model).
    pub variant: Variant,
    /// Predicted cost in weighted warp-cycles (relative units; lower wins).
    pub predicted_cost: f64,
    /// Theoretical occupancy of the chosen variant.
    pub occupancy: f64,
    /// Predicted ISP-over-naive gain at this block size (Eq. 10).
    pub gain: f64,
}

/// Rank `candidates` (best first) for running `ck` on a `width x height`
/// image on `gpu`. Uses model predictions only — no simulation.
pub fn tune_block_size(
    gpu: &Gpu,
    ck: &CompiledKernel,
    width: usize,
    height: usize,
    candidates: &[(u32, u32)],
) -> Vec<TunePoint> {
    let device = gpu.device();
    let mut points = Vec::with_capacity(candidates.len());
    for &block in candidates {
        let threads = block.0 * block.1;
        if threads == 0 || threads > isp_sim::launch::MAX_THREADS_PER_BLOCK {
            continue;
        }
        let geom = geometry_for(ck, width, height, block);
        let (gx, gy) = geom.grid();
        // Ragged grids pay for threads that compute nothing.
        let launched_threads = (gx as f64 * gy as f64) * threads as f64;
        let tx_per_access = transactions_per_access_for_block(block.0);

        // Naive cost: every launched thread runs the full checked path.
        let occ_naive = occupancy(device, threads, ck.naive.regs.data_regs).occupancy;
        let naive_cost = device.weighted_cost_with(&ck.naive.static_histogram, tx_per_access)
            * launched_threads
            / occ_naive;

        // ISP cost: per-region path costs weighted by block populations.
        let bounds = IndexBounds::new(&geom);
        let isp_cost = ck.isp.as_ref().filter(|_| bounds.is_valid()).map(|isp| {
            let occ_isp = occupancy(device, threads, isp.regs.data_regs).occupancy;
            let hists = isp.region_histograms.as_ref().expect("isp has regions");
            let counts = bounds.block_counts();
            let mut cost = 0.0;
            for (region, hist) in hists {
                let region_threads = counts.get(*region) as f64 * threads as f64;
                cost += device.weighted_cost_with(hist, tx_per_access) * region_threads;
            }
            (cost / occ_isp, occ_isp)
        });

        let (variant, predicted_cost, occ) = match isp_cost {
            Some((ic, occ_isp)) if ic < naive_cost => {
                (ck.isp.as_ref().expect("checked").variant, ic, occ_isp)
            }
            _ => (Variant::Naive, naive_cost, occ_naive),
        };
        let gain = match isp_cost {
            Some((ic, _)) => naive_cost / ic,
            None => 1.0,
        };
        points.push(TunePoint {
            block,
            variant,
            predicted_cost,
            occupancy: occ,
            gain,
        });
    }
    points.sort_by(|a, b| a.predicted_cost.total_cmp(&b.predicted_cost));
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Compiler;
    use isp_image::BorderPattern;
    use isp_sim::DeviceSpec;

    fn tuned(pattern: BorderPattern, size: usize) -> Vec<TunePoint> {
        let spec = isp_filters_spec();
        let ck = Compiler::new().compile(&spec, pattern, Variant::IspBlock);
        let gpu = Gpu::new(DeviceSpec::gtx680());
        tune_block_size(&gpu, &ck, size, size, &DEFAULT_CANDIDATES)
    }

    // A local 5x5 convolution spec (isp-filters depends on this crate, so
    // tests build their own).
    fn isp_filters_spec() -> crate::KernelSpec {
        crate::KernelSpec::convolution("tune_gauss5", &isp_image::Mask::gaussian(5, 1.0).unwrap())
    }

    #[test]
    fn prefers_warp_wide_blocks() {
        // Narrow blocks cost extra memory transactions; the winner must be
        // at least a full warp wide.
        let points = tuned(BorderPattern::Repeat, 2048);
        assert!(!points.is_empty());
        assert!(points[0].block.0 >= 32, "winner {:?}", points[0]);
        // And the ranking must be strictly ordered by predicted cost.
        for w in points.windows(2) {
            assert!(w[0].predicted_cost <= w[1].predicted_cost);
        }
    }

    #[test]
    fn picks_isp_on_large_repeat_images() {
        let points = tuned(BorderPattern::Repeat, 2048);
        assert!(points[0].variant.is_isp(), "{:?}", points[0]);
        assert!(points[0].gain > 1.0);
    }

    #[test]
    fn covers_all_valid_candidates() {
        let points = tuned(BorderPattern::Clamp, 1024);
        assert_eq!(points.len(), DEFAULT_CANDIDATES.len());
        // Every candidate appears exactly once.
        let mut blocks: Vec<_> = points.iter().map(|p| p.block).collect();
        blocks.sort_unstable();
        let mut expect = DEFAULT_CANDIDATES.to_vec();
        expect.sort_unstable();
        assert_eq!(blocks, expect);
    }

    #[test]
    fn ragged_grids_are_penalised() {
        // 1000x1000 image: 128-wide blocks overshoot by 24 columns; with
        // everything else comparable, the tuner must notice the waste in
        // its absolute cost (compare the same shape at a divisible size).
        let spec = isp_filters_spec();
        let ck = Compiler::new().compile(&spec, BorderPattern::Clamp, Variant::IspBlock);
        let gpu = Gpu::new(DeviceSpec::gtx680());
        let ragged = tune_block_size(&gpu, &ck, 1000, 1000, &[(128, 2)]);
        let exact = tune_block_size(&gpu, &ck, 1024, 1024, &[(128, 2)]);
        let per_pixel_ragged = ragged[0].predicted_cost / (1000.0 * 1000.0);
        let per_pixel_exact = exact[0].predicted_cost / (1024.0 * 1024.0);
        assert!(
            per_pixel_ragged > per_pixel_exact,
            "{per_pixel_ragged} vs {per_pixel_exact}"
        );
    }

    #[test]
    fn point_ops_always_naive() {
        let spec = crate::KernelSpec::new("id", 1, vec![], crate::Expr::at(0, 0));
        let ck = Compiler::new().compile(&spec, BorderPattern::Clamp, Variant::IspBlock);
        let gpu = Gpu::new(DeviceSpec::rtx2080());
        let points = tune_block_size(&gpu, &ck, 512, 512, &DEFAULT_CANDIDATES);
        assert!(points.iter().all(|p| p.variant == Variant::Naive));
        assert!(points.iter().all(|p| (p.gain - 1.0).abs() < 1e-12));
    }
}
