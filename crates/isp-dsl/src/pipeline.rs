//! Multi-kernel pipelines (Sobel's 3 kernels, the Night filter's 5).
//!
//! A pipeline is a small DAG: each stage reads either the pipeline source or
//! earlier stage outputs, all images sharing one size. Per-stage variants
//! are chosen by a [`Policy`]; timings accumulate across stage launches
//! (each stage is a separate kernel launch, as in Hipacc).

use crate::compile::{CompiledKernel, Compiler};
use crate::eval::reference_run;
use crate::runner::{geometry_for, plan_for, run_filter_with, ExecMode, ExecStrategy};
use crate::spec::KernelSpec;
use isp_core::bounds::Geometry;
use isp_core::{Plan, Region, Variant};
use isp_image::{BorderSpec, Image};
use isp_sim::{Gpu, PerfCounters, SimError, TraceStats};

/// Where a stage input comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageInput {
    /// The pipeline's source image.
    Source,
    /// The output of an earlier stage (by index).
    Stage(usize),
}

/// One pipeline stage.
#[derive(Debug, Clone)]
pub struct Stage {
    /// The kernel run by this stage.
    pub spec: KernelSpec,
    /// Input bindings, one per `spec.num_inputs`.
    pub inputs: Vec<StageInput>,
    /// Runtime parameter values, one per `spec.user_params`.
    pub user_params: Vec<f32>,
}

impl Stage {
    /// Single-input stage reading the pipeline source.
    pub fn from_source(spec: KernelSpec) -> Self {
        assert_eq!(spec.num_inputs, 1);
        Stage {
            spec,
            inputs: vec![StageInput::Source],
            user_params: vec![],
        }
    }

    /// Single-input stage reading a previous stage.
    pub fn from_stage(spec: KernelSpec, stage: usize) -> Self {
        assert_eq!(spec.num_inputs, 1);
        Stage {
            spec,
            inputs: vec![StageInput::Stage(stage)],
            user_params: vec![],
        }
    }
}

/// Variant selection policy for each stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Always the naive variant.
    Naive,
    /// Always the given ISP granularity (falling back to naive only where
    /// ISP does not exist: point operators / degenerate partitions).
    AlwaysIsp(Variant),
    /// `isp+m`: the given granularity when the Eq. (10) model predicts a
    /// gain, naive otherwise.
    Model(Variant),
}

/// A named multi-kernel pipeline.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Pipeline name for reports.
    pub name: String,
    /// The stages in execution order (inputs must refer backwards).
    pub stages: Vec<Stage>,
}

/// Result of running a pipeline on the simulator.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// Final stage output (`None` in sampled mode).
    pub image: Option<Image<f32>>,
    /// Sum of per-stage launch cycles.
    pub total_cycles: u64,
    /// Merged counters across stages.
    pub counters: PerfCounters,
    /// The variant each stage ran.
    pub stage_variants: Vec<Variant>,
    /// Per-region counters merged across stages, in [`Region::ALL`] order.
    /// A region appears once any stage attributed counters to it; stages
    /// with no attribution (degenerate partitions) contribute nothing, so
    /// the entries merge to [`PipelineRun::counters`] bit-identically only
    /// when every stage reported per-region data.
    pub per_region: Vec<(Region, PerfCounters)>,
    /// Trace-replay reuse per region, merged across stages in
    /// [`Region::ALL`] order. Populated only by exhaustive classified runs
    /// under the replay engine; empty otherwise.
    pub per_region_trace: Vec<(Region, TraceStats)>,
}

impl Pipeline {
    /// Create a pipeline, validating stage input references.
    pub fn new(name: impl Into<String>, stages: Vec<Stage>) -> Self {
        for (i, stage) in stages.iter().enumerate() {
            assert_eq!(
                stage.spec.num_inputs,
                stage.inputs.len(),
                "stage {i} input arity"
            );
            assert_eq!(
                stage.spec.user_params.len(),
                stage.user_params.len(),
                "stage {i} param arity"
            );
            for input in &stage.inputs {
                if let StageInput::Stage(s) = input {
                    assert!(*s < i, "stage {i} reads stage {s} which has not run yet");
                }
            }
        }
        Pipeline {
            name: name.into(),
            stages,
        }
    }

    /// Host-side reference execution (golden pixels).
    pub fn reference(&self, source: &Image<f32>, border: BorderSpec) -> Image<f32> {
        let mut outputs: Vec<Image<f32>> = Vec::with_capacity(self.stages.len());
        for stage in &self.stages {
            let inputs: Vec<&Image<f32>> = stage
                .inputs
                .iter()
                .map(|i| match i {
                    StageInput::Source => source,
                    StageInput::Stage(s) => &outputs[*s],
                })
                .collect();
            outputs.push(reference_run(
                &stage.spec,
                &inputs,
                border,
                &stage.user_params,
            ));
        }
        outputs.pop().expect("pipeline has at least one stage")
    }

    /// Compile every stage under one pattern and granularity.
    pub fn compile(
        &self,
        compiler: &Compiler,
        border: BorderSpec,
        granularity: Variant,
    ) -> Vec<CompiledKernel> {
        self.stages
            .iter()
            .map(|s| compiler.compile(&s.spec, border.pattern, granularity))
            .collect()
    }

    /// Run the pipeline on the simulated GPU. Thin compatibility shim over
    /// [`Pipeline::run_with`] using the uncached Eq. (10) planner and the
    /// default parallel strategy; new code should go through
    /// `isp_exec::Engine`.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        gpu: &Gpu,
        compiled: &[CompiledKernel],
        source: &Image<f32>,
        border: BorderSpec,
        block: (u32, u32),
        policy: Policy,
        mode: ExecMode,
    ) -> Result<PipelineRun, SimError> {
        let refs: Vec<&CompiledKernel> = compiled.iter().collect();
        self.run_with(
            gpu,
            &refs,
            source,
            border,
            block,
            policy,
            mode,
            ExecStrategy::Parallel,
            &mut |gpu, ck, geom| plan_for(gpu, ck, geom),
        )
    }

    /// Run the pipeline with an explicit exhaustive [`ExecStrategy`] and a
    /// caller-supplied planner for [`Policy::Model`] decisions. The planner
    /// hook is what lets `isp_exec::Engine` memoise Eq. (10) plans across
    /// experiment points without this crate depending on the engine.
    #[allow(clippy::too_many_arguments)]
    pub fn run_with(
        &self,
        gpu: &Gpu,
        compiled: &[&CompiledKernel],
        source: &Image<f32>,
        border: BorderSpec,
        block: (u32, u32),
        policy: Policy,
        mode: ExecMode,
        strategy: ExecStrategy,
        planner: &mut dyn FnMut(&Gpu, &CompiledKernel, &Geometry) -> Plan,
    ) -> Result<PipelineRun, SimError> {
        assert_eq!(
            compiled.len(),
            self.stages.len(),
            "one compiled kernel per stage"
        );
        // Exhaustive mode threads real pixels between stages. Sampled mode
        // does not: generated kernels contain no data-dependent control flow
        // (all border handling is `selp`-based), so counters and timing are
        // content-independent and every stage can read the source image.
        let mut host_outputs: Vec<Image<f32>> = Vec::with_capacity(self.stages.len());
        let mut total_cycles = 0u64;
        let mut counters = PerfCounters::new();
        let mut region_counters: [Option<PerfCounters>; 9] = Default::default();
        let mut region_traces: [Option<TraceStats>; 9] = Default::default();
        let mut stage_variants = Vec::with_capacity(self.stages.len());
        let mut last_image = None;

        for (stage, ck) in self.stages.iter().zip(compiled.iter().copied()) {
            let inputs: Vec<&Image<f32>> = stage
                .inputs
                .iter()
                .map(|i| match (i, mode) {
                    (StageInput::Source, _) => source,
                    (StageInput::Stage(_), ExecMode::Sampled) => source,
                    (StageInput::Stage(s), ExecMode::Exhaustive) => &host_outputs[*s],
                })
                .collect();
            let (w, h) = inputs[0].dims();
            let variant = match policy {
                Policy::Naive => Variant::Naive,
                Policy::AlwaysIsp(g) => {
                    let geom = geometry_for(ck, w, h, block);
                    let bounds = isp_core::IndexBounds::new(&geom);
                    if ck.isp.is_some() && bounds.is_valid() {
                        g
                    } else {
                        Variant::Naive
                    }
                }
                Policy::Model(_) => {
                    let geom = geometry_for(ck, w, h, block);
                    planner(gpu, ck, &geom).variant
                }
            };
            let out = run_filter_with(
                gpu,
                ck,
                variant,
                &inputs,
                &stage.user_params,
                border.constant,
                block,
                mode,
                strategy,
            )?;
            total_cycles += out.report.timing.cycles;
            counters.merge(&out.report.counters);
            for (region, rc) in &out.per_region {
                region_counters[region.index()]
                    .get_or_insert_with(PerfCounters::new)
                    .merge(rc);
            }
            for (region, ts) in &out.per_region_trace {
                region_traces[region.index()]
                    .get_or_insert_with(TraceStats::default)
                    .merge(ts);
            }
            stage_variants.push(variant);
            last_image = out.image.clone();
            // Host-side stage output for downstream stages (exhaustive only).
            if mode == ExecMode::Exhaustive {
                host_outputs.push(
                    out.image
                        .expect("exhaustive launches always produce pixels"),
                );
            }
        }
        let per_region: Vec<(Region, PerfCounters)> = Region::ALL
            .into_iter()
            .zip(region_counters)
            .filter_map(|(r, c)| c.map(|c| (r, c)))
            .collect();
        let per_region_trace: Vec<(Region, TraceStats)> = Region::ALL
            .into_iter()
            .zip(region_traces)
            .filter_map(|(r, t)| t.map(|t| (r, t)))
            .collect();
        Ok(PipelineRun {
            image: last_image,
            total_cycles,
            counters,
            stage_variants,
            per_region,
            per_region_trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use isp_image::{ImageGenerator, Mask};
    use isp_sim::DeviceSpec;

    /// A miniature Sobel: dx, dy, magnitude.
    fn sobel_pipeline() -> Pipeline {
        let dx = KernelSpec::convolution("sobel_dx", &Mask::sobel_x());
        let dy = KernelSpec::convolution("sobel_dy", &Mask::sobel_y());
        let mag = KernelSpec::new(
            "sobel_mag",
            2,
            vec![],
            (Expr::input_at(0, 0, 0) * Expr::input_at(0, 0, 0)
                + Expr::input_at(1, 0, 0) * Expr::input_at(1, 0, 0))
            .sqrt(),
        );
        Pipeline::new(
            "sobel",
            vec![
                Stage::from_source(dx),
                Stage::from_source(dy),
                Stage {
                    spec: mag,
                    inputs: vec![StageInput::Stage(0), StageInput::Stage(1)],
                    user_params: vec![],
                },
            ],
        )
    }

    #[test]
    fn pipeline_matches_reference_for_all_policies() {
        let p = sobel_pipeline();
        let img = ImageGenerator::new(8).shapes::<f32>(64, 48);
        let gpu = Gpu::new(DeviceSpec::gtx680());
        let border = BorderSpec::clamp();
        let golden = p.reference(&img, border);
        let compiled = p.compile(&Compiler::new(), border, Variant::IspBlock);
        for policy in [
            Policy::Naive,
            Policy::AlwaysIsp(Variant::IspBlock),
            Policy::Model(Variant::IspBlock),
        ] {
            let run = p
                .run(
                    &gpu,
                    &compiled,
                    &img,
                    border,
                    (32, 4),
                    policy,
                    ExecMode::Exhaustive,
                )
                .unwrap();
            let d = run.image.unwrap().max_abs_diff(&golden).unwrap();
            assert!(d < 1e-4, "{policy:?}: diff {d}");
            assert_eq!(run.stage_variants.len(), 3);
            // The magnitude stage is a point op: always naive.
            assert_eq!(run.stage_variants[2], Variant::Naive);
            assert!(run.total_cycles > 0);
        }
    }

    #[test]
    fn sampled_pipeline_accumulates_counters() {
        let p = sobel_pipeline();
        let img = ImageGenerator::new(8).uniform_noise::<f32>(128, 128);
        let gpu = Gpu::new(DeviceSpec::rtx2080());
        let border = BorderSpec::mirror();
        let compiled = p.compile(&Compiler::new(), border, Variant::IspBlock);
        let run = p
            .run(
                &gpu,
                &compiled,
                &img,
                border,
                (32, 4),
                Policy::AlwaysIsp(Variant::IspBlock),
                ExecMode::Sampled,
            )
            .unwrap();
        assert!(run.image.is_none());
        assert!(run.counters.warp_instructions > 0);
        assert_eq!(run.counters.blocks, 3 * 128); // 3 stages x (4x32)-block grid
    }

    #[test]
    #[should_panic(expected = "has not run yet")]
    fn forward_references_rejected() {
        let spec = KernelSpec::new("id", 1, vec![], Expr::at(0, 0));
        let _ = Pipeline::new(
            "bad",
            vec![Stage {
                spec,
                inputs: vec![StageInput::Stage(0)],
                user_params: vec![],
            }],
        );
    }
}
