//! Host-side launch glue: build buffers and parameters from a compiled
//! variant, pick grids, classify blocks for sampled runs, and (for the
//! `isp+m` policy) consult the analytic model.

use crate::compile::{CompiledKernel, CompiledVariant, ParamKind};
use isp_core::bounds::Geometry;
use isp_core::{
    region_of_block, warp_refinement_applicable, IndexBounds, Plan, Planner, PredictionInputs,
    Region, Variant, WarpBounds,
};
use isp_image::Image;
use isp_sim::launch::{PathTable, SimMode};
use isp_sim::{
    occupancy, DeviceBuffer, Gpu, LaunchConfig, LaunchReport, ParamValue, PerfCounters, SimError,
    TexAddressMode, TexDesc, TraceStats,
};

pub use isp_sim::ExecStrategy;

/// How a filter run should execute on the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Interpret every block; returns pixels (correctness runs).
    Exhaustive,
    /// Region-sampled performance estimation; no pixels returned.
    Sampled,
}

/// Result of running one filter variant.
#[derive(Debug, Clone)]
pub struct FilterOutput {
    /// The output image (`None` in sampled mode).
    pub image: Option<Image<f32>>,
    /// The simulator's launch report.
    pub report: LaunchReport,
    /// The variant that actually ran.
    pub variant: Variant,
    /// Counters attributed to each of the nine ISP regions (sorted in
    /// [`Region::ALL`] order). Exact per-block attribution in exhaustive
    /// mode, population-scaled representative counters in sampled mode;
    /// empty when the partition is degenerate. The entries merge
    /// bit-identically to `report.counters`.
    pub per_region: Vec<(Region, PerfCounters)>,
    /// Trace-replay reuse attributed to each ISP region (sorted in
    /// [`Region::ALL`] order). Populated only by exhaustive classified runs
    /// under the replay engine; empty otherwise.
    pub per_region_trace: Vec<(Region, TraceStats)>,
}

/// Derive the partition geometry for a compiled kernel on a given image and
/// block size.
pub fn geometry_for(
    ck: &CompiledKernel,
    width: usize,
    height: usize,
    block: (u32, u32),
) -> Geometry {
    let (m, n) = ck.spec.window();
    Geometry {
        sx: width,
        sy: height,
        m,
        n,
        tx: block.0,
        ty: block.1,
    }
}

/// Build the scalar parameter vector for a variant from its layout.
fn build_params(
    cv: &CompiledVariant,
    geom: &Geometry,
    bounds: &IndexBounds,
    warp_bounds: Option<&WarpBounds>,
    border_const: f32,
    user_params: &[f32],
) -> Vec<ParamValue> {
    cv.params
        .iter()
        .map(|kind| match kind {
            ParamKind::Width => ParamValue::I32(geom.sx as i32),
            ParamKind::Height => ParamValue::I32(geom.sy as i32),
            ParamKind::Stride => ParamValue::I32(geom.sx as i32),
            ParamKind::BhL => ParamValue::I32(bounds.bh_l as i32),
            ParamKind::BhR => ParamValue::I32(bounds.bh_r as i32),
            ParamKind::BhT => ParamValue::I32(bounds.bh_t as i32),
            ParamKind::BhB => ParamValue::I32(bounds.bh_b as i32),
            ParamKind::WL => ParamValue::I32(warp_bounds.expect("warp bounds").w_l as i32),
            ParamKind::WR => ParamValue::I32(warp_bounds.expect("warp bounds").w_r as i32),
            ParamKind::BorderConst => ParamValue::F32(border_const),
            ParamKind::User(i) => ParamValue::F32(user_params[*i]),
        })
        .collect()
}

/// Check the generated kernels' Mirror/Repeat precondition (`radius <
/// image size`): the lowering emits a single reflection (Mirror) and two
/// unrolled wraps (Repeat) per side, which match the *total* reference
/// resolver only on that domain. The reference (`isp_image::resolve_1d`)
/// itself has no such restriction.
fn check_preconditions(ck: &CompiledKernel, geom: &Geometry) -> Result<(), SimError> {
    let (rx, ry) = (geom.rx(), geom.ry());
    if rx >= geom.sx || ry >= geom.sy {
        return Err(SimError::BadLaunch(format!(
            "kernel '{}': stencil radius ({rx},{ry}) must be smaller than the image ({},{})",
            ck.spec.name, geom.sx, geom.sy
        )));
    }
    Ok(())
}

/// Run one compiled variant of a filter over `inputs` with the default
/// (parallel) exhaustive strategy. Thin compatibility shim over
/// [`run_filter_with`]; new code should go through `isp_exec::Engine`.
#[allow(clippy::too_many_arguments)]
pub fn run_filter(
    gpu: &Gpu,
    ck: &CompiledKernel,
    variant: Variant,
    inputs: &[&Image<f32>],
    user_params: &[f32],
    border_const: f32,
    block: (u32, u32),
    mode: ExecMode,
) -> Result<FilterOutput, SimError> {
    run_filter_with(
        gpu,
        ck,
        variant,
        inputs,
        user_params,
        border_const,
        block,
        mode,
        ExecStrategy::Parallel,
    )
}

/// Run one compiled variant of a filter over `inputs`.
///
/// All inputs must share dimensions; the output matches them. `mode`
/// selects exhaustive interpretation (pixels + counters) or region-sampled
/// estimation (counters + timing only); `strategy` picks the exhaustive
/// block-worker scheduling (parallel and serial are bit-identical).
#[allow(clippy::too_many_arguments)]
pub fn run_filter_with(
    gpu: &Gpu,
    ck: &CompiledKernel,
    variant: Variant,
    inputs: &[&Image<f32>],
    user_params: &[f32],
    border_const: f32,
    block: (u32, u32),
    mode: ExecMode,
    strategy: ExecStrategy,
) -> Result<FilterOutput, SimError> {
    let cv = ck
        .variant(variant)
        .ok_or_else(|| SimError::BadLaunch(format!("variant {variant} was not compiled")))?;
    assert_eq!(
        inputs.len(),
        ck.spec.num_inputs,
        "input image count mismatch"
    );
    if user_params.len() != ck.spec.user_params.len() {
        return Err(SimError::BadLaunch(format!(
            "kernel '{}' takes {} user parameter(s) ({}), got {}",
            ck.spec.name,
            ck.spec.user_params.len(),
            ck.spec.user_params.join(", "),
            user_params.len()
        )));
    }
    let (w, h) = inputs[0].dims();
    for img in inputs {
        assert_eq!(img.dims(), (w, h), "inputs must share dimensions");
    }

    let geom = geometry_for(ck, w, h, block);
    check_preconditions(ck, &geom)?;
    let bounds = IndexBounds::new(&geom);
    if variant.is_isp() && !bounds.is_valid() {
        return Err(SimError::BadLaunch(format!(
            "kernel '{}': degenerate partition for {}x{} with {}x{} blocks — use the naive variant",
            ck.spec.name, w, h, block.0, block.1
        )));
    }
    if variant == Variant::Texture && ck.texture.is_none() {
        return Err(SimError::BadLaunch(format!(
            "kernel '{}': no texture variant was compiled",
            ck.spec.name
        )));
    }
    if variant == Variant::IspWarp && !warp_refinement_applicable(&bounds, block.0) {
        return Err(SimError::BadLaunch(format!(
            "kernel '{}': warp-grained ISP needs warp-aligned blocks wider than one warp",
            ck.spec.name
        )));
    }
    let warp_bounds = (variant == Variant::IspWarp)
        .then(|| WarpBounds::new(geom.sx, geom.rx(), geom.tx, geom.grid().0));

    let params = build_params(
        cv,
        &geom,
        &bounds,
        warp_bounds.as_ref(),
        border_const,
        user_params,
    );
    // Texture variants bind every input as a 2D texture with the address
    // mode matching the requested border pattern (exactly the CUDA
    // cudaTextureAddressMode mapping).
    let tex_mode = (variant == Variant::Texture).then_some(match ck.pattern {
        isp_image::BorderPattern::Clamp => TexAddressMode::Clamp,
        isp_image::BorderPattern::Repeat => TexAddressMode::Wrap,
        isp_image::BorderPattern::Mirror => TexAddressMode::Mirror,
        isp_image::BorderPattern::Constant => TexAddressMode::Border(border_const),
    });
    let mut buffers: Vec<DeviceBuffer> = inputs
        .iter()
        .map(|img| {
            let buf = DeviceBuffer::from_f32(&img.to_packed_vec());
            match tex_mode {
                Some(mode) => buf.with_texture(TexDesc {
                    width: w,
                    height: h,
                    mode,
                }),
                None => buf,
            }
        })
        .collect();
    buffers.push(DeviceBuffer::zeroed(w * h));

    let cfg = LaunchConfig::for_image(w, h, block);
    let classifier = move |bx: u32, by: u32| region_of_block(bx, by, &bounds).index() as u32;
    let path_table = cv.region_footprints.map(|fp| PathTable {
        path_of_class: (0..9).collect(),
        footprint_of_class: fp.to_vec(),
    });

    // Region attribution needs a valid partition; on degenerate geometries
    // (possible for naive runs, which don't require one) fall back to the
    // unclassified exhaustive mode and report no per-region counters.
    let report = match (mode, bounds.is_valid()) {
        (ExecMode::Exhaustive, true) => gpu.launch_with(
            &cv.kernel,
            cfg,
            &params,
            &mut buffers,
            SimMode::ExhaustiveClassified {
                classifier: &classifier,
            },
            strategy,
        )?,
        (ExecMode::Exhaustive, false) => gpu.launch_with(
            &cv.kernel,
            cfg,
            &params,
            &mut buffers,
            SimMode::Exhaustive,
            strategy,
        )?,
        (ExecMode::Sampled, _) => gpu.launch(
            &cv.kernel,
            cfg,
            &params,
            &mut buffers,
            SimMode::RegionSampled {
                classifier: &classifier,
                paths: path_table.as_ref(),
            },
        )?,
    };
    let per_region: Vec<(Region, PerfCounters)> = report
        .per_class
        .iter()
        .map(|(c, counters)| (Region::ALL[*c as usize], counters.clone()))
        .collect();
    let per_region_trace: Vec<(Region, TraceStats)> = report
        .per_class_trace
        .iter()
        .map(|&(c, stats)| (Region::ALL[c as usize], stats))
        .collect();

    let image = match mode {
        ExecMode::Exhaustive => {
            let out = buffers.pop().expect("output buffer");
            Some(
                Image::from_vec(w, h, out.to_f32())
                    .expect("output buffer has width*height elements"),
            )
        }
        ExecMode::Sampled => None,
    };
    Ok(FilterOutput {
        image,
        report,
        variant,
        per_region,
        per_region_trace,
    })
}

/// Run a standalone [`CompiledVariant`] (currently the tiled variant) whose
/// parameters are limited to geometry, the border constant, and user
/// scalars. The block size must match the one the variant was compiled for.
#[allow(clippy::too_many_arguments)]
pub fn run_compiled(
    gpu: &Gpu,
    cv: &crate::compile::CompiledVariant,
    inputs: &[&Image<f32>],
    user_params: &[f32],
    border_const: f32,
    block: (u32, u32),
    mode: ExecMode,
) -> Result<FilterOutput, SimError> {
    let (w, h) = inputs[0].dims();
    for img in inputs {
        assert_eq!(img.dims(), (w, h), "inputs must share dimensions");
    }
    let params: Vec<ParamValue> = cv
        .params
        .iter()
        .map(|kind| match kind {
            ParamKind::Width => ParamValue::I32(w as i32),
            ParamKind::Height => ParamValue::I32(h as i32),
            ParamKind::Stride => ParamValue::I32(w as i32),
            ParamKind::BorderConst => ParamValue::F32(border_const),
            ParamKind::User(i) => ParamValue::F32(user_params[*i]),
            other => unreachable!("standalone variants have no {other:?} parameter"),
        })
        .collect();
    let mut buffers: Vec<DeviceBuffer> = inputs
        .iter()
        .map(|img| DeviceBuffer::from_f32(&img.to_packed_vec()))
        .collect();
    buffers.push(DeviceBuffer::zeroed(w * h));
    let cfg = LaunchConfig::for_image(w, h, block);
    let report = match mode {
        ExecMode::Exhaustive => {
            gpu.launch(&cv.kernel, cfg, &params, &mut buffers, SimMode::Exhaustive)?
        }
        ExecMode::Sampled => gpu.launch(
            &cv.kernel,
            cfg,
            &params,
            &mut buffers,
            SimMode::RegionSampled {
                classifier: &|_, _| 0,
                paths: None,
            },
        )?,
    };
    let image = match mode {
        ExecMode::Exhaustive => {
            let out = buffers.pop().expect("output buffer");
            Some(Image::from_vec(w, h, out.to_f32()).expect("sized output"))
        }
        ExecMode::Sampled => None,
    };
    Ok(FilterOutput {
        image,
        report,
        variant: cv.variant,
        // Standalone variants carry no region partition.
        per_region: Vec::new(),
        per_region_trace: Vec::new(),
    })
}

/// The `isp+m` decision for a compiled kernel on a given geometry: combine
/// the IR-statistics `R_reduced` with the two theoretical occupancies into
/// the Eq. (10) gain and pick a variant.
pub fn plan_for(gpu: &Gpu, ck: &CompiledKernel, geom: &Geometry) -> Plan {
    let Some(isp) = ck.isp.as_ref() else {
        return Plan {
            variant: Variant::Naive,
            predicted_gain: 1.0,
        };
    };
    let bounds = IndexBounds::new(geom);
    let threads = geom.tx * geom.ty;
    let model = ck
        .ir_stats_model_for(gpu.device())
        .expect("isp variant implies stats");
    let occ_naive = occupancy(gpu.device(), threads, ck.naive.regs.data_regs).occupancy;
    let occ_isp = occupancy(gpu.device(), threads, isp.regs.data_regs).occupancy;
    let inputs = PredictionInputs {
        r_reduced: model.r_reduced(&bounds),
        occ_naive,
        occ_isp,
    };
    Planner.choose(isp.variant, &bounds, &inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::Compiler;
    use crate::eval::reference_run;
    use crate::spec::KernelSpec;
    use isp_image::{BorderPattern, BorderSpec, ImageGenerator, Mask};
    use isp_sim::DeviceSpec;

    fn gpu() -> Gpu {
        Gpu::new(DeviceSpec::gtx680())
    }

    fn gauss3() -> KernelSpec {
        KernelSpec::convolution("gauss3", &Mask::gaussian(3, 0.85).unwrap())
    }

    #[test]
    fn all_variants_match_reference_for_all_patterns() {
        // THE correctness theorem of the repo: naive, ISP-block, and
        // ISP-warp produce exactly the reference pixels, all four patterns.
        let spec = gauss3();
        let img = ImageGenerator::new(21).uniform_noise::<f32>(384, 64);
        let gpu = gpu();
        for pattern in BorderPattern::ALL {
            let border = BorderSpec {
                pattern,
                constant: 0.25,
            };
            let golden = reference_run(&spec, &[&img], border, &[]);
            for (granularity, block) in [
                (Variant::IspBlock, (32u32, 4u32)),
                (Variant::IspWarp, (128, 1)),
            ] {
                let ck = Compiler::new().compile(&spec, pattern, granularity);
                for variant in [Variant::Naive, granularity] {
                    let out = run_filter(
                        &gpu,
                        &ck,
                        variant,
                        &[&img],
                        &[],
                        0.25,
                        block,
                        ExecMode::Exhaustive,
                    )
                    .unwrap_or_else(|e| panic!("{pattern}/{variant}: {e}"));
                    let d = out.image.unwrap().max_abs_diff(&golden).unwrap();
                    assert!(d < 1e-4, "{pattern}/{variant}: max diff {d}");
                }
            }
        }
    }

    #[test]
    fn sampled_counters_match_exhaustive() {
        let spec = gauss3();
        let gpu = gpu();
        let img = ImageGenerator::new(5).uniform_noise::<f32>(128, 64);
        let ck = Compiler::new().compile(&spec, BorderPattern::Clamp, Variant::IspBlock);
        for variant in [Variant::Naive, Variant::IspBlock] {
            let ex = run_filter(
                &gpu,
                &ck,
                variant,
                &[&img],
                &[],
                0.0,
                (32, 4),
                ExecMode::Exhaustive,
            )
            .unwrap();
            let sa = run_filter(
                &gpu,
                &ck,
                variant,
                &[&img],
                &[],
                0.0,
                (32, 4),
                ExecMode::Sampled,
            )
            .unwrap();
            assert_eq!(
                ex.report.counters.warp_instructions, sa.report.counters.warp_instructions,
                "{variant}: sampled warp-instructions must be exact"
            );
            assert_eq!(
                ex.report.counters.histogram, sa.report.counters.histogram,
                "{variant}"
            );
            assert!(sa.image.is_none());
        }
    }

    #[test]
    fn isp_executes_fewer_instructions_on_large_images() {
        let spec = gauss3();
        let gpu = gpu();
        let img = ImageGenerator::new(5).uniform_noise::<f32>(512, 512);
        let ck = Compiler::new().compile(&spec, BorderPattern::Repeat, Variant::IspBlock);
        let naive = run_filter(
            &gpu,
            &ck,
            Variant::Naive,
            &[&img],
            &[],
            0.0,
            (32, 4),
            ExecMode::Sampled,
        )
        .unwrap();
        let isp = run_filter(
            &gpu,
            &ck,
            Variant::IspBlock,
            &[&img],
            &[],
            0.0,
            (32, 4),
            ExecMode::Sampled,
        )
        .unwrap();
        assert!(
            isp.report.counters.warp_instructions < naive.report.counters.warp_instructions,
            "isp {} vs naive {}",
            isp.report.counters.warp_instructions,
            naive.report.counters.warp_instructions
        );
    }

    #[test]
    fn degenerate_partition_is_rejected_for_isp() {
        let big = KernelSpec::convolution("big", &Mask::box_filter(13).unwrap());
        let ck = Compiler::new().compile(&big, BorderPattern::Clamp, Variant::IspBlock);
        let img = ImageGenerator::new(1).uniform_noise::<f32>(32, 64);
        let err = run_filter(
            &gpu(),
            &ck,
            Variant::IspBlock,
            &[&img],
            &[],
            0.0,
            (32, 4),
            ExecMode::Exhaustive,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::BadLaunch(_)));
        // Naive still works on the same geometry.
        let ok = run_filter(
            &gpu(),
            &ck,
            Variant::Naive,
            &[&img],
            &[],
            0.0,
            (32, 4),
            ExecMode::Exhaustive,
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn plan_for_picks_isp_on_large_cheap_kernels() {
        let spec = gauss3();
        let gpu = gpu();
        let ck = Compiler::new().compile(&spec, BorderPattern::Repeat, Variant::IspBlock);
        let geom = geometry_for(&ck, 2048, 2048, (32, 4));
        let plan = plan_for(&gpu, &ck, &geom);
        assert_eq!(
            plan.variant,
            Variant::IspBlock,
            "gain {}",
            plan.predicted_gain
        );
    }

    #[test]
    fn plan_for_point_op_is_naive() {
        let spec = KernelSpec::new("id", 1, vec![], crate::expr::Expr::at(0, 0));
        let ck = Compiler::new().compile(&spec, BorderPattern::Clamp, Variant::IspBlock);
        let geom = geometry_for(&ck, 512, 512, (32, 4));
        assert_eq!(plan_for(&gpu(), &ck, &geom).variant, Variant::Naive);
    }

    #[test]
    fn oversized_radius_rejected() {
        let spec = KernelSpec::convolution("huge", &Mask::box_filter(65).unwrap());
        let ck = Compiler::new().compile(&spec, BorderPattern::Repeat, Variant::IspBlock);
        let img = ImageGenerator::new(1).uniform_noise::<f32>(24, 24);
        let err = run_filter(
            &gpu(),
            &ck,
            Variant::Naive,
            &[&img],
            &[],
            0.0,
            (8, 8),
            ExecMode::Exhaustive,
        )
        .unwrap_err();
        assert!(err.to_string().contains("radius"));
    }
}

#[cfg(test)]
mod param_validation_tests {
    use super::*;
    use crate::Compiler;
    use isp_image::{BorderPattern, ImageGenerator};
    use isp_sim::DeviceSpec;

    #[test]
    fn missing_user_params_is_a_friendly_error() {
        let spec = crate::KernelSpec::new(
            "scaled",
            1,
            vec!["gain".into()],
            crate::Expr::at(0, 0) * crate::Expr::param(0),
        );
        let ck = Compiler::new().compile(&spec, BorderPattern::Clamp, Variant::IspBlock);
        let gpu = Gpu::new(DeviceSpec::gtx680());
        let img = ImageGenerator::new(1).uniform_noise::<f32>(64, 32);
        let err = run_filter(
            &gpu,
            &ck,
            Variant::Naive,
            &[&img],
            &[], // missing "gain"
            0.0,
            (32, 4),
            ExecMode::Sampled,
        )
        .unwrap_err();
        assert!(err.to_string().contains("gain"), "{err}");
    }
}
