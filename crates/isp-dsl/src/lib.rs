//! # isp-dsl
//!
//! An embedded image-processing DSL plus a mini source-to-source compiler —
//! the role Hipacc plays in the paper (§V). A user writes the filter once as
//! an expression over bordered pixel accesses ([`expr`], [`spec`]); the
//! compiler inserts the pattern-specific border checks, specialises the nine
//! ISP regions, emits the region-switching cascade of Listing 3 (block-
//! grained) or Listing 5 (warp-grained), optimises the IR (folding, CSE,
//! DCE — the "NVCC" step), estimates registers, and hands simulated-GPU-
//! ready kernels back ([`compile`]).
//!
//! The workflow mirrors the paper's Figure 5: *Analyze* corresponds to
//! [`spec::KernelSpec`] introspection + [`isp_core::bounds`]; *Rewrite*
//! corresponds to [`lower`] + [`compile`]; the pretty-printed "emitted CUDA"
//! view is [`cuda`].
//!
//! End to end:
//!
//! ```
//! use isp_core::Variant;
//! use isp_dsl::runner::{run_filter, ExecMode};
//! use isp_dsl::{Compiler, KernelSpec};
//! use isp_image::{BorderPattern, ImageGenerator, Mask};
//! use isp_sim::{DeviceSpec, Gpu};
//!
//! let image = ImageGenerator::new(1).natural::<f32>(96, 64);
//! let spec = KernelSpec::convolution("g3", &Mask::gaussian(3, 0.8).unwrap());
//! let compiled = Compiler::new().compile(&spec, BorderPattern::Repeat, Variant::IspBlock);
//! let gpu = Gpu::new(DeviceSpec::gtx680());
//! let out = run_filter(&gpu, &compiled, Variant::IspBlock,
//!                      &[&image], &[], 0.0, (32, 4), ExecMode::Exhaustive)?;
//! assert_eq!(out.image.unwrap().dims(), image.dims());
//! # Ok::<(), isp_sim::SimError>(())
//! ```

pub mod compile;
pub mod cuda;
pub mod eval;
pub mod expr;
pub mod lower;
pub mod pipeline;
pub mod runner;
pub mod spec;
pub mod tune;

pub use compile::{CompiledKernel, CompiledVariant, Compiler, ParamKind};
pub use expr::Expr;
pub use pipeline::{Pipeline, Stage};
pub use runner::{run_filter, FilterOutput};
pub use spec::KernelSpec;
pub use tune::{tune_block_size, TunePoint};
