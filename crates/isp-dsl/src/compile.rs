//! The compiler driver: lower each variant, run the optimisation pipeline
//! (the "NVCC" step), estimate registers, and collect the per-region
//! statistics the analytic model and Table I need.

use crate::lower::{lower_isp, lower_naive, lower_texture, lower_tiled, Lowered, RegionPaths};
use crate::spec::KernelSpec;
use isp_core::{IrStatsModel, Region, Variant};
use isp_image::BorderPattern;
use isp_ir::kernel::Kernel;
use isp_ir::opt::{optimize_with_stats, OptConfig, OptStats};
use isp_ir::{regalloc, InstrHistogram, RegisterUsage};

pub use crate::lower::ParamKind;

/// One compiled kernel variant with its analysis artefacts.
#[derive(Debug, Clone)]
pub struct CompiledVariant {
    /// Which variant this is.
    pub variant: Variant,
    /// The optimised kernel, ready for the simulator.
    pub kernel: Kernel,
    /// Scalar parameter layout for launches.
    pub params: Vec<ParamKind>,
    /// Estimated register usage (Table II input).
    pub regs: RegisterUsage,
    /// Whole-kernel static instruction histogram.
    pub static_histogram: InstrHistogram,
    /// Per-region static histograms along each region's execution path
    /// (Table I's columns; ISP variants only).
    pub region_histograms: Option<Vec<(Region, InstrHistogram)>>,
    /// Per-region static footprint in instructions (scheduler i-cache
    /// model), indexed by [`Region::index`]; ISP variants only.
    pub region_footprints: Option<[u32; 9]>,
    /// Per-pass optimiser statistics for this variant (iterations to fixed
    /// point, instructions removed per pass).
    pub opt_stats: OptStats,
}

impl CompiledVariant {
    fn from_lowered(variant: Variant, lowered: Lowered, opt: OptConfig) -> CompiledVariant {
        let (kernel, opt_stats) = optimize_with_stats(&lowered.kernel, opt);
        // CFG simplification renumbers (and may delete) blocks, so the
        // region paths recorded against the unoptimised kernel are
        // re-resolved by label: labels are validated unique, and a label
        // that vanished belonged to an empty forwarding block whose only
        // contribution (one branch) was threaded away.
        let region_paths: Option<RegionPaths> = lowered.region_paths.as_ref().map(|paths| {
            paths
                .iter()
                .map(|(r, path)| {
                    let remapped = path
                        .iter()
                        .filter_map(|id| kernel.block_by_label(&lowered.kernel.block(*id).label))
                        .collect();
                    (*r, remapped)
                })
                .collect()
        });
        // Pressure-aware list scheduling (the "ptxas" step): without it,
        // tree-ordered lowering grossly overstates register usage for
        // kernels like the bilateral filter.
        let kernel = isp_ir::sched::schedule_min_pressure(&kernel);
        isp_ir::validate::assert_valid(&kernel);
        let regs = regalloc::estimate(&kernel);
        let static_histogram = InstrHistogram::of_kernel(&kernel);
        let (region_histograms, region_footprints) = match &region_paths {
            Some(paths) => {
                let hists: Vec<(Region, InstrHistogram)> = paths
                    .iter()
                    .map(|(r, path)| (*r, InstrHistogram::of_blocks(&kernel, path.iter().copied())))
                    .collect();
                let mut fp = [0u32; 9];
                for (r, h) in &hists {
                    fp[r.index()] = h.total() as u32;
                }
                (Some(hists), Some(fp))
            }
            None => (None, None),
        };
        CompiledVariant {
            variant,
            kernel,
            params: lowered.params,
            regs,
            static_histogram,
            region_histograms,
            region_footprints,
            opt_stats,
        }
    }

    /// Static instruction count on the path one thread executes. For the
    /// naive variant that is the whole (linear) kernel; for ISP variants use
    /// [`CompiledVariant::region_histograms`].
    pub fn per_thread_instructions(&self) -> u64 {
        self.static_histogram.total()
    }
}

/// A fully compiled filter: the naive baseline plus (for non-point
/// operators) the requested ISP variant.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// The source specification.
    pub spec: KernelSpec,
    /// Border handling pattern compiled in.
    pub pattern: BorderPattern,
    /// The naive baseline.
    pub naive: CompiledVariant,
    /// The ISP variant (`None` for point operators, which have no border).
    pub isp: Option<CompiledVariant>,
    /// The hardware texture variant (`None` for point operators and
    /// multi-input kernels whose extra inputs cannot all be texture-bound).
    pub texture: Option<CompiledVariant>,
}

impl CompiledKernel {
    /// The variant matching `v`, if compiled.
    pub fn variant(&self, v: Variant) -> Option<&CompiledVariant> {
        match v {
            Variant::Naive => Some(&self.naive),
            Variant::Texture => self.texture.as_ref(),
            _ => self.isp.as_ref().filter(|cv| cv.variant == v),
        }
    }

    /// Build the IR-statistics instruction model (the accurate `R_reduced`
    /// input): naive per-thread count vs per-region path counts, with each
    /// instruction counted once (the paper's literal PTX counting).
    pub fn ir_stats_model(&self) -> Option<IrStatsModel> {
        let isp = self.isp.as_ref()?;
        let hists = isp.region_histograms.as_ref()?;
        let mut region_per_thread = [0.0; 9];
        for (r, h) in hists {
            region_per_thread[r.index()] = h.total() as f64;
        }
        Some(IrStatsModel {
            naive_per_thread: self.naive.per_thread_instructions() as f64,
            region_per_thread,
        })
    }

    /// Device-weighted variant of [`CompiledKernel::ir_stats_model`]: counts
    /// are weighted by per-category issue cost plus expected memory
    /// transaction cost, which makes `R_reduced` track achievable cycle
    /// reductions rather than raw instruction reductions. This is what the
    /// planner uses.
    pub fn ir_stats_model_for(&self, device: &isp_sim::DeviceSpec) -> Option<IrStatsModel> {
        let isp = self.isp.as_ref()?;
        let hists = isp.region_histograms.as_ref()?;
        let mut region_per_thread = [0.0; 9];
        for (r, h) in hists {
            region_per_thread[r.index()] = device.weighted_cost(h);
        }
        Some(IrStatsModel {
            naive_per_thread: device.weighted_cost(&self.naive.static_histogram),
            region_per_thread,
        })
    }
}

/// The compiler: configuration + entry point.
#[derive(Debug, Clone)]
pub struct Compiler {
    /// IR optimisation configuration (the `ablation_cse` bench flips this).
    pub opt: OptConfig,
}

impl Default for Compiler {
    fn default() -> Self {
        Compiler {
            opt: OptConfig::pipeline(),
        }
    }
}

impl Compiler {
    /// A fully-optimising compiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compiler with explicit optimisation settings.
    pub fn with_opt(opt: OptConfig) -> Self {
        Compiler { opt }
    }

    /// Compile `spec` under `pattern`, producing the naive baseline and —
    /// for stencil kernels — the `granularity` ISP variant (block- or
    /// warp-grained).
    pub fn compile(
        &self,
        spec: &KernelSpec,
        pattern: BorderPattern,
        granularity: Variant,
    ) -> CompiledKernel {
        assert!(granularity.is_isp(), "granularity selects the ISP flavour");
        let naive =
            CompiledVariant::from_lowered(Variant::Naive, lower_naive(spec, pattern), self.opt);
        let isp = if spec.is_point_op() {
            None
        } else {
            Some(CompiledVariant::from_lowered(
                granularity,
                lower_isp(spec, pattern, granularity),
                self.opt,
            ))
        };
        let texture = if spec.is_point_op() {
            None
        } else {
            Some(CompiledVariant::from_lowered(
                Variant::Texture,
                lower_texture(spec, pattern),
                self.opt,
            ))
        };
        CompiledKernel {
            spec: spec.clone(),
            pattern,
            naive,
            isp,
            texture,
        }
    }
}

impl Compiler {
    /// Compile the shared-memory **tiled** variant for a fixed block size
    /// (the tile geometry is baked into the kernel, as in real tiled CUDA
    /// code). Returned standalone because it is block-size specific, unlike
    /// the variants in [`CompiledKernel`].
    pub fn compile_tiled(
        &self,
        spec: &KernelSpec,
        pattern: BorderPattern,
        block: (u32, u32),
    ) -> CompiledVariant {
        CompiledVariant::from_lowered(Variant::Tiled, lower_tiled(spec, pattern, block), self.opt)
    }
}

/// Convenience re-export of the region paths type.
pub type CompiledRegionPaths = RegionPaths;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use isp_ir::InstrCategory;

    fn gauss3() -> KernelSpec {
        KernelSpec::convolution("gauss3", &isp_image::Mask::gaussian(3, 0.85).unwrap())
    }

    #[test]
    fn compiles_both_variants() {
        let ck = Compiler::new().compile(&gauss3(), BorderPattern::Clamp, Variant::IspBlock);
        assert_eq!(ck.naive.variant, Variant::Naive);
        let isp = ck.isp.as_ref().unwrap();
        assert_eq!(isp.variant, Variant::IspBlock);
        assert!(ck.variant(Variant::Naive).is_some());
        assert!(ck.variant(Variant::IspBlock).is_some());
        assert!(ck.variant(Variant::IspWarp).is_none());
    }

    #[test]
    fn isp_uses_more_registers_than_naive() {
        // The paper's Table II direction: region switching adds registers.
        for pattern in BorderPattern::ALL {
            let ck = Compiler::new().compile(&gauss3(), pattern, Variant::IspBlock);
            let isp = ck.isp.as_ref().unwrap();
            assert!(
                isp.regs.data_regs > ck.naive.regs.data_regs,
                "{pattern}: isp {:?} <= naive {:?}",
                isp.regs,
                ck.naive.regs
            );
        }
    }

    #[test]
    fn body_region_path_is_cheaper_than_naive() {
        let ck = Compiler::new().compile(&gauss3(), BorderPattern::Clamp, Variant::IspBlock);
        let isp = ck.isp.as_ref().unwrap();
        let hists = isp.region_histograms.as_ref().unwrap();
        let body = &hists.iter().find(|(r, _)| *r == Region::Body).unwrap().1;
        // Body path (incl. full switch cascade) still beats naive's checked
        // path in arithmetic instructions.
        assert!(
            body.arithmetic_total() < ck.naive.static_histogram.arithmetic_total(),
            "body {:?} vs naive {:?}",
            body.arithmetic_total(),
            ck.naive.static_histogram.arithmetic_total()
        );
    }

    #[test]
    fn cse_reduces_naive_instruction_count() {
        // The paper's §IV-A observation: NVCC CSE shrinks the naive cost.
        let spec = gauss3();
        let full = Compiler::new().compile(&spec, BorderPattern::Clamp, Variant::IspBlock);
        let nocse = Compiler::with_opt(isp_ir::opt::OptConfig::no_cse()).compile(
            &spec,
            BorderPattern::Clamp,
            Variant::IspBlock,
        );
        assert!(
            full.naive.static_histogram.total() < nocse.naive.static_histogram.total(),
            "CSE must shrink the naive kernel"
        );
    }

    #[test]
    fn ir_stats_model_prefers_isp_for_cheap_kernels() {
        let ck = Compiler::new().compile(&gauss3(), BorderPattern::Repeat, Variant::IspBlock);
        let model = ck.ir_stats_model().unwrap();
        let bounds = isp_core::IndexBounds::new(&isp_core::bounds::Geometry {
            sx: 2048,
            sy: 2048,
            m: 3,
            n: 3,
            tx: 32,
            ty: 4,
        });
        let r = model.r_reduced(&bounds);
        assert!(
            r > 1.2,
            "repeat gauss3 at 2048^2 should predict solid reduction, got {r}"
        );
    }

    #[test]
    fn point_op_compiles_naive_only() {
        let spec = KernelSpec::new("scale", 1, vec![], Expr::at(0, 0) * 2.0);
        let ck = Compiler::new().compile(&spec, BorderPattern::Clamp, Variant::IspBlock);
        assert!(ck.isp.is_none());
        assert!(ck.ir_stats_model().is_none());
        // Point ops have no border arithmetic at all.
        assert_eq!(ck.naive.static_histogram.get(InstrCategory::Max), 0);
    }

    #[test]
    fn region_footprints_populated() {
        let ck = Compiler::new().compile(&gauss3(), BorderPattern::Mirror, Variant::IspWarp);
        let isp = ck.isp.as_ref().unwrap();
        let fp = isp.region_footprints.unwrap();
        assert!(fp.iter().all(|&f| f > 0));
        // Corners traverse less switch code than Body.
        assert!(fp[Region::TL.index()] <= fp[Region::Body.index()] + 50);
    }
}
