//! The DSL expression language.
//!
//! Filter kernels are pure `f32` expressions over bordered pixel reads.
//! Expressions are built with ordinary Rust operators (`+ - * /`) plus the
//! math/selection helpers below, mirroring how a Hipacc `kernel()` body is
//! ordinary C++ over `input(dom)` accesses.

use std::ops;

/// Binary operators available in kernel expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EBin {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
}

/// Unary operators available in kernel expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EUn {
    Neg,
    Abs,
    Exp,
    Log,
    Sqrt,
    Rsqrt,
    Floor,
}

/// Comparison operators (used only inside [`Expr::Select`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ECmp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// A kernel-body expression in the `f32` arithmetic domain.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Bordered read of input image `input` at window offset `(dx, dy)`
    /// relative to the output pixel.
    Input {
        /// Input image index (multi-input point operators use > 0).
        input: usize,
        /// Horizontal offset within the window.
        dx: i64,
        /// Vertical offset within the window.
        dy: i64,
    },
    /// Compile-time constant (mask coefficients land here).
    Const(f32),
    /// Runtime scalar parameter (e.g. a sigma), by index into
    /// [`crate::spec::KernelSpec::user_params`].
    Param(usize),
    /// Binary arithmetic.
    Bin(EBin, Box<Expr>, Box<Expr>),
    /// Unary arithmetic.
    Un(EUn, Box<Expr>),
    /// `if a cmp b then t else e`, lowered branch-free to `selp`.
    Select {
        /// Comparison operator.
        cmp: ECmp,
        /// Left comparison operand.
        a: Box<Expr>,
        /// Right comparison operand.
        b: Box<Expr>,
        /// Value when the comparison holds.
        then: Box<Expr>,
        /// Value otherwise.
        els: Box<Expr>,
    },
    /// A fused multi-accumulator reduction — Hipacc's `iterate` over the
    /// window domain: for every tap `t`, all accumulators update together
    /// (`acc_k += taps[t][k]`), then the accumulators combine via an
    /// expression over [`Expr::Acc`] placeholders.
    ///
    /// This is more than sugar: it tells the compiler the per-tap terms may
    /// be evaluated tap-at-a-time, keeping register pressure at "a handful
    /// of temporaries + one register per accumulator" instead of the whole
    /// window. The bilateral filter's paired numerator/denominator sums need
    /// exactly this (a CUDA author writes `num += w*p; den += w;` in one
    /// loop for the same reason).
    FusedReduce {
        /// `taps[t][k]`: per-tap term of accumulator `k`. All taps must
        /// supply the same number of accumulator terms.
        taps: Vec<Vec<Expr>>,
        /// Reduction operator per accumulator (`Add` for sums, `Min`/`Max`
        /// for morphology-style reductions). Length equals `taps[0].len()`.
        ops: Vec<EBin>,
        /// Combination of the final accumulator values; may reference
        /// `Expr::Acc(k)` for `k < taps[0].len()`.
        combine: Box<Expr>,
    },
    /// Accumulator placeholder, valid only inside a
    /// [`Expr::FusedReduce::combine`] expression.
    Acc(usize),
}

impl Expr {
    /// Bordered read of input 0 at `(dx, dy)` — the common single-input case.
    pub fn at(dx: i64, dy: i64) -> Expr {
        Expr::Input { input: 0, dx, dy }
    }

    /// Bordered read of input `input` at `(dx, dy)`.
    pub fn input_at(input: usize, dx: i64, dy: i64) -> Expr {
        Expr::Input { input, dx, dy }
    }

    /// Runtime parameter reference.
    pub fn param(index: usize) -> Expr {
        Expr::Param(index)
    }

    /// `e^self`.
    pub fn exp(self) -> Expr {
        Expr::Un(EUn::Exp, Box::new(self))
    }

    /// Natural logarithm.
    pub fn ln(self) -> Expr {
        Expr::Un(EUn::Log, Box::new(self))
    }

    /// Square root.
    pub fn sqrt(self) -> Expr {
        Expr::Un(EUn::Sqrt, Box::new(self))
    }

    /// Reciprocal square root.
    pub fn rsqrt(self) -> Expr {
        Expr::Un(EUn::Rsqrt, Box::new(self))
    }

    /// Absolute value.
    pub fn abs(self) -> Expr {
        Expr::Un(EUn::Abs, Box::new(self))
    }

    /// Round towards negative infinity.
    pub fn floor(self) -> Expr {
        Expr::Un(EUn::Floor, Box::new(self))
    }

    /// Elementwise minimum.
    pub fn min(self, other: impl Into<Expr>) -> Expr {
        Expr::Bin(EBin::Min, Box::new(self), Box::new(other.into()))
    }

    /// Elementwise maximum.
    pub fn max(self, other: impl Into<Expr>) -> Expr {
        Expr::Bin(EBin::Max, Box::new(self), Box::new(other.into()))
    }

    /// Branch-free conditional.
    pub fn select(
        cmp: ECmp,
        a: impl Into<Expr>,
        b: impl Into<Expr>,
        then: impl Into<Expr>,
        els: impl Into<Expr>,
    ) -> Expr {
        Expr::Select {
            cmp,
            a: Box::new(a.into()),
            b: Box::new(b.into()),
            then: Box::new(then.into()),
            els: Box::new(els.into()),
        }
    }

    /// Build a fused summing reduction (see [`Expr::FusedReduce`]). Panics
    /// when taps are empty or ragged, or when `combine` references an
    /// accumulator that does not exist.
    pub fn fused_reduce(taps: Vec<Vec<Expr>>, combine: Expr) -> Expr {
        let k = taps.first().map_or(0, |t| t.len());
        Expr::fused_reduce_with(vec![EBin::Add; k], taps, combine)
    }

    /// Build a fused reduction with an explicit reduction operator per
    /// accumulator (`Add`, `Min`, or `Max` — the associative/commutative
    /// subset).
    pub fn fused_reduce_with(ops: Vec<EBin>, taps: Vec<Vec<Expr>>, combine: Expr) -> Expr {
        assert!(!taps.is_empty(), "fused reduce needs at least one tap");
        let k = taps[0].len();
        assert!(k > 0, "fused reduce needs at least one accumulator");
        assert_eq!(ops.len(), k, "one reduction operator per accumulator");
        for op in &ops {
            assert!(
                matches!(op, EBin::Add | EBin::Min | EBin::Max),
                "reduction operators must be associative and commutative, got {op:?}"
            );
        }
        for (t, tap) in taps.iter().enumerate() {
            assert_eq!(
                tap.len(),
                k,
                "tap {t} has {} terms, expected {k}",
                tap.len()
            );
        }
        combine.walk(&mut |e| {
            if let Expr::Acc(i) = e {
                assert!(*i < k, "combine references accumulator {i}, only {k} exist");
            }
        });
        Expr::FusedReduce {
            taps,
            ops,
            combine: Box::new(combine),
        }
    }

    /// Single-accumulator fused sum of `terms` (a plain windowed reduction).
    pub fn fused_sum(terms: Vec<Expr>) -> Expr {
        Expr::fused_reduce(terms.into_iter().map(|t| vec![t]).collect(), Expr::Acc(0))
    }

    /// Windowed minimum of `terms` (morphological erosion).
    pub fn fused_min(terms: Vec<Expr>) -> Expr {
        Expr::fused_reduce_with(
            vec![EBin::Min],
            terms.into_iter().map(|t| vec![t]).collect(),
            Expr::Acc(0),
        )
    }

    /// Windowed maximum of `terms` (morphological dilation).
    pub fn fused_max(terms: Vec<Expr>) -> Expr {
        Expr::fused_reduce_with(
            vec![EBin::Max],
            terms.into_iter().map(|t| vec![t]).collect(),
            Expr::Acc(0),
        )
    }

    /// Sum a list of terms as a balanced binary tree (depth `log2 n` instead
    /// of `n`), keeping traversal of huge unrolled windows stack-safe.
    pub fn balanced_sum(mut terms: Vec<Expr>) -> Option<Expr> {
        if terms.is_empty() {
            return None;
        }
        while terms.len() > 1 {
            let mut next = Vec::with_capacity(terms.len().div_ceil(2));
            let mut it = terms.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => next.push(a + b),
                    None => next.push(a),
                }
            }
            terms = next;
        }
        terms.pop()
    }

    /// All distinct `(input, dx, dy)` accesses in the expression,
    /// deduplicated, in first-occurrence order. The compiler derives the
    /// true window footprint from this (the DSL's domain inference).
    pub fn accesses(&self) -> Vec<(usize, i64, i64)> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Input { input, dx, dy } = e {
                let key = (*input, *dx, *dy);
                if !out.contains(&key) {
                    out.push(key);
                }
            }
        });
        out
    }

    /// Number of expression nodes (complexity metric used by the closed-form
    /// model's `n_kernel`).
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }

    /// Largest parameter index referenced, if any.
    pub fn max_param(&self) -> Option<usize> {
        let mut max = None;
        self.walk(&mut |e| {
            if let Expr::Param(i) = e {
                max = Some(max.map_or(*i, |m: usize| m.max(*i)));
            }
        });
        max
    }

    /// Visit every node of the expression tree (pre-order).
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Bin(_, a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::Un(_, a) => a.walk(f),
            Expr::Select {
                a, b, then, els, ..
            } => {
                a.walk(f);
                b.walk(f);
                then.walk(f);
                els.walk(f);
            }
            Expr::FusedReduce { taps, combine, .. } => {
                for tap in taps {
                    for term in tap {
                        term.walk(f);
                    }
                }
                combine.walk(f);
            }
            Expr::Input { .. } | Expr::Const(_) | Expr::Param(_) | Expr::Acc(_) => {}
        }
    }

    /// Whether the expression is well-formed with respect to accumulator
    /// placeholders: `Acc` may only appear inside a `FusedReduce::combine`.
    pub fn accs_well_placed(&self) -> bool {
        fn check(e: &Expr, in_combine: bool) -> bool {
            match e {
                Expr::Acc(_) => in_combine,
                Expr::Bin(_, a, b) => check(a, in_combine) && check(b, in_combine),
                Expr::Un(_, a) => check(a, in_combine),
                Expr::Select {
                    a, b, then, els, ..
                } => {
                    check(a, in_combine)
                        && check(b, in_combine)
                        && check(then, in_combine)
                        && check(els, in_combine)
                }
                Expr::FusedReduce { taps, combine, .. } => {
                    // Taps reset the context (no nesting of Acc from an
                    // outer reduce into an inner tap).
                    taps.iter().all(|tap| tap.iter().all(|t| check(t, false)))
                        && check(combine, true)
                }
                _ => true,
            }
        }
        check(self, false)
    }
}

impl From<f32> for Expr {
    fn from(v: f32) -> Expr {
        Expr::Const(v)
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl ops::$trait for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::Bin($op, Box::new(self), Box::new(rhs))
            }
        }
        impl ops::$trait<f32> for Expr {
            type Output = Expr;
            fn $method(self, rhs: f32) -> Expr {
                Expr::Bin($op, Box::new(self), Box::new(Expr::Const(rhs)))
            }
        }
        impl ops::$trait<Expr> for f32 {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::Bin($op, Box::new(Expr::Const(self)), Box::new(rhs))
            }
        }
    };
}

impl_binop!(Add, add, EBin::Add);
impl_binop!(Sub, sub, EBin::Sub);
impl_binop!(Mul, mul, EBin::Mul);
impl_binop!(Div, div, EBin::Div);

impl ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Un(EUn::Neg, Box::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_overloads_build_trees() {
        let e = Expr::at(0, 0) * 2.0 + Expr::at(1, 0);
        match &e {
            Expr::Bin(EBin::Add, l, r) => {
                assert!(matches!(**l, Expr::Bin(EBin::Mul, _, _)));
                assert!(matches!(**r, Expr::Input { dx: 1, dy: 0, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        let e = 3.0f32 / Expr::at(0, 0) - 1.0;
        assert!(matches!(e, Expr::Bin(EBin::Sub, _, _)));
        let e = -Expr::at(0, 0);
        assert!(matches!(e, Expr::Un(EUn::Neg, _)));
    }

    #[test]
    fn accesses_deduplicate_in_order() {
        let e = Expr::at(-1, 0) + Expr::at(1, 0) + Expr::at(-1, 0) * 2.0 + Expr::input_at(1, 0, 0);
        assert_eq!(e.accesses(), vec![(0, -1, 0), (0, 1, 0), (1, 0, 0)]);
    }

    #[test]
    fn node_count_and_params() {
        let e = (Expr::at(0, 0) - Expr::param(0)) * Expr::param(1);
        // mul, sub, input, param, param = 5 nodes
        assert_eq!(e.node_count(), 5);
        assert_eq!(e.max_param(), Some(1));
        assert_eq!(Expr::at(0, 0).max_param(), None);
    }

    #[test]
    fn select_and_math_helpers() {
        let e = Expr::select(ECmp::Lt, Expr::at(0, 0), 0.5f32, 0.0f32, 1.0f32);
        assert!(matches!(e, Expr::Select { cmp: ECmp::Lt, .. }));
        let e = Expr::at(0, 0).exp().sqrt().abs();
        assert_eq!(e.node_count(), 4);
        let e = Expr::at(0, 0).min(0.5).max(Expr::Const(0.0));
        assert!(matches!(e, Expr::Bin(EBin::Max, _, _)));
    }
}
