//! Cache keys and hit/miss accounting for the engine's two memoisation
//! layers.

use isp_core::Variant;
use isp_dsl::KernelSpec;
use isp_image::BorderPattern;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Identity of one compiled kernel: the spec fingerprint, the border
/// pattern baked into the generated code, and the ISP granularity the
/// compiler specialised for.
pub(crate) type KernelKey = (u64, BorderPattern, Variant);

/// Identity of one Eq. (10) decision: the kernel plus the full partition
/// geometry `(sx, sy, m, n, tx, ty)`.
pub(crate) type PlanKey = (KernelKey, (usize, usize, usize, usize, u32, u32));

/// Structural fingerprint of a kernel spec. Specs carry no interior
/// mutability and derive `Debug` over their full structure (name, arity,
/// parameters, expression tree), so hashing the debug rendering identifies
/// the kernel for the lifetime of the process.
pub(crate) fn spec_fingerprint(spec: &KernelSpec) -> u64 {
    fingerprint(&format!("{spec:?}"))
}

/// Identity of a device spec for the [`crate::Engine::global`] registry:
/// the full parameter set, not just the marketing name, so ablation
/// binaries probing tweaked devices get distinct engines.
pub(crate) fn fingerprint_device(spec: &isp_sim::DeviceSpec) -> u64 {
    fingerprint(&format!("{spec:?}"))
}

/// Stable-within-process fingerprint of an arbitrary string.
pub(crate) fn fingerprint(s: &str) -> u64 {
    let mut h = DefaultHasher::new();
    s.hash(&mut h);
    h.finish()
}

/// A point-in-time snapshot of the engine's cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Kernel-cache lookups answered without compiling.
    pub kernel_hits: u64,
    /// Kernel compilations performed (cold lookups).
    pub kernel_misses: u64,
    /// Plan-cache lookups answered without evaluating the model.
    pub plan_hits: u64,
    /// Eq. (10) evaluations performed (cold lookups).
    pub plan_misses: u64,
    /// Decode-cache lookups answered with already-decoded microcode
    /// (mirrors [`isp_sim::Gpu::decode_stats`]).
    pub decode_hits: u64,
    /// IR→microcode decodes performed (cold lookups).
    pub decode_misses: u64,
    /// Blocks that recorded a fresh class trace under the replay engine
    /// (mirrors [`isp_sim::Gpu::trace_stats`]).
    pub trace_recorded: u64,
    /// Blocks replayed from a recorded class trace.
    pub trace_replayed: u64,
    /// Blocks replayed from a trace recorded by an *earlier* launch with the
    /// identical (kernel, geometry, params) key — the warm-batch path where
    /// the second image replays from block 0. A subset of `trace_replayed`.
    pub trace_cross_launch_hits: u64,
    /// Blocks that failed a replay guard and re-ran on the decoded engine.
    pub trace_deopts: u64,
    /// Deopts broken down by guard reason, indexed by
    /// [`isp_sim::DeoptReason::index`] (sums to `trace_deopts`).
    pub trace_deopt_reasons: [u64; isp_sim::DeoptReason::COUNT],
    /// Static instructions removed by the IR optimiser across all cold
    /// compiles (summed over every compiled variant's
    /// [`isp_dsl::compile::CompiledVariant::opt_stats`]).
    pub opt_ops_removed: u64,
    /// Optimiser pipeline iterations to reach a fixed point, summed over
    /// every compiled variant.
    pub opt_fixpoint_iterations: u64,
    /// Superinstruction groups formed by the simulator's decode-time fusion
    /// pass across all cold decodes (mirrors [`isp_sim::Gpu::fusion_stats`]).
    pub fused_groups: u64,
    /// Static dispatches eliminated by those groups.
    pub fused_dispatches_saved: u64,
}

/// Live hit/miss counters (atomics so [`crate::Engine`] stays `Sync`).
#[derive(Debug, Default)]
pub(crate) struct CacheCounters {
    kernel_hits: AtomicU64,
    kernel_misses: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    opt_ops_removed: AtomicU64,
    opt_fixpoint_iterations: AtomicU64,
}

impl CacheCounters {
    pub(crate) fn kernel_hit(&self) {
        self.kernel_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn kernel_miss(&self) {
        self.kernel_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn plan_hit(&self) {
        self.plan_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn plan_miss(&self) {
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one compiled variant's optimiser work.
    pub(crate) fn opt_record(&self, ops_removed: u64, iterations: u64) {
        self.opt_ops_removed
            .fetch_add(ops_removed, Ordering::Relaxed);
        self.opt_fixpoint_iterations
            .fetch_add(iterations, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> CacheStats {
        CacheStats {
            kernel_hits: self.kernel_hits.load(Ordering::Relaxed),
            kernel_misses: self.kernel_misses.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
            // Decode and trace counts live on the Gpu; Engine::cache_stats
            // fills them in from there.
            decode_hits: 0,
            decode_misses: 0,
            trace_recorded: 0,
            trace_replayed: 0,
            trace_cross_launch_hits: 0,
            trace_deopts: 0,
            trace_deopt_reasons: [0; isp_sim::DeoptReason::COUNT],
            opt_ops_removed: self.opt_ops_removed.load(Ordering::Relaxed),
            opt_fixpoint_iterations: self.opt_fixpoint_iterations.load(Ordering::Relaxed),
            // Fusion totals live on the Gpu too; Engine::cache_stats fills
            // them in.
            fused_groups: 0,
            fused_dispatches_saved: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_distinguishes_strings() {
        assert_ne!(fingerprint("a"), fingerprint("b"));
        assert_eq!(fingerprint("same"), fingerprint("same"));
    }

    #[test]
    fn counters_snapshot_counts() {
        let c = CacheCounters::default();
        c.kernel_miss();
        c.kernel_hit();
        c.kernel_hit();
        c.plan_miss();
        c.plan_hit();
        let s = c.snapshot();
        assert_eq!(s.kernel_hits, 2);
        assert_eq!(s.kernel_misses, 1);
        assert_eq!(s.plan_hits, 1);
        assert_eq!(s.plan_misses, 1);
    }
}
