//! The [`Engine`]: a device plus the kernel and plan caches, and the
//! compile→plan→launch methods everything else is built from.

use crate::bench_image;
use crate::cache::{
    fingerprint_device, spec_fingerprint, CacheCounters, CacheStats, KernelKey, PlanKey,
};
use crate::request::{Latency, Measurement, Outcome, Prediction, Request, Sweep};
use isp_core::bounds::Geometry;
use isp_core::{IndexBounds, Plan, Variant};
use isp_dsl::pipeline::Policy;
use isp_dsl::runner::{geometry_for, plan_for, run_filter_with, ExecMode, ExecStrategy};
use isp_dsl::FilterOutput;
use isp_dsl::{tune_block_size, CompiledKernel, Compiler, KernelSpec, Pipeline};
use isp_image::{BorderPattern, BorderSpec, Image};
use isp_probe::ProbeHandle;
use isp_sim::{DeviceSpec, ExecEngine, Gpu, SimError};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// The execution engine for one simulated device.
///
/// An engine owns a [`Gpu`], a [`Compiler`], and two memoisation layers:
/// compiled kernels keyed by `(spec, pattern, granularity)` and Eq. (10)
/// plans keyed by the kernel plus the partition geometry. All methods take
/// `&self`; the caches use interior locking, so one engine can serve many
/// threads (and [`Engine::global`] hands out process-wide shared engines).
#[derive(Debug)]
pub struct Engine {
    device: DeviceSpec,
    gpu: Gpu,
    compiler: Compiler,
    kernels: Mutex<HashMap<KernelKey, Arc<CompiledKernel>>>,
    plans: Mutex<HashMap<PlanKey, Plan>>,
    counters: CacheCounters,
    probe: ProbeHandle,
}

impl Engine {
    /// Create a standalone engine for a device (empty caches). Launches run
    /// on the trace-replay fast path; see [`Engine::with_exec_engine`] for
    /// the decoded or reference interpreters.
    pub fn new(device: DeviceSpec) -> Self {
        Self::with_exec_engine(device, ExecEngine::default())
    }

    /// [`Engine::new`] with an explicit simulator [`ExecEngine`] — the
    /// before/after speed benchmark builds `Reference` and `Decoded` engines
    /// to measure against the replay default.
    pub fn with_exec_engine(device: DeviceSpec, exec: ExecEngine) -> Self {
        Self::with_fusion(device, exec, true)
    }

    /// [`Engine::with_exec_engine`] with explicit control of the
    /// simulator's superinstruction fusion pass — the fusion ablation
    /// benchmark builds fusion-off engines to measure the fused dispatch
    /// gain in isolation.
    pub fn with_fusion(device: DeviceSpec, exec: ExecEngine, fusion: bool) -> Self {
        Engine {
            gpu: Gpu::new(device.clone())
                .with_engine(exec)
                .with_fusion(fusion),
            device,
            compiler: Compiler::new(),
            kernels: Mutex::new(HashMap::new()),
            plans: Mutex::new(HashMap::new()),
            counters: CacheCounters::default(),
            probe: ProbeHandle::none(),
        }
    }

    /// Attach a probe sink to this engine and its [`Gpu`]. Compile, plan,
    /// and request spans, cache hit/miss instants, and per-launch simulated
    /// timelines flow into it; with the default [`ProbeHandle::none`] every
    /// probe call is a single branch on a cached flag. Intended for freshly
    /// built engines (the `timeline` binary), not [`Engine::global`] shares.
    pub fn with_probe(mut self, probe: ProbeHandle) -> Self {
        self.gpu.set_probe(probe.clone());
        self.probe = probe;
        self
    }

    /// The process-wide shared engine for a device, so independent callers
    /// (harness binaries, tests) reuse one set of caches. Engines are keyed
    /// by the full device spec: two specs that differ only in one
    /// architectural parameter get separate engines.
    pub fn global(device: &DeviceSpec) -> Arc<Engine> {
        static REGISTRY: OnceLock<Mutex<HashMap<u64, Arc<Engine>>>> = OnceLock::new();
        let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
        let key = fingerprint_device(device);
        let mut map = registry.lock().expect("engine registry lock");
        Arc::clone(
            map.entry(key)
                .or_insert_with(|| Arc::new(Engine::new(device.clone()))),
        )
    }

    /// The device this engine simulates.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The engine's simulated GPU (for callers that need raw launches).
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// Compile one kernel spec, memoised on `(spec, pattern, granularity)`.
    /// Compilation does not depend on the image size, so every size in a
    /// sweep hits the cache after the first point.
    pub fn compile(
        &self,
        spec: &KernelSpec,
        pattern: BorderPattern,
        granularity: Variant,
    ) -> Arc<CompiledKernel> {
        let key = (spec_fingerprint(spec), pattern, granularity);
        if let Some(hit) = self.kernels.lock().expect("kernel cache lock").get(&key) {
            self.counters.kernel_hit();
            self.probe.count("engine.kernel_hits", 1);
            self.probe.instant(
                "kernel-cache-hit",
                "engine",
                Some(format!("{} {pattern} {granularity:?}", spec.name)),
            );
            return Arc::clone(hit);
        }
        self.probe.count("engine.kernel_misses", 1);
        let started = self.probe.begin();
        // Compile outside the lock: kernels are large and compilation is
        // the expensive step the cache exists to amortise.
        let compiled = Arc::new(self.compiler.compile(spec, pattern, granularity));
        // Warm the Gpu's decode cache for every variant now, while the
        // kernel is cold: a sweep then decodes each kernel exactly once, and
        // launches never decode on the hot path.
        if self.gpu.engine() != ExecEngine::Reference {
            for variant in [
                Some(&compiled.naive),
                compiled.isp.as_ref(),
                compiled.texture.as_ref(),
            ]
            .into_iter()
            .flatten()
            {
                self.gpu.decode(&variant.kernel);
            }
        }
        // Attribute the optimiser's work (per-variant fixed-point iterations
        // and instructions removed) to this cold compile.
        for variant in [
            Some(&compiled.naive),
            compiled.isp.as_ref(),
            compiled.texture.as_ref(),
        ]
        .into_iter()
        .flatten()
        {
            let s = variant.opt_stats;
            self.counters.opt_record(s.removed_total(), s.iterations);
            self.probe
                .count("engine.opt_ops_removed", s.removed_total());
            self.probe
                .count("engine.opt_fixpoint_iterations", s.iterations);
        }
        self.probe.span("compile", "engine", started, || {
            Some(format!("{} {pattern} {granularity:?}", spec.name))
        });
        let mut map = self.kernels.lock().expect("kernel cache lock");
        let entry = map.entry(key).or_insert_with(|| Arc::clone(&compiled));
        self.counters.kernel_miss();
        Arc::clone(entry)
    }

    /// Compile every stage of a pipeline through the kernel cache.
    pub fn compile_pipeline(
        &self,
        pipeline: &Pipeline,
        pattern: BorderPattern,
        granularity: Variant,
    ) -> Vec<Arc<CompiledKernel>> {
        pipeline
            .stages
            .iter()
            .map(|s| self.compile(&s.spec, pattern, granularity))
            .collect()
    }

    /// The Eq. (10) decision for a compiled kernel on a geometry, memoised
    /// on `(kernel, geometry)`.
    pub fn plan(&self, ck: &CompiledKernel, geom: &Geometry) -> Plan {
        let granularity = ck.isp.as_ref().map_or(Variant::Naive, |isp| isp.variant);
        let kernel_key = (spec_fingerprint(&ck.spec), ck.pattern, granularity);
        let key = (
            kernel_key,
            (geom.sx, geom.sy, geom.m, geom.n, geom.tx, geom.ty),
        );
        if let Some(hit) = self.plans.lock().expect("plan cache lock").get(&key) {
            self.counters.plan_hit();
            self.probe.count("engine.plan_hits", 1);
            return *hit;
        }
        self.probe.count("engine.plan_misses", 1);
        let started = self.probe.begin();
        let plan = plan_for(&self.gpu, ck, geom);
        self.probe.span("plan", "engine", started, || {
            Some(format!(
                "{} {}x{} -> {:?}",
                ck.spec.name, geom.sx, geom.sy, plan.variant
            ))
        });
        self.plans
            .lock()
            .expect("plan cache lock")
            .insert(key, plan);
        self.counters.plan_miss();
        plan
    }

    /// The index-set partition (Eqs. 4–9) for a geometry — the pure
    /// analysis underneath both code generation and the planner.
    pub fn partition(&self, geom: &Geometry) -> IndexBounds {
        IndexBounds::new(geom)
    }

    /// Execute one request on the deterministic bench image of its size.
    pub fn run(&self, req: &Request) -> Result<Outcome, SimError> {
        self.run_on(req, &bench_image(req.size))
    }

    /// Execute one request on caller-supplied pixels. The source must match
    /// `req.size` in both dimensions.
    pub fn run_on(&self, req: &Request, source: &Image<f32>) -> Result<Outcome, SimError> {
        assert_eq!(
            source.dims(),
            (req.size, req.size),
            "source must match the request size"
        );
        let border = BorderSpec::from_pattern(req.pattern);
        let started = self.probe.begin();
        let plan_t0 = Instant::now();
        let compiled = self.compile_pipeline(&req.app.pipeline, req.pattern, req.granularity);
        let refs: Vec<&CompiledKernel> = compiled.iter().map(Arc::as_ref).collect();
        let plan_wall_ns = plan_t0.elapsed().as_nanos() as u64;
        let exec_t0 = Instant::now();
        let run = req.app.pipeline.run_with(
            &self.gpu,
            &refs,
            source,
            border,
            req.block,
            req.policy,
            req.mode,
            req.strategy,
            &mut |_, ck, geom| self.plan(ck, geom),
        )?;
        let exec_wall_ns = exec_t0.elapsed().as_nanos() as u64;
        self.probe.span("request", "engine", started, || {
            Some(format!(
                "{} {} {}px {:?}",
                req.app.name, req.pattern, req.size, req.policy
            ))
        });
        Ok(Outcome {
            image: run.image,
            total_cycles: run.total_cycles,
            latency: Latency {
                queue_cycles: 0,
                exec_cycles: run.total_cycles,
                plan_wall_ns,
                exec_wall_ns,
            },
            counters: run.counters,
            stage_variants: run.stage_variants,
            per_region: run.per_region,
            per_region_trace: run.per_region_trace,
        })
    }

    /// Execute a batch of requests through one shared compile/plan/launch
    /// path: every distinct (pipeline, pattern, granularity) in the batch is
    /// compiled and planned once up front, then the images run in order —
    /// the second image of a compatible pair replays the first image's
    /// recorded traces from block 0 (see
    /// [`CacheStats::trace_cross_launch_hits`]). Results are bit-identical
    /// to running the same requests sequentially via [`Engine::run_on`]:
    /// per-image pixels, counters, and journals never depend on batch-mates.
    pub fn run_batch_on(
        &self,
        items: &[(&Request, &Image<f32>)],
    ) -> Result<Vec<Outcome>, SimError> {
        let started = self.probe.begin();
        // Warm the shared plan: one compile per distinct kernel key and one
        // Eq. (10) evaluation per distinct geometry, no matter how many
        // images share them.
        for (req, _) in items {
            let compiled = self.compile_pipeline(&req.app.pipeline, req.pattern, req.granularity);
            for ck in &compiled {
                let geom = geometry_for(ck, req.size, req.size, req.block);
                self.plan(ck, &geom);
            }
        }
        let outcomes = items
            .iter()
            .map(|(req, source)| self.run_on(req, source))
            .collect::<Result<Vec<_>, _>>()?;
        self.probe.span("batch", "engine", started, || {
            Some(format!("{} requests", items.len()))
        });
        Ok(outcomes)
    }

    /// [`Engine::run_batch_on`] over the deterministic bench images of each
    /// request's size.
    pub fn run_batch(&self, reqs: &[Request]) -> Result<Vec<Outcome>, SimError> {
        let sources: Vec<Image<f32>> = reqs.iter().map(|r| bench_image(r.size)).collect();
        let items: Vec<(&Request, &Image<f32>)> = reqs.iter().zip(sources.iter()).collect();
        self.run_batch_on(&items)
    }

    /// Evaluate the Eq. 1–10 cost model for a request on this engine's
    /// device without executing it: per stage, predict the absolute cost of
    /// the variant the request's policy selects (per-region weighted
    /// instruction costs x Eq. (8) block populations / occupancy — the same
    /// ingredients as [`Engine::plan`]), and convert the total into
    /// estimated device cycles and milliseconds. This is what the serving
    /// dispatcher compares across shards to route each batch.
    pub fn predict(&self, req: &Request) -> Prediction {
        let compiled = self.compile_pipeline(&req.app.pipeline, req.pattern, req.granularity);
        let mut stage_variants = Vec::with_capacity(compiled.len());
        let mut cost = 0.0;
        for ck in &compiled {
            let points = tune_block_size(&self.gpu, ck, req.size, req.size, &[req.block]);
            let point = points.first().expect("paper block size is valid");
            // `point` carries the model's better variant plus the gain, so
            // both variants' absolute costs are recoverable; pick the one
            // the request's policy would actually run.
            let (naive_cost, isp_cost) = if point.variant.is_isp() {
                (point.predicted_cost * point.gain, point.predicted_cost)
            } else {
                (point.predicted_cost, point.predicted_cost / point.gain)
            };
            let geom = geometry_for(ck, req.size, req.size, req.block);
            let variant = match req.policy {
                Policy::Naive => Variant::Naive,
                Policy::AlwaysIsp(v) => {
                    if ck.isp.is_some() {
                        v
                    } else {
                        Variant::Naive
                    }
                }
                Policy::Model(_) => self.plan(ck, &geom).variant,
            };
            cost += if variant.is_isp() {
                isp_cost
            } else {
                naive_cost
            };
            stage_variants.push(variant);
        }
        // Spread the warp-cycle units over the device's SMs (32 lanes each)
        // and charge one launch overhead per stage: coarse, monotone within
        // a device, throughput-scaled across devices — all routing needs.
        let sm_lanes = self.device.num_sms as f64 * 32.0;
        let est_cycles = (cost / sm_lanes).ceil() as u64
            + self.device.launch_overhead_cycles * compiled.len() as u64;
        Prediction {
            stage_variants,
            cost,
            est_cycles,
            est_ms: self.device.cycles_to_ms(est_cycles),
        }
    }

    /// Run one compiled kernel variant directly — the single-kernel
    /// counterpart of [`Engine::run`], subsuming `isp_dsl::runner::run_filter`
    /// for callers that manage their own inputs (ablation binaries,
    /// validation harnesses). Exhaustive launches use the parallel strategy.
    #[allow(clippy::too_many_arguments)]
    pub fn run_kernel(
        &self,
        ck: &CompiledKernel,
        variant: Variant,
        inputs: &[&Image<f32>],
        user_params: &[f32],
        border_const: f32,
        block: (u32, u32),
        mode: ExecMode,
    ) -> Result<FilterOutput, SimError> {
        run_filter_with(
            &self.gpu,
            ck,
            variant,
            inputs,
            user_params,
            border_const,
            block,
            mode,
            ExecStrategy::Parallel,
        )
    }

    /// Run the three policies for one sweep point in region-sampled mode —
    /// the paper's per-point measurement.
    pub fn measure(&self, sweep: &Sweep) -> Measurement {
        let source = bench_image(sweep.size);
        let run = |policy: Policy| {
            self.run_on(&sweep.request(policy), &source)
                .unwrap_or_else(|e| {
                    panic!("{} {} {}: {e}", sweep.app.name, sweep.pattern, sweep.size)
                })
        };
        let naive = run(Policy::Naive);
        let isp = run(Policy::AlwaysIsp(sweep.granularity));
        let ispm = run(Policy::Model(sweep.granularity));

        let compiled = self.compile_pipeline(&sweep.app.pipeline, sweep.pattern, sweep.granularity);
        let stage_gains = compiled
            .iter()
            .filter(|ck| ck.isp.is_some())
            .map(|ck| {
                let geom = geometry_for(ck, sweep.size, sweep.size, sweep.block);
                self.plan(ck, &geom).predicted_gain
            })
            .collect();

        Measurement {
            naive_cycles: naive.total_cycles,
            isp_cycles: isp.total_cycles,
            ispm_cycles: ispm.total_cycles,
            speedup_isp: naive.total_cycles as f64 / isp.total_cycles as f64,
            speedup_ispm: naive.total_cycles as f64 / ispm.total_cycles as f64,
            ispm_variants: ispm.stage_variants,
            warp_instructions: (
                naive.counters.warp_instructions,
                isp.counters.warp_instructions,
            ),
            stage_gains,
        }
    }

    /// Snapshot of the cache hit/miss counters (kernel and plan caches plus
    /// the Gpu's decode cache and trace-replay reuse).
    pub fn cache_stats(&self) -> CacheStats {
        let mut stats = self.counters.snapshot();
        let decode = self.gpu.decode_stats();
        stats.decode_hits = decode.hits;
        stats.decode_misses = decode.misses;
        let trace = self.gpu.trace_stats();
        stats.trace_recorded = trace.recorded;
        stats.trace_replayed = trace.replayed;
        stats.trace_cross_launch_hits = self.gpu.trace_cross_launch_hits();
        stats.trace_deopts = trace.deopted;
        stats.trace_deopt_reasons = trace.deopt_reasons;
        let fusion = self.gpu.fusion_stats();
        stats.fused_groups = fusion.groups;
        stats.fused_dispatches_saved = fusion.dispatches_saved;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isp_filters::by_name;

    #[test]
    fn kernel_cache_compiles_once_per_key() {
        let engine = Engine::new(DeviceSpec::gtx680());
        let app = by_name("gaussian").unwrap();
        let stages = app.pipeline.stages.len();
        for _ in 0..3 {
            engine.compile_pipeline(&app.pipeline, BorderPattern::Clamp, Variant::IspBlock);
        }
        let stats = engine.cache_stats();
        assert_eq!(stats.kernel_misses, stages as u64, "one compile per stage");
        assert_eq!(stats.kernel_hits, 2 * stages as u64);
        // A different pattern is a different key.
        engine.compile_pipeline(&app.pipeline, BorderPattern::Mirror, Variant::IspBlock);
        assert_eq!(engine.cache_stats().kernel_misses, 2 * stages as u64);
    }

    #[test]
    fn opt_stats_attributed_to_cold_compiles_only() {
        let engine = Engine::new(DeviceSpec::gtx680());
        let app = by_name("gaussian").unwrap();
        engine.compile_pipeline(&app.pipeline, BorderPattern::Clamp, Variant::IspBlock);
        let cold = engine.cache_stats();
        assert!(
            cold.opt_ops_removed > 0,
            "pipeline must remove instructions on gaussian: {cold:?}"
        );
        assert!(
            cold.opt_fixpoint_iterations >= 3,
            "one iteration minimum per variant (naive+isp+texture)"
        );
        // Warm hits do no optimiser work.
        engine.compile_pipeline(&app.pipeline, BorderPattern::Clamp, Variant::IspBlock);
        let warm = engine.cache_stats();
        assert_eq!(warm.opt_ops_removed, cold.opt_ops_removed);
        assert_eq!(warm.opt_fixpoint_iterations, cold.opt_fixpoint_iterations);
    }

    #[test]
    fn cached_plan_matches_uncached() {
        let engine = Engine::new(DeviceSpec::gtx680());
        let spec = isp_filters::gaussian::spec(3);
        let ck = engine.compile(&spec, BorderPattern::Repeat, Variant::IspBlock);
        let geom = geometry_for(&ck, 2048, 2048, crate::PAPER_BLOCK);
        let direct = plan_for(engine.gpu(), &ck, &geom);
        let first = engine.plan(&ck, &geom);
        let second = engine.plan(&ck, &geom);
        assert_eq!(first, direct);
        assert_eq!(second, direct);
        let stats = engine.cache_stats();
        assert_eq!(stats.plan_misses, 1);
        assert_eq!(stats.plan_hits, 1);
    }

    #[test]
    fn measure_matches_legacy_shape() {
        let engine = Engine::new(DeviceSpec::gtx680());
        let sweep = Sweep::paper(by_name("gaussian").unwrap(), BorderPattern::Repeat, 512);
        let m = engine.measure(&sweep);
        assert!(m.naive_cycles > 0 && m.isp_cycles > 0 && m.ispm_cycles > 0);
        assert!(m.speedup_isp > 0.0);
        assert_eq!(m.ispm_variants.len(), sweep.app.pipeline.stages.len());
        assert!(!m.stage_gains.is_empty());
    }

    #[test]
    fn global_registry_dedupes_by_spec() {
        let a = Engine::global(&DeviceSpec::rtx2080());
        let b = Engine::global(&DeviceSpec::rtx2080());
        assert!(Arc::ptr_eq(&a, &b));
        let mut tweaked = DeviceSpec::rtx2080();
        tweaked.num_sms += 1;
        let c = Engine::global(&tweaked);
        assert!(!Arc::ptr_eq(&a, &c), "different spec, different engine");
    }

    #[test]
    fn sweeps_decode_each_kernel_exactly_once() {
        let engine = Engine::new(DeviceSpec::gtx680());
        let app = by_name("gaussian").unwrap();
        // Two sweep points, three policies each: lots of launches, but the
        // decode-miss count must equal the number of distinct variant
        // kernels compiled, and launches only ever hit the cache.
        for size in [64, 128] {
            let sweep = Sweep {
                size,
                ..Sweep::paper(app.clone(), BorderPattern::Clamp, 64)
            };
            engine.measure(&sweep);
        }
        let stats = engine.cache_stats();
        let variants: u64 = {
            let map = engine.kernels.lock().unwrap();
            map.values()
                .map(|ck| 1 + ck.isp.is_some() as u64 + ck.texture.is_some() as u64)
                .sum()
        };
        assert_eq!(
            stats.decode_misses, variants,
            "each compiled variant decodes once"
        );
        assert!(
            stats.decode_hits > 0,
            "launches reuse the decoded microcode"
        );
    }

    #[test]
    fn reference_exec_engine_matches_decoded() {
        let decoded = Engine::new(DeviceSpec::gtx680());
        let reference = Engine::with_exec_engine(DeviceSpec::gtx680(), ExecEngine::Reference);
        let req = Request::paper(
            by_name("sobel").unwrap(),
            BorderPattern::Repeat,
            64,
            Policy::AlwaysIsp(isp_core::Variant::IspBlock),
        )
        .exhaustive();
        let a = decoded.run(&req).unwrap();
        let b = reference.run(&req).unwrap();
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.counters, b.counters);
        let (ia, ib) = (a.image.unwrap(), b.image.unwrap());
        assert_eq!(ia.raw(), ib.raw());
        assert_eq!(reference.cache_stats().decode_misses, 0);
    }

    #[test]
    fn run_exhaustive_returns_pixels() {
        let engine = Engine::new(DeviceSpec::gtx680());
        let req = Request::paper(
            by_name("gaussian").unwrap(),
            BorderPattern::Mirror,
            64,
            Policy::AlwaysIsp(Variant::IspBlock),
        )
        .exhaustive();
        let out = engine.run(&req).unwrap();
        assert_eq!(out.image.unwrap().dims(), (64, 64));
        assert!(out.total_cycles > 0);
    }
}
