//! # isp-exec
//!
//! The execution engine: one entry point for running filter pipelines on
//! the simulated device. Everything the harness binaries used to wire up by
//! hand — compile the pipeline, derive the partition, consult the Eq. (10)
//! model, launch the three policies — goes through an [`Engine`], which
//! owns a device and two memoisation layers:
//!
//! - a **kernel cache**: compiled kernels keyed by
//!   `(kernel spec, border pattern, ISP granularity)` — compilation does
//!   not depend on the image size, so a 4-size sweep compiles each stage
//!   exactly once;
//! - a **plan cache**: Eq. (10) decisions keyed by the kernel key plus the
//!   full partition geometry `(sx, sy, m, n, tx, ty)`.
//!
//! [`Engine::run`] executes one [`Request`] (an experiment point plus a
//! policy); [`Engine::measure`] runs the paper's naive / isp / isp+m
//! triple for a [`Sweep`] point and returns a [`Measurement`]. Exhaustive
//! launches fan block interpretation out across threads while staying
//! bit-identical to serial execution (see `isp_sim::ExecStrategy`).
//!
//! Cache effectiveness is observable through [`Engine::cache_stats`]; the
//! `isp-bench` crate's `simulator` bench compares a cached sweep against
//! the old compile-per-point path.

pub mod cache;
pub mod engine;
pub mod request;

pub use cache::CacheStats;
pub use engine::Engine;
pub use request::{Latency, Measurement, Outcome, Prediction, Request, Sweep};

use isp_image::{Image, ImageGenerator};

/// The paper's block size (32x4 = 128 threads, wide in x).
pub const PAPER_BLOCK: (u32, u32) = (32, 4);

/// The paper's four evaluated image sizes.
pub const PAPER_SIZES: [usize; 4] = [512, 1024, 2048, 4096];

/// Seed for all generated bench imagery.
pub const BENCH_SEED: u64 = 42;

/// The deterministic source image for a given size.
pub fn bench_image(size: usize) -> Image<f32> {
    ImageGenerator::new(BENCH_SEED).natural::<f32>(size, size)
}
