//! The engine's job descriptions and results: a [`Request`] is one
//! pipeline execution, a [`Sweep`] is one paper experiment point (the
//! naive / isp / isp+m triple), an [`Outcome`] and a [`Measurement`] are
//! what comes back.

use crate::PAPER_BLOCK;
use isp_core::{Region, Variant};
use isp_dsl::pipeline::Policy;
use isp_dsl::runner::{ExecMode, ExecStrategy};
use isp_filters::App;
use isp_image::{BorderPattern, Image};
use isp_sim::{PerfCounters, TraceStats};

/// One pipeline execution on the engine's device: which app, under which
/// border pattern, at which size, with which launch configuration and
/// variant-selection policy.
#[derive(Debug, Clone)]
pub struct Request {
    /// Application under test.
    pub app: App,
    /// Border handling pattern.
    pub pattern: BorderPattern,
    /// Square image size (the engine generates the deterministic bench
    /// image; use [`crate::Engine::run_on`] to supply your own pixels).
    pub size: usize,
    /// Block size.
    pub block: (u32, u32),
    /// ISP granularity compiled for the isp/isp+m variants.
    pub granularity: Variant,
    /// Per-stage variant selection.
    pub policy: Policy,
    /// Exhaustive interpretation (pixels) or region-sampled estimation.
    pub mode: ExecMode,
    /// Block-worker scheduling for exhaustive launches.
    pub strategy: ExecStrategy,
}

impl Request {
    /// A paper-configuration request: 32x4 blocks, block-grained ISP,
    /// region-sampled execution, parallel strategy.
    pub fn paper(app: App, pattern: BorderPattern, size: usize, policy: Policy) -> Self {
        Request {
            app,
            pattern,
            size,
            block: PAPER_BLOCK,
            granularity: Variant::IspBlock,
            policy,
            mode: ExecMode::Sampled,
            strategy: ExecStrategy::Parallel,
        }
    }

    /// Switch to exhaustive interpretation (the run returns pixels).
    pub fn exhaustive(mut self) -> Self {
        self.mode = ExecMode::Exhaustive;
        self
    }

    /// Override the block size.
    pub fn with_block(mut self, block: (u32, u32)) -> Self {
        self.block = block;
        self
    }

    /// Override the exhaustive block-worker strategy.
    pub fn with_strategy(mut self, strategy: ExecStrategy) -> Self {
        self.strategy = strategy;
        self
    }
}

/// Per-request latency attribution: where one [`Request`]'s time went,
/// split into the queue-wait / plan / execute phases the serving layer
/// reports. Simulated cycles are the deterministic source of truth the
/// serve metrics and `==PROF==` share; the wall-clock fields measure the
/// host-side simulator overhead and never feed simulated results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Latency {
    /// Simulated device cycles the request spent queued before its
    /// execution began (zero for direct [`crate::Engine::run`] calls; the
    /// serving layer fills this in at dispatch time).
    pub queue_cycles: u64,
    /// Simulated device cycles executing the pipeline's launches — equal to
    /// [`Outcome::total_cycles`].
    pub exec_cycles: u64,
    /// Wall-clock nanoseconds spent compiling and planning (all cache
    /// layers included, so a warm engine reports near-zero here).
    pub plan_wall_ns: u64,
    /// Wall-clock nanoseconds the simulator spent executing the launches.
    pub exec_wall_ns: u64,
}

impl Latency {
    /// Total simulated cycles from enqueue to completion.
    pub fn total_cycles(&self) -> u64 {
        self.queue_cycles + self.exec_cycles
    }
}

/// A cost-model prediction for one [`Request`] on one engine's device: the
/// Eq. 1–10 evaluation the serving dispatcher routes on, without running
/// anything. Costs are in device-weighted warp-cycle units (comparable
/// across devices after [`crate::Engine::predict`] normalises by SM count
/// and clock).
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Variant the request's policy selects per stage.
    pub stage_variants: Vec<Variant>,
    /// Summed predicted cost of the selected variants, in weighted
    /// warp-cycle units (lower is better; same units across stages).
    pub cost: f64,
    /// Estimated device cycles for the whole request, derived from `cost`
    /// by spreading the warp-cycle units over the device's SMs and adding
    /// per-stage launch overhead. Coarse — for routing, not reporting.
    pub est_cycles: u64,
    /// Estimated milliseconds on the engine's device (from `est_cycles`).
    pub est_ms: f64,
}

/// Result of one [`Request`].
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Final stage output (`None` in sampled mode).
    pub image: Option<Image<f32>>,
    /// Sum of per-stage launch cycles.
    pub total_cycles: u64,
    /// Where the request's time went (queue wait / plan / execute), in
    /// simulated cycles and host wall-clock.
    pub latency: Latency,
    /// Merged counters across stages.
    pub counters: PerfCounters,
    /// The variant each stage ran.
    pub stage_variants: Vec<Variant>,
    /// Per-region counters merged across stages ([`Region::ALL`] order),
    /// as attributed by the launch classifier; empty when no stage produced
    /// an attribution (degenerate partitions).
    pub per_region: Vec<(Region, PerfCounters)>,
    /// Trace-replay reuse per region, merged across stages ([`Region::ALL`]
    /// order). Populated only by exhaustive runs under the replay engine.
    pub per_region_trace: Vec<(Region, TraceStats)>,
}

/// One experiment point of the paper's evaluation: an app under a pattern
/// at a size, measured under all three policies by
/// [`crate::Engine::measure`].
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Application under test.
    pub app: App,
    /// Border handling pattern.
    pub pattern: BorderPattern,
    /// Square image size.
    pub size: usize,
    /// Block size.
    pub block: (u32, u32),
    /// ISP granularity for the isp/isp+m variants.
    pub granularity: Variant,
}

impl Sweep {
    /// Standard experiment at the paper's block size with block-grained ISP.
    pub fn paper(app: App, pattern: BorderPattern, size: usize) -> Self {
        Sweep {
            app,
            pattern,
            size,
            block: PAPER_BLOCK,
            granularity: Variant::IspBlock,
        }
    }

    /// The [`Request`] for one policy of this sweep point (region-sampled,
    /// as in the paper's timing runs).
    pub fn request(&self, policy: Policy) -> Request {
        Request {
            app: self.app.clone(),
            pattern: self.pattern,
            size: self.size,
            block: self.block,
            granularity: self.granularity,
            policy,
            mode: ExecMode::Sampled,
            strategy: ExecStrategy::Parallel,
        }
    }
}

/// Measured results of one [`Sweep`] point (cycles are simulated totals
/// over all pipeline stages).
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Naive-variant cycles.
    pub naive_cycles: u64,
    /// Always-ISP cycles.
    pub isp_cycles: u64,
    /// Model-guided (isp+m) cycles.
    pub ispm_cycles: u64,
    /// `naive / isp` — Figure 4/6's "isp" series.
    pub speedup_isp: f64,
    /// `naive / ispm` — Figure 6's "isp+m" series.
    pub speedup_ispm: f64,
    /// Variant each stage ran under the model policy.
    pub ispm_variants: Vec<Variant>,
    /// Warp-instruction totals (naive, isp).
    pub warp_instructions: (u64, u64),
    /// Per-stage model gains G (Eq. 10) for stencil stages.
    pub stage_gains: Vec<f64>,
}

impl Measurement {
    /// Whether ISP actually beat naive in measured (simulated) time.
    pub fn isp_measured_better(&self) -> bool {
        self.speedup_isp > 1.0
    }

    /// Whether the model predicted ISP for at least the stencil stages
    /// (point-op stages are always naive and not counted).
    pub fn model_chose_isp(&self) -> bool {
        self.stage_gains.iter().any(|&g| g > 1.0)
    }
}
