//! A minimal, dependency-free stand-in for the subset of `proptest` this
//! workspace uses: numeric range strategies, tuple strategies, `prop_map`,
//! `collection::vec`, the `proptest!`/`prop_assert*`/`prop_assume!` macros,
//! and `ProptestConfig::with_cases`.
//!
//! Semantics differ from upstream in two deliberate ways: inputs are drawn
//! from a fixed deterministic stream (seeded from the test name) rather than
//! an OS entropy source, and failing cases are **not** shrunk. Both keep
//! test runs hermetic and reproducible — a failure always reproduces by
//! re-running the same test binary.

use std::ops::{Range, RangeInclusive};

/// Deterministic case-generation RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case` of the test whose name hashes to `seed`.
    pub fn for_case(seed: u64, case: u64) -> TestRng {
        TestRng {
            state: seed ^ case.wrapping_mul(0xA076_1D64_78BD_642F),
        }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a over a test's name: a stable per-test seed.
pub fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Why a generated case did not run to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseError {
    /// The case was rejected by `prop_assume!`; try another input.
    Reject,
}

/// Run configuration (the `ProptestConfig` analogue).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Smaller than upstream's 256: the workspace's properties drive a
        // whole GPU simulator per case.
        ProptestConfig { cases: 24 }
    }
}

/// A value generator (the `proptest::strategy::Strategy` analogue, minus
/// shrinking).
pub trait Strategy {
    /// Type of generated values.
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (*self.start() as i128 + off) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Always produces a clone of one value (the `proptest::strategy::Just`
/// analogue).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Fixed-length `Vec` of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test module needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Assert inside a property (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($l:expr, $r:expr) => { assert_eq!($l, $r) };
    ($l:expr, $r:expr, $($fmt:tt)+) => { assert_eq!($l, $r, $($fmt)+) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($l:expr, $r:expr) => { assert_ne!($l, $r) };
    ($l:expr, $r:expr, $($fmt:tt)+) => { assert_ne!($l, $r, $($fmt)+) };
}

/// Reject the current case (skip it without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::CaseError::Reject);
        }
    };
}

/// Define property tests: each `fn` runs `cases` times over deterministic
/// generated inputs. Supports the `#![proptest_config(..)]` header and
/// `arg in strategy` bindings, like upstream.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let seed = $crate::name_seed(concat!(module_path!(), "::", stringify!($name)));
                let mut ran: u32 = 0;
                let mut case: u64 = 0;
                // Cap rejections so a too-strict prop_assume! cannot loop
                // forever (upstream errors out similarly).
                while ran < config.cases && case < 20 * config.cases as u64 {
                    let mut rng = $crate::TestRng::for_case(seed, case);
                    case += 1;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let case_fn = || -> ::std::result::Result<(), $crate::CaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    let outcome = case_fn();
                    match outcome {
                        Ok(()) => ran += 1,
                        Err($crate::CaseError::Reject) => continue,
                    }
                }
                assert!(
                    ran >= config.cases / 2,
                    "prop_assume! rejected too many cases ({ran}/{} ran)",
                    config.cases
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::{name_seed, TestRng};

    fn small_even() -> impl Strategy<Value = u32> {
        (0u32..50).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in -5i64..5, b in 1usize..=3, f in 0.5f32..2.0) {
            prop_assert!((-5..5).contains(&a));
            prop_assert!((1..=3).contains(&b));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn mapping_and_tuples(pair in (0u8..10, 0u8..10), even in small_even()) {
            prop_assert!(pair.0 < 10 && pair.1 < 10);
            prop_assert_eq!(even % 2, 0);
        }

        #[test]
        fn vectors_have_requested_length(v in crate::collection::vec(-1.0f32..1.0, 9)) {
            prop_assert_eq!(v.len(), 9);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case(name_seed("x"), 3);
        let mut b = TestRng::for_case(name_seed("x"), 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
