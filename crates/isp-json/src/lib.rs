//! # isp-json
//!
//! A minimal JSON document builder, following the `shim-*` precedent: the
//! build environment has no registry access, so instead of `serde_json`
//! this crate implements exactly the surface the workspace needs — building
//! a [`Json`] value tree and rendering it as standards-compliant text
//! (RFC 8259). There is intentionally no parser: the workspace only *emits*
//! machine-readable output (`BENCH_*.json`, profiling dumps).
//!
//! Integers are kept exact (`u64`/`i64` render without a float round-trip,
//! so performance counters survive unmangled); floats render via Rust's
//! shortest-roundtrip formatting with non-finite values mapped to `null`,
//! as `JSON.stringify` does.

/// A JSON value. Object keys keep insertion order so emitted documents are
/// deterministic and diffable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer, rendered exactly.
    U64(u64),
    /// Signed integer, rendered exactly.
    I64(i64),
    /// Float, shortest-roundtrip; NaN/inf render as `null`.
    F64(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object (append with [`Json::set`]).
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key/value pair to an object, builder-style. Panics when
    /// `self` is not an object.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Look up a key in an object (`None` for missing keys or non-objects).
    /// Test helper — production code builds documents, it does not read
    /// them back.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Sort every object's keys recursively (arrays keep element order).
    /// Insertion order is already deterministic for a fixed code path;
    /// `sort_keys` makes documents whose objects are built from maps or in
    /// data-dependent order (per-region/per-class breakdowns) byte-stable
    /// regardless of how they were assembled.
    pub fn sort_keys(self) -> Json {
        match self {
            Json::Arr(items) => Json::Arr(items.into_iter().map(Json::sort_keys).collect()),
            Json::Obj(fields) => {
                let mut fields: Vec<(String, Json)> = fields
                    .into_iter()
                    .map(|(k, v)| (k, v.sort_keys()))
                    .collect();
                fields.sort_by(|(a, _), (b, _)| a.cmp(b));
                Json::Obj(fields)
            }
            other => other,
        }
    }

    /// Render as compact single-line JSON.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        s
    }

    /// Render as pretty-printed JSON with two-space indentation and a
    /// trailing newline (the diff-friendly layout `BENCH_*.json` uses).
    pub fn render_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(2), 0);
        s.push('\n');
        s
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close) = match indent {
            Some(w) => ("\n", " ".repeat(w * (depth + 1)), " ".repeat(w * depth)),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::I64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => {
                if x.is_finite() {
                    // Always mark floats as floats so readers keep the type.
                    if *x == x.trunc() && x.abs() < 1e15 {
                        out.push_str(&format!("{x:.1}"));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if indent.is_none() {
                            out.push(' ');
                        }
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if indent.is_none() {
                            out.push(' ');
                        }
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::U64(n as u64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::U64(n as u64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::I64(n)
    }
}
impl From<i32> for Json {
    fn from(n: i32) -> Json {
        Json::I64(n as i64)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::F64(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(42u64).render(), "42");
        assert_eq!(Json::from(-7i64).render(), "-7");
        assert_eq!(Json::from(1.5f64).render(), "1.5");
        assert_eq!(Json::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn large_counters_stay_exact() {
        // f64 would mangle this; the U64 arm must not.
        let n = u64::MAX - 1;
        assert_eq!(Json::from(n).render(), n.to_string());
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(Json::from(3.0f64).render(), "3.0");
        assert_eq!(Json::from(0.25f64).render(), "0.25");
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(Json::from(f64::NAN).render(), "null");
        assert_eq!(Json::from(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Json::from("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::from("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn objects_keep_insertion_order() {
        let j = Json::obj()
            .set("z", 1u64)
            .set("a", 2u64)
            .set("m", Json::Arr(vec![Json::from(1u64), Json::from("x")]));
        assert_eq!(j.render(), "{\"z\": 1, \"a\": 2, \"m\": [1, \"x\"]}");
        assert_eq!(j.get("a"), Some(&Json::U64(2)));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn sort_keys_orders_objects_recursively() {
        let j = Json::obj()
            .set("z", Json::obj().set("b", 1u64).set("a", 2u64))
            .set(
                "a",
                Json::Arr(vec![Json::obj().set("y", 1u64).set("x", 2u64)]),
            );
        assert_eq!(
            j.sort_keys().render(),
            "{\"a\": [{\"x\": 2, \"y\": 1}], \"z\": {\"a\": 2, \"b\": 1}}"
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let j = Json::obj().set("k", Json::Arr(vec![Json::from(1u64)]));
        assert_eq!(j.render_pretty(), "{\n  \"k\": [\n    1\n  ]\n}\n");
        assert_eq!(Json::obj().render_pretty(), "{}\n");
    }
}
