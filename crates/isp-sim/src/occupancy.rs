//! Theoretical occupancy calculation (the CUDA Occupancy Calculator,
//! reimplemented).
//!
//! Occupancy = resident warps / maximum warps per SM, where residency is
//! limited by three resources: thread slots, block slots, and the register
//! file. This is the `O_naive` / `O_ISP` input of the paper's prediction
//! model `G = R_reduced * O_ISP / O_naive` (Eq. 10).

use crate::device::DeviceSpec;

/// Result of an occupancy query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancyResult {
    /// Blocks resident per SM.
    pub blocks_per_sm: u32,
    /// Warps resident per SM.
    pub warps_per_sm: u32,
    /// `warps_per_sm / device.max_warps_per_sm` in `[0, 1]`.
    pub occupancy: f64,
    /// Which resource limited residency. When several resources yield the
    /// same block count, the reported limiter is the first in the fixed
    /// priority order `Threads > Blocks > Registers > SharedMemory`; the
    /// full set of binding resources is in [`OccupancyResult::tied`].
    pub limiter: Limiter,
    /// Every resource whose limit equals the achieved block count (always
    /// contains [`OccupancyResult::limiter`]). Exact ties — e.g. thread
    /// slots and block slots both allowing 16 blocks — are visible here
    /// deterministically, independent of evaluation order.
    pub tied: LimiterSet,
}

/// The resource that capped occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    /// Thread/warp slots per SM.
    Threads,
    /// Block slots per SM.
    Blocks,
    /// Register file capacity.
    Registers,
    /// Shared memory capacity.
    SharedMemory,
}

impl Limiter {
    /// All limiters in the tie-breaking priority order.
    pub const ALL: [Limiter; 4] = [
        Limiter::Threads,
        Limiter::Blocks,
        Limiter::Registers,
        Limiter::SharedMemory,
    ];

    fn bit(self) -> u8 {
        match self {
            Limiter::Threads => 1 << 0,
            Limiter::Blocks => 1 << 1,
            Limiter::Registers => 1 << 2,
            Limiter::SharedMemory => 1 << 3,
        }
    }
}

/// A set of [`Limiter`]s (a four-bit mask), used to report all resources
/// that are simultaneously binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LimiterSet(u8);

impl LimiterSet {
    /// The empty set.
    pub fn empty() -> Self {
        LimiterSet(0)
    }

    /// Add a limiter to the set.
    pub fn insert(&mut self, l: Limiter) {
        self.0 |= l.bit();
    }

    /// Whether the set contains `l`.
    pub fn contains(&self, l: Limiter) -> bool {
        self.0 & l.bit() != 0
    }

    /// Number of limiters in the set (≥ 1 on any occupancy result; > 1
    /// means an exact tie).
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterate the members in priority order.
    pub fn iter(&self) -> impl Iterator<Item = Limiter> + '_ {
        Limiter::ALL.into_iter().filter(|&l| self.contains(l))
    }
}

/// Compute theoretical occupancy for a kernel using `regs_per_thread`
/// registers, launched with `threads_per_block` threads per block (no
/// shared memory).
pub fn occupancy(
    device: &DeviceSpec,
    threads_per_block: u32,
    regs_per_thread: u32,
) -> OccupancyResult {
    occupancy_with_shared(device, threads_per_block, regs_per_thread, 0)
}

/// [`occupancy`] with a per-block shared-memory footprint in bytes.
pub fn occupancy_with_shared(
    device: &DeviceSpec,
    threads_per_block: u32,
    regs_per_thread: u32,
    shared_bytes_per_block: u32,
) -> OccupancyResult {
    assert!(threads_per_block > 0, "empty blocks are not launchable");
    assert!(
        threads_per_block <= device.max_threads_per_sm,
        "block of {threads_per_block} threads exceeds the SM thread limit"
    );
    // The toolchain clamps at the hard per-thread cap (spilling beyond it).
    let regs = regs_per_thread.min(device.max_regs_per_thread).max(1);
    let warps_per_block = threads_per_block.div_ceil(device.warp_size);

    let by_threads = device.max_threads_per_sm / threads_per_block;
    let by_blocks = device.max_blocks_per_sm;
    // Registers are allocated per block with rounding to the granularity.
    let regs_per_block = {
        let raw = regs * threads_per_block;
        raw.div_ceil(device.reg_alloc_granularity) * device.reg_alloc_granularity
    };
    // When even a single block's registers exceed the file, the toolchain
    // forces spilling until the block fits — residency never drops below 1.
    let by_regs = (device.regs_per_sm / regs_per_block).max(1);

    // Shared memory: like registers, forced to fit at least one block.
    let by_shared = device
        .shared_mem_per_sm
        .checked_div(shared_bytes_per_block)
        .map_or(u32::MAX, |blocks| blocks.max(1));

    // Candidates in the documented tie-breaking priority order
    // (Threads > Blocks > Registers > SharedMemory). `min_by_key` returns
    // the *first* minimum, so `limiter` is deterministic by construction;
    // `tied` additionally records every candidate achieving the minimum.
    let candidates = [
        (by_threads, Limiter::Threads),
        (by_blocks, Limiter::Blocks),
        (by_regs, Limiter::Registers),
        (by_shared, Limiter::SharedMemory),
    ];
    let (blocks, limiter) = candidates
        .into_iter()
        .min_by_key(|&(b, _)| b)
        .expect("non-empty candidate list");
    let mut tied = LimiterSet::empty();
    for (b, l) in candidates {
        if b == blocks {
            tied.insert(l);
        }
    }

    let warps = (blocks * warps_per_block).min(device.max_warps_per_sm);
    OccupancyResult {
        blocks_per_sm: blocks,
        warps_per_sm: warps,
        occupancy: warps as f64 / device.max_warps_per_sm as f64,
        limiter,
        tied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use proptest::prelude::*;

    #[test]
    fn full_occupancy_with_few_registers_kepler() {
        let d = DeviceSpec::gtx680();
        // 128-thread blocks, 32 regs/thread: 16 blocks fit exactly.
        let r = occupancy(&d, 128, 32);
        assert_eq!(r.blocks_per_sm, 16);
        assert_eq!(r.warps_per_sm, 64);
        assert_eq!(r.occupancy, 1.0);
    }

    #[test]
    fn register_pressure_reduces_occupancy_on_kepler_not_turing() {
        // The paper's §VI-A.2 mechanism, in one test: a kernel using 40
        // registers per thread loses occupancy on Kepler but stays at full
        // occupancy on Turing (whose SM has twice the registers per thread).
        let k = DeviceSpec::gtx680();
        let t = DeviceSpec::rtx2080();
        let ok = occupancy(&k, 128, 40);
        let ot = occupancy(&t, 128, 40);
        assert!(ok.occupancy < 1.0, "Kepler must lose occupancy: {ok:?}");
        assert_eq!(ok.limiter, Limiter::Registers);
        assert_eq!(ot.occupancy, 1.0, "Turing must not: {ot:?}");
    }

    #[test]
    fn more_registers_never_increase_occupancy() {
        let d = DeviceSpec::gtx680();
        let mut prev = f64::INFINITY;
        for regs in (8..=63).step_by(5) {
            let o = occupancy(&d, 128, regs).occupancy;
            assert!(
                o <= prev,
                "occupancy must be monotone non-increasing in regs"
            );
            prev = o;
        }
    }

    #[test]
    fn block_slot_limit() {
        let d = DeviceSpec::gtx680();
        // 32-thread blocks: thread slots allow 64 blocks but only 16 slots.
        let r = occupancy(&d, 32, 16);
        assert_eq!(r.blocks_per_sm, 16);
        assert_eq!(r.limiter, Limiter::Blocks);
        assert_eq!(r.warps_per_sm, 16);
        assert!((r.occupancy - 0.25).abs() < 1e-12);
    }

    #[test]
    fn thread_slot_limit() {
        let d = DeviceSpec::rtx2080();
        let r = occupancy(&d, 1024, 16);
        assert_eq!(r.blocks_per_sm, 1);
        assert_eq!(r.limiter, Limiter::Threads);
        assert_eq!(r.occupancy, 1.0);
    }

    #[test]
    fn exact_tie_reports_priority_limiter_and_full_set() {
        let d = DeviceSpec::gtx680();
        // 128-thread blocks: thread slots allow 2048/128 = 16 blocks and the
        // block-slot limit is also 16 — an exact Threads/Blocks tie. With 16
        // regs/thread the register file allows 65536/2048 = 32 blocks (not
        // binding).
        let r = occupancy(&d, 128, 16);
        assert_eq!(r.blocks_per_sm, 16);
        assert_eq!(r.limiter, Limiter::Threads, "priority order breaks ties");
        assert!(r.tied.contains(Limiter::Threads));
        assert!(r.tied.contains(Limiter::Blocks));
        assert!(!r.tied.contains(Limiter::Registers));
        assert!(!r.tied.contains(Limiter::SharedMemory));
        assert_eq!(r.tied.len(), 2);
        assert_eq!(
            r.tied.iter().collect::<Vec<_>>(),
            vec![Limiter::Threads, Limiter::Blocks]
        );
    }

    #[test]
    fn triple_tie_includes_registers() {
        let d = DeviceSpec::gtx680();
        // 32 regs/thread: registers also cap at 65536 / (32*128) = 16 —
        // threads, blocks, and registers all bind at once.
        let r = occupancy(&d, 128, 32);
        assert_eq!(r.blocks_per_sm, 16);
        assert_eq!(r.limiter, Limiter::Threads);
        assert_eq!(r.tied.len(), 3);
        assert!(r.tied.contains(Limiter::Registers));
    }

    #[test]
    fn untied_result_has_singleton_set() {
        let d = DeviceSpec::gtx680();
        let r = occupancy(&d, 128, 40); // register-limited (see above test)
        assert_eq!(r.limiter, Limiter::Registers);
        assert_eq!(r.tied.len(), 1);
        assert!(r.tied.contains(Limiter::Registers));
    }

    #[test]
    fn regs_clamped_at_device_cap() {
        let d = DeviceSpec::gtx680();
        // 200 regs/thread is beyond Kepler's 63-reg cap: spilled, not fatal.
        let r = occupancy(&d, 256, 200);
        let r63 = occupancy(&d, 256, 63);
        assert_eq!(r, r63);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_block_rejected() {
        let d = DeviceSpec::rtx2080();
        let _ = occupancy(&d, 2048, 16);
    }

    proptest! {
        #[test]
        fn occupancy_always_in_unit_interval(
            threads in 32u32..=1024,
            regs in 1u32..255,
        ) {
            for d in DeviceSpec::all() {
                if threads > d.max_threads_per_sm { continue; }
                let r = occupancy(&d, threads, regs);
                prop_assert!(r.occupancy > 0.0 && r.occupancy <= 1.0);
                prop_assert!(r.blocks_per_sm >= 1);
                prop_assert!(r.warps_per_sm <= d.max_warps_per_sm);
                // The reported limiter is always the highest-priority member
                // of the tied set.
                prop_assert!(r.tied.contains(r.limiter));
                prop_assert_eq!(r.tied.iter().next(), Some(r.limiter));
            }
        }

        #[test]
        fn resident_registers_fit_the_file(
            threads in 32u32..=1024,
            regs in 1u32..63,
        ) {
            let d = DeviceSpec::gtx680();
            if threads > d.max_threads_per_sm { return Ok(()); }
            let r = occupancy(&d, threads, regs);
            let per_block =
                (regs * threads).div_ceil(d.reg_alloc_granularity) * d.reg_alloc_granularity;
            prop_assert!(r.blocks_per_sm * per_block <= d.regs_per_sm);
        }
    }
}
