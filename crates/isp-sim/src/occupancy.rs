//! Theoretical occupancy calculation (the CUDA Occupancy Calculator,
//! reimplemented).
//!
//! Occupancy = resident warps / maximum warps per SM, where residency is
//! limited by three resources: thread slots, block slots, and the register
//! file. This is the `O_naive` / `O_ISP` input of the paper's prediction
//! model `G = R_reduced * O_ISP / O_naive` (Eq. 10).

use crate::device::DeviceSpec;

/// Result of an occupancy query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancyResult {
    /// Blocks resident per SM.
    pub blocks_per_sm: u32,
    /// Warps resident per SM.
    pub warps_per_sm: u32,
    /// `warps_per_sm / device.max_warps_per_sm` in `[0, 1]`.
    pub occupancy: f64,
    /// Which resource limited residency.
    pub limiter: Limiter,
}

/// The resource that capped occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    /// Thread/warp slots per SM.
    Threads,
    /// Block slots per SM.
    Blocks,
    /// Register file capacity.
    Registers,
    /// Shared memory capacity.
    SharedMemory,
}

/// Compute theoretical occupancy for a kernel using `regs_per_thread`
/// registers, launched with `threads_per_block` threads per block (no
/// shared memory).
pub fn occupancy(
    device: &DeviceSpec,
    threads_per_block: u32,
    regs_per_thread: u32,
) -> OccupancyResult {
    occupancy_with_shared(device, threads_per_block, regs_per_thread, 0)
}

/// [`occupancy`] with a per-block shared-memory footprint in bytes.
pub fn occupancy_with_shared(
    device: &DeviceSpec,
    threads_per_block: u32,
    regs_per_thread: u32,
    shared_bytes_per_block: u32,
) -> OccupancyResult {
    assert!(threads_per_block > 0, "empty blocks are not launchable");
    assert!(
        threads_per_block <= device.max_threads_per_sm,
        "block of {threads_per_block} threads exceeds the SM thread limit"
    );
    // The toolchain clamps at the hard per-thread cap (spilling beyond it).
    let regs = regs_per_thread.min(device.max_regs_per_thread).max(1);
    let warps_per_block = threads_per_block.div_ceil(device.warp_size);

    let by_threads = device.max_threads_per_sm / threads_per_block;
    let by_blocks = device.max_blocks_per_sm;
    // Registers are allocated per block with rounding to the granularity.
    let regs_per_block = {
        let raw = regs * threads_per_block;
        raw.div_ceil(device.reg_alloc_granularity) * device.reg_alloc_granularity
    };
    // When even a single block's registers exceed the file, the toolchain
    // forces spilling until the block fits — residency never drops below 1.
    let by_regs = (device.regs_per_sm / regs_per_block).max(1);

    // Shared memory: like registers, forced to fit at least one block.
    let by_shared = device
        .shared_mem_per_sm
        .checked_div(shared_bytes_per_block)
        .map_or(u32::MAX, |blocks| blocks.max(1));

    let (blocks, limiter) = [
        (by_threads, Limiter::Threads),
        (by_blocks, Limiter::Blocks),
        (by_regs, Limiter::Registers),
        (by_shared, Limiter::SharedMemory),
    ]
    .into_iter()
    .min_by_key(|&(b, _)| b)
    .expect("non-empty candidate list");

    let warps = (blocks * warps_per_block).min(device.max_warps_per_sm);
    OccupancyResult {
        blocks_per_sm: blocks,
        warps_per_sm: warps,
        occupancy: warps as f64 / device.max_warps_per_sm as f64,
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use proptest::prelude::*;

    #[test]
    fn full_occupancy_with_few_registers_kepler() {
        let d = DeviceSpec::gtx680();
        // 128-thread blocks, 32 regs/thread: 16 blocks fit exactly.
        let r = occupancy(&d, 128, 32);
        assert_eq!(r.blocks_per_sm, 16);
        assert_eq!(r.warps_per_sm, 64);
        assert_eq!(r.occupancy, 1.0);
    }

    #[test]
    fn register_pressure_reduces_occupancy_on_kepler_not_turing() {
        // The paper's §VI-A.2 mechanism, in one test: a kernel using 40
        // registers per thread loses occupancy on Kepler but stays at full
        // occupancy on Turing (whose SM has twice the registers per thread).
        let k = DeviceSpec::gtx680();
        let t = DeviceSpec::rtx2080();
        let ok = occupancy(&k, 128, 40);
        let ot = occupancy(&t, 128, 40);
        assert!(ok.occupancy < 1.0, "Kepler must lose occupancy: {ok:?}");
        assert_eq!(ok.limiter, Limiter::Registers);
        assert_eq!(ot.occupancy, 1.0, "Turing must not: {ot:?}");
    }

    #[test]
    fn more_registers_never_increase_occupancy() {
        let d = DeviceSpec::gtx680();
        let mut prev = f64::INFINITY;
        for regs in (8..=63).step_by(5) {
            let o = occupancy(&d, 128, regs).occupancy;
            assert!(
                o <= prev,
                "occupancy must be monotone non-increasing in regs"
            );
            prev = o;
        }
    }

    #[test]
    fn block_slot_limit() {
        let d = DeviceSpec::gtx680();
        // 32-thread blocks: thread slots allow 64 blocks but only 16 slots.
        let r = occupancy(&d, 32, 16);
        assert_eq!(r.blocks_per_sm, 16);
        assert_eq!(r.limiter, Limiter::Blocks);
        assert_eq!(r.warps_per_sm, 16);
        assert!((r.occupancy - 0.25).abs() < 1e-12);
    }

    #[test]
    fn thread_slot_limit() {
        let d = DeviceSpec::rtx2080();
        let r = occupancy(&d, 1024, 16);
        assert_eq!(r.blocks_per_sm, 1);
        assert_eq!(r.limiter, Limiter::Threads);
        assert_eq!(r.occupancy, 1.0);
    }

    #[test]
    fn regs_clamped_at_device_cap() {
        let d = DeviceSpec::gtx680();
        // 200 regs/thread is beyond Kepler's 63-reg cap: spilled, not fatal.
        let r = occupancy(&d, 256, 200);
        let r63 = occupancy(&d, 256, 63);
        assert_eq!(r, r63);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_block_rejected() {
        let d = DeviceSpec::rtx2080();
        let _ = occupancy(&d, 2048, 16);
    }

    proptest! {
        #[test]
        fn occupancy_always_in_unit_interval(
            threads in 32u32..=1024,
            regs in 1u32..255,
        ) {
            for d in DeviceSpec::all() {
                if threads > d.max_threads_per_sm { continue; }
                let r = occupancy(&d, threads, regs);
                prop_assert!(r.occupancy > 0.0 && r.occupancy <= 1.0);
                prop_assert!(r.blocks_per_sm >= 1);
                prop_assert!(r.warps_per_sm <= d.max_warps_per_sm);
            }
        }

        #[test]
        fn resident_registers_fit_the_file(
            threads in 32u32..=1024,
            regs in 1u32..63,
        ) {
            let d = DeviceSpec::gtx680();
            if threads > d.max_threads_per_sm { return Ok(()); }
            let r = occupancy(&d, threads, regs);
            let per_block =
                (regs * threads).div_ceil(d.reg_alloc_granularity) * d.reg_alloc_granularity;
            prop_assert!(r.blocks_per_sm * per_block <= d.regs_per_sm);
        }
    }
}
