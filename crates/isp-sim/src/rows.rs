//! Full-warp row kernels: the innermost `[u32; 32]` lane loops of the
//! decoded and replay engines, factored into named functions so a SIMD
//! backend can replace the scalar loops without touching dispatch.
//!
//! Bit-exactness contract: every function here must produce results
//! bit-identical to the scalar reference loops (which replicate
//! [`crate::interp`]'s eval functions lane by lane) for *all* operand bit
//! patterns — NaN payloads, signalling NaNs, denormals, signed zeros, shift
//! counts ≥ 32, `i32::MIN / -1`. The `simd` feature enables an AVX2 backend
//! on x86-64; operations whose packed x86 semantics can differ from Rust
//! scalar semantics in any reachable case (integer division/remainder,
//! float remainder, `f32 → s32` rounding, transcendentals) stay scalar.
//! Float min/max is vectorised only for strictly-ordered lanes; unordered
//! or equal lanes (NaNs, `±0.0` pairs, exact ties) take a scalar fixup, so
//! the platform-dependent lowering of those cases never leaks in.
//!
//! All functions take the register file slice plus row *bases* (`slot *
//! 32`), read their input rows into locals first, and only then write the
//! destination row — so a destination aliasing a source keeps element-wise
//! semantics, exactly like the executor's `warp_map` macros.

use crate::interp::{eval_bin_f, eval_bin_i, eval_cmp_f, eval_cmp_i, WARP};
use isp_ir::{BinOp, CmpOp};
use std::sync::atomic::{AtomicU8, Ordering};

/// SIMD backend state: 0 = not yet detected, 1 = off, 2 = on.
static SIMD_MODE: AtomicU8 = AtomicU8::new(0);

/// Whether this build + host can run the SIMD backend at all.
fn simd_supported() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// Force the SIMD backend on or off for the whole process — the
/// differential tests and the fusion ablation compare both paths in one
/// binary. Enabling is a no-op when the `simd` feature is off or the host
/// lacks AVX2; the scalar path is always available.
pub fn set_simd_enabled(enabled: bool) {
    let mode = if enabled && simd_supported() { 2 } else { 1 };
    SIMD_MODE.store(mode, Ordering::Relaxed);
}

/// Whether row kernels currently take the SIMD path. Defaults to host
/// detection on first use (always `false` without the `simd` feature).
#[inline]
pub fn simd_enabled() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        match SIMD_MODE.load(Ordering::Relaxed) {
            2 => true,
            1 => false,
            _ => {
                let on = simd_supported();
                SIMD_MODE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
                on
            }
        }
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// Copy of the register row at `base`: one bounds check, then the returned
/// array indexes check-free.
#[inline(always)]
fn row(regs: &[u32], base: usize) -> [u32; WARP] {
    let mut out = [0u32; WARP];
    out.copy_from_slice(&regs[base..base + WARP]);
    out
}

/// Register row at `base` as a fixed-size array for check-free writes.
#[inline(always)]
fn row_mut(regs: &mut [u32], base: usize) -> &mut [u32; WARP] {
    (&mut regs[base..base + WARP]).try_into().unwrap()
}

/// Full-warp integer binary op: `regs[d..] = op(regs[a..], regs[b..])`.
#[inline]
pub fn bin_i(op: BinOp, regs: &mut [u32], d: usize, a: usize, b: usize) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_enabled() && avx2::bin_i(op, regs, d, a, b) {
        return;
    }
    let xs = row(regs, a);
    let ys = row(regs, b);
    let out = row_mut(regs, d);
    for l in 0..WARP {
        out[l] = eval_bin_i(op, xs[l] as i32, ys[l] as i32) as u32;
    }
}

/// Full-warp float binary op (operands and result as raw bits).
#[inline]
pub fn bin_f(op: BinOp, regs: &mut [u32], d: usize, a: usize, b: usize) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_enabled() && avx2::bin_f(op, regs, d, a, b) {
        return;
    }
    let xs = row(regs, a);
    let ys = row(regs, b);
    let out = row_mut(regs, d);
    for l in 0..WARP {
        out[l] = eval_bin_f(op, f32::from_bits(xs[l]), f32::from_bits(ys[l])).to_bits();
    }
}

/// Full-warp integer multiply-add: `d = a * b + c` (wrapping).
#[inline]
pub fn mad_i(regs: &mut [u32], d: usize, a: usize, b: usize, c: usize) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_enabled() {
        // SAFETY: `simd_enabled` is true only after AVX2 detection.
        unsafe { avx2::mad_i(regs, d, a, b, c) };
        return;
    }
    let xs = row(regs, a);
    let ys = row(regs, b);
    let zs = row(regs, c);
    let out = row_mut(regs, d);
    for l in 0..WARP {
        out[l] = (xs[l] as i32)
            .wrapping_mul(ys[l] as i32)
            .wrapping_add(zs[l] as i32) as u32;
    }
}

/// Full-warp float multiply-add: separate multiply then add, both rounded —
/// NOT a fused mad, matching the scalar interpreter exactly.
#[inline]
pub fn mad_f(regs: &mut [u32], d: usize, a: usize, b: usize, c: usize) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_enabled() {
        // SAFETY: `simd_enabled` is true only after AVX2 detection.
        unsafe { avx2::mad_f(regs, d, a, b, c) };
        return;
    }
    let xs = row(regs, a);
    let ys = row(regs, b);
    let zs = row(regs, c);
    let out = row_mut(regs, d);
    for l in 0..WARP {
        let v = f32::from_bits(xs[l]) * f32::from_bits(ys[l]) + f32::from_bits(zs[l]);
        out[l] = crate::interp::canon_f32(v).to_bits();
    }
}

/// Full-warp `s32 → f32` convert (round-to-nearest-even, the default FP
/// environment for both the scalar cast and `vcvtdq2ps`).
#[inline]
pub fn cvt_if(regs: &mut [u32], d: usize, a: usize) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_enabled() {
        // SAFETY: `simd_enabled` is true only after AVX2 detection.
        unsafe { avx2::cvt_if(regs, d, a) };
        return;
    }
    let xs = row(regs, a);
    let out = row_mut(regs, d);
    for l in 0..WARP {
        out[l] = (xs[l] as i32 as f32).to_bits();
    }
}

/// Full-warp integer compare, producing 0/1 predicate rows.
#[inline]
pub fn set_p_i(cmp: CmpOp, regs: &mut [u32], d: usize, a: usize, b: usize) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_enabled() {
        // SAFETY: `simd_enabled` is true only after AVX2 detection.
        unsafe { avx2::set_p_i(cmp, regs, d, a, b) };
        return;
    }
    let xs = row(regs, a);
    let ys = row(regs, b);
    let out = row_mut(regs, d);
    for l in 0..WARP {
        out[l] = eval_cmp_i(cmp, xs[l] as i32, ys[l] as i32) as u32;
    }
}

/// Full-warp float compare (IEEE: any NaN operand compares false except for
/// `Ne`, which compares true — the ordered/unordered predicate split).
#[inline]
pub fn set_p_f(cmp: CmpOp, regs: &mut [u32], d: usize, a: usize, b: usize) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_enabled() {
        // SAFETY: `simd_enabled` is true only after AVX2 detection.
        unsafe { avx2::set_p_f(cmp, regs, d, a, b) };
        return;
    }
    let xs = row(regs, a);
    let ys = row(regs, b);
    let out = row_mut(regs, d);
    for l in 0..WARP {
        out[l] = eval_cmp_f(cmp, f32::from_bits(xs[l]), f32::from_bits(ys[l])) as u32;
    }
}

/// Translate a recorded address row by a constant delta — the replay
/// engine's rebased copy/translate step (`addrs[l] + delta` in `i64`, so no
/// wrapping at the `i32` boundary).
#[inline]
pub fn add_delta(addrs: &[i32; WARP], delta: i64) -> [i64; WARP] {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_enabled() {
        // SAFETY: `simd_enabled` is true only after AVX2 detection.
        return unsafe { avx2::add_delta(addrs, delta) };
    }
    std::array::from_fn(|l| addrs[l] as i64 + delta)
}

/// Fused pair of integer mads — one SIMD dispatch covers the whole
/// superinstruction group; the scalar path is the two constituent row ops
/// in sequence (bit-identical by construction).
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn mad2_i(
    regs: &mut [u32],
    d1: usize,
    a1: usize,
    b1: usize,
    c1: usize,
    d2: usize,
    a2: usize,
    b2: usize,
    c2: usize,
) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_enabled() {
        // SAFETY: `simd_enabled` is true only after AVX2 detection.
        unsafe { avx2::mad2_i(regs, d1, a1, b1, c1, d2, a2, b2, c2) };
        return;
    }
    mad_i(regs, d1, a1, b1, c1);
    mad_i(regs, d2, a2, b2, c2);
}

/// Fused pair of float mads (each still a separate rounded multiply + add).
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn mad2_f(
    regs: &mut [u32],
    d1: usize,
    a1: usize,
    b1: usize,
    c1: usize,
    d2: usize,
    a2: usize,
    b2: usize,
    c2: usize,
) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_enabled() {
        // SAFETY: `simd_enabled` is true only after AVX2 detection.
        unsafe { avx2::mad2_f(regs, d1, a1, b1, c1, d2, a2, b2, c2) };
        return;
    }
    mad_f(regs, d1, a1, b1, c1);
    mad_f(regs, d2, a2, b2, c2);
}

/// Fused float multiply + accumulate as two separately-rounded ops — the
/// stencil weight-apply pair (`mul.f32 ; add.f32`).
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn mul_add_f(
    regs: &mut [u32],
    d1: usize,
    a1: usize,
    b1: usize,
    d2: usize,
    a2: usize,
    b2: usize,
) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_enabled() {
        // SAFETY: `simd_enabled` is true only after AVX2 detection.
        unsafe { avx2::mul_add_f(regs, d1, a1, b1, d2, a2, b2) };
        return;
    }
    bin_f(BinOp::Mul, regs, d1, a1, b1);
    bin_f(BinOp::Add, regs, d2, a2, b2);
}

/// Fused mad + mad + integer min — the stencil coordinate-clamp triple.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn mad2_i_min(
    regs: &mut [u32],
    d1: usize,
    a1: usize,
    b1: usize,
    c1: usize,
    d2: usize,
    a2: usize,
    b2: usize,
    c2: usize,
    d3: usize,
    a3: usize,
    b3: usize,
) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_enabled() {
        // SAFETY: `simd_enabled` is true only after AVX2 detection.
        unsafe { avx2::mad2_i_min(regs, d1, a1, b1, c1, d2, a2, b2, c2, d3, a3, b3) };
        return;
    }
    mad_i(regs, d1, a1, b1, c1);
    mad_i(regs, d2, a2, b2, c2);
    bin_i(BinOp::Min, regs, d3, a3, b3);
}

/// Full-warp global-memory fast path: bounds-check a row of element
/// addresses (register bits interpreted as `i32`) against `len` and count
/// distinct 32-element segments, in one vectorised pass. `None` means
/// "take the exact scalar path": SIMD is off, a lane is out of bounds (the
/// scalar re-walk attributes the faulting lane), or the segment row is not
/// monotonically non-decreasing (the scalar counter sorts).
#[inline]
pub fn full_warp_tx_fast(addrs: &[u32; WARP], len: usize) -> Option<u64> {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_enabled() {
        // SAFETY: `simd_enabled` is true only after AVX2 detection.
        return unsafe { avx2::full_warp_tx(addrs, len) };
    }
    let _ = (addrs, len);
    None
}

/// Full-warp gather: `out[l] = buf[addrs[l] as i32 as usize]`.
///
/// # Safety
/// Every `addrs[l] as i32` must be non-negative and less than `buf.len()`
/// — the caller has already validated the row ([`full_warp_tx_fast`] or
/// the scalar bounds walk).
#[inline]
pub unsafe fn gather_row(out: &mut [u32; WARP], addrs: &[u32; WARP], buf: &[u32]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_enabled() {
        return avx2::gather(out, addrs, buf);
    }
    for l in 0..WARP {
        out[l] = *buf.get_unchecked(addrs[l] as i32 as usize);
    }
}

/// The AVX2 backend. Every function is `#[target_feature(enable = "avx2")]`
/// and only reachable behind [`simd_enabled`]'s runtime detection. 32 lanes
/// = four 256-bit chunks; loads/stores are unaligned (register rows have no
/// alignment guarantee inside the scratch arena).
///
/// Unlike the scalar loops, these kernels read and write the register file
/// *directly* — no copy-the-rows-first step. That is exact because row
/// bases are always `slot * 32`: two rows are either identical or fully
/// disjoint, and each chunk is loaded before the same chunk is stored, so
/// a destination aliasing a source still sees element-wise semantics.
/// Fused multi-op kernels interleave per chunk; an op reading a row the
/// previous op wrote picks up the just-stored chunk, which is exactly the
/// sequential result.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub(crate) mod avx2 {
    use super::{row, row_mut, WARP};
    use core::arch::x86_64::*;
    use isp_ir::{BinOp, CmpOp};

    const CHUNKS: usize = WARP / 8;

    #[inline(always)]
    unsafe fn load(p: &[u32; WARP], c: usize) -> __m256i {
        _mm256_loadu_si256(p.as_ptr().add(c * 8) as *const __m256i)
    }

    #[inline(always)]
    unsafe fn store(p: &mut [u32; WARP], c: usize, v: __m256i) {
        _mm256_storeu_si256(p.as_mut_ptr().add(c * 8) as *mut __m256i, v)
    }

    #[inline(always)]
    unsafe fn loadf(p: &[u32; WARP], c: usize) -> __m256 {
        _mm256_loadu_ps(p.as_ptr().add(c * 8) as *const f32)
    }

    #[inline(always)]
    unsafe fn storef(p: &mut [u32; WARP], c: usize, v: __m256) {
        _mm256_storeu_ps(p.as_mut_ptr().add(c * 8) as *mut f32, v)
    }

    /// One bounds check per register row, so the pointer loads below stay
    /// inside the file; elided from the hot path by branch prediction.
    #[inline(always)]
    fn check(regs: &[u32], bases: &[usize]) {
        for &b in bases {
            assert!(b + WARP <= regs.len(), "register row out of range");
        }
    }

    #[inline(always)]
    unsafe fn vl(p: *const u32, base: usize, c: usize) -> __m256i {
        _mm256_loadu_si256(p.add(base + c * 8) as *const __m256i)
    }

    #[inline(always)]
    unsafe fn vs(p: *mut u32, base: usize, c: usize, v: __m256i) {
        _mm256_storeu_si256(p.add(base + c * 8) as *mut __m256i, v)
    }

    #[inline(always)]
    unsafe fn vlf(p: *const u32, base: usize, c: usize) -> __m256 {
        _mm256_loadu_ps(p.add(base + c * 8) as *const f32)
    }

    #[inline(always)]
    unsafe fn vsf(p: *mut u32, base: usize, c: usize, v: __m256) {
        _mm256_storeu_ps(p.add(base + c * 8) as *mut f32, v)
    }

    /// Vectorise an integer binary op; `false` defers division/remainder
    /// (quotient edge cases stay on the one true scalar path) to the caller.
    #[inline]
    pub(crate) fn bin_i(op: BinOp, regs: &mut [u32], d: usize, a: usize, b: usize) -> bool {
        if matches!(op, BinOp::Div | BinOp::Rem) {
            return false;
        }
        // SAFETY: caller checked `simd_enabled` (AVX2 detected).
        unsafe { bin_i_avx2(op, regs, d, a, b) };
        true
    }

    #[target_feature(enable = "avx2")]
    unsafe fn bin_i_avx2(op: BinOp, regs: &mut [u32], d: usize, a: usize, b: usize) {
        check(regs, &[d, a, b]);
        let p = regs.as_mut_ptr();
        let k31 = _mm256_set1_epi32(31);
        for c in 0..CHUNKS {
            let x = vl(p, a, c);
            let y = vl(p, b, c);
            let r = match op {
                BinOp::Add => _mm256_add_epi32(x, y),
                BinOp::Sub => _mm256_sub_epi32(x, y),
                BinOp::Mul => _mm256_mullo_epi32(x, y),
                BinOp::Min => _mm256_min_epi32(x, y),
                BinOp::Max => _mm256_max_epi32(x, y),
                BinOp::And => _mm256_and_si256(x, y),
                BinOp::Or => _mm256_or_si256(x, y),
                BinOp::Xor => _mm256_xor_si256(x, y),
                // Shift counts masked to `& 31`, exactly like `wrapping_shl`
                // — variable shifts then never hit the ≥ 32 zeroing case.
                BinOp::Shl => _mm256_sllv_epi32(x, _mm256_and_si256(y, k31)),
                BinOp::Shr => _mm256_srav_epi32(x, _mm256_and_si256(y, k31)),
                BinOp::Div | BinOp::Rem => unreachable!("kept scalar"),
            };
            vs(p, d, c, r);
        }
    }

    /// Vectorise a float binary op; `false` defers `Rem` (libm `fmodf`
    /// stays scalar).
    #[inline]
    pub(crate) fn bin_f(op: BinOp, regs: &mut [u32], d: usize, a: usize, b: usize) -> bool {
        match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                // SAFETY: caller checked `simd_enabled` (AVX2 detected).
                unsafe { bin_f_arith(op, regs, d, a, b) };
                true
            }
            BinOp::Min | BinOp::Max => {
                // SAFETY: as above.
                unsafe { bin_f_minmax(op == BinOp::Max, regs, d, a, b) };
                true
            }
            _ => false,
        }
    }

    /// Canonicalise a chunk of arithmetic results: NaN lanes become the
    /// canonical `0x7fffffff`, matching [`crate::interp::canon_f32`]. This
    /// is what keeps the vector kernels bit-identical to the scalar
    /// evaluator when *both* operands of an op are NaN — x86 propagates
    /// `src1`'s payload, but which operand the compiler put in `src1`
    /// differs between the scalar and packed instruction selections.
    #[inline(always)]
    unsafe fn canon_chunk(r: __m256) -> __m256 {
        let nan = _mm256_cmp_ps::<_CMP_UNORD_Q>(r, r);
        let canon = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff));
        _mm256_blendv_ps(r, canon, nan)
    }

    /// Packed add/sub/mul/div round exactly like Rust scalar ops under the
    /// default FP environment; NaN results are canonicalised on both paths.
    #[target_feature(enable = "avx2")]
    unsafe fn bin_f_arith(op: BinOp, regs: &mut [u32], d: usize, a: usize, b: usize) {
        check(regs, &[d, a, b]);
        let p = regs.as_mut_ptr();
        for c in 0..CHUNKS {
            let x = vlf(p, a, c);
            let y = vlf(p, b, c);
            let r = match op {
                BinOp::Add => _mm256_add_ps(x, y),
                BinOp::Sub => _mm256_sub_ps(x, y),
                BinOp::Mul => _mm256_mul_ps(x, y),
                BinOp::Div => _mm256_div_ps(x, y),
                _ => unreachable!("dispatched above"),
            };
            vsf(p, d, c, canon_chunk(r));
        }
    }

    /// Float min/max: strictly-ordered lanes pick the smaller/larger operand
    /// by blend — a unique value, so necessarily the scalar result. Lanes
    /// that are *not* strictly ordered (a NaN operand, or equal values —
    /// which includes `±0.0` pairs) fall back to scalar `f32::min`/`max`,
    /// sidestepping the platform-defined both-NaN payload and signed-zero
    /// choices entirely. The fixup mask is 0 on ordinary data.
    #[target_feature(enable = "avx2")]
    unsafe fn bin_f_minmax(is_max: bool, regs: &mut [u32], d: usize, a: usize, b: usize) {
        let xs = row(regs, a);
        let ys = row(regs, b);
        let out = row_mut(regs, d);
        let mut fix = 0u32;
        for c in 0..CHUNKS {
            let x = loadf(&xs, c);
            let y = loadf(&ys, c);
            let lt = _mm256_cmp_ps::<_CMP_LT_OQ>(x, y);
            let gt = _mm256_cmp_ps::<_CMP_GT_OQ>(x, y);
            let pick_x = if is_max { gt } else { lt };
            storef(out, c, _mm256_blendv_ps(y, x, pick_x));
            let ordered = _mm256_movemask_ps(_mm256_or_ps(lt, gt)) as u32;
            fix |= (!ordered & 0xff) << (c * 8);
        }
        while fix != 0 {
            let l = fix.trailing_zeros() as usize;
            fix &= fix - 1;
            let (x, y) = (f32::from_bits(xs[l]), f32::from_bits(ys[l]));
            let v = if is_max { x.max(y) } else { x.min(y) };
            out[l] = crate::interp::canon_f32(v).to_bits();
        }
    }

    /// One integer mad chunk: `a * b + c`, wrapping.
    #[inline(always)]
    unsafe fn mad_i_chunk(p: *mut u32, a: usize, b: usize, c: usize, ch: usize) -> __m256i {
        _mm256_add_epi32(_mm256_mullo_epi32(vl(p, a, ch), vl(p, b, ch)), vl(p, c, ch))
    }

    /// One float mad chunk: separate `vmulps` + `vaddps` — NOT `vfmadd`,
    /// which would skip the intermediate rounding the scalar interpreter
    /// performs.
    #[inline(always)]
    unsafe fn mad_f_chunk(p: *mut u32, a: usize, b: usize, c: usize, ch: usize) -> __m256 {
        canon_chunk(_mm256_add_ps(
            _mm256_mul_ps(vlf(p, a, ch), vlf(p, b, ch)),
            vlf(p, c, ch),
        ))
    }

    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn mad_i(regs: &mut [u32], d: usize, a: usize, b: usize, c: usize) {
        check(regs, &[d, a, b, c]);
        let p = regs.as_mut_ptr();
        for ch in 0..CHUNKS {
            let r = mad_i_chunk(p, a, b, c, ch);
            vs(p, d, ch, r);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn mad_f(regs: &mut [u32], d: usize, a: usize, b: usize, c: usize) {
        check(regs, &[d, a, b, c]);
        let p = regs.as_mut_ptr();
        for ch in 0..CHUNKS {
            let r = mad_f_chunk(p, a, b, c, ch);
            vsf(p, d, ch, r);
        }
    }

    /// Fused mad + mad, chunk-interleaved: the second op's loads see the
    /// first op's just-stored chunk, which is exactly the sequential
    /// result (rows are identical or disjoint).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn mad2_i(
        regs: &mut [u32],
        d1: usize,
        a1: usize,
        b1: usize,
        c1: usize,
        d2: usize,
        a2: usize,
        b2: usize,
        c2: usize,
    ) {
        check(regs, &[d1, a1, b1, c1, d2, a2, b2, c2]);
        let p = regs.as_mut_ptr();
        for ch in 0..CHUNKS {
            let r1 = mad_i_chunk(p, a1, b1, c1, ch);
            vs(p, d1, ch, r1);
            let r2 = mad_i_chunk(p, a2, b2, c2, ch);
            vs(p, d2, ch, r2);
        }
    }

    /// Fused float mad + mad (each still separately rounded).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn mad2_f(
        regs: &mut [u32],
        d1: usize,
        a1: usize,
        b1: usize,
        c1: usize,
        d2: usize,
        a2: usize,
        b2: usize,
        c2: usize,
    ) {
        check(regs, &[d1, a1, b1, c1, d2, a2, b2, c2]);
        let p = regs.as_mut_ptr();
        for ch in 0..CHUNKS {
            let r1 = mad_f_chunk(p, a1, b1, c1, ch);
            vsf(p, d1, ch, r1);
            let r2 = mad_f_chunk(p, a2, b2, c2, ch);
            vsf(p, d2, ch, r2);
        }
    }

    /// Predicate row to lane mask: bit `l` set iff lane `l` of the row at
    /// `base` is non-zero — the vector form of the branch-resolution loop.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn pred_row_mask(regs: &[u32], base: usize) -> u32 {
        assert!(base + WARP <= regs.len(), "row base out of range");
        let p = regs.as_ptr();
        let zero = _mm256_setzero_si256();
        let mut m = 0u32;
        for c in 0..CHUNKS {
            let v = _mm256_loadu_si256(p.add(base + c * 8) as *const __m256i);
            let eq = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(v, zero))) as u32;
            m |= (!eq & 0xff) << (c * 8);
        }
        m
    }

    /// Fused float multiply + add, chunk-interleaved (each op separately
    /// rounded, same as the sequential pair).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn mul_add_f(
        regs: &mut [u32],
        d1: usize,
        a1: usize,
        b1: usize,
        d2: usize,
        a2: usize,
        b2: usize,
    ) {
        check(regs, &[d1, a1, b1, d2, a2, b2]);
        let p = regs.as_mut_ptr();
        for ch in 0..CHUNKS {
            let r1 = canon_chunk(_mm256_mul_ps(vlf(p, a1, ch), vlf(p, b1, ch)));
            vsf(p, d1, ch, r1);
            let r2 = canon_chunk(_mm256_add_ps(vlf(p, a2, ch), vlf(p, b2, ch)));
            vsf(p, d2, ch, r2);
        }
    }

    /// Fused mad + mad + integer min — the coordinate-clamp triple.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn mad2_i_min(
        regs: &mut [u32],
        d1: usize,
        a1: usize,
        b1: usize,
        c1: usize,
        d2: usize,
        a2: usize,
        b2: usize,
        c2: usize,
        d3: usize,
        a3: usize,
        b3: usize,
    ) {
        check(regs, &[d1, a1, b1, c1, d2, a2, b2, c2, d3, a3, b3]);
        let p = regs.as_mut_ptr();
        for ch in 0..CHUNKS {
            let r1 = mad_i_chunk(p, a1, b1, c1, ch);
            vs(p, d1, ch, r1);
            let r2 = mad_i_chunk(p, a2, b2, c2, ch);
            vs(p, d2, ch, r2);
            let r3 = _mm256_min_epi32(vl(p, a3, ch), vl(p, b3, ch));
            vs(p, d3, ch, r3);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn cvt_if(regs: &mut [u32], d: usize, a: usize) {
        check(regs, &[d, a]);
        let p = regs.as_mut_ptr();
        for c in 0..CHUNKS {
            let r = _mm256_cvtepi32_ps(vl(p, a, c));
            vsf(p, d, c, r);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn set_p_i(cmp: CmpOp, regs: &mut [u32], d: usize, a: usize, b: usize) {
        check(regs, &[d, a, b]);
        let p = regs.as_mut_ptr();
        let one = _mm256_set1_epi32(1);
        for c in 0..CHUNKS {
            let x = vl(p, a, c);
            let y = vl(p, b, c);
            // Express all six predicates through eq/gt with an optional
            // negation folded into the 0/1 extraction.
            let (m, neg) = match cmp {
                CmpOp::Eq => (_mm256_cmpeq_epi32(x, y), false),
                CmpOp::Ne => (_mm256_cmpeq_epi32(x, y), true),
                CmpOp::Lt => (_mm256_cmpgt_epi32(y, x), false),
                CmpOp::Le => (_mm256_cmpgt_epi32(x, y), true),
                CmpOp::Gt => (_mm256_cmpgt_epi32(x, y), false),
                CmpOp::Ge => (_mm256_cmpgt_epi32(y, x), true),
            };
            let r = if neg {
                _mm256_andnot_si256(m, one)
            } else {
                _mm256_and_si256(m, one)
            };
            vs(p, d, c, r);
        }
    }

    /// `vcmpps` with ordered predicates (unordered for `Ne`) reproduces
    /// Rust's scalar float comparisons exactly, NaNs included.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn set_p_f(cmp: CmpOp, regs: &mut [u32], d: usize, a: usize, b: usize) {
        check(regs, &[d, a, b]);
        let p = regs.as_mut_ptr();
        let one = _mm256_set1_epi32(1);
        for c in 0..CHUNKS {
            let x = vlf(p, a, c);
            let y = vlf(p, b, c);
            let m = match cmp {
                CmpOp::Eq => _mm256_cmp_ps::<_CMP_EQ_OQ>(x, y),
                CmpOp::Ne => _mm256_cmp_ps::<_CMP_NEQ_UQ>(x, y),
                CmpOp::Lt => _mm256_cmp_ps::<_CMP_LT_OQ>(x, y),
                CmpOp::Le => _mm256_cmp_ps::<_CMP_LE_OQ>(x, y),
                CmpOp::Gt => _mm256_cmp_ps::<_CMP_GT_OQ>(x, y),
                CmpOp::Ge => _mm256_cmp_ps::<_CMP_GE_OQ>(x, y),
            };
            vs(p, d, c, _mm256_and_si256(_mm256_castps_si256(m), one));
        }
    }

    /// Fused bounds check + segment count for a full-warp address row.
    /// Unsigned `a >= bound` (a sign-flipped signed compare) rejects both
    /// negative addresses and addresses past the buffer in one test;
    /// clamping the bound to `2^31` keeps "negative" rejected for huge
    /// buffers where every non-negative `i32` is in range.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn full_warp_tx(addrs: &[u32; WARP], len: usize) -> Option<u64> {
        let bound = len.min(1 << 31) as u32;
        let sign = _mm256_set1_epi32(i32::MIN);
        let bound_f = _mm256_xor_si256(_mm256_set1_epi32(bound as i32), sign);
        let mut segs = [0u32; WARP + 1];
        let mut ok = _mm256_set1_epi32(-1);
        for c in 0..CHUNKS {
            let a = load(addrs, c);
            ok = _mm256_and_si256(ok, _mm256_cmpgt_epi32(bound_f, _mm256_xor_si256(a, sign)));
            // Segment index = addr / 32. Valid addresses are non-negative,
            // so the logical shift matches `div_euclid`; junk lanes are
            // discarded with the whole row when validation fails.
            _mm256_storeu_si256(
                segs.as_mut_ptr().add(1 + c * 8) as *mut __m256i,
                _mm256_srli_epi32::<5>(a),
            );
        }
        if _mm256_movemask_epi8(ok) != -1 {
            return None;
        }
        // Compare each segment with its predecessor (the first against
        // itself): a monotonic row needs no sort, and the distinct count is
        // `1 + changes` — exactly `segment_count_full`'s unsorted branch.
        segs[0] = segs[1];
        let mut changes = 0u32;
        let mut nonmono = 0i32;
        for c in 0..CHUNKS {
            let cur = _mm256_loadu_si256(segs.as_ptr().add(1 + c * 8) as *const __m256i);
            let prev = _mm256_loadu_si256(segs.as_ptr().add(c * 8) as *const __m256i);
            // Segments fit in 26 bits, so signed compares are exact.
            nonmono |= _mm256_movemask_epi8(_mm256_cmpgt_epi32(prev, cur));
            let eq = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(prev, cur))) as u32;
            changes += (!eq & 0xff).count_ones();
        }
        if nonmono != 0 {
            return None;
        }
        Some(1 + changes as u64)
    }

    /// Four `vpgatherdd` rounds. The caller guarantees every index (as
    /// `i32`) is in bounds.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn gather(out: &mut [u32; WARP], addrs: &[u32; WARP], buf: &[u32]) {
        let base = buf.as_ptr() as *const i32;
        for c in 0..CHUNKS {
            store(out, c, _mm256_i32gather_epi32::<4>(base, load(addrs, c)));
        }
    }

    /// Sign-extend 32 recorded `i32` addresses to `i64` and add the rebase
    /// delta: eight `vpmovsxdq` + `vpaddq` rounds.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn add_delta(addrs: &[i32; WARP], delta: i64) -> [i64; WARP] {
        let mut out = [0i64; WARP];
        let dv = _mm256_set1_epi64x(delta);
        for c in 0..WARP / 4 {
            let a = _mm_loadu_si128(addrs.as_ptr().add(c * 4) as *const __m128i);
            let wide = _mm256_cvtepi32_epi64(a);
            _mm256_storeu_si256(
                out.as_mut_ptr().add(c * 4) as *mut __m256i,
                _mm256_add_epi64(wide, dv),
            );
        }
        out
    }
}
