//! Performance counters (the simulator's NVProf).

use isp_ir::{InstrCategory, InstrHistogram};

/// Counters accumulated during kernel execution. "Warp-instructions" follow
/// real-hardware accounting: one instruction issued for a 32-lane warp
/// counts once, regardless of how many lanes are active — which is exactly
/// why divergence and redundant border checks are expensive.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfCounters {
    /// Dynamic instruction histogram (warp-instruction granularity).
    pub histogram: InstrHistogram,
    /// Total warp-instructions executed.
    pub warp_instructions: u64,
    /// Conditional branches where the warp actually diverged.
    pub divergent_branches: u64,
    /// Total conditional branches executed.
    pub conditional_branches: u64,
    /// 128-byte global memory transactions (loads + stores).
    pub mem_transactions: u64,
    /// Global load warp-instructions.
    pub loads: u64,
    /// Global store warp-instructions.
    pub stores: u64,
    /// Texture fetch warp-instructions. Kept separate from `loads` so the
    /// texture ablation's transactions-per-access metric can account for
    /// every memory pathway (tex fetches produce `mem_transactions` too).
    pub tex_accesses: u64,
    /// Threads that ran to `ret`.
    pub threads_retired: u64,
    /// Blocks executed (or accounted, in sampled mode).
    pub blocks: u64,
}

impl PerfCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate another counter set.
    pub fn merge(&mut self, other: &PerfCounters) {
        self.histogram.merge(&other.histogram);
        self.warp_instructions += other.warp_instructions;
        self.divergent_branches += other.divergent_branches;
        self.conditional_branches += other.conditional_branches;
        self.mem_transactions += other.mem_transactions;
        self.loads += other.loads;
        self.stores += other.stores;
        self.tex_accesses += other.tex_accesses;
        self.threads_retired += other.threads_retired;
        self.blocks += other.blocks;
    }

    /// Scale all counters by `factor` (region-sampled extrapolation).
    pub fn scaled(&self, factor: u64) -> PerfCounters {
        PerfCounters {
            histogram: self.histogram.scaled(factor),
            warp_instructions: self.warp_instructions * factor,
            divergent_branches: self.divergent_branches * factor,
            conditional_branches: self.conditional_branches * factor,
            mem_transactions: self.mem_transactions * factor,
            loads: self.loads * factor,
            stores: self.stores * factor,
            tex_accesses: self.tex_accesses * factor,
            threads_retired: self.threads_retired * factor,
            blocks: self.blocks * factor,
        }
    }

    /// Dynamic count of one category.
    pub fn count(&self, cat: InstrCategory) -> u64 {
        self.histogram.get(cat)
    }

    /// Fraction of conditional branches that diverged.
    pub fn divergence_rate(&self) -> f64 {
        if self.conditional_branches == 0 {
            0.0
        } else {
            self.divergent_branches as f64 / self.conditional_branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = PerfCounters::new();
        a.warp_instructions = 10;
        a.loads = 2;
        a.histogram.add(InstrCategory::Add, 5);
        let mut b = PerfCounters::new();
        b.warp_instructions = 7;
        b.divergent_branches = 1;
        b.conditional_branches = 2;
        b.histogram.add(InstrCategory::Add, 3);
        a.merge(&b);
        assert_eq!(a.warp_instructions, 17);
        assert_eq!(a.loads, 2);
        assert_eq!(a.divergent_branches, 1);
        assert_eq!(a.count(InstrCategory::Add), 8);
    }

    #[test]
    fn scaling() {
        let mut a = PerfCounters::new();
        a.warp_instructions = 3;
        a.mem_transactions = 4;
        a.blocks = 1;
        let s = a.scaled(100);
        assert_eq!(s.warp_instructions, 300);
        assert_eq!(s.mem_transactions, 400);
        assert_eq!(s.blocks, 100);
    }

    #[test]
    fn divergence_rate() {
        let mut a = PerfCounters::new();
        assert_eq!(a.divergence_rate(), 0.0);
        a.conditional_branches = 8;
        a.divergent_branches = 2;
        assert!((a.divergence_rate() - 0.25).abs() < 1e-12);
    }
}
