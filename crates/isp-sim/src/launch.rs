//! Kernel launches: grid validation, block enumeration, exhaustive vs
//! region-sampled execution, and report assembly.
//!
//! Two execution engines back every launch (see [`ExecEngine`]): the
//! tree-walking reference interpreter and the decoded-microcode fast path.
//! They are observationally identical — same pixels, counters, cycles, and
//! errors — so the engine choice is purely a speed knob. Each [`Gpu`] caches
//! decoded kernels by structural fingerprint, so a sweep decodes each kernel
//! exactly once no matter how many launches it performs.

use crate::counters::PerfCounters;
use crate::decode::{
    decode_with_fusion, kernel_fingerprint, run_block_decoded, run_decoded, run_decoded_traced,
    DecodedBlockCtx, DecodedKernel, DecodedScratch, FlatCounters, FusionStats, Tracer,
};
use crate::device::DeviceSpec;
use crate::error::SimError;
use crate::interp::{run_block, BlockContext, BlockRun};
use crate::memory::DeviceBuffer;
use crate::occupancy::{occupancy_with_shared, OccupancyResult};
use crate::scheduler::{schedule, schedule_with, BlockCost, Timing};
use crate::trace::{record_block, replay_block, DeoptReason, Trace};
use isp_ir::kernel::Kernel;
use isp_ir::regalloc;
use isp_probe::{BlockSlice, DeoptInstant, ProbeHandle, SimTimeline};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A boxed per-block worker: runs one block by index under whichever
/// execution engine the launch selected.
type BlockWorker<'a> = Box<dyn Fn((u32, u32)) -> Result<BlockRun, SimError> + Sync + 'a>;

/// Cross-launch trace cache map: `(launch key, class) -> (epoch, trace)`.
type TraceCacheMap = HashMap<(u64, u32), (u64, Arc<Trace>)>;

/// Hardware limit on threads per block (both simulated devices).
pub const MAX_THREADS_PER_BLOCK: u32 = 1024;

/// A scalar kernel argument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamValue {
    /// 32-bit signed integer argument.
    I32(i32),
    /// 32-bit float argument.
    F32(f32),
}

/// Grid and block dimensions for a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Grid size in blocks `(x, y)`.
    pub grid: (u32, u32),
    /// Block size in threads `(x, y)`.
    pub block: (u32, u32),
}

impl LaunchConfig {
    /// Grid covering a `width x height` iteration space with `block`-sized
    /// blocks (rounding up, as `dim3((sx+tx-1)/tx, ...)` does).
    pub fn for_image(width: usize, height: usize, block: (u32, u32)) -> Self {
        LaunchConfig {
            grid: (
                (width as u32).div_ceil(block.0),
                (height as u32).div_ceil(block.1),
            ),
            block,
        }
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u32 {
        self.block.0 * self.block.1
    }

    /// Total blocks in the grid.
    pub fn total_blocks(&self) -> u64 {
        self.grid.0 as u64 * self.grid.1 as u64
    }
}

/// Per-class code-path information for fat (multi-region) kernels, indexed
/// by class id. Distinguishes the *sampling* class (which blocks behave
/// identically) from the *code path* (which instruction footprint an SM must
/// fetch): a naive kernel has nine sampling classes (divergence differs at
/// borders) but a single code path, while an ISP fat kernel has nine of
/// each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathTable {
    /// Code-path id per class (same id = no i-cache switch between them).
    pub path_of_class: Vec<u32>,
    /// Static instruction footprint of each class's code path.
    pub footprint_of_class: Vec<u32>,
}

/// How exhaustive interpretation schedules its per-block workers.
///
/// Both strategies produce **bit-identical** results — pixels, counters,
/// and cycle counts — because block interpretation is pure (each worker
/// sees the pre-launch buffer contents) and reduction happens in fixed
/// block-dispatch order. `Serial` exists as the reference for the
/// determinism tests and for debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecStrategy {
    /// Fan block workers out across CPU threads (default).
    #[default]
    Parallel,
    /// Interpret blocks one at a time in dispatch order.
    Serial,
}

/// Which interpreter executes the blocks of a launch.
///
/// All engines are observationally identical — same pixels, counters,
/// cycles, write order, and error values (the differential tests in
/// [`crate::decode`], `tests/decoded_diff.rs` and `tests/replay_diff.rs`
/// pin this). `Reference` walks the IR tree directly and serves as the
/// semantic oracle; `Decoded` lowers the kernel once to flat microcode and
/// executes that with a reused scratch arena; `Replay` additionally records
/// one block's warp schedule per block class and replays it for every
/// sibling block behind exactness guards, deopting to `Decoded` on any
/// mismatch (see [`crate::trace`]) — the fastest path, and the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecEngine {
    /// Decoded microcode plus guarded per-class trace replay (fast path,
    /// default).
    #[default]
    Replay,
    /// Execute pre-decoded flat microcode for every block.
    Decoded,
    /// Walk the `isp_ir` tree directly (reference oracle).
    Reference,
}

/// Decode-cache hit/miss counts for a [`Gpu`] (shared across clones).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecodeStats {
    /// Launches that found their kernel already decoded.
    pub hits: u64,
    /// Kernels decoded (first sighting of a fingerprint).
    pub misses: u64,
}

/// Trace-replay reuse counts: how blocks were executed under
/// [`ExecEngine::Replay`] — recorded (first block of a class, runs on the
/// decoded engine while capturing its trace), replayed (straight-line trace
/// execution, all guards green), or deopted (a guard missed; the block
/// re-ran on the decoded engine). `recorded + replayed + deopted` equals the
/// number of blocks executed under the replay engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Blocks that recorded a fresh trace for their class.
    pub recorded: u64,
    /// Blocks replayed from a recorded trace.
    pub replayed: u64,
    /// Blocks that failed a replay guard and re-ran decoded.
    pub deopted: u64,
    /// Deopts broken down by which guard missed, indexed by
    /// [`DeoptReason::index`]; sums to `deopted`.
    pub deopt_reasons: [u64; DeoptReason::COUNT],
}

impl TraceStats {
    /// Accumulate another set of counts into this one.
    pub fn merge(&mut self, other: &TraceStats) {
        self.recorded += other.recorded;
        self.replayed += other.replayed;
        self.deopted += other.deopted;
        for (mine, theirs) in self.deopt_reasons.iter_mut().zip(other.deopt_reasons) {
            *mine += theirs;
        }
    }
}

/// How to execute the launch.
pub enum SimMode<'a> {
    /// Interpret every block: exact pixels + exact counters. Writes are
    /// applied to the buffers.
    Exhaustive,
    /// [`SimMode::Exhaustive`] plus per-class counter attribution: every
    /// block is interpreted and written exactly as in `Exhaustive`, and in
    /// addition each block's counters are merged into its class's entry of
    /// [`LaunchReport::per_class`] (classes as labelled by the classifier —
    /// for ISP kernels, the nine regions). The aggregate counters are the
    /// bit-identical sum of the per-class sets.
    ExhaustiveClassified {
        /// Maps block coordinates to a class id.
        classifier: &'a (dyn Fn(u32, u32) -> u32 + Sync),
    },
    /// Interpret one representative block per class (as labelled by the
    /// classifier) and extrapolate counters/timing by class population.
    /// Buffers are NOT written — this mode estimates performance only.
    /// Counters are exact when every block of a class executes identical
    /// control flow, which holds for the ISP region decomposition.
    RegionSampled {
        /// Maps block coordinates to a class id.
        classifier: &'a (dyn Fn(u32, u32) -> u32 + Sync),
        /// Code-path identity/footprint per class; `None` = one shared code
        /// path covering the whole kernel.
        paths: Option<&'a PathTable>,
    },
}

/// Everything a launch reports (the simulator's NVProf output).
#[derive(Debug, Clone)]
pub struct LaunchReport {
    /// Aggregated performance counters.
    pub counters: PerfCounters,
    /// Wall-clock model output.
    pub timing: Timing,
    /// Theoretical occupancy achieved.
    pub occupancy: OccupancyResult,
    /// Registers per thread charged against the register file.
    pub regs_per_thread: u32,
    /// The launch geometry.
    pub config: LaunchConfig,
    /// Per-class `(class, blocks, cycles_per_block)` rows from sampled runs
    /// (empty for exhaustive runs). Lets downstream analyses re-schedule the
    /// same work under alternative execution strategies (e.g. the
    /// multi-kernel ablation).
    pub class_costs: Vec<(u32, u64, u64)>,
    /// Per-class performance counters, sorted by class id. Populated by
    /// [`SimMode::ExhaustiveClassified`] (exact per-block attribution) and
    /// [`SimMode::RegionSampled`] (representative counters scaled by class
    /// population); empty for plain [`SimMode::Exhaustive`]. The entries
    /// merge exactly — bit-identically — to [`LaunchReport::counters`].
    pub per_class: Vec<(u32, PerfCounters)>,
    /// Per-class trace-replay reuse, sorted by class id. Populated only by
    /// [`SimMode::ExhaustiveClassified`] launches under
    /// [`ExecEngine::Replay`]; empty otherwise. Which block of a class
    /// records (vs replays) is scheduling-dependent under the parallel
    /// strategy, so only the *totals* per class are meaningful — results are
    /// bit-identical regardless.
    pub per_class_trace: Vec<(u32, TraceStats)>,
}

/// A simulated GPU: a device spec, an execution engine, and launch
/// machinery. Cloning a `Gpu` shares its decode cache (and stats), so a
/// pipeline may hand clones to workers without re-decoding kernels.
///
/// The replay engine's trace cache is also shared across the clone family
/// and **persists across launches**: a launch with the same (kernel
/// fingerprint, grid, block, scalar params) tuple as an earlier one replays
/// from block 0 instead of re-recording. Scalar params are part of the key
/// because a recorded trace pins grid-uniform parameter values into its
/// affine classes and range guards; buffer *contents* are not, because the
/// replay guards re-validate every access against the live buffers and
/// deopt on any divergence — reuse is always bit-exact.
/// Decoded-kernel cache shared across a `Gpu` clone family, keyed by
/// (kernel fingerprint, fusion flag).
type DecodeCache = Arc<Mutex<HashMap<(u64, bool), Arc<DecodedKernel>>>>;

#[derive(Debug, Clone)]
pub struct Gpu {
    device: DeviceSpec,
    engine: ExecEngine,
    probe: ProbeHandle,
    /// Whether kernels decode with the superinstruction fusion pass
    /// (default on; ablation binaries and neutrality tests turn it off).
    fusion: bool,
    /// Keyed by (fingerprint, fusion) so a clone family mixing fused and
    /// unfused launches never serves the wrong decoding.
    decode_cache: DecodeCache,
    decode_hits: Arc<AtomicU64>,
    decode_misses: Arc<AtomicU64>,
    /// Decode-time fusion totals over all cold decodes (groups, fused ops,
    /// dispatches saved).
    fused_groups: Arc<AtomicU64>,
    fused_ops: Arc<AtomicU64>,
    fused_saved: Arc<AtomicU64>,
    /// Cross-launch trace cache: `(launch key, class) -> (epoch, trace)`.
    /// The epoch is the sequence number of the launch that recorded the
    /// trace, so later launches can tell a warm hit from their own fresh
    /// recording.
    trace_cache: Arc<Mutex<TraceCacheMap>>,
    /// Monotonic launch sequence number (one per replay-engine exhaustive
    /// launch), used to stamp trace-cache entries with their recording
    /// epoch.
    launch_seq: Arc<AtomicU64>,
    trace_recorded: Arc<AtomicU64>,
    trace_replayed: Arc<AtomicU64>,
    trace_deopted: Arc<AtomicU64>,
    /// Blocks replayed from a trace recorded by an *earlier* launch.
    trace_xlaunch: Arc<AtomicU64>,
    trace_deopt_reasons: Arc<[AtomicU64; DeoptReason::COUNT]>,
}

impl Gpu {
    /// Create a GPU from a device spec (replay engine by default, probe
    /// disabled).
    pub fn new(device: DeviceSpec) -> Self {
        Gpu {
            device,
            engine: ExecEngine::default(),
            probe: ProbeHandle::none(),
            fusion: true,
            decode_cache: Arc::new(Mutex::new(HashMap::new())),
            decode_hits: Arc::new(AtomicU64::new(0)),
            decode_misses: Arc::new(AtomicU64::new(0)),
            fused_groups: Arc::new(AtomicU64::new(0)),
            fused_ops: Arc::new(AtomicU64::new(0)),
            fused_saved: Arc::new(AtomicU64::new(0)),
            trace_cache: Arc::new(Mutex::new(HashMap::new())),
            launch_seq: Arc::new(AtomicU64::new(0)),
            trace_recorded: Arc::new(AtomicU64::new(0)),
            trace_replayed: Arc::new(AtomicU64::new(0)),
            trace_deopted: Arc::new(AtomicU64::new(0)),
            trace_xlaunch: Arc::new(AtomicU64::new(0)),
            trace_deopt_reasons: Arc::new(std::array::from_fn(|_| AtomicU64::new(0))),
        }
    }

    /// Builder: select the execution engine for subsequent launches.
    pub fn with_engine(mut self, engine: ExecEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Builder: enable or disable the superinstruction fusion pass for
    /// subsequent decodes (on by default). Fusion is observationally
    /// neutral — counters, cycles, pixels and journals are identical either
    /// way — so this is only interesting to ablation and neutrality tests.
    pub fn with_fusion(mut self, fusion: bool) -> Self {
        self.fusion = fusion;
        self
    }

    /// Whether decodes run the fusion pass.
    pub fn fusion_enabled(&self) -> bool {
        self.fusion
    }

    /// Builder: attach a probe; subsequent launches report spans, cache
    /// events, and per-SM timelines to it. The default handle is disabled
    /// and costs nothing.
    pub fn with_probe(mut self, probe: ProbeHandle) -> Self {
        self.probe = probe;
        self
    }

    /// Replace the probe in place (used by owners that embed a `Gpu`).
    pub fn set_probe(&mut self, probe: ProbeHandle) {
        self.probe = probe;
    }

    /// The probe handle launches report to.
    pub fn probe(&self) -> &ProbeHandle {
        &self.probe
    }

    /// The device being simulated.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The engine used by [`Gpu::launch`] / [`Gpu::launch_with`].
    pub fn engine(&self) -> ExecEngine {
        self.engine
    }

    /// Decoded microcode for `kernel`, from the cache when the kernel's
    /// structural fingerprint has been seen before. A miss decodes outside
    /// the cache lock (two racing misses decode twice, cache once).
    pub fn decode(&self, kernel: &Kernel) -> Arc<DecodedKernel> {
        let fp = (kernel_fingerprint(kernel), self.fusion);
        if let Some(dk) = self.decode_cache.lock().unwrap().get(&fp) {
            self.decode_hits.fetch_add(1, Ordering::Relaxed);
            if self.probe.is_enabled() {
                self.probe.count("gpu.decode_hits", 1);
                self.probe
                    .instant("decode-cache-hit", "gpu", Some(kernel.name.to_string()));
            }
            return Arc::clone(dk);
        }
        let t0 = self.probe.begin();
        let dk = Arc::new(decode_with_fusion(kernel, &self.device, self.fusion));
        self.probe
            .span("decode", "gpu", t0, || Some(kernel.name.to_string()));
        self.decode_misses.fetch_add(1, Ordering::Relaxed);
        let fs = dk.fusion_stats();
        self.fused_groups.fetch_add(fs.groups, Ordering::Relaxed);
        self.fused_ops.fetch_add(fs.fused_ops, Ordering::Relaxed);
        self.fused_saved
            .fetch_add(fs.dispatches_saved, Ordering::Relaxed);
        if self.probe.is_enabled() {
            self.probe.count("gpu.decode_misses", 1);
            self.probe
                .instant("decode-cache-miss", "gpu", Some(kernel.name.to_string()));
        }
        let mut cache = self.decode_cache.lock().unwrap();
        Arc::clone(cache.entry(fp).or_insert(dk))
    }

    /// Decode-cache hit/miss counts since this `Gpu` (or the clone family it
    /// belongs to) was created.
    pub fn decode_stats(&self) -> DecodeStats {
        DecodeStats {
            hits: self.decode_hits.load(Ordering::Relaxed),
            misses: self.decode_misses.load(Ordering::Relaxed),
        }
    }

    /// Decode-time fusion totals summed over every cold decode performed by
    /// this `Gpu` (or its clone family).
    pub fn fusion_stats(&self) -> FusionStats {
        FusionStats {
            groups: self.fused_groups.load(Ordering::Relaxed),
            fused_ops: self.fused_ops.load(Ordering::Relaxed),
            dispatches_saved: self.fused_saved.load(Ordering::Relaxed),
        }
    }

    /// Aggregate trace-replay reuse counts across every
    /// [`ExecEngine::Replay`] launch since this `Gpu` (or its clone family)
    /// was created.
    pub fn trace_stats(&self) -> TraceStats {
        TraceStats {
            recorded: self.trace_recorded.load(Ordering::Relaxed),
            replayed: self.trace_replayed.load(Ordering::Relaxed),
            deopted: self.trace_deopted.load(Ordering::Relaxed),
            deopt_reasons: std::array::from_fn(|i| {
                self.trace_deopt_reasons[i].load(Ordering::Relaxed)
            }),
        }
    }

    /// Blocks replayed from a trace recorded by an *earlier* launch on this
    /// `Gpu` (or its clone family) — the cross-launch reuse that lets the
    /// second image of a batch replay from block 0. A subset of
    /// [`TraceStats::replayed`].
    pub fn trace_cross_launch_hits(&self) -> u64 {
        self.trace_xlaunch.load(Ordering::Relaxed)
    }

    /// Launch `kernel` over `cfg`. See [`SimMode`] for the modes.
    /// Exhaustive interpretation fans out in parallel; use
    /// [`Gpu::launch_with`] to force the serial reference strategy.
    pub fn launch(
        &self,
        kernel: &Kernel,
        cfg: LaunchConfig,
        params: &[ParamValue],
        buffers: &mut [DeviceBuffer],
        mode: SimMode<'_>,
    ) -> Result<LaunchReport, SimError> {
        self.launch_with(kernel, cfg, params, buffers, mode, ExecStrategy::Parallel)
    }

    /// [`Gpu::launch`] with an explicit block-worker [`ExecStrategy`].
    pub fn launch_with(
        &self,
        kernel: &Kernel,
        cfg: LaunchConfig,
        params: &[ParamValue],
        buffers: &mut [DeviceBuffer],
        mode: SimMode<'_>,
        strategy: ExecStrategy,
    ) -> Result<LaunchReport, SimError> {
        self.launch_engine(kernel, cfg, params, buffers, mode, strategy, self.engine)
    }

    /// [`Gpu::launch_with`] with an explicit [`ExecEngine`], overriding the
    /// GPU's default. This is what differential tests and the before/after
    /// speed benchmark use to run both engines side by side.
    #[allow(clippy::too_many_arguments)]
    pub fn launch_engine(
        &self,
        kernel: &Kernel,
        cfg: LaunchConfig,
        params: &[ParamValue],
        buffers: &mut [DeviceBuffer],
        mode: SimMode<'_>,
        strategy: ExecStrategy,
        engine: ExecEngine,
    ) -> Result<LaunchReport, SimError> {
        let t0 = self.probe.begin();
        let result = self.launch_engine_inner(kernel, cfg, params, buffers, mode, strategy, engine);
        self.probe.span("launch", "gpu", t0, || {
            Some(format!(
                "{} grid {}x{} block {}x{} ({engine:?})",
                kernel.name, cfg.grid.0, cfg.grid.1, cfg.block.0, cfg.block.1
            ))
        });
        if self.probe.is_enabled() && result.is_err() {
            self.probe.count("gpu.launch_errors", 1);
        }
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn launch_engine_inner(
        &self,
        kernel: &Kernel,
        cfg: LaunchConfig,
        params: &[ParamValue],
        buffers: &mut [DeviceBuffer],
        mode: SimMode<'_>,
        strategy: ExecStrategy,
        engine: ExecEngine,
    ) -> Result<LaunchReport, SimError> {
        self.validate(kernel, cfg, params, buffers)?;
        let regs = regalloc::estimate(kernel).data_regs;
        let occ = occupancy_with_shared(
            &self.device,
            cfg.threads_per_block(),
            regs,
            kernel.shared_elems * 4,
        );
        let ipdom = isp_ir::cfg::Cfg::new(kernel).ipostdom();

        match mode {
            SimMode::Exhaustive => self.launch_exhaustive(
                kernel, cfg, params, buffers, &ipdom, regs, occ, strategy, None, engine,
            ),
            SimMode::ExhaustiveClassified { classifier } => self.launch_exhaustive(
                kernel,
                cfg,
                params,
                buffers,
                &ipdom,
                regs,
                occ,
                strategy,
                Some(classifier),
                engine,
            ),
            SimMode::RegionSampled { classifier, paths } => self.launch_sampled(
                kernel, cfg, params, buffers, &ipdom, regs, occ, classifier, paths, engine,
            ),
        }
    }

    fn validate(
        &self,
        kernel: &Kernel,
        cfg: LaunchConfig,
        params: &[ParamValue],
        buffers: &[DeviceBuffer],
    ) -> Result<(), SimError> {
        if cfg.grid.0 == 0 || cfg.grid.1 == 0 || cfg.block.0 == 0 || cfg.block.1 == 0 {
            return Err(SimError::BadLaunch(format!(
                "degenerate geometry grid={:?} block={:?}",
                cfg.grid, cfg.block
            )));
        }
        if cfg.threads_per_block() > MAX_THREADS_PER_BLOCK {
            return Err(SimError::BadLaunch(format!(
                "block of {} threads exceeds the {MAX_THREADS_PER_BLOCK}-thread limit",
                cfg.threads_per_block()
            )));
        }
        if buffers.len() != kernel.num_buffers as usize {
            return Err(SimError::BadLaunch(format!(
                "kernel '{}' expects {} buffers, got {}",
                kernel.name,
                kernel.num_buffers,
                buffers.len()
            )));
        }
        if params.len() != kernel.params.len() {
            return Err(SimError::BadLaunch(format!(
                "kernel '{}' expects {} scalar params, got {}",
                kernel.name,
                kernel.params.len(),
                params.len()
            )));
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn launch_exhaustive(
        &self,
        kernel: &Kernel,
        cfg: LaunchConfig,
        params: &[ParamValue],
        buffers: &mut [DeviceBuffer],
        ipdom: &[Option<isp_ir::kernel::BlockId>],
        regs: u32,
        occ: OccupancyResult,
        strategy: ExecStrategy,
        classifier: Option<&(dyn Fn(u32, u32) -> u32 + Sync)>,
        engine: ExecEngine,
    ) -> Result<LaunchReport, SimError> {
        // Workers are driven from the block *index* range and derive their
        // coordinates on the fly — the grid's coordinate list is never
        // materialised. Dispatch order is row-major: idx = by * gx + bx.
        let total = cfg.total_blocks();
        let gx = cfg.grid.0 as u64;
        let footprint = kernel.static_len() as u32;
        // Per-block outcomes feed the probe timeline only; nothing is
        // collected when the probe is disabled.
        let want_outcomes = self.probe.is_enabled();

        let mut per_class_trace: Vec<(u32, TraceStats)> = Vec::new();
        let (counters, per_class, costs, writes, outcomes) = match engine {
            ExecEngine::Reference => {
                let shared: &[DeviceBuffer] = buffers;
                let worker = |idx: u64| {
                    run_block(&BlockContext {
                        kernel,
                        ipdom,
                        device: &self.device,
                        grid: cfg.grid,
                        block_dim: cfg.block,
                        block_idx: ((idx % gx) as u32, (idx / gx) as u32),
                        params,
                        buffers: shared,
                    })
                };
                // The worker is pure (reads the pre-launch buffer snapshot,
                // returns a write journal), so the only ordering requirement
                // is that `runs` comes back in dispatch order — which both
                // strategies guarantee.
                let runs: Vec<Result<BlockRun, SimError>> = match strategy {
                    ExecStrategy::Parallel => (0..total).into_par_iter().map(worker).collect(),
                    ExecStrategy::Serial => (0..total).map(worker).collect(),
                };
                let classes = classifier.map(|f| {
                    (0..total)
                        .map(|idx| f((idx % gx) as u32, (idx / gx) as u32))
                        .collect::<Vec<u32>>()
                });
                reduce_block_runs(footprint, runs, classes.as_deref())?
            }
            ExecEngine::Decoded | ExecEngine::Replay => {
                let dk = self.decode(kernel);
                let shared: &[DeviceBuffer] = buffers;
                // Opcode-sequence histograms: probed decoded-engine launches
                // run traced (op-at-a-time) so the profiler sees the raw
                // unfused stream.
                let profile_seq = want_outcomes && engine == ExecEngine::Decoded;
                let block_start = profile_seq.then(|| dk.block_start_flags());
                // The replay engine reads the Gpu's persistent trace cache,
                // scoped to this launch's (kernel, geometry, params) key and
                // further keyed by block class (class 0 when no classifier
                // labels the grid): the first block of a class records —
                // unless an earlier launch with the identical key already
                // did, in which case every block of the class replays warm.
                let traces: Option<SharedTraces<'_>> =
                    (engine == ExecEngine::Replay).then(|| SharedTraces {
                        cache: &self.trace_cache,
                        key: launch_trace_key(kernel_fingerprint(kernel), cfg, params),
                        epoch: self.launch_seq.fetch_add(1, Ordering::Relaxed),
                    });
                // Chunked fold: each worker folds a contiguous run of block
                // indices through one ChunkAcc, reusing its scratch arena for
                // every block — zero per-block allocation in steady state.
                // Chunk accumulators come back in input order, so
                // concatenating them reproduces dispatch order exactly.
                let fold_op = |mut acc: ChunkAcc, idx: u64| {
                    if acc.err.is_some() {
                        return acc;
                    }
                    let block_idx = ((idx % gx) as u32, (idx / gx) as u32);
                    let class = classifier.map_or(0, |f| f(block_idx.0, block_idx.1));
                    let ctx = DecodedBlockCtx {
                        grid: cfg.grid,
                        block_dim: cfg.block,
                        block_idx,
                        params,
                        buffers: shared,
                    };
                    let journal_mark = acc.writes.len();
                    let run = match &traces {
                        Some(traces) => run_block_replay(
                            &dk,
                            &ctx,
                            class,
                            traces,
                            &mut acc.local_traces,
                            &mut acc.trace_stats,
                            &mut acc.trace_xlaunch,
                            &mut acc.scratch,
                            &mut acc.writes,
                            &self.probe,
                        ),
                        None => match &block_start {
                            Some(flags) => {
                                let mut prof = SeqProfiler {
                                    dk: &dk,
                                    block_start: flags,
                                    prev: 0,
                                    prev2: 0,
                                    seq: &mut acc.opseq,
                                };
                                run_decoded_traced(
                                    &dk,
                                    &ctx,
                                    &mut acc.scratch,
                                    &mut acc.writes,
                                    &mut prof,
                                )
                            }
                            None => run_decoded(&dk, &ctx, &mut acc.scratch, &mut acc.writes),
                        }
                        .map(|(c, cycles)| (c, cycles, OUT_RUN)),
                    };
                    match run {
                        Ok((c, cycles, outcome)) => {
                            acc.counters.merge(&c);
                            if classifier.is_some() {
                                acc.per_class.entry(class).or_default().merge(&c);
                            }
                            acc.cycles.push(cycles);
                            if want_outcomes {
                                acc.outcomes.push(outcome);
                            }
                        }
                        Err(e) => {
                            // Drop the failed block's partial journal so an
                            // erroring launch applies no writes at all, like
                            // the reference path.
                            acc.writes.truncate(journal_mark);
                            acc.err = Some(e);
                        }
                    }
                    acc
                };
                let accs: Vec<ChunkAcc> = match strategy {
                    ExecStrategy::Parallel => (0..total)
                        .into_par_iter()
                        .fold(ChunkAcc::default, fold_op)
                        .collect(),
                    ExecStrategy::Serial => vec![(0..total).fold(ChunkAcc::default(), fold_op)],
                };
                if traces.is_some() {
                    let mut by_class: HashMap<u32, TraceStats> = HashMap::new();
                    let mut xlaunch = 0u64;
                    for acc in &accs {
                        for (&c, s) in &acc.trace_stats {
                            by_class.entry(c).or_default().merge(s);
                        }
                        xlaunch += acc.trace_xlaunch;
                    }
                    let mut total = TraceStats::default();
                    for s in by_class.values() {
                        total.merge(s);
                    }
                    self.trace_recorded
                        .fetch_add(total.recorded, Ordering::Relaxed);
                    self.trace_replayed
                        .fetch_add(total.replayed, Ordering::Relaxed);
                    self.trace_deopted
                        .fetch_add(total.deopted, Ordering::Relaxed);
                    self.trace_xlaunch.fetch_add(xlaunch, Ordering::Relaxed);
                    for (slot, n) in self.trace_deopt_reasons.iter().zip(total.deopt_reasons) {
                        slot.fetch_add(n, Ordering::Relaxed);
                    }
                    if classifier.is_some() {
                        per_class_trace = by_class.into_iter().collect();
                        per_class_trace.sort_unstable_by_key(|&(c, _)| c);
                    }
                }
                if profile_seq {
                    let mut seq = OpSeq::default();
                    for acc in &accs {
                        seq.merge(&acc.opseq);
                    }
                    seq.report(&self.probe);
                }
                reduce_chunk_accs(footprint, accs)?
            }
        };

        for (buf, addr, bits) in writes {
            buffers[buf as usize].store_bits(addr, bits);
        }
        let timing = if want_outcomes {
            self.schedule_probed(kernel, cfg, &occ, costs, &outcomes, classifier, false)
        } else {
            schedule(&self.device, &occ, costs)
        };
        Ok(LaunchReport {
            counters,
            timing,
            occupancy: occ,
            regs_per_thread: regs,
            config: cfg,
            class_costs: Vec::new(),
            per_class,
            per_class_trace,
        })
    }

    /// [`schedule`] plus timeline capture: record every block's `(sm, start,
    /// end)` placement, label it with its class and outcome, pin deopt
    /// instants to their block's retirement, and hand the assembled
    /// [`SimTimeline`] to the probe. Only called when the probe is enabled.
    #[allow(clippy::too_many_arguments)]
    fn schedule_probed(
        &self,
        kernel: &Kernel,
        cfg: LaunchConfig,
        occ: &OccupancyResult,
        costs: Vec<BlockCost>,
        outcomes: &[u8],
        classifier: Option<&(dyn Fn(u32, u32) -> u32 + Sync)>,
        modeled: bool,
    ) -> Timing {
        let gx = cfg.grid.0 as u64;
        let mut slices: Vec<BlockSlice> = Vec::with_capacity(costs.len());
        let mut deopts: Vec<DeoptInstant> = Vec::new();
        let timing = schedule_with(&self.device, occ, costs, |i, sm, start, end| {
            let idx = i as u64;
            let block = ((idx % gx) as u32, (idx / gx) as u32);
            let class = classifier.map_or(0, |f| f(block.0, block.1));
            let code = outcomes.get(i).copied().unwrap_or(OUT_RUN);
            slices.push(BlockSlice {
                sm,
                start,
                end,
                class,
                block,
                outcome: if modeled {
                    "modeled"
                } else {
                    outcome_name(code)
                },
            });
            if code >= OUT_DEOPT {
                deopts.push(DeoptInstant {
                    sm,
                    at: end,
                    class,
                    reason: DeoptReason::ALL[(code - OUT_DEOPT) as usize].name(),
                });
            }
        });
        self.probe.timeline(SimTimeline {
            name: kernel.name.to_string(),
            num_sms: self.device.num_sms,
            launch_overhead: self.device.launch_overhead_cycles,
            cycles: timing.cycles,
            slices,
            deopts,
        });
        timing
    }

    #[allow(clippy::too_many_arguments)]
    fn launch_sampled(
        &self,
        kernel: &Kernel,
        cfg: LaunchConfig,
        params: &[ParamValue],
        buffers: &[DeviceBuffer],
        ipdom: &[Option<isp_ir::kernel::BlockId>],
        regs: u32,
        occ: OccupancyResult,
        classifier: &(dyn Fn(u32, u32) -> u32 + Sync),
        paths: Option<&PathTable>,
        engine: ExecEngine,
    ) -> Result<LaunchReport, SimError> {
        // Walk the grid once: count classes and remember a representative.
        let mut class_count: HashMap<u32, u64> = HashMap::new();
        let mut class_rep: HashMap<u32, (u32, u32)> = HashMap::new();
        for by in 0..cfg.grid.1 {
            for bx in 0..cfg.grid.0 {
                let c = classifier(bx, by);
                *class_count.entry(c).or_insert(0) += 1;
                class_rep.entry(c).or_insert((bx, by));
            }
        }

        // Interpret each representative once (in parallel), through
        // whichever engine the launch selected. Representatives are
        // independent, so each decoded rep gets a fresh scratch arena.
        let run_rep: BlockWorker<'_> = match engine {
            ExecEngine::Reference => Box::new(move |block_idx| {
                run_block(&BlockContext {
                    kernel,
                    ipdom,
                    device: &self.device,
                    grid: cfg.grid,
                    block_dim: cfg.block,
                    block_idx,
                    params,
                    buffers,
                })
            }),
            // Sampled mode runs one representative per class — there are no
            // sibling blocks to replay, so `Replay` degenerates to `Decoded`.
            ExecEngine::Decoded | ExecEngine::Replay => {
                let dk = self.decode(kernel);
                Box::new(move |block_idx| {
                    let mut scratch = DecodedScratch::new();
                    run_block_decoded(
                        &dk,
                        &DecodedBlockCtx {
                            grid: cfg.grid,
                            block_dim: cfg.block,
                            block_idx,
                            params,
                            buffers,
                        },
                        &mut scratch,
                    )
                })
            }
        };

        let mut reps: Vec<(u32, (u32, u32))> = class_rep.into_iter().collect();
        reps.sort_unstable();
        let runs: Vec<(u32, Result<BlockRun, SimError>)> = reps
            .par_iter()
            .map(|&(c, coord)| (c, run_rep(coord)))
            .collect();

        let mut class_cycles: HashMap<u32, u64> = HashMap::new();
        let mut counters = PerfCounters::new();
        let mut per_class: Vec<(u32, PerfCounters)> = Vec::new();
        let footprint = kernel.static_len() as u32;
        // `runs` is sorted by class id (reps was), so per_class comes out
        // sorted without a second pass.
        for (c, run) in runs {
            let run = run?;
            let n = class_count[&c];
            let scaled = run.counters.scaled(n);
            counters.merge(&scaled);
            per_class.push((c, scaled));
            class_cycles.insert(c, run.cycles);
        }

        // Schedule the full grid in dispatch order with per-class costs.
        let costs = (0..cfg.grid.1)
            .flat_map(|by| (0..cfg.grid.0).map(move |bx| (bx, by)))
            .map(|(bx, by)| {
                let c = classifier(bx, by);
                let (path, fp) = match paths {
                    Some(t) => (
                        t.path_of_class.get(c as usize).copied().unwrap_or(0),
                        t.footprint_of_class
                            .get(c as usize)
                            .copied()
                            .unwrap_or(footprint),
                    ),
                    None => (0, footprint),
                };
                BlockCost {
                    class: path,
                    cycles: class_cycles[&c],
                    static_footprint: fp,
                }
            });
        let timing = if self.probe.is_enabled() {
            // Sampled blocks never executed individually — every slice is an
            // extrapolation from its class representative, hence "modeled".
            self.schedule_probed(
                kernel,
                cfg,
                &occ,
                costs.collect(),
                &[],
                Some(classifier),
                true,
            )
        } else {
            schedule(&self.device, &occ, costs)
        };
        let mut class_costs: Vec<(u32, u64, u64)> = class_cycles
            .iter()
            .map(|(&c, &cyc)| (c, class_count[&c], cyc))
            .collect();
        class_costs.sort_unstable();
        Ok(LaunchReport {
            counters,
            timing,
            occupancy: occ,
            regs_per_thread: regs,
            config: cfg,
            class_costs,
            per_class,
            per_class_trace: Vec::new(),
        })
    }
}

/// Per-block outcome codes, collected only when a probe is attached. Codes
/// `OUT_DEOPT + r` encode a deopt with reason index `r` (see
/// [`DeoptReason::index`]), so one `u8` carries both the outcome and the
/// guard that missed.
const OUT_RUN: u8 = 0;
const OUT_RECORDED: u8 = 1;
const OUT_REPLAYED: u8 = 2;
const OUT_DEOPT: u8 = 3;

/// Timeline label for an outcome code.
fn outcome_name(code: u8) -> &'static str {
    match code {
        OUT_RUN => "run",
        OUT_RECORDED => "recorded",
        OUT_REPLAYED => "replayed",
        _ => "deopted",
    }
}

/// The replay engine's view of a [`Gpu`]'s persistent trace cache, scoped
/// to one launch: `key` identifies the (kernel fingerprint, grid, block,
/// scalar params) tuple this launch's traces are valid for, and `epoch` is
/// this launch's sequence number — a cache entry with an older epoch was
/// recorded by an earlier launch, so replaying it is a cross-launch hit.
struct SharedTraces<'a> {
    cache: &'a Mutex<TraceCacheMap>,
    key: u64,
    epoch: u64,
}

/// The cross-launch trace-cache key: a hash of everything a recorded trace
/// pins — the kernel's structural fingerprint, the launch geometry, and the
/// scalar parameter values (bitwise, so `-0.0` and `0.0` are distinct and
/// NaNs hash stably). Buffer lengths and contents are deliberately absent:
/// replay guards re-validate those per access and deopt on divergence.
fn launch_trace_key(kernel_fp: u64, cfg: LaunchConfig, params: &[ParamValue]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    kernel_fp.hash(&mut h);
    cfg.grid.hash(&mut h);
    cfg.block.hash(&mut h);
    for p in params {
        match p {
            ParamValue::I32(v) => (0u8, *v as u32).hash(&mut h),
            ParamValue::F32(v) => (1u8, v.to_bits()).hash(&mut h),
        }
    }
    h.finish()
}

/// Per-worker accumulator of the decoded exhaustive path: one of these folds
/// a contiguous chunk of block indices, so its scratch arena is prepared
/// once and then reused — memset, not malloc — for every block in the chunk.
#[derive(Default)]
struct ChunkAcc {
    scratch: DecodedScratch,
    counters: FlatCounters,
    per_class: HashMap<u32, FlatCounters>,
    cycles: Vec<u64>,
    writes: Vec<(u32, usize, u32)>,
    err: Option<SimError>,
    /// Lock-free view of the launch's slice of the shared trace cache: once
    /// a worker has resolved a class's trace it never takes the shared lock
    /// again. The flag records whether the trace came from an earlier
    /// launch (a cross-launch hit when replayed).
    local_traces: HashMap<u32, (Arc<Trace>, bool)>,
    trace_stats: HashMap<u32, TraceStats>,
    /// Blocks replayed from a trace recorded by an earlier launch.
    trace_xlaunch: u64,
    /// Per-block outcome codes in chunk dispatch order; populated only when
    /// the launch's probe is enabled (index-aligned with `cycles`).
    outcomes: Vec<u8>,
    /// Opcode-sequence histograms gathered by [`SeqProfiler`]; populated
    /// only on probed decoded-engine launches.
    opseq: OpSeq,
}

/// Dynamic opcode-pair/-triple histograms over the executed (unfused) op
/// stream — the evidence base for the superinstruction set (DESIGN.md §7c).
#[derive(Debug, Default)]
struct OpSeq {
    pairs: HashMap<(&'static str, &'static str), u64>,
    triples: HashMap<(&'static str, &'static str, &'static str), u64>,
}

impl OpSeq {
    fn merge(&mut self, o: &OpSeq) {
        for (&k, &n) in &o.pairs {
            *self.pairs.entry(k).or_default() += n;
        }
        for (&k, &n) in &o.triples {
            *self.triples.entry(k).or_default() += n;
        }
    }

    /// Export to the probe as `sim.opseq2.{a}+{b}` / `sim.opseq3.{a}+{b}+{c}`
    /// counters; they flow into the probe's metrics JSON unchanged.
    fn report(&self, probe: &ProbeHandle) {
        for (&(a, b), &n) in &self.pairs {
            probe.count(&format!("sim.opseq2.{a}+{b}"), n);
        }
        for (&(a, b, c), &n) in &self.triples {
            probe.count(&format!("sim.opseq3.{a}+{b}+{c}"), n);
        }
    }
}

/// [`Tracer`] that counts adjacent same-block op pairs and triples in the
/// dynamic (unfused) instruction stream. Tracing forces the executor onto
/// its op-at-a-time path, so the histogram observes the raw opcode sequence
/// whatever the kernel's fusion setting — and only probed launches pay for
/// it.
struct SeqProfiler<'a> {
    dk: &'a DecodedKernel,
    /// Per-op block-start flags: a pair never straddles a block boundary.
    block_start: &'a [bool],
    /// Last executed op index + 1 (0 = none); `prev2` is the one before.
    prev: u32,
    prev2: u32,
    seq: &'a mut OpSeq,
}

impl SeqProfiler<'_> {
    #[inline]
    fn note(&mut self, i: u32) {
        let iu = i as usize;
        if self.prev == i && i > 0 && !self.block_start[iu] {
            let a = self.dk.ops[iu - 1].kind.mnemonic();
            let b = self.dk.ops[iu].kind.mnemonic();
            *self.seq.pairs.entry((a, b)).or_default() += 1;
            if self.prev2 == i - 1 && i > 1 && !self.block_start[iu - 1] {
                let z = self.dk.ops[iu - 2].kind.mnemonic();
                *self.seq.triples.entry((z, a, b)).or_default() += 1;
            }
        }
        self.prev2 = self.prev;
        self.prev = i + 1;
    }
}

impl Tracer for SeqProfiler<'_> {
    const ACTIVE: bool = true;

    fn warp_start(&mut self, _warp: u32) {
        self.prev = 0;
        self.prev2 = 0;
    }

    fn op(&mut self, i: u32, _mask: u32, _regs: &[u32]) {
        self.note(i);
    }

    fn branch(&mut self, _pred: u32, _mask: u32, _m_true: u32) {
        self.prev = 0;
        self.prev2 = 0;
    }

    fn mem(&mut self, i: u32, _mask: u32, _addrs: &[Option<i64>; crate::interp::WARP], _tx: u64) {
        self.note(i);
    }
}

/// Execute one block under the replay engine: replay its class's trace when
/// one exists (deopting to the decoded interpreter on a guard miss), or run
/// decoded while recording a fresh trace when the class is new. The first
/// recording of a class wins the cache slot; results are bit-identical to
/// [`run_decoded`] either way, only the stats depend on scheduling. A trace
/// left behind by an earlier launch with the same key replays immediately —
/// no block of this launch records — and each such replay is counted in
/// `xlaunch`.
#[allow(clippy::too_many_arguments)]
fn run_block_replay(
    dk: &DecodedKernel,
    ctx: &DecodedBlockCtx<'_>,
    class: u32,
    shared: &SharedTraces<'_>,
    local: &mut HashMap<u32, (Arc<Trace>, bool)>,
    stats: &mut HashMap<u32, TraceStats>,
    xlaunch: &mut u64,
    scratch: &mut DecodedScratch,
    writes: &mut Vec<(u32, usize, u32)>,
    probe: &ProbeHandle,
) -> Result<(FlatCounters, u64, u8), SimError> {
    let entry = stats.entry(class).or_default();
    let trace = match local.get(&class) {
        Some((t, prior)) => Some((Arc::clone(t), *prior)),
        None => {
            let t = shared
                .cache
                .lock()
                .unwrap()
                .get(&(shared.key, class))
                .map(|(epoch, t)| (Arc::clone(t), *epoch != shared.epoch));
            if let Some((t, prior)) = &t {
                local.insert(class, (Arc::clone(t), *prior));
            }
            t
        }
    };
    let Some((trace, prior)) = trace else {
        let started = probe.begin();
        let (counters, cycles, trace) = record_block(dk, ctx, scratch, writes)?;
        probe.span("trace-record", "sim", started, || {
            Some(format!("class {class}"))
        });
        entry.recorded += 1;
        let trace = Arc::new(trace);
        let mut cache = shared.cache.lock().unwrap();
        let cached = cache
            .entry((shared.key, class))
            .or_insert((shared.epoch, trace));
        local.insert(class, (Arc::clone(&cached.1), cached.0 != shared.epoch));
        return Ok((counters, cycles, OUT_RECORDED));
    };
    let journal_mark = writes.len();
    match replay_block(dk, &trace, ctx, scratch, writes) {
        Ok((counters, cycles)) => {
            entry.replayed += 1;
            if prior {
                *xlaunch += 1;
            }
            Ok((counters, cycles, OUT_REPLAYED))
        }
        Err(reason) => {
            // Guard miss: discard the partial replay and re-run the block on
            // the decoded engine (which also reproduces the exact error, if
            // any).
            writes.truncate(journal_mark);
            entry.deopted += 1;
            entry.deopt_reasons[reason.index()] += 1;
            run_decoded(dk, ctx, scratch, writes)
                .map(|(c, cycles)| (c, cycles, OUT_DEOPT + reason.index() as u8))
        }
    }
}

/// The deterministic reducer of a decoded exhaustive launch: concatenate the
/// per-chunk accumulators **in chunk order** (chunks are contiguous
/// ascending index ranges, so chunk order is dispatch order). The first
/// error in chunk order is the first error in dispatch order — exactly what
/// [`reduce_block_runs`] reports — and an erroring launch applies no writes.
#[allow(clippy::type_complexity)]
fn reduce_chunk_accs(
    static_footprint: u32,
    accs: Vec<ChunkAcc>,
) -> Result<
    (
        PerfCounters,
        Vec<(u32, PerfCounters)>,
        Vec<BlockCost>,
        Vec<(u32, usize, u32)>,
        Vec<u8>,
    ),
    SimError,
> {
    for acc in &accs {
        if let Some(e) = &acc.err {
            return Err(e.clone());
        }
    }
    let mut flat = FlatCounters::default();
    let mut by_class: HashMap<u32, FlatCounters> = HashMap::new();
    let mut costs = Vec::new();
    let mut writes: Vec<(u32, usize, u32)> = Vec::new();
    let mut outcomes: Vec<u8> = Vec::new();
    for acc in accs {
        flat.merge(&acc.counters);
        for (c, fc) in acc.per_class {
            by_class.entry(c).or_default().merge(&fc);
        }
        costs.extend(acc.cycles.into_iter().map(|cycles| BlockCost {
            class: 0,
            cycles,
            static_footprint,
        }));
        writes.extend(acc.writes);
        outcomes.extend(acc.outcomes);
    }
    let mut per_class: Vec<(u32, PerfCounters)> = by_class
        .into_iter()
        .map(|(c, fc)| (c, fc.to_perf()))
        .collect();
    per_class.sort_unstable_by_key(|&(c, _)| c);
    Ok((flat.to_perf(), per_class, costs, writes, outcomes))
}

/// The deterministic reducer of a reference exhaustive launch: fold
/// per-block results **in dispatch order** into merged counters, the
/// scheduler's cost list, and a concatenated write journal. Because the fold
/// order is fixed, the reduction is bitwise independent of how the workers
/// were scheduled. When `classes` labels each run (same order), every
/// block's counters are also merged into its class's entry, so the per-class
/// sets sum bit-identically to the aggregate.
#[allow(clippy::type_complexity)]
fn reduce_block_runs(
    static_footprint: u32,
    runs: Vec<Result<BlockRun, SimError>>,
    classes: Option<&[u32]>,
) -> Result<
    (
        PerfCounters,
        Vec<(u32, PerfCounters)>,
        Vec<BlockCost>,
        Vec<(u32, usize, u32)>,
        Vec<u8>,
    ),
    SimError,
> {
    let mut counters = PerfCounters::new();
    let mut by_class: HashMap<u32, PerfCounters> = HashMap::new();
    let mut costs = Vec::with_capacity(runs.len());
    let mut writes: Vec<(u32, usize, u32)> = Vec::new();
    for (i, run) in runs.into_iter().enumerate() {
        let run = run?;
        counters.merge(&run.counters);
        if let Some(classes) = classes {
            by_class.entry(classes[i]).or_default().merge(&run.counters);
        }
        costs.push(BlockCost {
            class: 0,
            cycles: run.cycles,
            static_footprint,
        });
        writes.extend(run.writes);
    }
    let mut per_class: Vec<(u32, PerfCounters)> = by_class.into_iter().collect();
    per_class.sort_unstable_by_key(|&(c, _)| c);
    // Reference blocks have no replay machinery: every block is a plain
    // run, so the timeline derives outcomes as `OUT_RUN` without a vector.
    Ok((counters, per_class, costs, writes, Vec::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use isp_ir::{BinOp, CmpOp, IrBuilder, SReg, Ty};

    /// out[gid] = in[gid] + blockIdx.x, over a (gx, gy) grid of 32x4 blocks,
    /// guarded against the right/bottom image edge.
    fn grid_kernel() -> Kernel {
        let mut b = IrBuilder::new("grid", 2);
        let pw = b.param("width", Ty::S32);
        let ph = b.param("height", Ty::S32);
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        let tx = b.sreg(SReg::TidX);
        let ty = b.sreg(SReg::TidY);
        let bx = b.sreg(SReg::CtaIdX);
        let by = b.sreg(SReg::CtaIdY);
        let ntx = b.sreg(SReg::NTidX);
        let nty = b.sreg(SReg::NTidY);
        let gx = b.mad(Ty::S32, bx, ntx, tx);
        let gy = b.mad(Ty::S32, by, nty, ty);
        let w = b.ld_param(pw);
        let h = b.ld_param(ph);
        let px = b.setp(CmpOp::Lt, gx, w);
        let py = b.setp(CmpOp::Lt, gy, h);
        let p = b.bin(BinOp::And, Ty::Pred, px, py);
        b.cond_br(p, body, exit);
        b.switch_to(body);
        let addr = b.mad(Ty::S32, gy, w, gx);
        let v = b.ld(Ty::F32, 0, addr);
        let bxf = b.cvt(Ty::F32, bx);
        let r = b.bin(BinOp::Add, Ty::F32, v, bxf);
        b.st(1, addr, r);
        b.br(exit);
        b.switch_to(exit);
        b.ret();
        b.finish()
    }

    #[test]
    fn exhaustive_launch_full_grid() {
        let k = grid_kernel();
        let gpu = Gpu::new(DeviceSpec::gtx680());
        let (w, h) = (64usize, 8usize);
        let cfg = LaunchConfig::for_image(w, h, (32, 4));
        assert_eq!(cfg.grid, (2, 2));
        let input: Vec<f32> = (0..w * h).map(|i| i as f32).collect();
        let mut buffers = vec![DeviceBuffer::from_f32(&input), DeviceBuffer::zeroed(w * h)];
        let report = gpu
            .launch(
                &k,
                cfg,
                &[ParamValue::I32(w as i32), ParamValue::I32(h as i32)],
                &mut buffers,
                SimMode::Exhaustive,
            )
            .unwrap();
        let out = buffers[1].to_f32();
        for y in 0..h {
            for x in 0..w {
                let expect = (y * w + x) as f32 + (x / 32) as f32;
                assert_eq!(out[y * w + x], expect, "({x},{y})");
            }
        }
        assert_eq!(report.counters.blocks, 4);
        assert_eq!(report.counters.threads_retired, (w * h) as u64);
        assert!(report.timing.cycles > 0);
        assert!(report.occupancy.occupancy > 0.0);
    }

    #[test]
    fn ragged_edge_is_masked() {
        let k = grid_kernel();
        let gpu = Gpu::new(DeviceSpec::gtx680());
        // 48x6 image with 32x4 blocks: right column and bottom row ragged.
        let (w, h) = (48usize, 6usize);
        let cfg = LaunchConfig::for_image(w, h, (32, 4));
        assert_eq!(cfg.grid, (2, 2));
        let mut buffers = vec![
            DeviceBuffer::from_f32(&vec![1.0; w * h]),
            DeviceBuffer::zeroed(w * h),
        ];
        let report = gpu
            .launch(
                &k,
                cfg,
                &[ParamValue::I32(w as i32), ParamValue::I32(h as i32)],
                &mut buffers,
                SimMode::Exhaustive,
            )
            .unwrap();
        // Only w*h threads may store.
        assert!(report.counters.stores > 0);
        let out = buffers[1].to_f32();
        assert!(out.iter().all(|&v| v >= 1.0));
    }

    #[test]
    fn sampled_counters_match_exhaustive_for_uniform_classes() {
        let k = grid_kernel();
        let gpu = Gpu::new(DeviceSpec::gtx680());
        let (w, h) = (128usize, 16usize);
        let cfg = LaunchConfig::for_image(w, h, (32, 4)); // 4x4 grid
        let params = [ParamValue::I32(w as i32), ParamValue::I32(h as i32)];
        let input: Vec<f32> = vec![2.0; w * h];
        let mut b1 = vec![DeviceBuffer::from_f32(&input), DeviceBuffer::zeroed(w * h)];
        let ex = gpu
            .launch(&k, cfg, &params, &mut b1, SimMode::Exhaustive)
            .unwrap();
        let mut b2 = vec![DeviceBuffer::from_f32(&input), DeviceBuffer::zeroed(w * h)];
        // All blocks behave identically here: a single class is exact.
        let sa = gpu
            .launch(
                &k,
                cfg,
                &params,
                &mut b2,
                SimMode::RegionSampled {
                    classifier: &|_, _| 0,
                    paths: None,
                },
            )
            .unwrap();
        assert_eq!(ex.counters.warp_instructions, sa.counters.warp_instructions);
        assert_eq!(ex.counters.mem_transactions, sa.counters.mem_transactions);
        assert_eq!(ex.counters.histogram, sa.counters.histogram);
        assert_eq!(ex.timing.cycles, sa.timing.cycles);
        // Sampled mode must not write pixels.
        assert!(b2[1].to_f32().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn classified_counters_merge_bit_identically_to_aggregate() {
        let k = grid_kernel();
        let gpu = Gpu::new(DeviceSpec::gtx680());
        // Ragged geometry so classes genuinely differ (edge blocks mask).
        let (w, h) = (100usize, 14usize);
        let cfg = LaunchConfig::for_image(w, h, (32, 4)); // 4x4 grid
        let params = [ParamValue::I32(w as i32), ParamValue::I32(h as i32)];
        let input: Vec<f32> = (0..w * h).map(|i| (i % 7) as f32).collect();

        let mut b1 = vec![DeviceBuffer::from_f32(&input), DeviceBuffer::zeroed(w * h)];
        let ex = gpu
            .launch(&k, cfg, &params, &mut b1, SimMode::Exhaustive)
            .unwrap();
        assert!(
            ex.per_class.is_empty(),
            "plain exhaustive reports no classes"
        );

        // Classify by interior vs right-edge vs bottom-edge vs corner.
        let edge_x = cfg.grid.0 - 1;
        let edge_y = cfg.grid.1 - 1;
        let classifier = move |bx: u32, by: u32| (bx == edge_x) as u32 + 2 * (by == edge_y) as u32;
        let mut b2 = vec![DeviceBuffer::from_f32(&input), DeviceBuffer::zeroed(w * h)];
        let cl = gpu
            .launch(
                &k,
                cfg,
                &params,
                &mut b2,
                SimMode::ExhaustiveClassified {
                    classifier: &classifier,
                },
            )
            .unwrap();

        // Identical pixels and aggregate counters to the plain mode.
        assert_eq!(b1[1].to_f32(), b2[1].to_f32());
        assert_eq!(ex.counters, cl.counters);

        // Per-class attribution: sorted, all four classes present, and the
        // merge reproduces the aggregate bit-for-bit.
        let ids: Vec<u32> = cl.per_class.iter().map(|&(c, _)| c).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        let mut merged = PerfCounters::new();
        for (_, c) in &cl.per_class {
            merged.merge(c);
        }
        assert_eq!(merged, cl.counters);
    }

    #[test]
    fn launch_validation_errors() {
        let k = grid_kernel();
        let gpu = Gpu::new(DeviceSpec::gtx680());
        let params = [ParamValue::I32(32), ParamValue::I32(4)];
        let mut buffers = vec![DeviceBuffer::zeroed(128), DeviceBuffer::zeroed(128)];
        // Too many threads.
        let bad = LaunchConfig {
            grid: (1, 1),
            block: (64, 32),
        };
        assert!(matches!(
            gpu.launch(&k, bad, &params, &mut buffers, SimMode::Exhaustive),
            Err(SimError::BadLaunch(_))
        ));
        // Missing buffer.
        let cfg = LaunchConfig {
            grid: (1, 1),
            block: (32, 4),
        };
        let mut one = vec![DeviceBuffer::zeroed(128)];
        assert!(matches!(
            gpu.launch(&k, cfg, &params, &mut one, SimMode::Exhaustive),
            Err(SimError::BadLaunch(_))
        ));
        // Missing param.
        assert!(matches!(
            gpu.launch(
                &k,
                cfg,
                &[ParamValue::I32(32)],
                &mut buffers,
                SimMode::Exhaustive
            ),
            Err(SimError::BadLaunch(_))
        ));
        // Degenerate grid.
        let zero = LaunchConfig {
            grid: (0, 1),
            block: (32, 4),
        };
        assert!(matches!(
            gpu.launch(&k, zero, &params, &mut buffers, SimMode::Exhaustive),
            Err(SimError::BadLaunch(_))
        ));
    }

    #[test]
    fn for_image_rounds_up() {
        let cfg = LaunchConfig::for_image(100, 50, (32, 4));
        assert_eq!(cfg.grid, (4, 13));
        assert_eq!(cfg.threads_per_block(), 128);
        assert_eq!(cfg.total_blocks(), 52);
    }

    /// Run `mode_of()` under all three engines and return each engine's
    /// report plus output image, in [Reference, Decoded, Replay] order.
    fn run_all_engines<'m>(
        cfg: LaunchConfig,
        input: &[f32],
        mode_of: impl Fn() -> SimMode<'m>,
    ) -> Vec<(LaunchReport, Vec<f32>)> {
        let k = grid_kernel();
        let gpu = Gpu::new(DeviceSpec::gtx680());
        let w = (cfg.grid.0 * cfg.block.0) as i32;
        let params = [ParamValue::I32(w - 12), ParamValue::I32(13)];
        let mut out = Vec::new();
        for engine in [
            ExecEngine::Reference,
            ExecEngine::Decoded,
            ExecEngine::Replay,
        ] {
            let mut bufs = vec![
                DeviceBuffer::from_f32(input),
                DeviceBuffer::zeroed(input.len()),
            ];
            let report = gpu
                .launch_engine(
                    &k,
                    cfg,
                    &params,
                    &mut bufs,
                    mode_of(),
                    ExecStrategy::Parallel,
                    engine,
                )
                .unwrap();
            out.push((report, bufs[1].to_f32()));
        }
        out
    }

    #[test]
    fn fast_engines_match_reference_in_every_mode() {
        let cfg = LaunchConfig {
            grid: (4, 4),
            block: (32, 4),
        };
        let n = (cfg.grid.0 * cfg.block.0 * cfg.grid.1 * cfg.block.1) as usize;
        let input: Vec<f32> = (0..n).map(|i| (i % 11) as f32 - 3.0).collect();
        let classifier = |bx: u32, by: u32| (bx % 2) + 2 * (by % 2);

        let runs = run_all_engines(cfg, &input, || SimMode::Exhaustive);
        let (r, rp) = &runs[0];
        for (e, ep) in &runs[1..] {
            assert_eq!(r.counters, e.counters);
            assert_eq!(r.timing.cycles, e.timing.cycles);
            assert_eq!(rp, ep, "exhaustive pixels must be bit-identical");
        }

        let runs = run_all_engines(cfg, &input, || SimMode::ExhaustiveClassified {
            classifier: &classifier,
        });
        let (r, rp) = &runs[0];
        for (e, ep) in &runs[1..] {
            assert_eq!(r.counters, e.counters);
            assert_eq!(r.per_class, e.per_class);
            assert!(!e.per_class.is_empty());
            assert_eq!(rp, ep);
        }

        let runs = run_all_engines(cfg, &input, || SimMode::RegionSampled {
            classifier: &classifier,
            paths: None,
        });
        let (r, rp) = &runs[0];
        for (e, ep) in &runs[1..] {
            assert_eq!(r.counters, e.counters);
            assert_eq!(r.per_class, e.per_class);
            assert_eq!(r.class_costs, e.class_costs);
            assert_eq!(r.timing.cycles, e.timing.cycles);
            assert_eq!(rp, ep, "sampled mode writes nothing under any engine");
        }
    }

    #[test]
    fn replay_engine_reports_trace_reuse() {
        let k = grid_kernel();
        let gpu = Gpu::new(DeviceSpec::gtx680());
        assert_eq!(gpu.engine(), ExecEngine::Replay, "replay is the default");
        assert_eq!(gpu.trace_stats(), TraceStats::default());
        // Exact geometry (no ragged edge) with a uniform input: all four
        // blocks of a class run the identical schedule.
        let (w, h) = (128usize, 16usize);
        let cfg = LaunchConfig::for_image(w, h, (32, 4)); // 4x4 grid
        let params = [ParamValue::I32(w as i32), ParamValue::I32(h as i32)];
        let classifier = |bx: u32, _by: u32| bx % 2;
        let mut bufs = vec![
            DeviceBuffer::from_f32(&vec![1.0; w * h]),
            DeviceBuffer::zeroed(w * h),
        ];
        let report = gpu
            .launch_with(
                &k,
                cfg,
                &params,
                &mut bufs,
                SimMode::ExhaustiveClassified {
                    classifier: &classifier,
                },
                ExecStrategy::Serial,
            )
            .unwrap();
        // Serial strategy: exactly the first block of each class records.
        let ids: Vec<u32> = report.per_class_trace.iter().map(|&(c, _)| c).collect();
        assert_eq!(ids, vec![0, 1]);
        let mut total = TraceStats::default();
        for (_, s) in &report.per_class_trace {
            assert_eq!(s.recorded, 1);
            assert_eq!(s.deopted, 0);
            total.merge(s);
        }
        assert_eq!(
            total.recorded + total.replayed + total.deopted,
            cfg.total_blocks()
        );
        assert_eq!(gpu.trace_stats(), total, "Gpu aggregates launch stats");
        // Plain Exhaustive under the same Gpu: reuse counted, no per-class
        // breakdown (there is no classifier to attribute it to).
        let mut bufs = vec![
            DeviceBuffer::from_f32(&vec![1.0; w * h]),
            DeviceBuffer::zeroed(w * h),
        ];
        let plain = gpu
            .launch(&k, cfg, &params, &mut bufs, SimMode::Exhaustive)
            .unwrap();
        assert!(plain.per_class_trace.is_empty());
        let after = gpu.trace_stats();
        assert_eq!(
            after.recorded + after.replayed + after.deopted,
            2 * cfg.total_blocks()
        );
    }

    #[test]
    fn traces_are_reused_across_identical_launches() {
        let k = grid_kernel();
        let gpu = Gpu::new(DeviceSpec::gtx680());
        let (w, h) = (128usize, 16usize);
        let cfg = LaunchConfig::for_image(w, h, (32, 4)); // 4x4 grid, exact fit
        let params = [ParamValue::I32(w as i32), ParamValue::I32(h as i32)];
        let run = |params: &[ParamValue], input: &[f32]| {
            let mut bufs = vec![DeviceBuffer::from_f32(input), DeviceBuffer::zeroed(w * h)];
            gpu.launch_with(
                &k,
                cfg,
                params,
                &mut bufs,
                SimMode::Exhaustive,
                ExecStrategy::Serial,
            )
            .unwrap();
            bufs[1].to_f32()
        };
        let input: Vec<f32> = (0..w * h).map(|i| (i % 5) as f32).collect();
        run(&params, &input);
        let s1 = gpu.trace_stats();
        assert_eq!(s1.recorded, 1, "cold launch records its one class");
        assert_eq!(gpu.trace_cross_launch_hits(), 0);

        // Second launch, identical key, different pixel *contents*: replays
        // from block 0 — nothing records — and every block is a
        // cross-launch hit. The output must still be bit-identical to the
        // decoded engine on the same inputs.
        let input2: Vec<f32> = (0..w * h).map(|i| (i % 9) as f32 + 1.0).collect();
        let warm = run(&params, &input2);
        let s2 = gpu.trace_stats();
        assert_eq!(s2.recorded, 1, "warm launch records nothing");
        assert_eq!(s2.replayed, 2 * cfg.total_blocks() - 1);
        assert_eq!(gpu.trace_cross_launch_hits(), cfg.total_blocks());
        let mut bufs = vec![DeviceBuffer::from_f32(&input2), DeviceBuffer::zeroed(w * h)];
        gpu.launch_engine(
            &k,
            cfg,
            &params,
            &mut bufs,
            SimMode::Exhaustive,
            ExecStrategy::Serial,
            ExecEngine::Decoded,
        )
        .unwrap();
        assert_eq!(warm, bufs[1].to_f32(), "warm replay is bit-exact");

        // Different scalar params are a different key: the trace pins
        // parameter values, so this launch records afresh.
        let shrunk = [ParamValue::I32(w as i32), ParamValue::I32(h as i32 - 1)];
        run(&shrunk, &input2);
        let s3 = gpu.trace_stats();
        assert_eq!(s3.recorded, 2, "new params record a new trace");
        assert_eq!(gpu.trace_cross_launch_hits(), cfg.total_blocks());
    }

    #[test]
    fn decoded_serial_and_parallel_strategies_are_bit_identical() {
        let k = grid_kernel();
        let gpu = Gpu::new(DeviceSpec::rtx2080());
        let (w, h) = (100usize, 14usize);
        let cfg = LaunchConfig::for_image(w, h, (32, 4));
        let params = [ParamValue::I32(w as i32), ParamValue::I32(h as i32)];
        let input: Vec<f32> = (0..w * h).map(|i| (i % 13) as f32).collect();
        let mut reports = Vec::new();
        let mut images = Vec::new();
        for strategy in [ExecStrategy::Parallel, ExecStrategy::Serial] {
            let mut bufs = vec![DeviceBuffer::from_f32(&input), DeviceBuffer::zeroed(w * h)];
            let rep = gpu
                .launch_with(&k, cfg, &params, &mut bufs, SimMode::Exhaustive, strategy)
                .unwrap();
            reports.push(rep);
            images.push(bufs[1].to_f32());
        }
        assert_eq!(reports[0].counters, reports[1].counters);
        assert_eq!(reports[0].timing.cycles, reports[1].timing.cycles);
        assert_eq!(images[0], images[1]);
    }

    #[test]
    fn decode_cache_decodes_each_kernel_once() {
        let k = grid_kernel();
        let gpu = Gpu::new(DeviceSpec::gtx680());
        assert_eq!(gpu.decode_stats(), DecodeStats { hits: 0, misses: 0 });
        let (w, h) = (64usize, 8usize);
        let cfg = LaunchConfig::for_image(w, h, (32, 4));
        let params = [ParamValue::I32(w as i32), ParamValue::I32(h as i32)];
        for _ in 0..3 {
            let mut bufs = vec![DeviceBuffer::zeroed(w * h), DeviceBuffer::zeroed(w * h)];
            gpu.launch(&k, cfg, &params, &mut bufs, SimMode::Exhaustive)
                .unwrap();
        }
        let stats = gpu.decode_stats();
        assert_eq!(stats.misses, 1, "one kernel, one decode");
        assert_eq!(stats.hits, 2);
        // Clones share the cache.
        let clone = gpu.clone();
        let mut bufs = vec![DeviceBuffer::zeroed(w * h), DeviceBuffer::zeroed(w * h)];
        clone
            .launch(&k, cfg, &params, &mut bufs, SimMode::Exhaustive)
            .unwrap();
        assert_eq!(clone.decode_stats().misses, 1);
        assert_eq!(clone.decode_stats().hits, 3);
    }

    #[test]
    fn reference_engine_is_selectable_as_default() {
        let k = grid_kernel();
        let gpu = Gpu::new(DeviceSpec::gtx680()).with_engine(ExecEngine::Reference);
        assert_eq!(gpu.engine(), ExecEngine::Reference);
        let (w, h) = (64usize, 8usize);
        let cfg = LaunchConfig::for_image(w, h, (32, 4));
        let params = [ParamValue::I32(w as i32), ParamValue::I32(h as i32)];
        let mut bufs = vec![
            DeviceBuffer::from_f32(&vec![1.0; w * h]),
            DeviceBuffer::zeroed(w * h),
        ];
        gpu.launch(&k, cfg, &params, &mut bufs, SimMode::Exhaustive)
            .unwrap();
        // The reference engine never touches the decode cache.
        assert_eq!(gpu.decode_stats(), DecodeStats { hits: 0, misses: 0 });
    }
}
