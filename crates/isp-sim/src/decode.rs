#![allow(clippy::needless_range_loop)] // lane loops index several arrays at once

//! The decode stage: lower a validated [`Kernel`] once into flat microcode
//! (a [`DecodedKernel`]) and execute it with zero per-block heap allocation.
//!
//! The tree-walking interpreter in [`crate::interp`] re-matches `Operand`
//! enums in every lane of every instruction and allocates a fresh register
//! file per warp per block. For a 4096² exhaustive run that is ~131k blocks
//! of pure re-discovery of facts that never change across the grid. Decoding
//! resolves them once per kernel:
//!
//! - every operand becomes a pre-multiplied register-row base (immediates
//!   get broadcast rows in an immediate pool appended after the vregs), so
//!   a lane read is one indexed load;
//! - branch targets and immediate post-dominators become array offsets;
//! - per-instruction issue costs and counter categories are baked in from
//!   the [`DeviceSpec`] at decode time.
//!
//! Execution reuses a per-worker [`DecodedScratch`] arena across all blocks
//! the worker processes. The decoded executor is observationally identical
//! to [`crate::interp::run_block`] — same counters, cycles, write-journal
//! order and errors — and the tree-walker stays as the reference oracle for
//! differential testing.

use crate::counters::PerfCounters;
use crate::device::DeviceSpec;
use crate::error::SimError;
use crate::interp::{BlockRun, MAX_WARP_INSTRUCTIONS, WARP};
use crate::launch::ParamValue;
use crate::memory::{segment_count_full, transactions_for_warp_fixed, DeviceBuffer};
use isp_ir::cfg::Cfg;
use isp_ir::kernel::Kernel;
use isp_ir::{BinOp, CmpOp, Instr, InstrCategory, Operand, SReg, Terminator, Ty, UnOp};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::Hasher;

/// Sentinel block offset meaning "no block" (no reconvergence point / no
/// stop block). Kernels have far fewer than `u32::MAX` blocks.
const NO_BLOCK: u32 = u32::MAX;

const W: u32 = WARP as u32;

const CAT_BRA: usize = InstrCategory::Bra.index();
const CAT_RET: usize = InstrCategory::Ret.index();
const CAT_BAR2: usize = InstrCategory::Bar2.index();

/// One decoded instruction: issue cost and counter category baked in, the
/// operation itself pre-resolved so the lane loop never matches an
/// `Operand`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DOp {
    /// Issue cost on the decoding device, in cycles.
    pub(crate) cost: u32,
    /// `InstrCategory::index()` for flat histogram accounting.
    pub(crate) cat: u8,
    pub(crate) kind: DOpKind,
}

/// The decoded operation. All operand fields are register-row *bases*:
/// `slot * 32`, so lane `l` reads `regs[base + l]`. Immediates are rows in
/// the scratch arena's immediate pool, filled once per prepare.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DOpKind {
    BinI {
        op: BinOp,
        dst: u32,
        a: u32,
        b: u32,
    },
    BinF {
        op: BinOp,
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Predicate logic (`and`/`or`/`xor` on the low bit).
    BinP {
        op: BinOp,
        dst: u32,
        a: u32,
        b: u32,
    },
    MadI {
        dst: u32,
        a: u32,
        b: u32,
        c: u32,
    },
    MadF {
        dst: u32,
        a: u32,
        b: u32,
        c: u32,
    },
    /// Raw bit copy (any type).
    Mov {
        dst: u32,
        a: u32,
    },
    /// Predicate not: `(x & 1) ^ 1`.
    NotP {
        dst: u32,
        a: u32,
    },
    /// Bitwise not.
    NotB {
        dst: u32,
        a: u32,
    },
    NegI {
        dst: u32,
        a: u32,
    },
    AbsI {
        dst: u32,
        a: u32,
    },
    /// Float unary: neg/abs/exp/log/sqrt/rsqrt/floor.
    UnF {
        op: UnOp,
        dst: u32,
        a: u32,
    },
    /// `s32 -> f32`.
    CvtIF {
        dst: u32,
        a: u32,
    },
    /// `f32 -> s32` (round-to-nearest).
    CvtFI {
        dst: u32,
        a: u32,
    },
    SetPI {
        cmp: CmpOp,
        dst: u32,
        a: u32,
        b: u32,
    },
    SetPF {
        cmp: CmpOp,
        dst: u32,
        a: u32,
        b: u32,
    },
    SelP {
        dst: u32,
        a: u32,
        b: u32,
        pred: u32,
    },
    Sreg {
        dst: u32,
        sreg: SReg,
    },
    LdParam {
        dst: u32,
        index: u32,
    },
    Ld {
        dst: u32,
        buf: u32,
        addr: u32,
    },
    Tex {
        dst: u32,
        buf: u32,
        x: u32,
        y: u32,
    },
    St {
        buf: u32,
        addr: u32,
        val: u32,
    },
    Lds {
        dst: u32,
        addr: u32,
    },
    Sts {
        addr: u32,
        val: u32,
    },
    /// Never executed: barrier blocks are intercepted before their body.
    Bar,
}

impl DOpKind {
    /// PTX-style mnemonic for histogram keys and fusion reports. Stable
    /// strings: the opcode-sequence histograms exported by the probe layer
    /// key on `"{a}+{b}"` pair strings built from these.
    pub(crate) fn mnemonic(&self) -> &'static str {
        match self {
            DOpKind::BinI { op, .. } => match op {
                BinOp::Add => "add.s32",
                BinOp::Sub => "sub.s32",
                BinOp::Mul => "mul.s32",
                BinOp::Div => "div.s32",
                BinOp::Rem => "rem.s32",
                BinOp::Min => "min.s32",
                BinOp::Max => "max.s32",
                BinOp::And => "and.b32",
                BinOp::Or => "or.b32",
                BinOp::Xor => "xor.b32",
                BinOp::Shl => "shl.b32",
                BinOp::Shr => "shr.s32",
            },
            DOpKind::BinF { op, .. } => match op {
                BinOp::Add => "add.f32",
                BinOp::Sub => "sub.f32",
                BinOp::Mul => "mul.f32",
                BinOp::Div => "div.f32",
                BinOp::Rem => "rem.f32",
                BinOp::Min => "min.f32",
                BinOp::Max => "max.f32",
                _ => "bin.f32",
            },
            DOpKind::BinP { op, .. } => match op {
                BinOp::And => "and.pred",
                BinOp::Or => "or.pred",
                _ => "xor.pred",
            },
            DOpKind::MadI { .. } => "mad.s32",
            DOpKind::MadF { .. } => "mad.f32",
            DOpKind::Mov { .. } => "mov",
            DOpKind::NotP { .. } => "not.pred",
            DOpKind::NotB { .. } => "not.b32",
            DOpKind::NegI { .. } => "neg.s32",
            DOpKind::AbsI { .. } => "abs.s32",
            DOpKind::UnF { op, .. } => match op {
                UnOp::Neg => "neg.f32",
                UnOp::Abs => "abs.f32",
                UnOp::Exp => "ex2.f32",
                UnOp::Log => "lg2.f32",
                UnOp::Sqrt => "sqrt.f32",
                UnOp::Rsqrt => "rsqrt.f32",
                UnOp::Floor => "floor.f32",
                _ => "un.f32",
            },
            DOpKind::CvtIF { .. } => "cvt.f32.s32",
            DOpKind::CvtFI { .. } => "cvt.s32.f32",
            DOpKind::SetPI { cmp, .. } => match cmp {
                CmpOp::Eq => "setp.eq.s32",
                CmpOp::Ne => "setp.ne.s32",
                CmpOp::Lt => "setp.lt.s32",
                CmpOp::Le => "setp.le.s32",
                CmpOp::Gt => "setp.gt.s32",
                CmpOp::Ge => "setp.ge.s32",
            },
            DOpKind::SetPF { cmp, .. } => match cmp {
                CmpOp::Eq => "setp.eq.f32",
                CmpOp::Ne => "setp.ne.f32",
                CmpOp::Lt => "setp.lt.f32",
                CmpOp::Le => "setp.le.f32",
                CmpOp::Gt => "setp.gt.f32",
                CmpOp::Ge => "setp.ge.f32",
            },
            DOpKind::SelP { .. } => "selp",
            DOpKind::Sreg { .. } => "mov.sreg",
            DOpKind::LdParam { .. } => "ld.param",
            DOpKind::Ld { .. } => "ld.global",
            DOpKind::Tex { .. } => "tex.2d",
            DOpKind::St { .. } => "st.global",
            DOpKind::Lds { .. } => "ld.shared",
            DOpKind::Sts { .. } => "st.shared",
            DOpKind::Bar => "bar.sync",
        }
    }
}

/// One fused dispatch unit: up to three adjacent straight-line ops issued
/// with a single budget/counter update. `cats` holds the constituent
/// categories (histogram attribution is per-constituent, so fusion is
/// invisible to counters) and `cost` their pre-combined issue cost.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FOp {
    /// Index of the first constituent in [`DecodedKernel::ops`].
    first: u32,
    /// Number of constituents (1–3).
    n: u8,
    /// `InstrCategory::index()` of each constituent (`cats[..n]` valid).
    cats: [u8; 3],
    /// Sum of constituent issue costs.
    cost: u32,
    kind: FKind,
}

/// The fused operation body. Specialised variants embed their operand row
/// bases so the hot loop neither refetches nor re-matches the constituent
/// [`DOp`]s; the patterns are the top of the opcode-sequence histograms
/// (see DESIGN.md §7c): stencil address arithmetic (`mad+mad`), the clamp
/// chain (`mad+mad+min`), address-math-feeding-load, and load+convert.
/// Everything else fuses generically — same bulk charge, per-op body.
#[derive(Debug, Clone, Copy)]
#[allow(clippy::too_many_arguments)]
enum FKind {
    /// Unfused single op; dispatches through the normal path.
    Solo,
    /// `mad.s32 ; mad.s32 ; min.s32` — the clamp-address superinstruction.
    Mad2IMin {
        d1: u32,
        a1: u32,
        b1: u32,
        c1: u32,
        d2: u32,
        a2: u32,
        b2: u32,
        c2: u32,
        d3: u32,
        a3: u32,
        b3: u32,
    },
    /// `mad.s32 ; mad.s32` — 2-D address arithmetic.
    Mad2I {
        d1: u32,
        a1: u32,
        b1: u32,
        c1: u32,
        d2: u32,
        a2: u32,
        b2: u32,
        c2: u32,
    },
    /// `mad.f32 ; mad.f32` — stencil accumulation.
    Mad2F {
        d1: u32,
        a1: u32,
        b1: u32,
        c1: u32,
        d2: u32,
        a2: u32,
        b2: u32,
        c2: u32,
    },
    /// `mad.s32 ; ld.global` — address math feeding its load. The mad runs
    /// embedded; the load dispatches its normal body (validation,
    /// transactions, journal).
    MadILd { d1: u32, a1: u32, b1: u32, c1: u32 },
    /// `ld.global ; cvt.f32.s32` — load+convert chain.
    LdCvt { d2: u32, a2: u32 },
    /// `mul.f32 ; add.f32` — stencil weight-apply + accumulate.
    MulAddF {
        d1: u32,
        a1: u32,
        b1: u32,
        d2: u32,
        a2: u32,
        b2: u32,
    },
    /// `ld.global ; mul.f32 ; add.f32` — the full tap: load a sample,
    /// weight it, accumulate. The load dispatches its normal body; the
    /// arithmetic tail runs fused.
    LdMulAddF {
        d2: u32,
        a2: u32,
        b2: u32,
        d3: u32,
        a3: u32,
        b3: u32,
    },
    /// Generic fused pair (any two adjacent straight-line ops).
    Pair,
    /// Generic fused triple.
    Triple,
}

/// Decode-time fusion summary for one kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Fused groups formed (dispatch units covering ≥ 2 ops).
    pub groups: u64,
    /// Ops absorbed into those groups.
    pub fused_ops: u64,
    /// Static dispatches eliminated: `fused_ops - groups`.
    pub dispatches_saved: u64,
}

/// Decoded terminator with targets as array offsets and the reconvergence
/// point (immediate post-dominator) precomputed for `CondBr`.
#[derive(Debug, Clone, Copy)]
enum DTerm {
    Ret,
    Br {
        target: u32,
    },
    CondBr {
        /// Predicate register-row base.
        pred: u32,
        if_true: u32,
        if_false: u32,
        /// Reconvergence block, or [`NO_BLOCK`].
        ipdom: u32,
    },
}

/// A decoded basic block: an index range into the dense instruction array,
/// plus the fused-dispatch range into [`DecodedKernel::fops`].
#[derive(Debug, Clone, Copy)]
struct DBlock {
    start: u32,
    end: u32,
    /// Fused dispatch range (empty unless the kernel was decoded with
    /// fusion; barrier blocks stay empty — their body never executes).
    fstart: u32,
    fend: u32,
    term: DTerm,
    /// Whether this is a barrier block (first instruction is `bar`).
    is_bar: bool,
}

/// A kernel lowered to flat microcode for one device. Produced once by
/// [`decode`], cached by the launch layer, shared read-only across workers.
#[derive(Debug, Clone)]
pub struct DecodedKernel {
    /// Kernel name (error messages must match the reference interpreter).
    pub name: String,
    /// Structural fingerprint of the source kernel (cache key).
    pub fingerprint: u64,
    pub(crate) ops: Vec<DOp>,
    blocks: Vec<DBlock>,
    /// Fused dispatch stream (empty when `fuse` is false). The tracing
    /// executor and the recorder always walk `ops` unfused.
    fops: Vec<FOp>,
    /// Whether the fused stream is active for untraced execution.
    pub(crate) fuse: bool,
    pub(crate) num_vregs: u32,
    /// vregs + immediate pool rows.
    pub(crate) num_slots: u32,
    /// Distinct immediate bit patterns (row `num_vregs + i` broadcasts
    /// `imms[i]`).
    pub(crate) imms: Vec<u32>,
    shared_elems: u32,
    /// Vreg indices [`DecodedScratch::reset`] must zero before each block —
    /// the rows with at least one read (including a terminator predicate)
    /// not preceded by a same-basic-block write. See [`rows_needing_zero`].
    zero_rows: Vec<u32>,
    /// Baked device parameters.
    pub(crate) mem_cycles: u64,
    cost_bra: u64,
    cost_ret: u64,
    cost_bar2: u64,
    pub(crate) warp_size: u32,
}

impl DecodedKernel {
    /// Number of decoded instructions (for tests and stats).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of distinct immediates pooled.
    pub fn num_imms(&self) -> usize {
        self.imms.len()
    }

    /// Static dispatch units on the untraced hot path: fused groups when
    /// fusion is on, individual ops otherwise.
    pub fn num_dispatches(&self) -> usize {
        if self.fuse {
            self.fops.len()
        } else {
            self.ops.len()
        }
    }

    /// Decode-time fusion summary (all-zero when decoded without fusion).
    pub fn fusion_stats(&self) -> FusionStats {
        let mut s = FusionStats::default();
        for f in &self.fops {
            if f.n >= 2 {
                s.groups += 1;
                s.fused_ops += f.n as u64;
            }
        }
        s.dispatches_saved = s.fused_ops - s.groups;
        s
    }

    /// `flags[i]` is true iff op `i` starts a basic block — the
    /// opcode-sequence profiler uses this to avoid counting pairs that
    /// straddle a block boundary (never fusable).
    pub(crate) fn block_start_flags(&self) -> Vec<bool> {
        let mut flags = vec![false; self.ops.len()];
        for b in &self.blocks {
            if (b.start as usize) < flags.len() {
                flags[b.start as usize] = true;
            }
        }
        flags
    }
}

/// Structural fingerprint of a kernel: every semantically relevant field
/// (instructions, terminators, types, immediate bits, signatures) hashed;
/// labels and parameter names — which cannot affect execution — skipped.
pub fn kernel_fingerprint(k: &Kernel) -> u64 {
    let mut h = DefaultHasher::new();
    h.write(k.name.as_bytes());
    h.write_u32(k.num_buffers);
    h.write_u32(k.num_vregs);
    h.write_u32(k.shared_elems);
    h.write_usize(k.params.len());
    for p in &k.params {
        h.write_u8(p.ty as u8);
    }
    h.write_usize(k.blocks.len());
    for b in &k.blocks {
        h.write_usize(b.instrs.len());
        for i in &b.instrs {
            hash_instr(&mut h, i);
        }
        hash_term(&mut h, &b.terminator);
    }
    h.finish()
}

fn hash_vreg(h: &mut DefaultHasher, r: isp_ir::VReg) {
    h.write_u32(r.index);
    h.write_u8(r.ty as u8);
}

fn hash_operand(h: &mut DefaultHasher, op: &Operand) {
    match op {
        Operand::Reg(r) => {
            h.write_u8(0);
            hash_vreg(h, *r);
        }
        Operand::ImmI(v) => {
            h.write_u8(1);
            h.write_u32(*v as u32);
        }
        Operand::ImmF(v) => {
            h.write_u8(2);
            h.write_u32(v.to_bits());
        }
    }
}

fn hash_instr(h: &mut DefaultHasher, i: &Instr) {
    match i {
        Instr::Bin { op, dst, a, b } => {
            h.write_u8(0);
            h.write_u8(*op as u8);
            hash_vreg(h, *dst);
            hash_operand(h, a);
            hash_operand(h, b);
        }
        Instr::Mad { dst, a, b, c } => {
            h.write_u8(1);
            hash_vreg(h, *dst);
            hash_operand(h, a);
            hash_operand(h, b);
            hash_operand(h, c);
        }
        Instr::Un { op, dst, a } => {
            h.write_u8(2);
            h.write_u8(*op as u8);
            hash_vreg(h, *dst);
            hash_operand(h, a);
        }
        Instr::Cvt { dst, a } => {
            h.write_u8(3);
            hash_vreg(h, *dst);
            hash_operand(h, a);
        }
        Instr::SetP { cmp, dst, a, b } => {
            h.write_u8(4);
            h.write_u8(*cmp as u8);
            hash_vreg(h, *dst);
            hash_operand(h, a);
            hash_operand(h, b);
        }
        Instr::SelP { dst, a, b, pred } => {
            h.write_u8(5);
            hash_vreg(h, *dst);
            hash_operand(h, a);
            hash_operand(h, b);
            hash_vreg(h, *pred);
        }
        Instr::Sreg { dst, sreg } => {
            h.write_u8(6);
            h.write_u8(*sreg as u8);
            hash_vreg(h, *dst);
        }
        Instr::LdParam { dst, index } => {
            h.write_u8(7);
            h.write_u32(*index);
            hash_vreg(h, *dst);
        }
        Instr::Ld { dst, buf, addr } => {
            h.write_u8(8);
            h.write_u32(*buf);
            hash_vreg(h, *dst);
            hash_operand(h, addr);
        }
        Instr::Tex { dst, buf, x, y } => {
            h.write_u8(9);
            h.write_u32(*buf);
            hash_vreg(h, *dst);
            hash_operand(h, x);
            hash_operand(h, y);
        }
        Instr::St { buf, addr, val } => {
            h.write_u8(10);
            h.write_u32(*buf);
            hash_operand(h, addr);
            hash_operand(h, val);
        }
        Instr::Lds { dst, addr } => {
            h.write_u8(11);
            hash_vreg(h, *dst);
            hash_operand(h, addr);
        }
        Instr::Sts { addr, val } => {
            h.write_u8(12);
            hash_operand(h, addr);
            hash_operand(h, val);
        }
        Instr::Bar => h.write_u8(13),
    }
}

fn hash_term(h: &mut DefaultHasher, t: &Terminator) {
    match t {
        Terminator::Br { target } => {
            h.write_u8(0);
            h.write_u32(target.0);
        }
        Terminator::CondBr {
            pred,
            if_true,
            if_false,
        } => {
            h.write_u8(1);
            hash_vreg(h, *pred);
            h.write_u32(if_true.0);
            h.write_u32(if_false.0);
        }
        Terminator::Ret => h.write_u8(2),
    }
}

/// Interns immediates into broadcast rows appended after the vregs.
struct Lowerer {
    num_vregs: u32,
    imms: Vec<u32>,
    map: HashMap<u32, u32>,
}

impl Lowerer {
    /// Row index of an immediate bit pattern, deduplicated by bits (safe
    /// across `ImmI`/`ImmF` because all reads are bit-level; type
    /// interpretation happens in the op arm).
    fn imm(&mut self, bits: u32) -> u32 {
        let imms = &mut self.imms;
        *self.map.entry(bits).or_insert_with(|| {
            imms.push(bits);
            (imms.len() - 1) as u32
        })
    }

    /// Register-row base of an operand.
    fn slot(&mut self, op: &Operand) -> u32 {
        let s = match op {
            Operand::Reg(r) => r.index,
            Operand::ImmI(v) => self.num_vregs + self.imm(*v as u32),
            Operand::ImmF(v) => self.num_vregs + self.imm(v.to_bits()),
        };
        s * W
    }
}

/// Lower a validated kernel into flat microcode for `device`, with
/// superinstruction fusion on (the default for every launch path). Called
/// once per (kernel, device); the result is shared read-only by every
/// worker.
pub fn decode(kernel: &Kernel, device: &DeviceSpec) -> DecodedKernel {
    decode_with_fusion(kernel, device, true)
}

/// [`decode`] with explicit control over the fusion pass — ablation
/// binaries and the observability-neutrality tests compare both decodings.
pub fn decode_with_fusion(kernel: &Kernel, device: &DeviceSpec, fuse: bool) -> DecodedKernel {
    let ipdom = Cfg::new(kernel).ipostdom();
    let mut low = Lowerer {
        num_vregs: kernel.num_vregs,
        imms: Vec::new(),
        map: HashMap::new(),
    };
    let mut ops: Vec<DOp> = Vec::with_capacity(kernel.static_len());
    let mut blocks: Vec<DBlock> = Vec::with_capacity(kernel.blocks.len());
    for (bid, bb) in kernel.blocks.iter().enumerate() {
        let start = ops.len() as u32;
        for instr in &bb.instrs {
            let cat = InstrCategory::of_instr(instr);
            let kind = lower_instr(instr, &mut low);
            ops.push(DOp {
                cost: device.issue_cost(cat) as u32,
                cat: cat.index() as u8,
                kind,
            });
        }
        let term = match &bb.terminator {
            Terminator::Ret => DTerm::Ret,
            Terminator::Br { target } => DTerm::Br { target: target.0 },
            Terminator::CondBr {
                pred,
                if_true,
                if_false,
            } => DTerm::CondBr {
                pred: pred.index * W,
                if_true: if_true.0,
                if_false: if_false.0,
                ipdom: ipdom[bid].map_or(NO_BLOCK, |b| b.0),
            },
        };
        blocks.push(DBlock {
            start,
            end: ops.len() as u32,
            fstart: 0,
            fend: 0,
            term,
            is_bar: bb.instrs.first().is_some_and(|i| matches!(i, Instr::Bar)),
        });
    }
    let fops = if fuse {
        fuse_blocks(&ops, &mut blocks)
    } else {
        Vec::new()
    };
    let zero_rows = rows_needing_zero(&ops, &blocks, kernel.num_vregs);
    DecodedKernel {
        name: kernel.name.clone(),
        fingerprint: kernel_fingerprint(kernel),
        ops,
        blocks,
        fops,
        fuse,
        num_vregs: kernel.num_vregs,
        num_slots: kernel.num_vregs + low.imms.len() as u32,
        imms: low.imms,
        shared_elems: kernel.shared_elems,
        zero_rows,
        mem_cycles: device.mem_transaction_cycles,
        cost_bra: device.issue_cost(InstrCategory::Bra),
        cost_ret: device.issue_cost(InstrCategory::Ret),
        cost_bar2: device.issue_cost(InstrCategory::Bar2),
        warp_size: device.warp_size,
    }
}

/// Which vreg rows can observe state from before the block started. A row
/// needs per-block zeroing iff some read of it (data operand, address,
/// store value, or terminator predicate) is not preceded by a write to the
/// same row earlier in the *same* basic block. Within one basic block the
/// active lane mask is constant and every operation is lane-wise, so a
/// same-block write covers every lane a later read can observe — rows that
/// fail the test on every read can never see a previous block's values and
/// [`DecodedScratch::reset`] skips them. Everything else (cross-block live
/// values, genuine read-before-write) keeps the reference interpreter's
/// zero-initialised semantics. SSA-heavy kernels define most temporaries
/// immediately before use, so this typically shrinks the per-block memset
/// from the whole register file to a handful of rows.
fn rows_needing_zero(ops: &[DOp], blocks: &[DBlock], num_vregs: u32) -> Vec<u32> {
    let vreg_rows = num_vregs as usize * WARP;
    let mut need = vec![false; num_vregs as usize];
    let mut written = vec![false; num_vregs as usize];
    for db in blocks {
        written.fill(false);
        let read = |row: u32, written: &[bool], need: &mut [bool]| {
            let r = row as usize;
            if r < vreg_rows && !written[r / WARP] {
                need[r / WARP] = true;
            }
        };
        for op in &ops[db.start as usize..db.end as usize] {
            use DOpKind as K;
            let (srcs, dst) = match op.kind {
                K::BinI { dst, a, b, .. }
                | K::BinF { dst, a, b, .. }
                | K::BinP { dst, a, b, .. }
                | K::SetPI { dst, a, b, .. }
                | K::SetPF { dst, a, b, .. } => ([Some(a), Some(b), None], Some(dst)),
                K::MadI { dst, a, b, c } | K::MadF { dst, a, b, c } => {
                    ([Some(a), Some(b), Some(c)], Some(dst))
                }
                K::Mov { dst, a }
                | K::NotP { dst, a }
                | K::NotB { dst, a }
                | K::NegI { dst, a }
                | K::AbsI { dst, a }
                | K::UnF { dst, a, .. }
                | K::CvtIF { dst, a }
                | K::CvtFI { dst, a } => ([Some(a), None, None], Some(dst)),
                K::SelP { dst, a, b, pred } => ([Some(a), Some(b), Some(pred)], Some(dst)),
                K::Sreg { dst, .. } | K::LdParam { dst, .. } => ([None, None, None], Some(dst)),
                K::Ld { dst, addr, .. } | K::Lds { dst, addr } => {
                    ([Some(addr), None, None], Some(dst))
                }
                K::Tex { dst, x, y, .. } => ([Some(x), Some(y), None], Some(dst)),
                K::St { addr, val, .. } | K::Sts { addr, val } => {
                    ([Some(addr), Some(val), None], None)
                }
                K::Bar => ([None, None, None], None),
            };
            for src in srcs.into_iter().flatten() {
                read(src, &written, &mut need);
            }
            if let Some(d) = dst {
                let d = d as usize;
                if d < vreg_rows {
                    written[d / WARP] = true;
                }
            }
        }
        if let DTerm::CondBr { pred, .. } = db.term {
            read(pred, &written, &mut need);
        }
    }
    (0..num_vregs).filter(|&r| need[r as usize]).collect()
}

fn lower_instr(instr: &Instr, low: &mut Lowerer) -> DOpKind {
    match instr {
        Instr::Bin { op, dst, a, b } => {
            let (a, b) = (low.slot(a), low.slot(b));
            let d = dst.index * W;
            match dst.ty {
                Ty::S32 => DOpKind::BinI {
                    op: *op,
                    dst: d,
                    a,
                    b,
                },
                Ty::F32 => DOpKind::BinF {
                    op: *op,
                    dst: d,
                    a,
                    b,
                },
                Ty::Pred => DOpKind::BinP {
                    op: *op,
                    dst: d,
                    a,
                    b,
                },
            }
        }
        Instr::Mad { dst, a, b, c } => {
            let (a, b, c) = (low.slot(a), low.slot(b), low.slot(c));
            let d = dst.index * W;
            match dst.ty {
                Ty::S32 => DOpKind::MadI { dst: d, a, b, c },
                Ty::F32 => DOpKind::MadF { dst: d, a, b, c },
                Ty::Pred => unreachable!("validated IR"),
            }
        }
        Instr::Un { op, dst, a } => {
            let a = low.slot(a);
            let d = dst.index * W;
            match (op, dst.ty) {
                (UnOp::Mov, _) => DOpKind::Mov { dst: d, a },
                (UnOp::Not, Ty::Pred) => DOpKind::NotP { dst: d, a },
                (UnOp::Not, _) => DOpKind::NotB { dst: d, a },
                (UnOp::Neg, Ty::S32) => DOpKind::NegI { dst: d, a },
                (UnOp::Abs, Ty::S32) => DOpKind::AbsI { dst: d, a },
                (_, Ty::F32) => DOpKind::UnF { op: *op, dst: d, a },
                _ => unreachable!("validated IR"),
            }
        }
        Instr::Cvt { dst, a } => {
            let a = low.slot(a);
            let d = dst.index * W;
            match dst.ty {
                Ty::F32 => DOpKind::CvtIF { dst: d, a },
                Ty::S32 => DOpKind::CvtFI { dst: d, a },
                Ty::Pred => unreachable!("validated IR"),
            }
        }
        Instr::SetP { cmp, dst, a, b } => {
            // Comparison type follows the first operand, like the reference.
            let float = a.ty() == Ty::F32;
            let (a, b) = (low.slot(a), low.slot(b));
            let d = dst.index * W;
            if float {
                DOpKind::SetPF {
                    cmp: *cmp,
                    dst: d,
                    a,
                    b,
                }
            } else {
                DOpKind::SetPI {
                    cmp: *cmp,
                    dst: d,
                    a,
                    b,
                }
            }
        }
        Instr::SelP { dst, a, b, pred } => DOpKind::SelP {
            dst: dst.index * W,
            a: low.slot(a),
            b: low.slot(b),
            pred: pred.index * W,
        },
        Instr::Sreg { dst, sreg } => DOpKind::Sreg {
            dst: dst.index * W,
            sreg: *sreg,
        },
        Instr::LdParam { dst, index } => DOpKind::LdParam {
            dst: dst.index * W,
            index: *index,
        },
        Instr::Ld { dst, buf, addr } => DOpKind::Ld {
            dst: dst.index * W,
            buf: *buf,
            addr: low.slot(addr),
        },
        Instr::Tex { dst, buf, x, y } => DOpKind::Tex {
            dst: dst.index * W,
            buf: *buf,
            x: low.slot(x),
            y: low.slot(y),
        },
        Instr::St { buf, addr, val } => DOpKind::St {
            buf: *buf,
            addr: low.slot(addr),
            val: low.slot(val),
        },
        Instr::Lds { dst, addr } => DOpKind::Lds {
            dst: dst.index * W,
            addr: low.slot(addr),
        },
        Instr::Sts { addr, val } => DOpKind::Sts {
            addr: low.slot(addr),
            val: low.slot(val),
        },
        Instr::Bar => DOpKind::Bar,
    }
}

/// The peephole fusion pass: greedily fold adjacent straight-line ops of
/// each non-barrier block into [`FOp`] dispatch units, preferring the
/// specialised superinstruction patterns (histogram-ranked, DESIGN.md §7c)
/// over generic pairs/triples. Any op may participate — an error raised by
/// a constituent aborts the launch before counters become observable, and
/// the one case where intermediate counter state *is* observable (budget
/// exhaustion mid-group) falls back to sequential dispatch at execution
/// time. Fills each block's `fstart..fend` and returns the fused stream.
fn fuse_blocks(ops: &[DOp], blocks: &mut [DBlock]) -> Vec<FOp> {
    let mut fops: Vec<FOp> = Vec::with_capacity(ops.len());
    for b in blocks.iter_mut() {
        b.fstart = fops.len() as u32;
        if b.is_bar {
            // Barrier blocks are intercepted before their body runs.
            b.fend = b.fstart;
            continue;
        }
        let mut i = b.start as usize;
        let end = b.end as usize;
        while i < end {
            let left = end - i;
            let group = move |n: usize, kind: FKind| {
                let mut cats = [0u8; 3];
                let mut cost = 0u32;
                for j in 0..n {
                    cats[j] = ops[i + j].cat;
                    cost += ops[i + j].cost;
                }
                FOp {
                    first: i as u32,
                    n: n as u8,
                    cats,
                    cost,
                    kind,
                }
            };
            let fop = match_superinstruction(ops, i, left, &group).unwrap_or_else(|| {
                if left >= 3 {
                    group(3, FKind::Triple)
                } else if left == 2 {
                    group(2, FKind::Pair)
                } else {
                    group(1, FKind::Solo)
                }
            });
            i += fop.n as usize;
            fops.push(fop);
        }
        b.fend = fops.len() as u32;
    }
    fops
}

/// Try the specialised superinstruction patterns at op `i`.
fn match_superinstruction(
    ops: &[DOp],
    i: usize,
    left: usize,
    group: &dyn Fn(usize, FKind) -> FOp,
) -> Option<FOp> {
    use DOpKind as K;
    if left >= 3 {
        if let (
            K::MadI {
                dst: d1,
                a: a1,
                b: b1,
                c: c1,
            },
            K::MadI {
                dst: d2,
                a: a2,
                b: b2,
                c: c2,
            },
            K::BinI {
                op: BinOp::Min,
                dst: d3,
                a: a3,
                b: b3,
            },
        ) = (ops[i].kind, ops[i + 1].kind, ops[i + 2].kind)
        {
            return Some(group(
                3,
                FKind::Mad2IMin {
                    d1,
                    a1,
                    b1,
                    c1,
                    d2,
                    a2,
                    b2,
                    c2,
                    d3,
                    a3,
                    b3,
                },
            ));
        }
        if let (
            K::Ld { .. },
            K::BinF {
                op: BinOp::Mul,
                dst: d2,
                a: a2,
                b: b2,
            },
            K::BinF {
                op: BinOp::Add,
                dst: d3,
                a: a3,
                b: b3,
            },
        ) = (ops[i].kind, ops[i + 1].kind, ops[i + 2].kind)
        {
            return Some(group(
                3,
                FKind::LdMulAddF {
                    d2,
                    a2,
                    b2,
                    d3,
                    a3,
                    b3,
                },
            ));
        }
    }
    if left < 2 {
        return None;
    }
    match (ops[i].kind, ops[i + 1].kind) {
        (
            K::MadI {
                dst: d1,
                a: a1,
                b: b1,
                c: c1,
            },
            K::MadI {
                dst: d2,
                a: a2,
                b: b2,
                c: c2,
            },
        ) => Some(group(
            2,
            FKind::Mad2I {
                d1,
                a1,
                b1,
                c1,
                d2,
                a2,
                b2,
                c2,
            },
        )),
        (
            K::MadF {
                dst: d1,
                a: a1,
                b: b1,
                c: c1,
            },
            K::MadF {
                dst: d2,
                a: a2,
                b: b2,
                c: c2,
            },
        ) => Some(group(
            2,
            FKind::Mad2F {
                d1,
                a1,
                b1,
                c1,
                d2,
                a2,
                b2,
                c2,
            },
        )),
        (
            K::MadI {
                dst: d1,
                a: a1,
                b: b1,
                c: c1,
            },
            K::Ld { .. },
        ) => Some(group(2, FKind::MadILd { d1, a1, b1, c1 })),
        (K::Ld { .. }, K::CvtIF { dst: d2, a: a2 }) => Some(group(2, FKind::LdCvt { d2, a2 })),
        (
            K::BinF {
                op: BinOp::Mul,
                dst: d1,
                a: a1,
                b: b1,
            },
            K::BinF {
                op: BinOp::Add,
                dst: d2,
                a: a2,
                b: b2,
            },
        ) => Some(group(
            2,
            FKind::MulAddF {
                d1,
                a1,
                b1,
                d2,
                a2,
                b2,
            },
        )),
        _ => None,
    }
}

/// Flat-array counters for the decoded hot loop: one add per event, no map
/// lookups. Converted to [`PerfCounters`] at the block/chunk boundary.
#[derive(Debug, Clone, Default)]
pub struct FlatCounters {
    /// Per-category counts, indexed by [`InstrCategory::index`].
    pub hist: [u64; 24],
    pub warp_instructions: u64,
    pub divergent_branches: u64,
    pub conditional_branches: u64,
    pub mem_transactions: u64,
    pub loads: u64,
    pub stores: u64,
    pub tex_accesses: u64,
    pub threads_retired: u64,
    pub blocks: u64,
}

impl FlatCounters {
    /// Accumulate another counter set.
    pub fn merge(&mut self, o: &FlatCounters) {
        for i in 0..self.hist.len() {
            self.hist[i] += o.hist[i];
        }
        self.warp_instructions += o.warp_instructions;
        self.divergent_branches += o.divergent_branches;
        self.conditional_branches += o.conditional_branches;
        self.mem_transactions += o.mem_transactions;
        self.loads += o.loads;
        self.stores += o.stores;
        self.tex_accesses += o.tex_accesses;
        self.threads_retired += o.threads_retired;
        self.blocks += o.blocks;
    }

    /// Convert to the map-based [`PerfCounters`]. Zero entries are skipped:
    /// the reference histogram only ever contains executed categories, and
    /// `InstrHistogram` equality is map equality.
    pub fn to_perf(&self) -> PerfCounters {
        let mut histogram = isp_ir::InstrHistogram::new();
        for (i, cat) in InstrCategory::ALL.iter().enumerate() {
            if self.hist[i] != 0 {
                histogram.add(*cat, self.hist[i]);
            }
        }
        PerfCounters {
            histogram,
            warp_instructions: self.warp_instructions,
            divergent_branches: self.divergent_branches,
            conditional_branches: self.conditional_branches,
            mem_transactions: self.mem_transactions,
            loads: self.loads,
            stores: self.stores,
            tex_accesses: self.tex_accesses,
            threads_retired: self.threads_retired,
            blocks: self.blocks,
        }
    }
}

/// Per-warp execution state in the scratch arena.
#[derive(Debug, Clone, Copy, Default)]
struct DWarp {
    mask: u32,
    init_mask: u32,
    pos: u32,
    budget: u64,
    done: bool,
}

/// Per-worker scratch arena reused across every block the worker processes:
/// register file (vreg rows + immediate broadcast rows, per warp), shared
/// memory, per-thread `(tidX, tidY)` tables, warp states. After the first
/// block of a given (kernel, block_dim), running another block performs no
/// heap allocation.
#[derive(Debug, Default)]
pub struct DecodedScratch {
    pub(crate) regs: Vec<u32>,
    pub(crate) shared: Vec<u32>,
    pub(crate) tidx: Vec<u32>,
    pub(crate) tidy: Vec<u32>,
    warps: Vec<DWarp>,
    prepared: Option<(u64, (u32, u32))>,
}

impl DecodedScratch {
    /// Fresh (empty) arena; sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Size the arena for `(dk, block_dim)` if it is not already: resize the
    /// register file, fill immediate broadcast rows, compute tid tables and
    /// initial lane masks. No-op when the key matches the previous call.
    pub(crate) fn prepare(&mut self, dk: &DecodedKernel, block_dim: (u32, u32)) {
        let key = (dk.fingerprint, block_dim);
        if self.prepared == Some(key) {
            return;
        }
        let threads = block_dim.0 as u64 * block_dim.1 as u64;
        let num_warps = threads.div_ceil(WARP as u64) as usize;
        let stride = dk.num_slots as usize * WARP;
        self.regs.clear();
        self.regs.resize(num_warps * stride, 0);
        for w in 0..num_warps {
            for (i, &bits) in dk.imms.iter().enumerate() {
                let base = w * stride + (dk.num_vregs as usize + i) * WARP;
                self.regs[base..base + WARP].fill(bits);
            }
        }
        self.shared.clear();
        self.shared.resize(dk.shared_elems as usize, 0);
        let tx = block_dim.0 as u64;
        self.tidx.clear();
        self.tidy.clear();
        for linear in 0..num_warps as u64 * WARP as u64 {
            self.tidx.push((linear % tx) as u32);
            self.tidy.push((linear / tx) as u32);
        }
        self.warps.clear();
        self.warps.resize(num_warps, DWarp::default());
        for w in 0..num_warps {
            let base = w as u64 * WARP as u64;
            let mut m = 0u32;
            for l in 0..WARP as u64 {
                if base + l < threads {
                    m |= 1 << l;
                }
            }
            self.warps[w].init_mask = m;
        }
        self.prepared = Some(key);
    }

    /// Per-block reset: zero the vreg rows that can observe pre-block state
    /// (see [`rows_needing_zero`] — rows always written before read in the
    /// same basic block are skipped; immediate rows survive), zero shared
    /// memory, rewind the warps. No allocation.
    pub(crate) fn reset(&mut self, dk: &DecodedKernel) {
        let stride = dk.num_slots as usize * WARP;
        for w in 0..self.warps.len() {
            let base = w * stride;
            for &row in &dk.zero_rows {
                let b = base + row as usize * WARP;
                self.regs[b..b + WARP].fill(0);
            }
        }
        self.shared.fill(0);
        for s in self.warps.iter_mut() {
            s.mask = s.init_mask;
            s.pos = 0;
            s.budget = MAX_WARP_INSTRUCTIONS;
            s.done = s.init_mask == 0;
        }
    }
}

/// Launch-invariant context for one decoded block (device parameters are
/// baked into the [`DecodedKernel`], so no device reference is needed).
#[derive(Clone, Copy)]
pub struct DecodedBlockCtx<'a> {
    /// Grid dimensions in blocks.
    pub grid: (u32, u32),
    /// Block dimensions in threads.
    pub block_dim: (u32, u32),
    /// This block's coordinates.
    pub block_idx: (u32, u32),
    /// Scalar parameter values.
    pub params: &'a [ParamValue],
    /// Device buffers (stores are journaled).
    pub buffers: &'a [DeviceBuffer],
}

/// Where a warp's phase ended (decoded mirror of the reference outcome).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DOutcome {
    Arrived(u32),
    Retired,
    Barrier(u32, u32),
}

/// Observer hooks for the decoded executor, used by the trace recorder in
/// [`crate::trace`]. `ACTIVE` is a const so the no-op impl folds every hook
/// (and the address materialisation feeding [`Tracer::mem`]) out of the hot
/// loop — [`run_decoded`] compiles to exactly the untraced code.
pub(crate) trait Tracer {
    const ACTIVE: bool;
    /// A live warp starts (or resumes after a barrier) its phase.
    fn warp_start(&mut self, _warp: u32) {}
    /// A non-global-memory instruction executed under `mask`. Fires *after*
    /// the op's effects, with the warp's register rows — so a recorder can
    /// read the op's concrete result (and its still-live operand rows) for
    /// value analysis.
    fn op(&mut self, _i: u32, _mask: u32, _regs: &[u32]) {}
    /// A conditional branch resolved: lanes of `mask` whose predicate was
    /// non-zero are in `m_true`.
    fn branch(&mut self, _pred: u32, _mask: u32, _m_true: u32) {}
    /// A global load/store executed: resolved element addresses per active
    /// lane and the charged transaction count.
    fn mem(&mut self, _i: u32, _mask: u32, _addrs: &[Option<i64>; WARP], _tx: u64) {}
}

/// The default no-op tracer: every hook is dead code.
pub(crate) struct NoTrace;

impl Tracer for NoTrace {
    const ACTIVE: bool = false;
}

/// Execute one block of decoded microcode, appending its global stores to
/// `writes`. Returns the block's counters and issue cycles. Observationally
/// identical to [`crate::interp::run_block`].
pub fn run_decoded(
    dk: &DecodedKernel,
    ctx: &DecodedBlockCtx<'_>,
    scratch: &mut DecodedScratch,
    writes: &mut Vec<(u32, usize, u32)>,
) -> Result<(FlatCounters, u64), SimError> {
    run_decoded_traced(dk, ctx, scratch, writes, &mut NoTrace)
}

/// [`run_decoded`] with tracer hooks. The tracer observes the complete warp
/// schedule — phase starts, executed ops with masks, branch outcomes,
/// resolved memory addresses — in exact execution order, which is what the
/// replay engine needs to reproduce the write journal byte-for-byte.
pub(crate) fn run_decoded_traced<T: Tracer>(
    dk: &DecodedKernel,
    ctx: &DecodedBlockCtx<'_>,
    scratch: &mut DecodedScratch,
    writes: &mut Vec<(u32, usize, u32)>,
    tracer: &mut T,
) -> Result<(FlatCounters, u64), SimError> {
    scratch.prepare(dk, ctx.block_dim);
    scratch.reset(dk);
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if !T::ACTIVE
        && dk.fuse
        && crate::rows::simd_enabled()
        && !scratch.warps.is_empty()
        && scratch.warps.iter().all(|s| s.init_mask == u32::MAX)
    {
        // Optimistic warp-batched fast path: all warps execute the fused
        // dispatch stream in lockstep, so per-op decode and dispatch are
        // paid once per block instead of once per warp. Anything the
        // batch cannot prove equivalent — divergence, partial masks,
        // barriers, shared memory, texture fetches, out-of-bounds lanes,
        // budget exhaustion — abandons the attempt with no observable
        // effect (its counters and journal are private until success) and
        // the block re-runs from a fresh reset on the sequential path,
        // which also reproduces any error exactly.
        if let Some((counters, cycles)) = run_decoded_batched(dk, ctx, scratch, writes) {
            return Ok((counters, cycles));
        }
        scratch.reset(dk);
    }
    let mut counters = FlatCounters::default();
    let mut cycles = 0u64;
    let stride = dk.num_slots as usize * WARP;
    let DecodedScratch {
        regs,
        shared,
        tidx,
        tidy,
        warps,
        ..
    } = scratch;

    loop {
        let mut barrier: Option<u32> = None;
        let mut retired_this_phase = false;
        for w in 0..warps.len() {
            if warps[w].done {
                continue;
            }
            let (pos, mask) = (warps[w].pos, warps[w].mask);
            let mut budget = warps[w].budget;
            if T::ACTIVE {
                tracer.warp_start(w as u32);
            }
            let outcome = {
                let mut exec = DExec {
                    dk,
                    ctx,
                    warp_id: w as u32,
                    regs: &mut regs[w * stride..(w + 1) * stride],
                    shared,
                    tidx,
                    tidy,
                    counters: &mut counters,
                    cycles: &mut cycles,
                    writes,
                    budget: &mut budget,
                    tracer,
                };
                exec.exec_from(pos, mask, NO_BLOCK)?
            };
            warps[w].budget = budget;
            match outcome {
                DOutcome::Retired => {
                    warps[w].done = true;
                    retired_this_phase = true;
                }
                DOutcome::Barrier(bb, mask) => {
                    if mask != warps[w].init_mask {
                        return Err(SimError::BadLaunch(format!(
                            "barrier reached with a partial warp (mask {mask:#x} of {:#x}) in block ({},{}) — diverged threads may not sync",
                            warps[w].init_mask, ctx.block_idx.0, ctx.block_idx.1
                        )));
                    }
                    match barrier {
                        None => barrier = Some(bb),
                        Some(prev) if prev == bb => {}
                        Some(prev) => {
                            return Err(SimError::BadLaunch(format!(
                                "warps reached different barriers (BB{prev} vs BB{bb}) — deadlock"
                            )))
                        }
                    }
                    warps[w].pos = bb;
                    warps[w].mask = mask;
                }
                DOutcome::Arrived(_) => unreachable!("no stop block at top level"),
            }
        }
        let Some(bb) = barrier else { break };
        if retired_this_phase && warps.iter().any(|s| !s.done) {
            return Err(SimError::BadLaunch(
                "a warp retired while others wait at a barrier — deadlock".into(),
            ));
        }
        let next = match dk.blocks[bb as usize].term {
            DTerm::Br { target } => target,
            _ => unreachable!("validated: barrier blocks end in br"),
        };
        for s in warps.iter_mut().filter(|s| !s.done) {
            counters.hist[CAT_BAR2] += 1;
            counters.hist[CAT_BRA] += 1;
            counters.warp_instructions += 2;
            cycles += dk.cost_bar2 + dk.cost_bra;
            s.pos = next;
        }
    }
    counters.blocks = 1;
    Ok((counters, cycles))
}

/// [`run_decoded`] wrapped into the reference [`BlockRun`] shape (fresh
/// write journal, map-based counters) — for sampled launches and tests.
pub fn run_block_decoded(
    dk: &DecodedKernel,
    ctx: &DecodedBlockCtx<'_>,
    scratch: &mut DecodedScratch,
) -> Result<BlockRun, SimError> {
    let mut writes = Vec::new();
    let (counters, cycles) = run_decoded(dk, ctx, scratch, &mut writes)?;
    Ok(BlockRun {
        counters: counters.to_perf(),
        cycles,
        writes,
    })
}

/// Iterate the active lanes of `mask`. Full warps — the overwhelmingly
/// common case away from ragged edges and divergence — take an
/// unconditional loop the compiler can unswitch and vectorise; partial
/// masks fall back to the per-lane bit test. Both paths visit active lanes
/// in ascending order, so results are bit-identical.
macro_rules! lanes {
    ($mask:expr, $l:ident, $body:block) => {
        if $mask == u32::MAX {
            for $l in 0..WARP {
                $body
            }
        } else {
            for $l in 0..WARP {
                if $mask & (1 << $l) != 0 {
                    $body
                }
            }
        }
    };
}

/// Full-warp map over register rows: one input row into one output row.
/// Input rows are copied into fixed `[u32; WARP]` arrays (one bounds check
/// per row) so the map loop indexes check-free and vectorises; copy-first
/// keeps element-wise semantics identical even when `dst` aliases a source.
/// Partial masks take the per-lane in-place path.
macro_rules! warp_map1 {
    ($self:ident, $mask:expr, $d:expr, $a:expr, |$x:ident| $e:expr) => {{
        if $mask == u32::MAX {
            let xs = $self.row($a);
            let out = $self.row_mut($d);
            for l in 0..WARP {
                let $x = xs[l];
                out[l] = $e;
            }
        } else {
            for l in 0..WARP {
                if $mask & (1 << l) != 0 {
                    let $x = $self.regs[$a + l];
                    $self.regs[$d + l] = $e;
                }
            }
        }
    }};
}

/// Two input rows into one output row; see [`warp_map1`].
macro_rules! warp_map2 {
    ($self:ident, $mask:expr, $d:expr, $a:expr, $b:expr, |$x:ident, $y:ident| $e:expr) => {{
        if $mask == u32::MAX {
            let xs = $self.row($a);
            let ys = $self.row($b);
            let out = $self.row_mut($d);
            for l in 0..WARP {
                let $x = xs[l];
                let $y = ys[l];
                out[l] = $e;
            }
        } else {
            for l in 0..WARP {
                if $mask & (1 << l) != 0 {
                    let $x = $self.regs[$a + l];
                    let $y = $self.regs[$b + l];
                    $self.regs[$d + l] = $e;
                }
            }
        }
    }};
}

/// Three input rows into one output row; see [`warp_map1`].
macro_rules! warp_map3 {
    ($self:ident, $mask:expr, $d:expr, $a:expr, $b:expr, $c:expr,
     |$x:ident, $y:ident, $z:ident| $e:expr) => {{
        if $mask == u32::MAX {
            let xs = $self.row($a);
            let ys = $self.row($b);
            let zs = $self.row($c);
            let out = $self.row_mut($d);
            for l in 0..WARP {
                let $x = xs[l];
                let $y = ys[l];
                let $z = zs[l];
                out[l] = $e;
            }
        } else {
            for l in 0..WARP {
                if $mask & (1 << l) != 0 {
                    let $x = $self.regs[$a + l];
                    let $y = $self.regs[$b + l];
                    let $z = $self.regs[$c + l];
                    $self.regs[$d + l] = $e;
                }
            }
        }
    }};
}

/// Execute one non-memory, non-parameter data op on an executor exposing
/// `row`/`row_mut`/`regs`/`tidx`/`tidy`/`ctx`/`dk`/`warp_id`. Shared between
/// the decoded interpreter and trace replay so the two engines cannot drift:
/// a replayed arithmetic op is literally the same code as a decoded one.
/// Memory, parameter and barrier kinds are handled by each caller.
macro_rules! exec_pure_op {
    ($self:ident, $kind:expr, $mask:expr) => {
        match $kind {
            DOpKind::BinI { op, dst, a, b } => {
                let (d, a, b) = (dst as usize, a as usize, b as usize);
                if $mask == u32::MAX {
                    crate::rows::bin_i(op, $self.regs, d, a, b);
                } else {
                    warp_map2!($self, $mask, d, a, b, |x, y| crate::interp::eval_bin_i(
                        op, x as i32, y as i32
                    ) as u32);
                }
            }
            DOpKind::BinF { op, dst, a, b } => {
                let (d, a, b) = (dst as usize, a as usize, b as usize);
                if $mask == u32::MAX {
                    crate::rows::bin_f(op, $self.regs, d, a, b);
                } else {
                    warp_map2!($self, $mask, d, a, b, |x, y| crate::interp::eval_bin_f(
                        op,
                        f32::from_bits(x),
                        f32::from_bits(y)
                    )
                    .to_bits());
                }
            }
            DOpKind::BinP { op, dst, a, b } => {
                let (d, a, b) = (dst as usize, a as usize, b as usize);
                warp_map2!($self, $mask, d, a, b, |x, y| match op {
                    isp_ir::BinOp::And => (x & 1) & (y & 1),
                    isp_ir::BinOp::Or => (x & 1) | (y & 1),
                    isp_ir::BinOp::Xor => (x & 1) ^ (y & 1),
                    _ => unreachable!("validated IR"),
                });
            }
            DOpKind::MadI { dst, a, b, c } => {
                let (d, a, b, c) = (dst as usize, a as usize, b as usize, c as usize);
                if $mask == u32::MAX {
                    crate::rows::mad_i($self.regs, d, a, b, c);
                } else {
                    warp_map3!($self, $mask, d, a, b, c, |x, y, z| (x as i32)
                        .wrapping_mul(y as i32)
                        .wrapping_add(z as i32)
                        as u32);
                }
            }
            DOpKind::MadF { dst, a, b, c } => {
                let (d, a, b, c) = (dst as usize, a as usize, b as usize, c as usize);
                if $mask == u32::MAX {
                    crate::rows::mad_f($self.regs, d, a, b, c);
                } else {
                    warp_map3!($self, $mask, d, a, b, c, |x, y, z| (f32::from_bits(x)
                        * f32::from_bits(y)
                        + f32::from_bits(z))
                    .to_bits());
                }
            }
            DOpKind::Mov { dst, a } => {
                let (d, a) = (dst as usize, a as usize);
                warp_map1!($self, $mask, d, a, |x| x);
            }
            DOpKind::NotP { dst, a } => {
                let (d, a) = (dst as usize, a as usize);
                warp_map1!($self, $mask, d, a, |x| (x & 1) ^ 1);
            }
            DOpKind::NotB { dst, a } => {
                let (d, a) = (dst as usize, a as usize);
                warp_map1!($self, $mask, d, a, |x| !x);
            }
            DOpKind::NegI { dst, a } => {
                let (d, a) = (dst as usize, a as usize);
                warp_map1!($self, $mask, d, a, |x| (x as i32).wrapping_neg() as u32);
            }
            DOpKind::AbsI { dst, a } => {
                let (d, a) = (dst as usize, a as usize);
                warp_map1!($self, $mask, d, a, |x| (x as i32).wrapping_abs() as u32);
            }
            DOpKind::UnF { op, dst, a } => {
                let (d, a) = (dst as usize, a as usize);
                warp_map1!($self, $mask, d, a, |x| crate::interp::eval_un_f(
                    op,
                    f32::from_bits(x)
                )
                .to_bits());
            }
            DOpKind::CvtIF { dst, a } => {
                let (d, a) = (dst as usize, a as usize);
                if $mask == u32::MAX {
                    crate::rows::cvt_if($self.regs, d, a);
                } else {
                    warp_map1!($self, $mask, d, a, |x| (x as i32 as f32).to_bits());
                }
            }
            DOpKind::CvtFI { dst, a } => {
                let (d, a) = (dst as usize, a as usize);
                warp_map1!($self, $mask, d, a, |x| (f32::from_bits(x).round() as i32)
                    as u32);
            }
            DOpKind::SetPI { cmp, dst, a, b } => {
                let (d, a, b) = (dst as usize, a as usize, b as usize);
                if $mask == u32::MAX {
                    crate::rows::set_p_i(cmp, $self.regs, d, a, b);
                } else {
                    warp_map2!($self, $mask, d, a, b, |x, y| crate::interp::eval_cmp_i(
                        cmp, x as i32, y as i32
                    ) as u32);
                }
            }
            DOpKind::SetPF { cmp, dst, a, b } => {
                let (d, a, b) = (dst as usize, a as usize, b as usize);
                if $mask == u32::MAX {
                    crate::rows::set_p_f(cmp, $self.regs, d, a, b);
                } else {
                    warp_map2!($self, $mask, d, a, b, |x, y| crate::interp::eval_cmp_f(
                        cmp,
                        f32::from_bits(x),
                        f32::from_bits(y)
                    ) as u32);
                }
            }
            DOpKind::SelP { dst, a, b, pred } => {
                let (d, a, b, p) = (dst as usize, a as usize, b as usize, pred as usize);
                warp_map3!($self, $mask, d, a, b, p, |x, y, t| if t != 0 {
                    x
                } else {
                    y
                });
            }
            DOpKind::Sreg { dst, sreg } => {
                let d = dst as usize;
                let base = $self.warp_id as usize * WARP;
                match sreg {
                    isp_ir::SReg::TidX => {
                        lanes!($mask, l, {
                            $self.regs[d + l] = $self.tidx[base + l];
                        });
                    }
                    isp_ir::SReg::TidY => {
                        lanes!($mask, l, {
                            $self.regs[d + l] = $self.tidy[base + l];
                        });
                    }
                    isp_ir::SReg::LaneId => {
                        lanes!($mask, l, {
                            $self.regs[d + l] = l as u32;
                        });
                    }
                    isp_ir::SReg::WarpIdX => {
                        lanes!($mask, l, {
                            $self.regs[d + l] = $self.tidx[base + l] / $self.dk.warp_size;
                        });
                    }
                    _ => {
                        let bits = match sreg {
                            isp_ir::SReg::CtaIdX => $self.ctx.block_idx.0,
                            isp_ir::SReg::CtaIdY => $self.ctx.block_idx.1,
                            isp_ir::SReg::NTidX => $self.ctx.block_dim.0,
                            isp_ir::SReg::NTidY => $self.ctx.block_dim.1,
                            isp_ir::SReg::NCtaIdX => $self.ctx.grid.0,
                            isp_ir::SReg::NCtaIdY => $self.ctx.grid.1,
                            _ => unreachable!(),
                        };
                        lanes!($mask, l, {
                            $self.regs[d + l] = bits;
                        });
                    }
                }
            }
            _ => unreachable!("memory/param/barrier ops are handled by the caller"),
        }
    };
}

pub(crate) use {exec_pure_op, lanes, warp_map1, warp_map2, warp_map3};

/// Mutable execution view of one warp over decoded microcode.
struct DExec<'a, T: Tracer> {
    dk: &'a DecodedKernel,
    ctx: &'a DecodedBlockCtx<'a>,
    warp_id: u32,
    /// This warp's register rows: `num_slots * 32` raw bits.
    regs: &'a mut [u32],
    shared: &'a mut [u32],
    tidx: &'a [u32],
    tidy: &'a [u32],
    counters: &'a mut FlatCounters,
    cycles: &'a mut u64,
    writes: &'a mut Vec<(u32, usize, u32)>,
    budget: &'a mut u64,
    tracer: &'a mut T,
}

impl<'a, T: Tracer> DExec<'a, T> {
    #[inline]
    fn charge(&mut self, cat: usize, cost: u64) -> Result<(), SimError> {
        if *self.budget == 0 {
            return Err(SimError::RunawayBlock {
                block: self.ctx.block_idx,
                limit: MAX_WARP_INSTRUCTIONS,
            });
        }
        *self.budget -= 1;
        self.counters.hist[cat] += 1;
        self.counters.warp_instructions += 1;
        *self.cycles += cost;
        Ok(())
    }

    /// Copy of the register row at `base`: one bounds check, then the
    /// returned array indexes check-free in full-warp loops.
    #[inline(always)]
    fn row(&self, base: usize) -> [u32; WARP] {
        let mut out = [0u32; WARP];
        out.copy_from_slice(&self.regs[base..base + WARP]);
        out
    }

    /// Register row at `base` as a fixed-size array for check-free writes.
    #[inline(always)]
    fn row_mut(&mut self, base: usize) -> &mut [u32; WARP] {
        (&mut self.regs[base..base + WARP]).try_into().unwrap()
    }

    fn buffer(&self, buf: u32) -> Result<&'a DeviceBuffer, SimError> {
        self.ctx
            .buffers
            .get(buf as usize)
            .ok_or_else(|| SimError::BadLaunch(format!("missing buffer {buf}")))
    }

    fn oob(&self, buf: u32, addr: i64, len: usize, lane: usize, is_store: bool) -> SimError {
        let t = self.warp_id as usize * WARP + lane;
        SimError::OutOfBounds {
            buf,
            addr,
            len,
            thread: (
                self.ctx.block_idx.0 * self.ctx.block_dim.0 + self.tidx[t],
                self.ctx.block_idx.1 * self.ctx.block_dim.1 + self.tidy[t],
            ),
            block: self.ctx.block_idx,
            is_store,
        }
    }

    /// Validate a full warp's addresses (register row `ab`) against `len`
    /// and count 128-byte transactions. Matches
    /// [`transactions_for_warp_fixed`] exactly: distinct segments, with the
    /// sort skipped while the address stream is monotonically non-decreasing
    /// (every row-major stencil access).
    fn full_warp_tx(
        &self,
        ab: usize,
        len: usize,
        buf: u32,
        is_store: bool,
    ) -> Result<u64, SimError> {
        let mut addrs = [0i64; WARP];
        for l in 0..WARP {
            addrs[l] = self.regs[ab + l] as i32 as i64;
        }
        let mut bad = false;
        for l in 0..WARP {
            bad |= addrs[l] < 0 || addrs[l] >= len as i64;
        }
        if bad {
            for (l, &a) in addrs.iter().enumerate() {
                if a < 0 || a as usize >= len {
                    return Err(self.oob(buf, a, len, l, is_store));
                }
            }
        }
        Ok(segment_count_full(&addrs))
    }

    fn exec_from(
        &mut self,
        mut block: u32,
        mut mask: u32,
        stop: u32,
    ) -> Result<DOutcome, SimError> {
        loop {
            if block == stop {
                return Ok(DOutcome::Arrived(mask));
            }
            let db = self.dk.blocks[block as usize];
            if db.is_bar {
                if stop != NO_BLOCK {
                    return Err(SimError::BadLaunch(format!(
                        "barrier BB{block} reached under divergence in block ({},{})",
                        self.ctx.block_idx.0, self.ctx.block_idx.1
                    )));
                }
                return Ok(DOutcome::Barrier(block, mask));
            }
            if !T::ACTIVE && self.dk.fuse {
                // Fused dispatch stream. Recording must observe the unfused
                // op sequence, so any active tracer takes the op-at-a-time
                // path below.
                for fi in db.fstart..db.fend {
                    let f = self.dk.fops[fi as usize];
                    self.exec_fused(&f, mask)?;
                }
            } else {
                for i in db.start..db.end {
                    self.exec_op(i as usize, mask)?;
                }
            }
            match db.term {
                DTerm::Ret => {
                    self.charge(CAT_RET, self.dk.cost_ret)?;
                    self.counters.threads_retired += mask.count_ones() as u64;
                    return Ok(if stop != NO_BLOCK {
                        DOutcome::Arrived(0)
                    } else {
                        DOutcome::Retired
                    });
                }
                DTerm::Br { target } => {
                    self.charge(CAT_BRA, self.dk.cost_bra)?;
                    block = target;
                }
                DTerm::CondBr {
                    pred,
                    if_true,
                    if_false,
                    ipdom,
                } => {
                    self.charge(CAT_BRA, self.dk.cost_bra)?;
                    self.counters.conditional_branches += 1;
                    let p = pred as usize;
                    let mut m_true = 0u32;
                    for l in 0..WARP {
                        if mask & (1 << l) != 0 && self.regs[p + l] != 0 {
                            m_true |= 1 << l;
                        }
                    }
                    if T::ACTIVE {
                        self.tracer.branch(pred, mask, m_true);
                    }
                    let m_false = mask & !m_true;
                    if m_false == 0 {
                        block = if_true;
                    } else if m_true == 0 {
                        block = if_false;
                    } else {
                        self.counters.divergent_branches += 1;
                        let a = match self.exec_from(if_true, m_true, ipdom)? {
                            DOutcome::Arrived(m) => m,
                            DOutcome::Retired => 0,
                            DOutcome::Barrier(b, _) => {
                                return Err(SimError::BadLaunch(format!(
                                    "barrier BB{b} reached under divergence"
                                )))
                            }
                        };
                        let c = match self.exec_from(if_false, m_false, ipdom)? {
                            DOutcome::Arrived(m) => m,
                            DOutcome::Retired => 0,
                            DOutcome::Barrier(b, _) => {
                                return Err(SimError::BadLaunch(format!(
                                    "barrier BB{b} reached under divergence"
                                )))
                            }
                        };
                        if ipdom != NO_BLOCK {
                            mask = a | c;
                            if mask == 0 {
                                return Ok(if stop != NO_BLOCK {
                                    DOutcome::Arrived(0)
                                } else {
                                    DOutcome::Retired
                                });
                            }
                            block = ipdom;
                        } else {
                            debug_assert_eq!(a | c, 0);
                            return Ok(if stop != NO_BLOCK {
                                DOutcome::Arrived(0)
                            } else {
                                DOutcome::Retired
                            });
                        }
                    }
                }
            }
        }
    }

    /// Execute one fused dispatch unit: a single budget/counter update for
    /// the whole group, then the specialised (or generic) body. Counter
    /// attribution stays per-constituent (`cats`), so fusion is invisible
    /// to every observable: histogram, cycles, transactions, journal.
    fn exec_fused(&mut self, f: &FOp, mask: u32) -> Result<(), SimError> {
        let first = f.first as usize;
        let n = f.n as usize;
        if matches!(f.kind, FKind::Solo) {
            return self.exec_op(first, mask);
        }
        if *self.budget < n as u64 {
            // The budget runs out mid-group: only here is intermediate
            // counter state observable (the error aborts the launch at a
            // specific op). Sequential dispatch reproduces the unfused
            // engine's exact `RunawayBlock` point and partial effects.
            for i in first..first + n {
                self.exec_op(i, mask)?;
            }
            return Ok(());
        }
        *self.budget -= n as u64;
        for j in 0..n {
            self.counters.hist[f.cats[j] as usize] += 1;
        }
        self.counters.warp_instructions += n as u64;
        *self.cycles += f.cost as u64;
        if mask == u32::MAX {
            match f.kind {
                FKind::Mad2IMin {
                    d1,
                    a1,
                    b1,
                    c1,
                    d2,
                    a2,
                    b2,
                    c2,
                    d3,
                    a3,
                    b3,
                } => {
                    crate::rows::mad2_i_min(
                        self.regs,
                        d1 as usize,
                        a1 as usize,
                        b1 as usize,
                        c1 as usize,
                        d2 as usize,
                        a2 as usize,
                        b2 as usize,
                        c2 as usize,
                        d3 as usize,
                        a3 as usize,
                        b3 as usize,
                    );
                    return Ok(());
                }
                FKind::Mad2I {
                    d1,
                    a1,
                    b1,
                    c1,
                    d2,
                    a2,
                    b2,
                    c2,
                } => {
                    crate::rows::mad2_i(
                        self.regs,
                        d1 as usize,
                        a1 as usize,
                        b1 as usize,
                        c1 as usize,
                        d2 as usize,
                        a2 as usize,
                        b2 as usize,
                        c2 as usize,
                    );
                    return Ok(());
                }
                FKind::Mad2F {
                    d1,
                    a1,
                    b1,
                    c1,
                    d2,
                    a2,
                    b2,
                    c2,
                } => {
                    crate::rows::mad2_f(
                        self.regs,
                        d1 as usize,
                        a1 as usize,
                        b1 as usize,
                        c1 as usize,
                        d2 as usize,
                        a2 as usize,
                        b2 as usize,
                        c2 as usize,
                    );
                    return Ok(());
                }
                FKind::MadILd { d1, a1, b1, c1 } => {
                    crate::rows::mad_i(
                        self.regs,
                        d1 as usize,
                        a1 as usize,
                        b1 as usize,
                        c1 as usize,
                    );
                    let kind = self.dk.ops[first + 1].kind;
                    return self.exec_op_body(first + 1, kind, mask);
                }
                FKind::LdCvt { d2, a2 } => {
                    let kind = self.dk.ops[first].kind;
                    self.exec_op_body(first, kind, mask)?;
                    crate::rows::cvt_if(self.regs, d2 as usize, a2 as usize);
                    return Ok(());
                }
                FKind::MulAddF {
                    d1,
                    a1,
                    b1,
                    d2,
                    a2,
                    b2,
                } => {
                    crate::rows::mul_add_f(
                        self.regs,
                        d1 as usize,
                        a1 as usize,
                        b1 as usize,
                        d2 as usize,
                        a2 as usize,
                        b2 as usize,
                    );
                    return Ok(());
                }
                FKind::LdMulAddF {
                    d2,
                    a2,
                    b2,
                    d3,
                    a3,
                    b3,
                } => {
                    let kind = self.dk.ops[first].kind;
                    self.exec_op_body(first, kind, mask)?;
                    crate::rows::mul_add_f(
                        self.regs,
                        d2 as usize,
                        a2 as usize,
                        b2 as usize,
                        d3 as usize,
                        a3 as usize,
                        b3 as usize,
                    );
                    return Ok(());
                }
                FKind::Pair | FKind::Triple => {}
                FKind::Solo => unreachable!("dispatched above"),
            }
        }
        for i in first..first + n {
            let kind = self.dk.ops[i].kind;
            self.exec_op_body(i, kind, mask)?;
        }
        Ok(())
    }

    fn exec_op(&mut self, i: usize, mask: u32) -> Result<(), SimError> {
        let op = self.dk.ops[i];
        self.charge(op.cat as usize, op.cost as u64)?;
        self.exec_op_body(i, op.kind, mask)
    }

    /// The op body: effects only, no budget/counter charge (the caller —
    /// [`Self::exec_op`] or a fused group — has already charged).
    fn exec_op_body(&mut self, i: usize, kind: DOpKind, mask: u32) -> Result<(), SimError> {
        match kind {
            DOpKind::LdParam { dst, index } => {
                let bits = match self.ctx.params.get(index as usize) {
                    Some(ParamValue::I32(v)) => *v as u32,
                    Some(ParamValue::F32(v)) => v.to_bits(),
                    None => {
                        return Err(SimError::BadLaunch(format!(
                            "kernel '{}' reads parameter {index} but only {} were supplied",
                            self.dk.name,
                            self.ctx.params.len()
                        )))
                    }
                };
                let d = dst as usize;
                lanes!(mask, l, {
                    self.regs[d + l] = bits;
                });
            }
            DOpKind::Ld { dst, buf, addr } => {
                let buffer = self.buffer(buf)?;
                let len = buffer.len();
                let (d, ab) = (dst as usize, addr as usize);
                let tx = if mask == u32::MAX {
                    // Gather after validation. The address row is copied
                    // first, so a dst row aliasing it is still exact.
                    let addrs = self.row(ab);
                    let tx = match crate::rows::full_warp_tx_fast(&addrs, len) {
                        Some(tx) => tx,
                        None => self.full_warp_tx(ab, len, buf, false)?,
                    };
                    let out = self.row_mut(d);
                    // SAFETY: every lane's address was validated against
                    // `len` just above.
                    unsafe { crate::rows::gather_row(out, &addrs, buffer.bits()) };
                    if T::ACTIVE {
                        let resolved: [Option<i64>; WARP] =
                            std::array::from_fn(|l| Some(addrs[l] as i32 as i64));
                        self.tracer.mem(i as u32, mask, &resolved, tx);
                    }
                    tx
                } else {
                    let mut addrs: [Option<i64>; WARP] = [None; WARP];
                    for l in 0..WARP {
                        if mask & (1 << l) == 0 {
                            continue;
                        }
                        let a = self.regs[ab + l] as i32 as i64;
                        if a < 0 || a as usize >= len {
                            return Err(self.oob(buf, a, len, l, false));
                        }
                        addrs[l] = Some(a);
                    }
                    for l in 0..WARP {
                        if let Some(a) = addrs[l] {
                            // SAFETY: validated against `len` just above.
                            self.regs[d + l] = unsafe { buffer.load_bits_unchecked(a as usize) };
                        }
                    }
                    let tx = transactions_for_warp_fixed(&addrs);
                    if T::ACTIVE {
                        self.tracer.mem(i as u32, mask, &addrs, tx);
                    }
                    tx
                };
                self.counters.mem_transactions += tx;
                self.counters.loads += 1;
                *self.cycles += tx * self.dk.mem_cycles;
            }
            DOpKind::Tex { dst, buf, x, y } => {
                let buffer = self.buffer(buf)?;
                let desc = *buffer.texture().ok_or_else(|| {
                    SimError::BadLaunch(format!(
                        "kernel '{}' fetches buffer {buf} as a texture, but no texture is bound",
                        self.dk.name
                    ))
                })?;
                let (d, xb, yb) = (dst as usize, x as usize, y as usize);
                let mut addrs: [Option<i64>; WARP] = [None; WARP];
                let mut values: [u32; WARP] = [0; WARP];
                lanes!(mask, l, {
                    let cx = self.regs[xb + l] as i32 as i64;
                    let cy = self.regs[yb + l] as i32 as i64;
                    let rx = desc.mode.resolve(cx, desc.width);
                    let ry = desc.mode.resolve(cy, desc.height);
                    match (rx, ry) {
                        (Some(rx), Some(ry)) => {
                            let a = (ry * desc.width + rx) as i64;
                            addrs[l] = Some(a);
                            values[l] = buffer.load_bits(a as usize);
                        }
                        _ => {
                            values[l] = desc.mode.border_value().to_bits();
                        }
                    }
                });
                let tx = transactions_for_warp_fixed(&addrs);
                self.counters.mem_transactions += tx;
                self.counters.tex_accesses += 1;
                *self.cycles += tx * self.dk.mem_cycles;
                lanes!(mask, l, {
                    self.regs[d + l] = values[l];
                });
            }
            DOpKind::St { buf, addr, val } => {
                let len = self.buffer(buf)?.len();
                let (ab, vb) = (addr as usize, val as usize);
                let tx = if mask == u32::MAX {
                    let addrs = self.row(ab);
                    let tx = match crate::rows::full_warp_tx_fast(&addrs, len) {
                        Some(tx) => tx,
                        None => self.full_warp_tx(ab, len, buf, true)?,
                    };
                    let vals = self.row(vb);
                    self.writes
                        .extend((0..WARP).map(|l| (buf, addrs[l] as i32 as usize, vals[l])));
                    if T::ACTIVE {
                        let resolved: [Option<i64>; WARP] =
                            std::array::from_fn(|l| Some(addrs[l] as i32 as i64));
                        self.tracer.mem(i as u32, mask, &resolved, tx);
                    }
                    tx
                } else {
                    let mut addrs: [Option<i64>; WARP] = [None; WARP];
                    for l in 0..WARP {
                        if mask & (1 << l) == 0 {
                            continue;
                        }
                        let a = self.regs[ab + l] as i32 as i64;
                        if a < 0 || a as usize >= len {
                            return Err(self.oob(buf, a, len, l, true));
                        }
                        addrs[l] = Some(a);
                    }
                    for l in 0..WARP {
                        if let Some(a) = addrs[l] {
                            self.writes.push((buf, a as usize, self.regs[vb + l]));
                        }
                    }
                    let tx = transactions_for_warp_fixed(&addrs);
                    if T::ACTIVE {
                        self.tracer.mem(i as u32, mask, &addrs, tx);
                    }
                    tx
                };
                self.counters.mem_transactions += tx;
                self.counters.stores += 1;
                *self.cycles += tx * self.dk.mem_cycles;
            }
            DOpKind::Lds { dst, addr } => {
                let len = self.shared.len();
                let (d, ab) = (dst as usize, addr as usize);
                lanes!(mask, l, {
                    let a = self.regs[ab + l] as i32 as i64;
                    if a < 0 || a as usize >= len {
                        return Err(SimError::BadLaunch(format!(
                            "shared load out of bounds: [{a}] of {len} in block ({},{})",
                            self.ctx.block_idx.0, self.ctx.block_idx.1
                        )));
                    }
                    self.regs[d + l] = self.shared[a as usize];
                });
            }
            DOpKind::Sts { addr, val } => {
                let len = self.shared.len();
                let (ab, vb) = (addr as usize, val as usize);
                lanes!(mask, l, {
                    let a = self.regs[ab + l] as i32 as i64;
                    if a < 0 || a as usize >= len {
                        return Err(SimError::BadLaunch(format!(
                            "shared store out of bounds: [{a}] of {len} in block ({},{})",
                            self.ctx.block_idx.0, self.ctx.block_idx.1
                        )));
                    }
                    self.shared[a as usize] = self.regs[vb + l];
                });
            }
            DOpKind::Bar => {
                unreachable!("barrier blocks are intercepted before execution")
            }
            kind => exec_pure_op!(self, kind, mask),
        }
        if T::ACTIVE && !matches!(kind, DOpKind::Ld { .. } | DOpKind::St { .. }) {
            // Global loads/stores are traced from inside their arms (the
            // recorder needs the resolved addresses); everything else is an
            // opaque re-execute-on-replay event. Post-op so the recorder
            // sees the result rows.
            self.tracer.op(i as u32, mask, &*self.regs);
        }
        Ok(())
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
/// One warp's register view for [`exec_pure_op!`] inside the batched
/// executor — the same macro the sequential interpreter expands, so a
/// batched pure op is literally the same code as a sequential one.
struct WarpView<'a> {
    dk: &'a DecodedKernel,
    ctx: &'a DecodedBlockCtx<'a>,
    warp_id: u32,
    regs: &'a mut [u32],
    tidx: &'a [u32],
    tidy: &'a [u32],
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
impl WarpView<'_> {
    #[inline(always)]
    fn row(&self, base: usize) -> [u32; WARP] {
        let mut out = [0u32; WARP];
        out.copy_from_slice(&self.regs[base..base + WARP]);
        out
    }

    #[inline(always)]
    fn row_mut(&mut self, base: usize) -> &mut [u32; WARP] {
        (&mut self.regs[base..base + WARP]).try_into().unwrap()
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
/// Warp-batched execution of one block's fused dispatch stream: the op
/// stream is decoded once and each dispatch is applied to every warp in
/// lockstep. Valid only while all warps provably follow the same full-mask
/// control path; `None` abandons the attempt (the caller resets the scratch
/// and re-runs sequentially). All counter, cycle and journal state is
/// private until the block retires, so an abandoned attempt is invisible.
struct BExec<'a> {
    dk: &'a DecodedKernel,
    ctx: &'a DecodedBlockCtx<'a>,
    /// All warps' register rows (`nw * stride`).
    regs: &'a mut [u32],
    stride: usize,
    nw: usize,
    tidx: &'a [u32],
    tidy: &'a [u32],
    counters: FlatCounters,
    cycles: u64,
    /// Lockstep per-warp budget (every warp issues the same ops, so one
    /// scalar tracks all of them).
    budget: u64,
    /// Per-warp write journals, concatenated in warp order on success —
    /// exactly the order sequential warp-at-a-time execution produces.
    wwrites: Vec<WarpJournal>,
}

/// One warp's buffered write journal: `(buffer, element, bits)` per store.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
type WarpJournal = Vec<(u32, usize, u32)>;

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
impl BExec<'_> {
    /// Per-op bulk charge: one budget tick per warp, mirrored counter
    /// attribution (`hist[cat] += nw` equals nw sequential `+= 1`s).
    #[inline]
    fn charge(&mut self, cat: usize, cost: u64) -> Option<()> {
        if self.budget == 0 {
            return None;
        }
        self.budget -= 1;
        let nw = self.nw as u64;
        self.counters.hist[cat] += nw;
        self.counters.warp_instructions += nw;
        self.cycles += cost * nw;
        Some(())
    }

    /// # Safety
    /// The host must support AVX2 (the caller checked `simd_enabled`).
    #[target_feature(enable = "avx2")]
    unsafe fn run(mut self) -> Option<(FlatCounters, u64, Vec<WarpJournal>)> {
        let mut block = 0u32;
        let nw = self.nw as u64;
        loop {
            let db = self.dk.blocks[block as usize];
            if db.is_bar {
                return None;
            }
            for fi in db.fstart..db.fend {
                let f = self.dk.fops[fi as usize];
                self.exec_fused(&f)?;
            }
            match db.term {
                DTerm::Ret => {
                    self.charge(CAT_RET, self.dk.cost_ret)?;
                    self.counters.threads_retired += WARP as u64 * nw;
                    self.counters.blocks = 1;
                    return Some((self.counters, self.cycles, self.wwrites));
                }
                DTerm::Br { target } => {
                    self.charge(CAT_BRA, self.dk.cost_bra)?;
                    block = target;
                }
                DTerm::CondBr {
                    pred,
                    if_true,
                    if_false,
                    ..
                } => {
                    self.charge(CAT_BRA, self.dk.cost_bra)?;
                    self.counters.conditional_branches += nw;
                    let p = pred as usize;
                    let mut target: Option<u32> = None;
                    for w in 0..self.nw {
                        let m_true =
                            crate::rows::avx2::pred_row_mask(self.regs, w * self.stride + p);
                        let t = if m_true == u32::MAX {
                            if_true
                        } else if m_true == 0 {
                            if_false
                        } else {
                            // Intra-warp divergence — sequential territory.
                            return None;
                        };
                        if *target.get_or_insert(t) != t {
                            // Warps disagree: control flow splits.
                            return None;
                        }
                    }
                    block = target.expect("at least one warp");
                }
            }
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn exec_fused(&mut self, f: &FOp) -> Option<()> {
        let first = f.first as usize;
        let n = f.n as usize;
        if self.budget < n as u64 {
            return None;
        }
        self.budget -= n as u64;
        let nw = self.nw as u64;
        for j in 0..n {
            self.counters.hist[f.cats[j] as usize] += nw;
        }
        self.counters.warp_instructions += n as u64 * nw;
        self.cycles += f.cost as u64 * nw;
        let stride = self.stride;
        match f.kind {
            FKind::Mad2IMin {
                d1,
                a1,
                b1,
                c1,
                d2,
                a2,
                b2,
                c2,
                d3,
                a3,
                b3,
            } => {
                for w in 0..self.nw {
                    crate::rows::avx2::mad2_i_min(
                        &mut self.regs[w * stride..(w + 1) * stride],
                        d1 as usize,
                        a1 as usize,
                        b1 as usize,
                        c1 as usize,
                        d2 as usize,
                        a2 as usize,
                        b2 as usize,
                        c2 as usize,
                        d3 as usize,
                        a3 as usize,
                        b3 as usize,
                    );
                }
            }
            FKind::Mad2I {
                d1,
                a1,
                b1,
                c1,
                d2,
                a2,
                b2,
                c2,
            } => {
                for w in 0..self.nw {
                    crate::rows::avx2::mad2_i(
                        &mut self.regs[w * stride..(w + 1) * stride],
                        d1 as usize,
                        a1 as usize,
                        b1 as usize,
                        c1 as usize,
                        d2 as usize,
                        a2 as usize,
                        b2 as usize,
                        c2 as usize,
                    );
                }
            }
            FKind::Mad2F {
                d1,
                a1,
                b1,
                c1,
                d2,
                a2,
                b2,
                c2,
            } => {
                for w in 0..self.nw {
                    crate::rows::avx2::mad2_f(
                        &mut self.regs[w * stride..(w + 1) * stride],
                        d1 as usize,
                        a1 as usize,
                        b1 as usize,
                        c1 as usize,
                        d2 as usize,
                        a2 as usize,
                        b2 as usize,
                        c2 as usize,
                    );
                }
            }
            FKind::MulAddF {
                d1,
                a1,
                b1,
                d2,
                a2,
                b2,
            } => {
                for w in 0..self.nw {
                    crate::rows::avx2::mul_add_f(
                        &mut self.regs[w * stride..(w + 1) * stride],
                        d1 as usize,
                        a1 as usize,
                        b1 as usize,
                        d2 as usize,
                        a2 as usize,
                        b2 as usize,
                    );
                }
            }
            FKind::MadILd { d1, a1, b1, c1 } => {
                for w in 0..self.nw {
                    crate::rows::avx2::mad_i(
                        &mut self.regs[w * stride..(w + 1) * stride],
                        d1 as usize,
                        a1 as usize,
                        b1 as usize,
                        c1 as usize,
                    );
                }
                self.exec_op_batched(first + 1)?;
            }
            FKind::LdCvt { d2, a2 } => {
                self.exec_op_batched(first)?;
                for w in 0..self.nw {
                    crate::rows::avx2::cvt_if(
                        &mut self.regs[w * stride..(w + 1) * stride],
                        d2 as usize,
                        a2 as usize,
                    );
                }
            }
            FKind::LdMulAddF {
                d2,
                a2,
                b2,
                d3,
                a3,
                b3,
            } => {
                self.exec_op_batched(first)?;
                for w in 0..self.nw {
                    crate::rows::avx2::mul_add_f(
                        &mut self.regs[w * stride..(w + 1) * stride],
                        d2 as usize,
                        a2 as usize,
                        b2 as usize,
                        d3 as usize,
                        a3 as usize,
                        b3 as usize,
                    );
                }
            }
            FKind::Solo | FKind::Pair | FKind::Triple => {
                for i in first..first + n {
                    self.exec_op_batched(i)?;
                }
            }
        }
        Some(())
    }

    /// One op across all warps: memory/param kinds decode once here; pure
    /// data ops go through [`exec_pure_op!`] per warp — the identical code
    /// path the sequential interpreter takes.
    #[target_feature(enable = "avx2")]
    unsafe fn exec_op_batched(&mut self, i: usize) -> Option<()> {
        let kind = self.dk.ops[i].kind;
        let stride = self.stride;
        match kind {
            DOpKind::LdParam { dst, index } => {
                let bits = match self.ctx.params.get(index as usize) {
                    Some(ParamValue::I32(v)) => *v as u32,
                    Some(ParamValue::F32(v)) => v.to_bits(),
                    // Missing parameter: sequential raises the error.
                    None => return None,
                };
                let d = dst as usize;
                for w in 0..self.nw {
                    let base = w * stride + d;
                    self.regs[base..base + WARP].fill(bits);
                }
            }
            DOpKind::Ld { dst, buf, addr } => {
                let buffer = self.ctx.buffers.get(buf as usize)?;
                let len = buffer.len();
                let (d, ab) = (dst as usize, addr as usize);
                for w in 0..self.nw {
                    let base = w * stride;
                    let mut addrs = [0u32; WARP];
                    addrs.copy_from_slice(&self.regs[base + ab..base + ab + WARP]);
                    // `None` covers out-of-bounds lanes and non-monotonic
                    // rows — both need the sequential path's attribution.
                    let tx = crate::rows::avx2::full_warp_tx(&addrs, len)?;
                    let out: &mut [u32; WARP] = (&mut self.regs[base + d..base + d + WARP])
                        .try_into()
                        .unwrap();
                    // SAFETY: every lane validated against `len` just above.
                    crate::rows::avx2::gather(out, &addrs, buffer.bits());
                    self.counters.mem_transactions += tx;
                    self.counters.loads += 1;
                    self.cycles += tx * self.dk.mem_cycles;
                }
            }
            DOpKind::St { buf, addr, val } => {
                let buffer = self.ctx.buffers.get(buf as usize)?;
                let len = buffer.len();
                let (ab, vb) = (addr as usize, val as usize);
                for w in 0..self.nw {
                    let base = w * stride;
                    let mut addrs = [0u32; WARP];
                    addrs.copy_from_slice(&self.regs[base + ab..base + ab + WARP]);
                    let tx = crate::rows::avx2::full_warp_tx(&addrs, len)?;
                    let mut vals = [0u32; WARP];
                    vals.copy_from_slice(&self.regs[base + vb..base + vb + WARP]);
                    self.wwrites[w]
                        .extend((0..WARP).map(|l| (buf, addrs[l] as i32 as usize, vals[l])));
                    self.counters.mem_transactions += tx;
                    self.counters.stores += 1;
                    self.cycles += tx * self.dk.mem_cycles;
                }
            }
            DOpKind::Tex { .. } | DOpKind::Lds { .. } | DOpKind::Sts { .. } | DOpKind::Bar => {
                return None
            }
            kind => {
                for w in 0..self.nw {
                    let mut view = WarpView {
                        dk: self.dk,
                        ctx: self.ctx,
                        warp_id: w as u32,
                        regs: &mut self.regs[w * stride..(w + 1) * stride],
                        tidx: self.tidx,
                        tidy: self.tidy,
                    };
                    exec_pure_op!(view, kind, u32::MAX);
                }
            }
        }
        Some(())
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
/// Attempt a whole block warp-batched (see [`BExec`]). On success the
/// per-warp journals are appended to `writes` in warp order and the block's
/// counters returned; `None` leaves `writes` untouched.
fn run_decoded_batched(
    dk: &DecodedKernel,
    ctx: &DecodedBlockCtx<'_>,
    scratch: &mut DecodedScratch,
    writes: &mut Vec<(u32, usize, u32)>,
) -> Option<(FlatCounters, u64)> {
    let nw = scratch.warps.len();
    let stride = dk.num_slots as usize * WARP;
    let exec = BExec {
        dk,
        ctx,
        regs: &mut scratch.regs[..nw * stride],
        stride,
        nw,
        tidx: &scratch.tidx,
        tidy: &scratch.tidy,
        counters: FlatCounters::default(),
        cycles: 0,
        budget: MAX_WARP_INSTRUCTIONS,
        wwrites: vec![Vec::new(); nw],
    };
    // SAFETY: the caller gates the batched attempt on `simd_enabled`,
    // which is true only after AVX2 detection.
    let (counters, cycles, wwrites) = unsafe { exec.run() }?;
    for ws in wwrites {
        writes.extend(ws);
    }
    Some((counters, cycles))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_block, BlockContext};
    use isp_ir::IrBuilder;

    /// Run a block through the reference interpreter and the decoded
    /// executor and assert the results are bit-identical — counters, cycles,
    /// write-journal order, or the exact same error.
    fn assert_matches_reference(
        kernel: &Kernel,
        device: &DeviceSpec,
        grid: (u32, u32),
        block_dim: (u32, u32),
        block_idx: (u32, u32),
        params: &[ParamValue],
        buffers: &[DeviceBuffer],
    ) -> Result<BlockRun, SimError> {
        let ipdom = Cfg::new(kernel).ipostdom();
        let reference = run_block(&BlockContext {
            kernel,
            ipdom: &ipdom,
            device,
            grid,
            block_dim,
            block_idx,
            params,
            buffers,
        });
        let dk = decode(kernel, device);
        let mut scratch = DecodedScratch::new();
        let decoded = run_block_decoded(
            &dk,
            &DecodedBlockCtx {
                grid,
                block_dim,
                block_idx,
                params,
                buffers,
            },
            &mut scratch,
        );
        match (&reference, &decoded) {
            (Ok(r), Ok(d)) => {
                assert_eq!(r.counters, d.counters, "counters ({})", kernel.name);
                assert_eq!(r.cycles, d.cycles, "cycles ({})", kernel.name);
                assert_eq!(r.writes, d.writes, "write journal ({})", kernel.name);
            }
            (Err(r), Err(d)) => assert_eq!(r, d, "errors ({})", kernel.name),
            (r, d) => panic!("outcome mismatch ({}): {r:?} vs {d:?}", kernel.name),
        }
        decoded
    }

    fn both_devices(
        kernel: &Kernel,
        grid: (u32, u32),
        block_dim: (u32, u32),
        block_idx: (u32, u32),
        params: &[ParamValue],
        buffers: &[DeviceBuffer],
    ) {
        for device in DeviceSpec::all() {
            assert_matches_reference(kernel, &device, grid, block_dim, block_idx, params, buffers)
                .ok();
        }
    }

    fn scale_kernel() -> Kernel {
        let mut b = IrBuilder::new("scale", 2);
        let x = b.sreg(SReg::TidX);
        let v = b.ld(Ty::F32, 0, x);
        let d = b.bin(BinOp::Mul, Ty::F32, v, 2.0f32);
        b.st(1, x, d);
        b.ret();
        b.finish()
    }

    #[test]
    fn scale_kernel_matches_reference() {
        let k = scale_kernel();
        let input: Vec<f32> = (0..32).map(|i| i as f32).collect();
        let buffers = vec![DeviceBuffer::from_f32(&input), DeviceBuffer::zeroed(32)];
        both_devices(&k, (1, 1), (32, 1), (0, 0), &[], &buffers);
    }

    #[test]
    fn divergent_branch_matches_reference() {
        let mut b = IrBuilder::new("diverge", 1);
        let t = b.create_block("then");
        let e = b.create_block("else");
        let m = b.create_block("merge");
        let x = b.sreg(SReg::TidX);
        let p = b.setp(CmpOp::Lt, x, 16i32);
        b.cond_br(p, t, e);
        b.switch_to(t);
        let one = b.bin(BinOp::Add, Ty::F32, 0.5f32, 0.5f32);
        b.st(0, x, one);
        b.br(m);
        b.switch_to(e);
        let two = b.bin(BinOp::Add, Ty::F32, 1.0f32, 1.0f32);
        b.st(0, x, two);
        b.br(m);
        b.switch_to(m);
        let xf = b.cvt(Ty::F32, x);
        let off = b.bin(BinOp::Add, Ty::S32, x, 32i32);
        let w = b.bin(BinOp::Add, Ty::F32, xf, 10.0f32);
        b.st(0, off, w);
        b.ret();
        let k = b.finish();
        let buffers = vec![DeviceBuffer::zeroed(64)];
        both_devices(&k, (1, 1), (32, 1), (0, 0), &[], &buffers);
    }

    #[test]
    fn two_dimensional_block_matches_reference() {
        let mut b = IrBuilder::new("tid2d", 1);
        let px = b.param("width", Ty::S32);
        let x = b.sreg(SReg::TidX);
        let y = b.sreg(SReg::TidY);
        let w = b.ld_param(px);
        let addr = b.mad(Ty::S32, y, w, x);
        let yf = b.cvt(Ty::F32, y);
        b.st(0, addr, yf);
        b.ret();
        let k = b.finish();
        let buffers = vec![DeviceBuffer::zeroed(64)];
        both_devices(
            &k,
            (1, 1),
            (16, 4),
            (0, 0),
            &[ParamValue::I32(16)],
            &buffers,
        );
        // Partial warp: 24x1 leaves 8 lanes masked.
        let buffers = vec![DeviceBuffer::zeroed(32)];
        both_devices(
            &k,
            (1, 1),
            (24, 1),
            (0, 0),
            &[ParamValue::I32(24)],
            &buffers,
        );
    }

    #[test]
    fn sreg_coverage_matches_reference() {
        let mut b = IrBuilder::new("sregs", 1);
        let mut acc = b.mov(Ty::S32, 0i32);
        for sreg in [
            SReg::TidX,
            SReg::TidY,
            SReg::CtaIdX,
            SReg::CtaIdY,
            SReg::NTidX,
            SReg::NTidY,
            SReg::NCtaIdX,
            SReg::NCtaIdY,
            SReg::LaneId,
            SReg::WarpIdX,
        ] {
            let v = b.sreg(sreg);
            let shifted = b.bin(BinOp::Shl, Ty::S32, acc, 2i32);
            acc = b.bin(BinOp::Xor, Ty::S32, shifted, v);
        }
        let x = b.sreg(SReg::TidX);
        let y = b.sreg(SReg::TidY);
        let w = b.mov(Ty::S32, 64i32);
        let addr = b.mad(Ty::S32, y, w, x);
        b.st(0, addr, acc);
        b.ret();
        let k = b.finish();
        let buffers = vec![DeviceBuffer::zeroed(64 * 2)];
        both_devices(&k, (3, 2), (64, 2), (2, 1), &[], &buffers);
    }

    #[test]
    fn predicate_ops_match_reference() {
        let mut b = IrBuilder::new("preds", 1);
        let x = b.sreg(SReg::TidX);
        let p1 = b.setp(CmpOp::Lt, x, 10i32);
        let p2 = b.setp(CmpOp::Ge, x, 4i32);
        let and = b.bin(BinOp::And, Ty::Pred, p1, p2);
        let or = b.bin(BinOp::Or, Ty::Pred, p1, p2);
        let xor = b.bin(BinOp::Xor, Ty::Pred, and, or);
        let not = b.un(UnOp::Not, Ty::Pred, xor);
        let sel = b.selp(Ty::S32, 100i32, 200i32, not);
        let neg = b.un(UnOp::Neg, Ty::S32, sel);
        let abs = b.un(UnOp::Abs, Ty::S32, neg);
        let nb = b.un(UnOp::Not, Ty::S32, abs);
        let fin = b.un(UnOp::Not, Ty::S32, nb);
        b.st(0, x, fin);
        b.ret();
        let k = b.finish();
        let buffers = vec![DeviceBuffer::zeroed(32)];
        both_devices(&k, (1, 1), (32, 1), (0, 0), &[], &buffers);
    }

    #[test]
    fn float_unary_and_div_match_reference() {
        let mut b = IrBuilder::new("funops", 2);
        let x = b.sreg(SReg::TidX);
        let v = b.ld(Ty::F32, 0, x);
        let e = b.un(UnOp::Exp, Ty::F32, v);
        let lg = b.un(UnOp::Log, Ty::F32, e);
        let sq = b.un(UnOp::Sqrt, Ty::F32, lg);
        let rs = b.un(UnOp::Rsqrt, Ty::F32, sq);
        let fl = b.un(UnOp::Floor, Ty::F32, rs);
        let ng = b.un(UnOp::Neg, Ty::F32, fl);
        let ab = b.un(UnOp::Abs, Ty::F32, ng);
        let dv = b.bin(BinOp::Div, Ty::F32, ab, 3.0f32);
        let rm = b.bin(BinOp::Rem, Ty::F32, dv, 0.7f32);
        let mn = b.bin(BinOp::Min, Ty::F32, rm, 5.0f32);
        let mx = b.bin(BinOp::Max, Ty::F32, mn, -5.0f32);
        let md = b.mad(Ty::F32, mx, 2.0f32, 1.0f32);
        b.st(1, x, md);
        b.ret();
        let k = b.finish();
        let input: Vec<f32> = (0..32).map(|i| 0.25 * i as f32 + 0.1).collect();
        let buffers = vec![DeviceBuffer::from_f32(&input), DeviceBuffer::zeroed(32)];
        both_devices(&k, (1, 1), (32, 1), (0, 0), &[], &buffers);
    }

    #[test]
    fn integer_div_rem_by_zero_match_reference() {
        let mut b = IrBuilder::new("idiv", 1);
        let x = b.sreg(SReg::TidX);
        let sub = b.bin(BinOp::Sub, Ty::S32, x, 16i32); // crosses zero
        let d = b.bin(BinOp::Div, Ty::S32, 100i32, sub);
        let r = b.bin(BinOp::Rem, Ty::S32, 100i32, sub);
        let sum = b.bin(BinOp::Add, Ty::S32, d, r);
        let sh = b.bin(BinOp::Shr, Ty::S32, sum, x);
        b.st(0, x, sh);
        b.ret();
        let k = b.finish();
        let buffers = vec![DeviceBuffer::zeroed(32)];
        both_devices(&k, (1, 1), (32, 1), (0, 0), &[], &buffers);
    }

    #[test]
    fn oob_and_missing_param_errors_match_reference() {
        let mut b = IrBuilder::new("oob", 1);
        let x = b.sreg(SReg::TidX);
        let bad = b.bin(BinOp::Sub, Ty::S32, x, 5i32);
        let v = b.ld(Ty::F32, 0, bad);
        b.st(0, x, v);
        b.ret();
        let k = b.finish();
        let buffers = vec![DeviceBuffer::zeroed(32)];
        both_devices(&k, (1, 1), (32, 1), (0, 0), &[], &buffers);

        let mut b = IrBuilder::new("noparam", 1);
        let p = b.param("width", Ty::S32);
        let w = b.ld_param(p);
        b.st(0, w, 0.0f32);
        b.ret();
        let k = b.finish();
        let buffers = vec![DeviceBuffer::zeroed(32)];
        both_devices(&k, (1, 1), (32, 1), (0, 0), &[], &buffers);
    }

    #[test]
    fn texture_fetch_matches_reference() {
        use crate::memory::{TexAddressMode, TexDesc};
        for mode in [
            TexAddressMode::Clamp,
            TexAddressMode::Wrap,
            TexAddressMode::Mirror,
            TexAddressMode::Border(0.5),
        ] {
            let mut b = IrBuilder::new("texread", 2);
            let x = b.sreg(SReg::TidX);
            let xm = b.bin(BinOp::Sub, Ty::S32, x, 4i32); // off both edges
            let v = b.tex(0, xm, xm);
            b.st(1, x, v);
            b.ret();
            let k = b.finish();
            let data: Vec<f32> = (0..64).map(|i| i as f32).collect();
            let buffers = vec![
                DeviceBuffer::from_f32(&data).with_texture(TexDesc {
                    width: 8,
                    height: 8,
                    mode,
                }),
                DeviceBuffer::zeroed(32),
            ];
            both_devices(&k, (1, 1), (32, 1), (0, 0), &[], &buffers);
        }
        // Missing binding: identical error.
        let mut b = IrBuilder::new("texless", 2);
        let x = b.sreg(SReg::TidX);
        let v = b.tex(0, x, x);
        b.st(1, x, v);
        b.ret();
        let k = b.finish();
        let buffers = vec![DeviceBuffer::zeroed(64), DeviceBuffer::zeroed(64)];
        both_devices(&k, (1, 1), (32, 1), (0, 0), &[], &buffers);
    }

    #[test]
    fn barrier_kernel_matches_reference() {
        const N: i32 = 64;
        let mut b = IrBuilder::new("reverse", 1);
        b.set_shared_elems(N as u32);
        let bar = b.create_block("bar");
        let after = b.create_block("after");
        let tx = b.sreg(SReg::TidX);
        let txf = b.cvt(Ty::F32, tx);
        b.sts(tx, txf);
        b.br(bar);
        b.switch_to(bar);
        b.bar();
        b.br(after);
        b.switch_to(after);
        let nm1 = b.mov(Ty::S32, N - 1);
        let rev = b.bin(BinOp::Sub, Ty::S32, nm1, tx);
        let v = b.lds(rev);
        b.st(0, tx, v);
        b.ret();
        let k = b.finish();
        let buffers = vec![DeviceBuffer::zeroed(N as usize)];
        both_devices(&k, (1, 1), (N as u32, 1), (0, 0), &[], &buffers);
    }

    #[test]
    fn shared_oob_and_divergent_barrier_errors_match_reference() {
        let mut b = IrBuilder::new("oob_shared", 1);
        b.set_shared_elems(16);
        let tx = b.sreg(SReg::TidX);
        let f = b.cvt(Ty::F32, tx);
        b.sts(tx, f);
        b.st(0, tx, f);
        b.ret();
        let k = b.finish();
        let buffers = vec![DeviceBuffer::zeroed(32)];
        both_devices(&k, (1, 1), (32, 1), (0, 0), &[], &buffers);

        let mut b = IrBuilder::new("divbar", 1);
        b.set_shared_elems(4);
        let bar = b.create_block("bar");
        let merge = b.create_block("merge");
        let tx = b.sreg(SReg::TidX);
        let p = b.setp(CmpOp::Lt, tx, 16i32);
        b.cond_br(p, bar, merge);
        b.switch_to(bar);
        b.bar();
        b.br(merge);
        b.switch_to(merge);
        b.st(0, tx, 1.0f32);
        b.ret();
        let k = b.finish();
        let buffers = vec![DeviceBuffer::zeroed(32)];
        both_devices(&k, (1, 1), (32, 1), (0, 0), &[], &buffers);
    }

    #[test]
    fn runaway_loop_matches_reference() {
        let mut b = IrBuilder::new("spin", 1);
        let header = b.create_block("header");
        b.br(header);
        b.switch_to(header);
        let x = b.sreg(SReg::TidX);
        let p = b.setp(CmpOp::Ge, x, 0i32); // always true
        let exit = b.create_block("exit");
        b.cond_br(p, header, exit);
        b.switch_to(exit);
        b.ret();
        let k = b.finish();
        let buffers = vec![DeviceBuffer::zeroed(32)];
        let device = DeviceSpec::gtx680();
        let r = assert_matches_reference(&k, &device, (1, 1), (32, 1), (0, 0), &[], &buffers);
        assert!(matches!(r, Err(SimError::RunawayBlock { .. })), "{r:?}");
    }

    #[test]
    fn immediates_are_pooled_and_deduplicated() {
        let mut b = IrBuilder::new("imms", 1);
        let x = b.sreg(SReg::TidX);
        let xf = b.cvt(Ty::F32, x);
        let a = b.bin(BinOp::Add, Ty::F32, xf, 1.0f32);
        let c = b.bin(BinOp::Mul, Ty::F32, a, 1.0f32); // same bits as above
        let d = b.bin(BinOp::Add, Ty::S32, x, 1i32); // distinct bits (0x1)
        let e = b.cvt(Ty::F32, d);
        let f = b.bin(BinOp::Add, Ty::F32, c, e);
        b.st(0, x, f);
        b.ret();
        let k = b.finish();
        let dk = decode(&k, &DeviceSpec::gtx680());
        // 1.0f32 interned once, 1i32 separately.
        assert_eq!(dk.num_imms(), 2);
        assert_eq!(dk.num_ops(), k.static_len() - k.blocks.len());
    }

    #[test]
    fn scratch_survives_kernel_and_shape_switches() {
        let scale = scale_kernel();
        let mut b = IrBuilder::new("other", 1);
        let x = b.sreg(SReg::TidX);
        let y = b.sreg(SReg::TidY);
        let w = b.mov(Ty::S32, 16i32);
        let addr = b.mad(Ty::S32, y, w, x);
        let s = b.bin(BinOp::Add, Ty::S32, addr, 7i32);
        b.st(0, addr, s);
        b.ret();
        let other = b.finish();
        let device = DeviceSpec::gtx680();
        let dk_scale = decode(&scale, &device);
        let dk_other = decode(&other, &device);
        let input: Vec<f32> = (0..32).map(|i| i as f32).collect();
        let scale_bufs = vec![DeviceBuffer::from_f32(&input), DeviceBuffer::zeroed(32)];
        let other_bufs = vec![DeviceBuffer::zeroed(64)];
        let scale_ctx = DecodedBlockCtx {
            grid: (1, 1),
            block_dim: (32, 1),
            block_idx: (0, 0),
            params: &[],
            buffers: &scale_bufs,
        };
        let other_ctx = DecodedBlockCtx {
            grid: (1, 1),
            block_dim: (16, 4),
            block_idx: (0, 0),
            params: &[],
            buffers: &other_bufs,
        };
        // Fresh-scratch baselines.
        let base_scale =
            run_block_decoded(&dk_scale, &scale_ctx, &mut DecodedScratch::new()).unwrap();
        let base_other =
            run_block_decoded(&dk_other, &other_ctx, &mut DecodedScratch::new()).unwrap();
        // One shared arena, alternating kernels and block shapes.
        let mut scratch = DecodedScratch::new();
        for _ in 0..3 {
            let r = run_block_decoded(&dk_scale, &scale_ctx, &mut scratch).unwrap();
            assert_eq!(r.counters, base_scale.counters);
            assert_eq!(r.writes, base_scale.writes);
            let r = run_block_decoded(&dk_other, &other_ctx, &mut scratch).unwrap();
            assert_eq!(r.counters, base_other.counters);
            assert_eq!(r.writes, base_other.writes);
        }
    }

    #[test]
    fn fingerprint_distinguishes_kernels() {
        let scale = scale_kernel();
        assert_eq!(kernel_fingerprint(&scale), kernel_fingerprint(&scale));
        let mut b = IrBuilder::new("scale", 2);
        let x = b.sreg(SReg::TidX);
        let v = b.ld(Ty::F32, 0, x);
        let d = b.bin(BinOp::Mul, Ty::F32, v, 3.0f32); // different immediate
        b.st(1, x, d);
        b.ret();
        let other = b.finish();
        assert_ne!(kernel_fingerprint(&scale), kernel_fingerprint(&other));
    }
}
