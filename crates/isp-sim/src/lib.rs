//! # isp-sim
//!
//! A deterministic SIMT GPU simulator — the substitute for the paper's
//! GTX680/RTX2080 testbed. It executes [`isp_ir`] kernels with the execution
//! model that makes iteration space partitioning interesting:
//!
//! - threads grouped into 32-lane **warps** executing in lockstep, with
//!   divergence serialised and reconverged at immediate post-dominators;
//! - threadblocks dispatched onto **streaming multiprocessors** whose
//!   concurrency is bounded by **theoretical occupancy** (registers, warps,
//!   block slots) — the cost side of the paper's analytic model;
//! - global memory accesses **coalesced** into 128-byte transactions;
//! - a wave/tail-aware block scheduler producing cycle counts, plus
//!   second-order effects (launch overhead, instruction-fetch penalty when
//!   an SM alternates between fat-kernel regions) that the paper's analytic
//!   model deliberately does not capture — these produce the paper's
//!   "misprediction near the crossover" behaviour.
//!
//! Two modes:
//! - `SimMode::Exhaustive` interprets every warp of every block:
//!   produces pixels + exact counters (correctness tests, small images);
//! - `SimMode::RegionSampled` interprets one representative block per block
//!   class and extrapolates: same counters for uniform classes at a tiny
//!   fraction of the cost (benches, large images).

pub mod counters;
pub mod decode;
pub mod device;
pub mod error;
pub mod interp;
pub mod launch;
pub mod memory;
pub mod occupancy;
pub mod profile;
pub mod rows;
pub mod scheduler;
pub mod trace;

pub use counters::PerfCounters;
pub use decode::{
    decode, decode_with_fusion, kernel_fingerprint, run_block_decoded, run_decoded,
    DecodedBlockCtx, DecodedKernel, DecodedScratch, FlatCounters, FusionStats,
};
pub use device::{DeviceSpec, GpuArch};
pub use error::SimError;
pub use interp::WARP;
pub use launch::{
    DecodeStats, ExecEngine, ExecStrategy, Gpu, LaunchConfig, LaunchReport, ParamValue, SimMode,
    TraceStats,
};
pub use memory::{DeviceBuffer, TexAddressMode, TexDesc};
pub use occupancy::{occupancy, Limiter, LimiterSet, OccupancyResult};
pub use rows::{set_simd_enabled, simd_enabled};
pub use scheduler::Timing;
pub use trace::DeoptReason;
