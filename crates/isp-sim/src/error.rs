//! Simulator errors.
//!
//! The headline error is [`SimError::OutOfBounds`]: the simulator detects
//! exactly the class of bug that border handling exists to prevent. A kernel
//! generated *without* border handling reads past the image allocation, and
//! instead of silently corrupting pixels (as real hardware may), the
//! simulator reports the offending buffer, address, thread, and block.

use std::fmt;

/// Errors raised while launching or interpreting a kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A lane accessed a buffer outside its allocation.
    OutOfBounds {
        /// Buffer parameter index.
        buf: u32,
        /// Element index accessed.
        addr: i64,
        /// Buffer length in elements.
        len: usize,
        /// Global thread coordinates of the offending lane.
        thread: (u32, u32),
        /// Block coordinates.
        block: (u32, u32),
        /// Whether the access was a store.
        is_store: bool,
    },
    /// A block ran more warp-instructions than the runaway guard allows
    /// (almost certainly an infinite `Repeat` loop in generated code).
    RunawayBlock {
        /// Block coordinates.
        block: (u32, u32),
        /// The guard limit that was exceeded.
        limit: u64,
    },
    /// The launch referenced a missing buffer or parameter, or the grid was
    /// degenerate.
    BadLaunch(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfBounds { buf, addr, len, thread, block, is_store } => write!(
                f,
                "{} out of bounds: buffer {buf}[{addr}] (len {len}) by thread ({},{}) in block ({},{})",
                if *is_store { "store" } else { "load" },
                thread.0,
                thread.1,
                block.0,
                block.1
            ),
            SimError::RunawayBlock { block, limit } => write!(
                f,
                "block ({},{}) exceeded the {limit}-instruction runaway guard",
                block.0, block.1
            ),
            SimError::BadLaunch(msg) => write!(f, "bad launch: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = SimError::OutOfBounds {
            buf: 0,
            addr: -3,
            len: 64,
            thread: (0, 0),
            block: (0, 0),
            is_store: false,
        };
        let s = e.to_string();
        assert!(s.contains("load out of bounds"));
        assert!(s.contains("buffer 0[-3]"));
        let e = SimError::RunawayBlock {
            block: (1, 2),
            limit: 1000,
        };
        assert!(e.to_string().contains("runaway"));
    }
}
