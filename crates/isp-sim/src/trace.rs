#![allow(clippy::needless_range_loop)] // lane loops index several arrays at once

//! Guarded trace replay: record one block's warp schedule on the decoded
//! interpreter, then execute every sibling block of the same class as a
//! straight line of data ops — no branch evaluation, no reconvergence
//! stacks, no per-access coalescing re-validation, and (the part that makes
//! replay materially faster than decoded execution) no re-execution of the
//! address arithmetic at all.
//!
//! The paper's iteration-space partitioning argument (and the repo's own
//! `RegionSampled` mode) rests on control flow being coordinate-uniform
//! within each of the nine ISP regions. Exhaustive simulation previously
//! ignored that uniformity: every Body block of a 4096² launch re-resolved
//! the same branches to the same outcomes and re-computed the same
//! `y*width+x` chains shifted by a block-uniform offset. The trace engine
//! exploits it *speculatively but safely*:
//!
//! - **Record**: the first block of a class runs on [`run_decoded_traced`]
//!   with a [`Recorder`], capturing the flat event stream — warp phase
//!   starts, executed ops with resolved active masks, branch outcomes, and
//!   per-access address patterns + transaction counts — in exact execution
//!   order, plus the block's final counters and cycles. Alongside, a
//!   flow-sensitive **class-affine analysis** runs over the executed ops:
//!   each register row is classified as `base(lane) + cbx·B.x + cby·B.y`
//!   (exact, in wrap-free i32 arithmetic proven over the *whole grid*) or
//!   as opaque data. `ctaid` seeds the coefficients; add/sub/neg,
//!   mul/mad by grid-uniform scalars, and `min`/`max` with a lane-uniform
//!   winning side propagate them; everything else (floats, loads,
//!   partial-mask writes) demotes to data.
//! - **Compile**: a backward liveness pass over the recorded stream deletes
//!   every op a replayed block does not need: an access whose address row is
//!   class-affine is *rebased* — its addresses are the recorded pattern plus
//!   a per-block delta `cbx·Δbx + cby·Δby` — so the whole address chain
//!   feeding it becomes dead code and is dropped from the replay program.
//! - **Guard**: every recorded conditional branch becomes a [`RIns::Guard`]
//!   that re-evaluates the predicate lanes and demands the recorded outcome.
//!   A data-dependent (non-affine) load/store re-derives its addresses and
//!   demands the recorded *relative* pattern (exact `i64` equality against
//!   the rebased anchor — a wrapping 32-bit check could alias across 2³²).
//!   A speculatively-classified `min`/`max` whose result the rebasing
//!   depends on becomes an O(1) [`RIns::RangeGuard`] proving the recorded
//!   winning side still wins at the replayed block offset. Every rebased
//!   access proves its translated extrema in bounds before any unchecked
//!   gather.
//! - **Replay**: with all guards green, the block is a linear loop over the
//!   compiled [`RIns`] program. Surviving arithmetic re-executes through the
//!   same `exec_pure_op!` code as the decoded engine; rebased loads gather
//!   check-free at `recorded + delta`; counters come from the recording with
//!   only the transaction-dependent parts (`mem_transactions`, memory
//!   cycles) recomputed. When the compiled program provably defines every
//!   register lane before reading it, replay also skips the per-block
//!   register-file memset.
//! - **Deopt**: any guard miss aborts replay with no observable effect (the
//!   caller truncates the write journal) and the block re-runs on the
//!   decoded engine — so data-dependent kernels stay bit-exact by
//!   construction, they just don't get the speedup.
//!
//! Replay never errors: a block that *would* error (OOB, missing param,
//! runaway budget) necessarily diverges from its class's recorded schedule
//! first, fails a guard (rebased accesses fail their bounds proof), and
//! deopts to the engine that reproduces the exact reference error.

use crate::decode::{
    exec_pure_op, lanes, run_decoded_traced, warp_map1, warp_map2, warp_map3, DOpKind,
    DecodedBlockCtx, DecodedKernel, DecodedScratch, FlatCounters, Tracer,
};
use crate::error::SimError;
use crate::interp::WARP;
use crate::launch::ParamValue;
use crate::memory::{segment_count_full, transactions_for_warp_fixed, DeviceBuffer};
use isp_ir::{BinOp, CmpOp, SReg};

/// One recorded load/store: the resolved address pattern and everything
/// needed to prove a replayed access safe and re-derive its transaction
/// count without sorting.
#[derive(Debug, Clone)]
struct MemRec {
    /// Recorded element addresses (inactive lanes hold 0).
    addrs: [i32; WARP],
    /// First active lane — the rebasing anchor.
    base_lane: u32,
    /// Min/max address relative to the anchor over active lanes. With the
    /// address row proven (by pattern guard or affine class), `anchor +
    /// min_rel >= 0 && anchor + max_rel < len` bounds every active lane.
    min_rel: i64,
    max_rel: i64,
    /// `anchor mod 32` (one 128-byte segment = 32 elements): when the
    /// replayed anchor has the same alignment, the whole warp's segment
    /// pattern is a pure translation and `tx` transfers unchanged.
    align: i64,
    /// Recorded transaction count.
    tx: u64,
    /// `Some((cbx, cby))` when the address row was class-affine at record
    /// time: the replayed addresses are `addrs + cbx*dx + cby*dy` by proof,
    /// with no per-lane re-derivation. `None` → pattern-guard mode.
    rebase: Option<(i64, i64)>,
    /// Full-mask unit-stride pattern (`addrs[l] = addrs[0] + l`): once the
    /// access is proven (pattern guard or rebase bounds), a replayed load is
    /// one contiguous 32-element copy instead of a gather. Decided once at
    /// record time — replay never re-scans the pattern.
    contig: bool,
}

/// Affine guard for a speculatively-classified `min`/`max` result used by
/// rebasing: the recorded winning side keeps winning at block offset
/// `(dx, dy)` iff `m0 + cbx*dx + cby*dy <= 0`.
#[derive(Debug, Clone, Copy)]
struct RangeGuard {
    m0: i64,
    cbx: i64,
    cby: i64,
}

/// Which replay guard missed when a block deopted to the decoded engine.
///
/// Each variant names a *guard site* in the replay program, so the
/// breakdown tells you which part of the record-time speculation failed to
/// transfer to a sibling block. (Journal divergence and runaway budgets
/// cannot deopt directly: the journal is truncated by the caller after any
/// of these fire, and a runaway block diverges control flow first, which
/// surfaces here as `Branch` or `OpFault`.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeoptReason {
    /// An affine range guard for a speculative `min`/`max`/`selp` failed:
    /// the recorded winning side stopped winning at this block offset.
    AffineRange,
    /// A pinned-branch range guard failed: the recorded branch outcome is
    /// not proven at this block offset.
    PinnedBranch,
    /// An unpinned conditional branch's predicate lanes did not reproduce
    /// the recorded outcome.
    Branch,
    /// A pattern-guarded (data-dependent) access did not reproduce the
    /// recorded address pattern at the shifted anchor.
    MemPattern,
    /// A translated access's proven extrema fell outside its buffer
    /// (global or shared) — the decoded re-run reproduces the exact error.
    Bounds,
    /// A replayed op hit its failure path (missing parameter, buffer, or
    /// texture binding) — the decoded re-run reproduces the exact error.
    OpFault,
}

impl DeoptReason {
    /// Number of reasons (array dimension for per-reason counters).
    pub const COUNT: usize = 6;

    /// Every reason, in stable reporting order.
    pub const ALL: [DeoptReason; DeoptReason::COUNT] = [
        DeoptReason::AffineRange,
        DeoptReason::PinnedBranch,
        DeoptReason::Branch,
        DeoptReason::MemPattern,
        DeoptReason::Bounds,
        DeoptReason::OpFault,
    ];

    /// Dense index into per-reason counter arrays (matches [`Self::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable kebab-case name (used by `==PROF==`, JSON, and the timeline).
    pub fn name(self) -> &'static str {
        match self {
            DeoptReason::AffineRange => "affine-range",
            DeoptReason::PinnedBranch => "pinned-branch",
            DeoptReason::Branch => "branch",
            DeoptReason::MemPattern => "mem-pattern",
            DeoptReason::Bounds => "bounds",
            DeoptReason::OpFault => "op-fault",
        }
    }
}

/// Register-row class under the block-affine value analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cls {
    /// Unknown / data-dependent.
    Data,
    /// `value(lane, B) = base(lane) + cbx*B.x + cby*B.y` exactly for every
    /// block `B` of the grid, with the whole-grid value range proven inside
    /// i32 (so the engine's wrapping arithmetic is plain arithmetic).
    /// `lo..=hi` bounds `base(lane)` over the 32 lanes.
    Aff {
        cbx: i64,
        cby: i64,
        lo: i64,
        hi: i64,
    },
}

fn aff(c: Cls) -> Option<(i64, i64, i64, i64)> {
    match c {
        Cls::Aff { cbx, cby, lo, hi } => Some((cbx, cby, lo, hi)),
        Cls::Data => None,
    }
}

/// Candidate result of combining affine classes: coefficients plus the
/// conservatively-derived whole-grid value interval, in i128 so no check
/// can itself wrap.
type Cand = (i128, i128, (i128, i128));

fn span(c: i128, n: u32) -> (i128, i128) {
    let e = c * (n as i128 - 1);
    if e >= 0 {
        (0, e)
    } else {
        (e, 0)
    }
}

/// Whole-grid value interval of a valid affine class.
fn total(cbx: i64, cby: i64, lo: i64, hi: i64, grid: (u32, u32)) -> (i128, i128) {
    let sx = span(cbx as i128, grid.0);
    let sy = span(cby as i128, grid.1);
    (lo as i128 + sx.0 + sy.0, hi as i128 + sx.1 + sy.1)
}

fn cand(c: Cls, grid: (u32, u32)) -> Option<Cand> {
    let (cbx, cby, lo, hi) = aff(c)?;
    Some((cbx as i128, cby as i128, total(cbx, cby, lo, hi, grid)))
}

fn add_cand(a: Cand, b: Cand) -> Cand {
    (a.0 + b.0, a.1 + b.1, (a.2 .0 + b.2 .0, a.2 .1 + b.2 .1))
}

fn sub_cand(a: Cand, b: Cand) -> Cand {
    (a.0 - b.0, a.1 - b.1, (a.2 .0 - b.2 .1, a.2 .1 - b.2 .0))
}

fn neg_cand(a: Cand) -> Cand {
    (-a.0, -a.1, (-a.2 .1, -a.2 .0))
}

/// Multiply: one side must be a grid-wide uniform scalar (coefficients zero
/// and a degenerate value interval).
fn mul_cand(a: Cand, b: Cand) -> Option<Cand> {
    let (u, v) = if a.0 == 0 && a.1 == 0 && a.2 .0 == a.2 .1 {
        (a.2 .0, b)
    } else if b.0 == 0 && b.1 == 0 && b.2 .0 == b.2 .1 {
        (b.2 .0, a)
    } else {
        return None;
    };
    let (t0, t1) = (u * v.2 .0, u * v.2 .1);
    Some((u * v.0, u * v.1, (t0.min(t1), t0.max(t1))))
}

/// Defined row base of an op, if any (global `Ld`/`St` never appear as op
/// events; `Sts`/`Bar` define nothing).
fn op_dst(kind: &DOpKind) -> Option<u32> {
    match *kind {
        DOpKind::BinI { dst, .. }
        | DOpKind::BinF { dst, .. }
        | DOpKind::BinP { dst, .. }
        | DOpKind::MadI { dst, .. }
        | DOpKind::MadF { dst, .. }
        | DOpKind::Mov { dst, .. }
        | DOpKind::NotP { dst, .. }
        | DOpKind::NotB { dst, .. }
        | DOpKind::NegI { dst, .. }
        | DOpKind::AbsI { dst, .. }
        | DOpKind::UnF { dst, .. }
        | DOpKind::CvtIF { dst, .. }
        | DOpKind::CvtFI { dst, .. }
        | DOpKind::SetPI { dst, .. }
        | DOpKind::SetPF { dst, .. }
        | DOpKind::SelP { dst, .. }
        | DOpKind::Sreg { dst, .. }
        | DOpKind::LdParam { dst, .. }
        | DOpKind::Ld { dst, .. }
        | DOpKind::Tex { dst, .. }
        | DOpKind::Lds { dst, .. } => Some(dst),
        DOpKind::St { .. } | DOpKind::Sts { .. } | DOpKind::Bar => None,
    }
}

/// Visit the row bases an op event reads.
fn for_each_src(kind: &DOpKind, mut f: impl FnMut(u32)) {
    match *kind {
        DOpKind::BinI { a, b, .. }
        | DOpKind::BinF { a, b, .. }
        | DOpKind::BinP { a, b, .. }
        | DOpKind::SetPI { a, b, .. }
        | DOpKind::SetPF { a, b, .. } => {
            f(a);
            f(b);
        }
        DOpKind::MadI { a, b, c, .. } | DOpKind::MadF { a, b, c, .. } => {
            f(a);
            f(b);
            f(c);
        }
        DOpKind::SelP { a, b, pred, .. } => {
            f(a);
            f(b);
            f(pred);
        }
        DOpKind::Mov { a, .. }
        | DOpKind::NotP { a, .. }
        | DOpKind::NotB { a, .. }
        | DOpKind::NegI { a, .. }
        | DOpKind::AbsI { a, .. }
        | DOpKind::UnF { a, .. }
        | DOpKind::CvtIF { a, .. }
        | DOpKind::CvtFI { a, .. } => f(a),
        DOpKind::Tex { x, y, .. } => {
            f(x);
            f(y);
        }
        DOpKind::Lds { addr, .. } => f(addr),
        DOpKind::Sts { addr, val } => {
            f(addr);
            f(val);
        }
        DOpKind::Ld { addr, .. } => f(addr),
        DOpKind::St { addr, val, .. } => {
            f(addr);
            f(val);
        }
        DOpKind::Sreg { .. } | DOpKind::LdParam { .. } | DOpKind::Bar => {}
    }
}

/// Guards pinning a predicate row to its recorded lane bitmask: all of them
/// passing proves every lane's comparison outcome is unchanged at the
/// replayed block offset. Composes through predicate logic — any boolean
/// combination of pinned rows is pinned by the union of their guards.
type PredPin = Vec<RangeGuard>;

/// One record-time event, before dead-code elimination.
#[derive(Debug, Clone)]
enum RecEv {
    Warp(u32),
    Op {
        kind: DOpKind,
        mask: u32,
        guards: Vec<RangeGuard>,
    },
    Branch {
        pred: u32,
        mask: u32,
        m_true: u32,
        /// When the predicate row is pinned, the branch outcome is proven by
        /// these O(1) guards and the predicate chain need not stay live.
        pin: Option<PredPin>,
    },
    Mem {
        is_ld: bool,
        dst: u32,
        buf: u32,
        addr: u32,
        val: u32,
        mask: u32,
        rec: u32,
    },
}

/// One compiled replay instruction, in exact execution order (which is what
/// makes the replayed write journal byte-identical across warps and barrier
/// phases).
#[derive(Debug, Clone)]
enum RIns {
    /// Switch to warp `w`'s register bank (phase start).
    Warp(u32),
    /// Re-execute a surviving non-global-memory op under the recorded mask.
    Op { kind: DOpKind, mask: u32 },
    /// Fused pair of surviving ops under one recorded mask — one dispatch,
    /// same effects in the same order (see `fuse_prog`).
    Op2 { a: DOpKind, b: DOpKind, mask: u32 },
    /// Fused triple.
    Op3 {
        a: DOpKind,
        b: DOpKind,
        c: DOpKind,
        mask: u32,
    },
    /// Conditional-branch guard: predicate lanes must reproduce `m_true`.
    Guard { pred: u32, mask: u32, m_true: u32 },
    /// O(1) affine guard for a dropped speculative `min`/`max` or a pinned
    /// branch; `why` records which provenance for deopt accounting.
    RangeGuard {
        m0: i64,
        cbx: i64,
        cby: i64,
        why: DeoptReason,
    },
    /// Pattern-guarded global load (data-dependent address).
    Ld {
        dst: u32,
        buf: u32,
        addr: u32,
        mask: u32,
        rec: u32,
    },
    /// Pattern-guarded global store.
    St {
        buf: u32,
        addr: u32,
        val: u32,
        mask: u32,
        rec: u32,
    },
    /// Rebased global load: addresses are `rec.addrs + cbx*dx + cby*dy`.
    LdR {
        dst: u32,
        buf: u32,
        mask: u32,
        rec: u32,
    },
    /// Rebased global store.
    StR {
        buf: u32,
        val: u32,
        mask: u32,
        rec: u32,
    },
}

/// A recorded block schedule for one (kernel, class, block shape), compiled
/// to a minimal replay program and shared read-only across workers.
#[derive(Debug)]
pub struct Trace {
    prog: Vec<RIns>,
    mems: Vec<MemRec>,
    /// The recorded block's full counters (replay rewrites
    /// `mem_transactions`).
    counters: FlatCounters,
    /// Recorded cycles minus the memory-transaction share — the part of the
    /// cycle count that guards prove identical across the class.
    issue_cycles: u64,
    /// The recorded block's coordinates (rebasing origin).
    b0: (u32, u32),
    /// Whether replay must zero the register file per block. False when the
    /// compiled program provably writes every register lane before reading
    /// it, which is the common case for straight-line SSA kernels.
    needs_reset: bool,
}

impl Trace {
    /// Number of compiled replay instructions (diagnostics).
    pub fn num_events(&self) -> usize {
        self.prog.len()
    }
}

/// [`Tracer`] that captures the event stream during a decoded run and runs
/// the class-affine analysis alongside.
struct Recorder<'a> {
    dk: &'a DecodedKernel,
    grid: (u32, u32),
    b0: (u32, u32),
    ns: usize,
    events: Vec<RecEv>,
    mems: Vec<MemRec>,
    /// Per-warp, per-slot classes (`warp * ns + slot`).
    classes: Vec<Cls>,
    /// Per-warp, per-slot predicate pins (`warp * ns + slot`): guards that
    /// hold the slot's 0/1 lane bitmask fixed across the class.
    preds: Vec<Option<PredPin>>,
    cur_warp: usize,
}

impl Recorder<'_> {
    #[inline]
    fn cls(&self, wb: usize, base: u32) -> Cls {
        self.classes[wb + base as usize / WARP]
    }

    /// Build the class of a freshly-written affine row: normalise
    /// coefficients (a 1-block axis contributes nothing), prove the
    /// operand-derived whole-grid value range fits i32, and take the
    /// per-lane base interval from the concrete result row.
    fn mk(&self, cbx: i128, cby: i128, t: (i128, i128), regs: &[u32], dst: u32) -> Cls {
        if t.0 < i32::MIN as i128 || t.1 > i32::MAX as i128 {
            return Cls::Data;
        }
        let cbx = if self.grid.0 <= 1 { 0 } else { cbx };
        let cby = if self.grid.1 <= 1 { 0 } else { cby };
        let (Some(cbx), Some(cby)) = (i64::try_from(cbx).ok(), i64::try_from(cby).ok()) else {
            return Cls::Data;
        };
        self.mk_plain(cbx, cby, regs, dst)
    }

    /// Class from known-sound coefficients (result provably inside an
    /// already-proven range): base interval from the concrete result row.
    fn mk_plain(&self, cbx: i64, cby: i64, regs: &[u32], dst: u32) -> Cls {
        let off = cbx * self.b0.0 as i64 + cby * self.b0.1 as i64;
        let d = dst as usize;
        let (mut lo, mut hi) = (i64::MAX, i64::MIN);
        for l in 0..WARP {
            let v = regs[d + l] as i32 as i64 - off;
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Cls::Aff { cbx, cby, lo, hi }
    }

    fn mk_cand(&self, c: Option<Cand>, regs: &[u32], dst: u32) -> Cls {
        match c {
            Some((cbx, cby, t)) => self.mk(cbx, cby, t, regs, dst),
            None => Cls::Data,
        }
    }

    /// `min`/`max` of two affine rows. Identical coefficients translate
    /// exactly (no guard, per-lane winners may differ). Different
    /// coefficients need a lane-uniform winning side, and the result class
    /// carries a [`RangeGuard`] proving that side keeps winning at the
    /// replayed offset.
    fn min_max(
        &self,
        is_min: bool,
        ca: Cls,
        cb: Cls,
        (a, b, dst): (u32, u32, u32),
        regs: &[u32],
    ) -> (Cls, Option<RangeGuard>) {
        if dst == a || dst == b {
            return (Cls::Data, None); // result overwrote an operand row
        }
        let (Some((ax, ay, _, _)), Some((bx, by, _, _))) = (aff(ca), aff(cb)) else {
            return (Cls::Data, None);
        };
        let (ab, bb) = (a as usize, b as usize);
        let (mut a_wins, mut b_wins) = (true, true);
        let mut max_amb = i64::MIN; // max over lanes of (a - b)
        let mut max_bma = i64::MIN; // max over lanes of (b - a)
        for l in 0..WARP {
            let va = regs[ab + l] as i32 as i64;
            let vb = regs[bb + l] as i32 as i64;
            let d = va - vb;
            max_amb = max_amb.max(d);
            max_bma = max_bma.max(-d);
            if is_min {
                a_wins &= va <= vb;
                b_wins &= vb <= va;
            } else {
                a_wins &= va >= vb;
                b_wins &= vb >= va;
            }
        }
        if ax == bx && ay == by {
            return (self.mk_plain(ax, ay, regs, dst), None);
        }
        // Winner must stay <= (min) / >= (max) the loser for every lane at
        // the replayed offset: max(winner-loser diff) + coeff-diff·Δ <= 0.
        let g = if a_wins {
            if is_min {
                RangeGuard {
                    m0: max_amb,
                    cbx: ax - bx,
                    cby: ay - by,
                }
            } else {
                RangeGuard {
                    m0: max_bma,
                    cbx: bx - ax,
                    cby: by - ay,
                }
            }
        } else if b_wins {
            if is_min {
                RangeGuard {
                    m0: max_bma,
                    cbx: bx - ax,
                    cby: by - ay,
                }
            } else {
                RangeGuard {
                    m0: max_amb,
                    cbx: ax - bx,
                    cby: ay - by,
                }
            }
        } else {
            return (Cls::Data, None);
        };
        let (wx, wy) = if a_wins { (ax, ay) } else { (bx, by) };
        (self.mk_plain(wx, wy, regs, dst), Some(g))
    }

    /// Pin an integer comparison of two affine rows: intersect, over all
    /// lanes, the (conservative) interval of block-offset deltas that keeps
    /// `cmp(diff_lane + delta, 0)` at its recorded outcome, where
    /// `diff = a - b` translates by `delta = cbx*dx + cby*dy`. The record
    /// block sits at `delta = 0`, so the intersection is never empty.
    fn pred_pin(
        &self,
        cmp: CmpOp,
        ca: Cls,
        cb: Cls,
        (a, b, dst): (u32, u32, u32),
        regs: &[u32],
    ) -> Option<PredPin> {
        if dst == a || dst == b {
            return None; // result overwrote an operand row
        }
        let (Some((ax, ay, _, _)), Some((bx, by, _, _))) = (aff(ca), aff(cb)) else {
            return None;
        };
        let (cbx, cby) = (ax - bx, ay - by);
        if cbx == 0 && cby == 0 {
            // The difference row is block-invariant: the outcome can never
            // change, no guards needed.
            return Some(PredPin::new());
        }
        let (ab, bb, db) = (a as usize, b as usize, dst as usize);
        let (mut lo, mut hi) = (i64::MIN, i64::MAX);
        for l in 0..WARP {
            let diff = regs[ab + l] as i32 as i64 - regs[bb + l] as i32 as i64;
            let t = regs[db + l] != 0;
            let (l_lo, l_hi) = match (cmp, t) {
                (CmpOp::Lt, true) | (CmpOp::Ge, false) => (i64::MIN, -diff - 1),
                (CmpOp::Lt, false) | (CmpOp::Ge, true) => (-diff, i64::MAX),
                (CmpOp::Le, true) | (CmpOp::Gt, false) => (i64::MIN, -diff),
                (CmpOp::Le, false) | (CmpOp::Gt, true) => (1 - diff, i64::MAX),
                (CmpOp::Eq, true) | (CmpOp::Ne, false) => (-diff, -diff),
                // `!= 0` is not an interval; conservatively stay on the
                // recorded side of zero.
                (CmpOp::Eq, false) | (CmpOp::Ne, true) => {
                    if diff > 0 {
                        (1 - diff, i64::MAX)
                    } else {
                        (i64::MIN, -diff - 1)
                    }
                }
            };
            lo = lo.max(l_lo);
            hi = hi.min(l_hi);
        }
        let mut guards = PredPin::new();
        if hi < i64::MAX {
            guards.push(RangeGuard { m0: -hi, cbx, cby }); // delta <= hi
        }
        if lo > i64::MIN {
            guards.push(RangeGuard {
                m0: lo,
                cbx: -cbx,
                cby: -cby,
            }); // delta >= lo
        }
        Some(guards)
    }
}

impl Tracer for Recorder<'_> {
    const ACTIVE: bool = true;

    fn warp_start(&mut self, warp: u32) {
        self.cur_warp = warp as usize;
        self.events.push(RecEv::Warp(warp));
    }

    fn op(&mut self, i: u32, mask: u32, regs: &[u32]) {
        let kind = self.dk.ops[i as usize].kind;
        let full = mask == u32::MAX;
        let wb = self.cur_warp * self.ns;
        let g = self.grid;
        let mut guards: Vec<RangeGuard> = Vec::new();
        let mut pin: Option<PredPin> = None;
        let set: Option<(u32, Cls)> = match kind {
            DOpKind::BinI { op, dst, a, b } if full => {
                let (ca, cb) = (self.cls(wb, a), self.cls(wb, b));
                let c = match op {
                    BinOp::Add => self.mk_cand(
                        cand(ca, g).zip(cand(cb, g)).map(|(x, y)| add_cand(x, y)),
                        regs,
                        dst,
                    ),
                    BinOp::Sub => self.mk_cand(
                        cand(ca, g).zip(cand(cb, g)).map(|(x, y)| sub_cand(x, y)),
                        regs,
                        dst,
                    ),
                    BinOp::Mul => self.mk_cand(
                        cand(ca, g)
                            .zip(cand(cb, g))
                            .and_then(|(x, y)| mul_cand(x, y)),
                        regs,
                        dst,
                    ),
                    BinOp::Min | BinOp::Max => {
                        let (c, gu) = self.min_max(op == BinOp::Min, ca, cb, (a, b, dst), regs);
                        guards.extend(gu);
                        c
                    }
                    _ => Cls::Data,
                };
                Some((dst, c))
            }
            DOpKind::MadI { dst, a, b, c } if full => {
                let m = cand(self.cls(wb, a), g)
                    .zip(cand(self.cls(wb, b), g))
                    .and_then(|(x, y)| mul_cand(x, y));
                let s = m.zip(cand(self.cls(wb, c), g)).map(|(x, y)| add_cand(x, y));
                Some((dst, self.mk_cand(s, regs, dst)))
            }
            DOpKind::NegI { dst, a } if full => {
                let c = cand(self.cls(wb, a), g).map(neg_cand);
                Some((dst, self.mk_cand(c, regs, dst)))
            }
            DOpKind::Mov { dst, a } if full => {
                pin = self.preds[wb + a as usize / WARP].clone();
                Some((dst, self.cls(wb, a)))
            }
            DOpKind::SetPI { cmp, dst, a, b } if full => {
                pin = self.pred_pin(cmp, self.cls(wb, a), self.cls(wb, b), (a, b, dst), regs);
                Some((dst, Cls::Data))
            }
            DOpKind::NotP { dst, a } if full => {
                // Complementing a pinned bitmask leaves it pinned.
                pin = self.preds[wb + a as usize / WARP].clone();
                Some((dst, Cls::Data))
            }
            DOpKind::BinP { dst, a, b, .. } if full => {
                pin = match (
                    self.preds[wb + a as usize / WARP].as_ref(),
                    self.preds[wb + b as usize / WARP].as_ref(),
                ) {
                    (Some(x), Some(y)) => {
                        let mut v = x.clone();
                        v.extend(y.iter().copied());
                        Some(v)
                    }
                    _ => None,
                };
                Some((dst, Cls::Data))
            }
            DOpKind::SelP { dst, a, b, pred } if full => {
                let c = 'selp: {
                    if dst == a || dst == b || dst == pred {
                        break 'selp Cls::Data; // result overwrote a source row
                    }
                    let Some(pg) = self.preds[wb + pred as usize / WARP].as_ref() else {
                        break 'selp Cls::Data;
                    };
                    let (pa, pb) = (aff(self.cls(wb, a)), aff(self.cls(wb, b)));
                    let pd = pred as usize;
                    let nt = (0..WARP).filter(|&l| regs[pd + l] != 0).count();
                    // A lane-uniform choice takes the chosen side's class; a
                    // pinned mixed choice still translates when both sides
                    // share coefficients.
                    let chosen = if nt == WARP {
                        pa
                    } else if nt == 0 {
                        pb
                    } else {
                        match (pa, pb) {
                            (Some((axc, ayc, _, _)), Some((bxc, byc, _, _)))
                                if axc == bxc && ayc == byc =>
                            {
                                pa
                            }
                            _ => None,
                        }
                    };
                    let Some((cx, cy, _, _)) = chosen else {
                        break 'selp Cls::Data;
                    };
                    guards.extend(pg.iter().copied());
                    self.mk_plain(cx, cy, regs, dst)
                };
                Some((dst, c))
            }
            DOpKind::Sreg { dst, sreg } if full => {
                let c = match sreg {
                    SReg::CtaIdX => self.mk(1, 0, (0, g.0 as i128 - 1), regs, dst),
                    SReg::CtaIdY => self.mk(0, 1, (0, g.1 as i128 - 1), regs, dst),
                    // tid/ntid/lane/warp rows are block-invariant.
                    _ => self.mk_plain(0, 0, regs, dst),
                };
                Some((dst, c))
            }
            DOpKind::LdParam { dst, .. } if full => Some((dst, self.mk_plain(0, 0, regs, dst))),
            _ => op_dst(&kind).map(|d| (d, Cls::Data)),
        };
        if let Some((d, c)) = set {
            self.classes[wb + d as usize / WARP] = c;
            self.preds[wb + d as usize / WARP] = pin;
        }
        self.events.push(RecEv::Op { kind, mask, guards });
    }

    fn branch(&mut self, pred: u32, mask: u32, m_true: u32) {
        let pin = self.preds[self.cur_warp * self.ns + pred as usize / WARP].clone();
        self.events.push(RecEv::Branch {
            pred,
            mask,
            m_true,
            pin,
        });
    }

    fn mem(&mut self, i: u32, mask: u32, addrs: &[Option<i64>; WARP], tx: u64) {
        let mut rec_addrs = [0i32; WARP];
        let mut base_lane = 0u32;
        let mut anchor = 0i64;
        let mut first = true;
        let (mut min_rel, mut max_rel) = (0i64, 0i64);
        for l in 0..WARP {
            if let Some(a) = addrs[l] {
                if first {
                    base_lane = l as u32;
                    anchor = a;
                    first = false;
                }
                rec_addrs[l] = a as i32;
                min_rel = min_rel.min(a - anchor);
                max_rel = max_rel.max(a - anchor);
            }
        }
        let wb = self.cur_warp * self.ns;
        let (is_ld, dst, buf, addr, val) = match self.dk.ops[i as usize].kind {
            DOpKind::Ld { dst, buf, addr } => (true, dst, buf, addr, 0),
            DOpKind::St { buf, addr, val } => (false, 0, buf, addr, val),
            _ => unreachable!("mem hook fires only for global loads/stores"),
        };
        let rebase = match self.cls(wb, addr) {
            Cls::Aff { cbx, cby, .. } => Some((cbx, cby)),
            Cls::Data => None,
        };
        let contig = mask == u32::MAX
            && (0..WARP).all(|l| rec_addrs[l] as i64 == rec_addrs[0] as i64 + l as i64);
        let rec = self.mems.len() as u32;
        self.mems.push(MemRec {
            addrs: rec_addrs,
            base_lane,
            min_rel,
            max_rel,
            align: anchor.rem_euclid(32),
            tx,
            rebase,
            contig,
        });
        if is_ld {
            self.classes[wb + dst as usize / WARP] = Cls::Data;
            self.preds[wb + dst as usize / WARP] = None;
        }
        self.events.push(RecEv::Mem {
            is_ld,
            dst,
            buf,
            addr,
            val,
            mask,
            rec,
        });
    }
}

/// Compile the recorded stream into the replay program: backward liveness
/// deletes ops only needed to re-derive rebased addresses (keeping their
/// range guards), then a forward pass checks whether every surviving read
/// is preceded by a covering write (deciding `needs_reset`).
fn build_trace(
    dk: &DecodedKernel,
    nw: usize,
    b0: (u32, u32),
    events: Vec<RecEv>,
    mems: Vec<MemRec>,
    counters: FlatCounters,
    cycles: u64,
) -> Trace {
    let ns = dk.num_slots as usize;
    let slot = |base: u32| base as usize / WARP;

    // Event -> warp map (events between Warp markers belong to that warp).
    let mut warp_of = vec![0usize; events.len()];
    let mut cw = 0usize;
    for (i, ev) in events.iter().enumerate() {
        if let RecEv::Warp(w) = ev {
            cw = *w as usize;
        }
        warp_of[i] = cw;
    }

    // Backward pass: `live` = concrete value needed (op must re-execute);
    // `alive` = affine class feeds a rebased access (range guards must
    // hold). Kills are full-mask only — a partial write leaves the other
    // lanes' earlier definition observable.
    let mut live = vec![false; nw * ns];
    let mut alive = vec![false; nw * ns];
    let mut keep = vec![true; events.len()];
    let mut keep_guard = vec![false; events.len()];
    for i in (0..events.len()).rev() {
        let wb = warp_of[i] * ns;
        match &events[i] {
            RecEv::Warp(_) => {}
            RecEv::Branch { pred, pin, .. } => {
                // A pinned branch is proven by its O(1) guards; only an
                // unpinned one needs the predicate chain re-executed. The
                // pin's intervals assume the predicate's operand classes
                // translate, so the chain stays `alive`: any op whose
                // affine result is itself conditional (min/max winner,
                // pinned select) keeps its range guards.
                if pin.is_none() {
                    live[wb + slot(*pred)] = true;
                } else {
                    alive[wb + slot(*pred)] = true;
                }
            }
            RecEv::Mem {
                is_ld,
                dst,
                addr,
                val,
                mask,
                rec,
                ..
            } => {
                let rebased = mems[*rec as usize].rebase.is_some();
                if *is_ld {
                    if *mask == u32::MAX {
                        live[wb + slot(*dst)] = false;
                    }
                } else {
                    live[wb + slot(*val)] = true;
                }
                if rebased {
                    alive[wb + slot(*addr)] = true;
                } else {
                    live[wb + slot(*addr)] = true;
                }
            }
            RecEv::Op { kind, mask, guards } => {
                let dst = op_dst(kind);
                // Shared memory and texture ops have effects beyond their
                // destination row (barrier data flow, transaction counts).
                let side = matches!(
                    kind,
                    DOpKind::Tex { .. } | DOpKind::Lds { .. } | DOpKind::Sts { .. }
                );
                let needed = side || dst.is_none_or(|d| live[wb + slot(d)]);
                keep[i] = needed;
                if let Some(d) = dst {
                    if alive[wb + slot(d)] {
                        if !guards.is_empty() {
                            keep_guard[i] = true;
                        }
                        if *mask == u32::MAX {
                            alive[wb + slot(d)] = false;
                        }
                        for_each_src(kind, |s| alive[wb + slot(s)] = true);
                    }
                }
                if needed {
                    if let Some(d) = dst {
                        if *mask == u32::MAX {
                            live[wb + slot(d)] = false;
                        }
                    }
                    for_each_src(kind, |s| live[wb + slot(s)] = true);
                }
            }
        }
    }

    // Forward pass over the kept program: does every read see lanes already
    // written (or an immediate row)? If so, replay can skip the per-block
    // register memset.
    let mut defined = vec![0u32; nw * ns];
    for w in 0..nw {
        for s in dk.num_vregs as usize..ns {
            defined[w * ns + s] = u32::MAX;
        }
    }
    let mut covered = true;
    let mut cw = 0usize;
    for (i, ev) in events.iter().enumerate() {
        if !keep[i] {
            continue;
        }
        match ev {
            RecEv::Warp(w) => cw = *w as usize,
            RecEv::Branch {
                pred, mask, pin, ..
            } => {
                if pin.is_none() {
                    covered &= *mask & !defined[cw * ns + slot(*pred)] == 0;
                }
            }
            RecEv::Mem {
                is_ld,
                dst,
                addr,
                val,
                mask,
                rec,
                ..
            } => {
                let wb = cw * ns;
                let rebased = mems[*rec as usize].rebase.is_some();
                if !rebased {
                    covered &= *mask & !defined[wb + slot(*addr)] == 0;
                }
                if *is_ld {
                    defined[wb + slot(*dst)] |= *mask;
                } else {
                    covered &= *mask & !defined[wb + slot(*val)] == 0;
                }
            }
            RecEv::Op { kind, mask, .. } => {
                let wb = cw * ns;
                for_each_src(kind, |s| covered &= *mask & !defined[wb + slot(s)] == 0);
                if let Some(d) = op_dst(kind) {
                    defined[wb + slot(d)] |= *mask;
                }
            }
        }
    }

    let mut prog = Vec::with_capacity(events.len());
    for (i, ev) in events.into_iter().enumerate() {
        match ev {
            RecEv::Warp(w) => prog.push(RIns::Warp(w)),
            RecEv::Branch {
                pred,
                mask,
                m_true,
                pin,
            } => match pin {
                Some(gs) => {
                    for g in gs {
                        prog.push(RIns::RangeGuard {
                            m0: g.m0,
                            cbx: g.cbx,
                            cby: g.cby,
                            why: DeoptReason::PinnedBranch,
                        });
                    }
                }
                None => prog.push(RIns::Guard { pred, mask, m_true }),
            },
            RecEv::Op { kind, mask, guards } => {
                if keep_guard[i] {
                    for g in guards {
                        prog.push(RIns::RangeGuard {
                            m0: g.m0,
                            cbx: g.cbx,
                            cby: g.cby,
                            why: DeoptReason::AffineRange,
                        });
                    }
                }
                if keep[i] {
                    prog.push(RIns::Op { kind, mask });
                }
            }
            RecEv::Mem {
                is_ld,
                dst,
                buf,
                addr,
                val,
                mask,
                rec,
            } => {
                let rebased = mems[rec as usize].rebase.is_some();
                prog.push(match (is_ld, rebased) {
                    (true, true) => RIns::LdR {
                        dst,
                        buf,
                        mask,
                        rec,
                    },
                    (true, false) => RIns::Ld {
                        dst,
                        buf,
                        addr,
                        mask,
                        rec,
                    },
                    (false, true) => RIns::StR {
                        buf,
                        val,
                        mask,
                        rec,
                    },
                    (false, false) => RIns::St {
                        buf,
                        addr,
                        val,
                        mask,
                        rec,
                    },
                });
            }
        }
    }

    if dk.fuse {
        prog = fuse_prog(prog);
    }

    Trace {
        prog,
        mems,
        issue_cycles: cycles - counters.mem_transactions * dk.mem_cycles,
        counters,
        b0,
        needs_reset: !covered,
    }
}

/// Peephole over the compiled replay program: merge runs of adjacent
/// re-executed ops with identical masks into `Op2`/`Op3` dispatch units.
/// Effects execute in the original order, and replay counters come from the
/// recording, so this changes dispatch count only — nothing observable.
fn fuse_prog(prog: Vec<RIns>) -> Vec<RIns> {
    let mut out: Vec<RIns> = Vec::with_capacity(prog.len());
    for ins in prog {
        let RIns::Op { kind, mask } = ins else {
            out.push(ins);
            continue;
        };
        match out.last().cloned() {
            Some(RIns::Op { kind: a, mask: m }) if m == mask => {
                *out.last_mut().unwrap() = RIns::Op2 { a, b: kind, mask };
            }
            Some(RIns::Op2 { a, b, mask: m }) if m == mask => {
                *out.last_mut().unwrap() = RIns::Op3 {
                    a,
                    b,
                    c: kind,
                    mask,
                };
            }
            _ => out.push(RIns::Op { kind, mask }),
        }
    }
    out
}

/// Run one block on the decoded interpreter while recording its trace.
/// Returns the block result plus the trace for sibling blocks to replay.
pub(crate) fn record_block(
    dk: &DecodedKernel,
    ctx: &DecodedBlockCtx<'_>,
    scratch: &mut DecodedScratch,
    writes: &mut Vec<(u32, usize, u32)>,
) -> Result<(FlatCounters, u64, Trace), SimError> {
    let threads = ctx.block_dim.0 as u64 * ctx.block_dim.1 as u64;
    let nw = threads.div_ceil(WARP as u64) as usize;
    let ns = dk.num_slots as usize;
    let mut rec = Recorder {
        dk,
        grid: ctx.grid,
        b0: ctx.block_idx,
        ns,
        events: Vec::new(),
        mems: Vec::new(),
        classes: vec![Cls::Data; nw * ns],
        preds: vec![None; nw * ns],
        cur_warp: 0,
    };
    // Immediate rows are grid-wide uniform constants.
    for w in 0..nw {
        for (j, &bits) in dk.imms.iter().enumerate() {
            let v = bits as i32 as i64;
            rec.classes[w * ns + dk.num_vregs as usize + j] = Cls::Aff {
                cbx: 0,
                cby: 0,
                lo: v,
                hi: v,
            };
        }
    }
    let (counters, cycles) = run_decoded_traced(dk, ctx, scratch, writes, &mut rec)?;
    let trace = build_trace(
        dk,
        nw,
        ctx.block_idx,
        rec.events,
        rec.mems,
        counters.clone(),
        cycles,
    );
    Ok((counters, cycles, trace))
}

/// Replay a compiled trace for another block of the same class. Returns
/// `Err(reason)` on any guard miss (deopt — the caller truncates the write
/// journal and re-runs the block on the decoded engine) and never errors.
pub(crate) fn replay_block(
    dk: &DecodedKernel,
    trace: &Trace,
    ctx: &DecodedBlockCtx<'_>,
    scratch: &mut DecodedScratch,
    writes: &mut Vec<(u32, usize, u32)>,
) -> Result<(FlatCounters, u64), DeoptReason> {
    scratch.prepare(dk, ctx.block_dim);
    if trace.needs_reset {
        scratch.reset(dk);
    } else if !scratch.shared.is_empty() {
        scratch.shared.fill(0);
    }
    let dx = ctx.block_idx.0 as i64 - trace.b0.0 as i64;
    let dy = ctx.block_idx.1 as i64 - trace.b0.1 as i64;
    let stride = dk.num_slots as usize * WARP;
    let regs = &mut scratch.regs[..];
    let shared = &mut scratch.shared[..];
    let (tidx, tidy) = (&scratch.tidx[..], &scratch.tidy[..]);
    let mut tx_total = 0u64;
    let prog = &trace.prog[..];
    let mut i = 0usize;
    while i < prog.len() {
        let RIns::Warp(w) = prog[i] else {
            debug_assert!(false, "trace must start each segment with a Warp event");
            return Err(DeoptReason::OpFault);
        };
        i += 1;
        let mut end = i;
        while end < prog.len() && !matches!(prog[end], RIns::Warp(_)) {
            end += 1;
        }
        let w = w as usize;
        let mut ex = RExec {
            dk,
            ctx,
            trace,
            warp_id: w as u32,
            dx,
            dy,
            regs: &mut regs[w * stride..(w + 1) * stride],
            shared: &mut *shared,
            tidx,
            tidy,
            writes: &mut *writes,
            tx: &mut tx_total,
        };
        for ins in &prog[i..end] {
            ex.exec_ins(ins)?;
        }
        i = end;
    }
    let mut counters = trace.counters.clone();
    counters.mem_transactions = tx_total;
    let cycles = trace.issue_cycles + tx_total * dk.mem_cycles;
    Ok((counters, cycles))
}

/// Replay execution view of one warp (mirrors the decoded `DExec` field
/// names so `exec_pure_op!` and the lane macros apply unchanged).
struct RExec<'a> {
    dk: &'a DecodedKernel,
    ctx: &'a DecodedBlockCtx<'a>,
    trace: &'a Trace,
    warp_id: u32,
    /// Block offset from the recorded block (rebasing delta inputs).
    dx: i64,
    dy: i64,
    regs: &'a mut [u32],
    shared: &'a mut [u32],
    tidx: &'a [u32],
    tidy: &'a [u32],
    writes: &'a mut Vec<(u32, usize, u32)>,
    tx: &'a mut u64,
}

impl<'a> RExec<'a> {
    #[inline(always)]
    fn row(&self, base: usize) -> [u32; WARP] {
        let mut out = [0u32; WARP];
        out.copy_from_slice(&self.regs[base..base + WARP]);
        out
    }

    #[inline(always)]
    fn row_mut(&mut self, base: usize) -> &mut [u32; WARP] {
        (&mut self.regs[base..base + WARP]).try_into().unwrap()
    }

    fn exec_ins(&mut self, ins: &RIns) -> Result<(), DeoptReason> {
        match *ins {
            RIns::Warp(_) => unreachable!("warp switches are handled by the caller"),
            RIns::Guard { pred, mask, m_true } => {
                let p = pred as usize;
                let mut got = 0u32;
                for l in 0..WARP {
                    if mask & (1 << l) != 0 && self.regs[p + l] != 0 {
                        got |= 1 << l;
                    }
                }
                if got != m_true {
                    return Err(DeoptReason::Branch);
                }
                Ok(())
            }
            RIns::RangeGuard { m0, cbx, cby, why } => {
                if m0 + cbx * self.dx + cby * self.dy > 0 {
                    return Err(why);
                }
                Ok(())
            }
            RIns::Ld {
                dst,
                buf,
                addr,
                mask,
                rec,
            } => {
                let tr = self.trace;
                self.replay_ld(dst, buf, addr, mask, &tr.mems[rec as usize])
            }
            RIns::St {
                buf,
                addr,
                val,
                mask,
                rec,
            } => {
                let tr = self.trace;
                self.replay_st(buf, addr, val, mask, &tr.mems[rec as usize])
            }
            RIns::LdR {
                dst,
                buf,
                mask,
                rec,
            } => {
                let tr = self.trace;
                self.replay_ld_rebased(dst, buf, mask, &tr.mems[rec as usize])
            }
            RIns::StR {
                buf,
                val,
                mask,
                rec,
            } => {
                let tr = self.trace;
                self.replay_st_rebased(buf, val, mask, &tr.mems[rec as usize])
            }
            RIns::Op { kind, mask } => self.replay_op(kind, mask),
            RIns::Op2 { a, b, mask } => {
                self.replay_op(a, mask)?;
                self.replay_op(b, mask)
            }
            RIns::Op3 { a, b, c, mask } => {
                self.replay_op(a, mask)?;
                self.replay_op(b, mask)?;
                self.replay_op(c, mask)
            }
        }
    }

    /// Guard a pattern-mode (data-dependent) access: all active lanes must
    /// reproduce the recorded address pattern shifted by the anchor delta
    /// (exact `i64` equality — a wrapping 32-bit check could alias across
    /// 2³² and unsoundly admit an out-of-bounds unchecked access), and the
    /// translated extrema must stay inside the buffer. Returns the
    /// transaction count: the recorded one when the anchor keeps its segment
    /// alignment, else an exact recount.
    #[inline]
    fn guard_mem(
        &self,
        ab: usize,
        mask: u32,
        rec: &MemRec,
        len: usize,
    ) -> Result<(u64, [u32; WARP]), DeoptReason> {
        let anchor_lane = rec.base_lane as usize;
        let cur_anchor = self.regs[ab + anchor_lane] as i32 as i64;
        let rec_anchor = rec.addrs[anchor_lane] as i64;
        let delta = cur_anchor - rec_anchor;
        let cur = self.row(ab);
        if mask == u32::MAX {
            let mut same = true;
            for l in 0..WARP {
                same &= (cur[l] as i32 as i64) == rec.addrs[l] as i64 + delta;
            }
            if !same {
                return Err(DeoptReason::MemPattern);
            }
            if cur_anchor + rec.min_rel < 0 || cur_anchor + rec.max_rel >= len as i64 {
                return Err(DeoptReason::Bounds);
            }
            let tx = if cur_anchor.rem_euclid(32) == rec.align {
                rec.tx
            } else {
                let mut addrs = [0i64; WARP];
                for l in 0..WARP {
                    addrs[l] = cur[l] as i32 as i64;
                }
                segment_count_full(&addrs)
            };
            Ok((tx, cur))
        } else {
            let mut same = true;
            for l in 0..WARP {
                if mask & (1 << l) != 0 {
                    same &= (cur[l] as i32 as i64) == rec.addrs[l] as i64 + delta;
                }
            }
            if !same {
                return Err(DeoptReason::MemPattern);
            }
            if cur_anchor + rec.min_rel < 0 || cur_anchor + rec.max_rel >= len as i64 {
                return Err(DeoptReason::Bounds);
            }
            let tx = if cur_anchor.rem_euclid(32) == rec.align {
                rec.tx
            } else {
                let mut addrs: [Option<i64>; WARP] = [None; WARP];
                for l in 0..WARP {
                    if mask & (1 << l) != 0 {
                        addrs[l] = Some(cur[l] as i32 as i64);
                    }
                }
                transactions_for_warp_fixed(&addrs)
            };
            Ok((tx, cur))
        }
    }

    /// Prove a rebased access in bounds and derive its transaction count
    /// without touching the (dead, never re-derived) address row. The class
    /// proof gives every active lane's address as `recorded + delta`
    /// exactly; a bounds failure means the decoded engine would have
    /// errored, so the caller deopts and reproduces the exact error.
    #[inline]
    fn rebase_mem(&self, mask: u32, rec: &MemRec, len: usize) -> Result<(i64, u64), DeoptReason> {
        let (cbx, cby) = rec.rebase.ok_or(DeoptReason::OpFault)?;
        let delta = cbx * self.dx + cby * self.dy;
        let anchor = rec.addrs[rec.base_lane as usize] as i64 + delta;
        if anchor + rec.min_rel < 0 || anchor + rec.max_rel >= len as i64 {
            return Err(DeoptReason::Bounds);
        }
        let tx = if anchor.rem_euclid(32) == rec.align {
            rec.tx
        } else if mask == u32::MAX {
            segment_count_full(&crate::rows::add_delta(&rec.addrs, delta))
        } else {
            let mut addrs: [Option<i64>; WARP] = [None; WARP];
            lanes!(mask, l, {
                addrs[l] = Some(rec.addrs[l] as i64 + delta);
            });
            transactions_for_warp_fixed(&addrs)
        };
        Ok((delta, tx))
    }

    fn replay_ld(
        &mut self,
        dst: u32,
        buf: u32,
        addr: u32,
        mask: u32,
        rec: &MemRec,
    ) -> Result<(), DeoptReason> {
        let buffer = self
            .ctx
            .buffers
            .get(buf as usize)
            .ok_or(DeoptReason::OpFault)?;
        let (d, ab) = (dst as usize, addr as usize);
        let (tx, cur) = self.guard_mem(ab, mask, rec, buffer.len())?;
        if mask == u32::MAX {
            let out = self.row_mut(d);
            if rec.contig {
                // SAFETY: the verified pattern is unit-stride, so the guard's
                // extrema bound the whole `cur[0]..cur[0]+WARP` span.
                unsafe { buffer.load_span_unchecked(cur[0] as i32 as usize, out) };
                *self.tx += tx;
                return Ok(());
            }
            for l in 0..WARP {
                // SAFETY: `guard_mem` proved every lane reproduces the
                // recorded pattern at the rebased anchor and that the
                // pattern's extrema are inside the buffer.
                out[l] = unsafe { buffer.load_bits_unchecked(cur[l] as i32 as usize) };
            }
        } else {
            lanes!(mask, l, {
                // SAFETY: as above, for the active lanes.
                self.regs[d + l] = unsafe { buffer.load_bits_unchecked(cur[l] as i32 as usize) };
            });
        }
        *self.tx += tx;
        Ok(())
    }

    fn replay_st(
        &mut self,
        buf: u32,
        addr: u32,
        val: u32,
        mask: u32,
        rec: &MemRec,
    ) -> Result<(), DeoptReason> {
        let len = self
            .ctx
            .buffers
            .get(buf as usize)
            .ok_or(DeoptReason::OpFault)?
            .len();
        let (ab, vb) = (addr as usize, val as usize);
        let (tx, cur) = self.guard_mem(ab, mask, rec, len)?;
        if mask == u32::MAX {
            let vals = self.row(vb);
            self.writes
                .extend((0..WARP).map(|l| (buf, cur[l] as i32 as usize, vals[l])));
        } else {
            lanes!(mask, l, {
                self.writes
                    .push((buf, cur[l] as i32 as usize, self.regs[vb + l]));
            });
        }
        *self.tx += tx;
        Ok(())
    }

    fn replay_ld_rebased(
        &mut self,
        dst: u32,
        buf: u32,
        mask: u32,
        rec: &MemRec,
    ) -> Result<(), DeoptReason> {
        let buffer = self
            .ctx
            .buffers
            .get(buf as usize)
            .ok_or(DeoptReason::OpFault)?;
        let (delta, tx) = self.rebase_mem(mask, rec, buffer.len())?;
        let d = dst as usize;
        if mask == u32::MAX {
            let out = self.row_mut(d);
            if rec.contig {
                // SAFETY: unit-stride pattern — `rebase_mem`'s extrema bound
                // the whole rebased `addrs[0]..addrs[0]+WARP` span.
                unsafe { buffer.load_span_unchecked((rec.addrs[0] as i64 + delta) as usize, out) };
                *self.tx += tx;
                return Ok(());
            }
            let addrs = crate::rows::add_delta(&rec.addrs, delta);
            for l in 0..WARP {
                // SAFETY: `rebase_mem` bounds the translated extrema, and
                // the affine class proof puts every lane between them.
                out[l] = unsafe { buffer.load_bits_unchecked(addrs[l] as usize) };
            }
        } else {
            lanes!(mask, l, {
                // SAFETY: as above, for the active lanes.
                self.regs[d + l] =
                    unsafe { buffer.load_bits_unchecked((rec.addrs[l] as i64 + delta) as usize) };
            });
        }
        *self.tx += tx;
        Ok(())
    }

    fn replay_st_rebased(
        &mut self,
        buf: u32,
        val: u32,
        mask: u32,
        rec: &MemRec,
    ) -> Result<(), DeoptReason> {
        let len = self
            .ctx
            .buffers
            .get(buf as usize)
            .ok_or(DeoptReason::OpFault)?
            .len();
        let (delta, tx) = self.rebase_mem(mask, rec, len)?;
        let vb = val as usize;
        if mask == u32::MAX {
            let vals = self.row(vb);
            let addrs = crate::rows::add_delta(&rec.addrs, delta);
            self.writes
                .extend((0..WARP).map(|l| (buf, addrs[l] as usize, vals[l])));
        } else {
            lanes!(mask, l, {
                self.writes.push((
                    buf,
                    (rec.addrs[l] as i64 + delta) as usize,
                    self.regs[vb + l],
                ));
            });
        }
        *self.tx += tx;
        Ok(())
    }

    /// Re-execute a surviving non-global-memory op. Arithmetic runs the
    /// decoded engine's own `exec_pure_op!` arms; parameter loads, texture
    /// fetches and shared memory re-execute with their failure paths mapped
    /// to deopt (the decoded re-run then reproduces the exact reference
    /// error).
    fn replay_op(&mut self, kind: DOpKind, mask: u32) -> Result<(), DeoptReason> {
        match kind {
            DOpKind::LdParam { dst, index } => {
                let bits = match self.ctx.params.get(index as usize) {
                    Some(ParamValue::I32(v)) => *v as u32,
                    Some(ParamValue::F32(v)) => v.to_bits(),
                    None => return Err(DeoptReason::OpFault),
                };
                let d = dst as usize;
                lanes!(mask, l, {
                    self.regs[d + l] = bits;
                });
            }
            DOpKind::Tex { dst, buf, x, y } => {
                let buffer: &DeviceBuffer = self
                    .ctx
                    .buffers
                    .get(buf as usize)
                    .ok_or(DeoptReason::OpFault)?;
                let desc = *buffer.texture().ok_or(DeoptReason::OpFault)?;
                let (d, xb, yb) = (dst as usize, x as usize, y as usize);
                let mut addrs: [Option<i64>; WARP] = [None; WARP];
                let mut values: [u32; WARP] = [0; WARP];
                lanes!(mask, l, {
                    let cx = self.regs[xb + l] as i32 as i64;
                    let cy = self.regs[yb + l] as i32 as i64;
                    let rx = desc.mode.resolve(cx, desc.width);
                    let ry = desc.mode.resolve(cy, desc.height);
                    match (rx, ry) {
                        (Some(rx), Some(ry)) => {
                            let a = (ry * desc.width + rx) as i64;
                            addrs[l] = Some(a);
                            values[l] = buffer.load_bits(a as usize);
                        }
                        _ => {
                            values[l] = desc.mode.border_value().to_bits();
                        }
                    }
                });
                *self.tx += transactions_for_warp_fixed(&addrs);
                lanes!(mask, l, {
                    self.regs[d + l] = values[l];
                });
            }
            DOpKind::Lds { dst, addr } => {
                let len = self.shared.len();
                let (d, ab) = (dst as usize, addr as usize);
                lanes!(mask, l, {
                    let a = self.regs[ab + l] as i32 as i64;
                    if a < 0 || a as usize >= len {
                        return Err(DeoptReason::Bounds);
                    }
                    self.regs[d + l] = self.shared[a as usize];
                });
            }
            DOpKind::Sts { addr, val } => {
                let len = self.shared.len();
                let (ab, vb) = (addr as usize, val as usize);
                lanes!(mask, l, {
                    let a = self.regs[ab + l] as i32 as i64;
                    if a < 0 || a as usize >= len {
                        return Err(DeoptReason::Bounds);
                    }
                    self.shared[a as usize] = self.regs[vb + l];
                });
            }
            kind => exec_pure_op!(self, kind, mask),
        }
        Ok(())
    }
}
