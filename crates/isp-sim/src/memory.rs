//! Global device memory: typed-as-bits linear buffers plus the coalescing
//! model.

/// CUDA's `cudaTextureAddressMode`: how the texture unit resolves
/// out-of-range coordinates — hardware border handling, one mode per
/// software pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TexAddressMode {
    /// `cudaAddressModeClamp`.
    Clamp,
    /// `cudaAddressModeWrap` (the software `Repeat` pattern).
    Wrap,
    /// `cudaAddressModeMirror`.
    Mirror,
    /// `cudaAddressModeBorder`: out-of-range fetches return this value.
    Border(f32),
}

impl TexAddressMode {
    /// Resolve a coordinate against an axis of length `size`.
    pub fn resolve(&self, idx: i64, size: usize) -> Option<usize> {
        let s = size as i64;
        if (0..s).contains(&idx) {
            return Some(idx as usize);
        }
        match self {
            TexAddressMode::Clamp => Some(idx.clamp(0, s - 1) as usize),
            TexAddressMode::Wrap => Some(idx.rem_euclid(s) as usize),
            TexAddressMode::Mirror => {
                // Reflect with edge included, folded into [0, s).
                let period = 2 * s;
                let m = idx.rem_euclid(period);
                Some(if m < s {
                    m as usize
                } else {
                    (period - 1 - m) as usize
                })
            }
            TexAddressMode::Border(_) => None,
        }
    }

    /// The fill value for `Border`, 0.0 otherwise.
    pub fn border_value(&self) -> f32 {
        match self {
            TexAddressMode::Border(v) => *v,
            _ => 0.0,
        }
    }
}

/// 2D texture binding for a buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TexDesc {
    /// Texture width in elements.
    pub width: usize,
    /// Texture height in elements.
    pub height: usize,
    /// Hardware address mode.
    pub mode: TexAddressMode,
}

/// A linear device allocation of 32-bit elements, stored as raw bit
/// patterns. Kernels decide per-access whether an element is `f32` or `s32`
/// (exactly like global memory on real hardware). A buffer may additionally
/// carry a texture binding, enabling `tex.2d` fetches with hardware border
/// handling.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceBuffer {
    bits: Vec<u32>,
    tex: Option<TexDesc>,
}

impl DeviceBuffer {
    /// Allocate `len` elements, zero-initialised.
    pub fn zeroed(len: usize) -> Self {
        DeviceBuffer {
            bits: vec![0; len],
            tex: None,
        }
    }

    /// Upload a slice of `f32` values.
    pub fn from_f32(data: &[f32]) -> Self {
        DeviceBuffer {
            bits: data.iter().map(|v| v.to_bits()).collect(),
            tex: None,
        }
    }

    /// Upload a slice of `i32` values.
    pub fn from_i32(data: &[i32]) -> Self {
        DeviceBuffer {
            bits: data.iter().map(|&v| v as u32).collect(),
            tex: None,
        }
    }

    /// Bind this buffer as a 2D texture (row-major, `width * height` must
    /// equal the element count).
    pub fn with_texture(mut self, desc: TexDesc) -> Self {
        assert_eq!(
            desc.width * desc.height,
            self.bits.len(),
            "texture descriptor must match the allocation"
        );
        self.tex = Some(desc);
        self
    }

    /// The texture binding, if any.
    pub fn texture(&self) -> Option<&TexDesc> {
        self.tex.as_ref()
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The raw element storage, for full-warp gathers (the caller has
    /// bounds-checked every address).
    #[inline]
    pub fn bits(&self) -> &[u32] {
        &self.bits
    }

    /// Read raw bits (caller has bounds-checked).
    #[inline]
    pub fn load_bits(&self, addr: usize) -> u32 {
        self.bits[addr]
    }

    /// Read raw bits without a bounds check.
    ///
    /// # Safety
    /// `addr` must be less than [`DeviceBuffer::len`].
    #[inline]
    pub unsafe fn load_bits_unchecked(&self, addr: usize) -> u32 {
        debug_assert!(addr < self.bits.len());
        *self.bits.get_unchecked(addr)
    }

    /// Copy `out.len()` consecutive elements starting at `addr` into `out`.
    ///
    /// # Safety
    /// `addr + out.len()` must not exceed [`DeviceBuffer::len`].
    #[inline]
    pub unsafe fn load_span_unchecked(&self, addr: usize, out: &mut [u32]) {
        debug_assert!(addr + out.len() <= self.bits.len());
        out.copy_from_slice(self.bits.get_unchecked(addr..addr + out.len()));
    }

    /// Write raw bits.
    #[inline]
    pub fn store_bits(&mut self, addr: usize, bits: u32) {
        self.bits[addr] = bits;
    }

    /// Download as `f32` values.
    pub fn to_f32(&self) -> Vec<f32> {
        self.bits.iter().map(|&b| f32::from_bits(b)).collect()
    }

    /// Download as `i32` values.
    pub fn to_i32(&self) -> Vec<i32> {
        self.bits.iter().map(|&b| b as i32).collect()
    }
}

/// Number of 128-byte transactions needed to service a warp's worth of
/// 4-byte accesses at the given element addresses (`None` = lane inactive).
///
/// This is the coalescing rule of every post-Fermi NVIDIA GPU: the memory
/// system fetches aligned 128-byte segments; a warp reading 32 consecutive
/// aligned floats needs 1 transaction, a strided or scattered warp needs up
/// to 32. The paper's warp-grained partitioning (§V-B) exists precisely
/// because "the block layout in GPU applications is mostly wide in
/// x-dimension, which uses memory more efficiently" — wide rows coalesce.
pub fn transactions_for_warp(addrs: &[Option<i64>]) -> u64 {
    const ELEMS_PER_SEGMENT: i64 = 32; // 128 bytes / 4-byte elements
    let mut segments: Vec<i64> = addrs
        .iter()
        .flatten()
        .map(|&a| a.div_euclid(ELEMS_PER_SEGMENT))
        .collect();
    segments.sort_unstable();
    segments.dedup();
    segments.len() as u64
}

/// Allocation-free [`transactions_for_warp`] for a full warp's address
/// array: the segment scratch lives on the stack, so the decoded
/// interpreter's hot loop does no heap work per memory instruction. The
/// count is identical to the Vec-based reference (same sort + dedup rule).
pub fn transactions_for_warp_fixed(addrs: &[Option<i64>; 32]) -> u64 {
    const ELEMS_PER_SEGMENT: i64 = 32;
    let mut segments = [0i64; 32];
    let mut n = 0usize;
    let mut monotonic = true;
    for a in addrs.iter().flatten() {
        let s = a.div_euclid(ELEMS_PER_SEGMENT);
        monotonic &= n == 0 || s >= segments[n - 1];
        segments[n] = s;
        n += 1;
    }
    let live = &mut segments[..n];
    // Row-major stencil access is monotonically non-decreasing per warp, so
    // the common case skips the sort; distinct-counting is order-identical.
    if !monotonic {
        live.sort_unstable();
    }
    let mut distinct = 0u64;
    let mut prev = None;
    for &s in live.iter() {
        if prev != Some(s) {
            distinct += 1;
            prev = Some(s);
        }
    }
    distinct
}

/// Distinct 128-byte segments touched by a full warp of validated element
/// addresses. This is the counting half of the decoded engine's fused
/// validate+coalesce path, shared with trace replay so a recomputed
/// transaction count can never diverge from the recorded one: same
/// monotonic sort-skip, same distinct-run count as
/// [`transactions_for_warp_fixed`] over 32 active lanes.
pub fn segment_count_full(addrs: &[i64; 32]) -> u64 {
    const ELEMS_PER_SEGMENT: i64 = 32;
    let mut segs = [0i64; 32];
    for l in 0..32 {
        segs[l] = addrs[l].div_euclid(ELEMS_PER_SEGMENT);
    }
    let mut monotonic = true;
    for l in 1..32 {
        monotonic &= segs[l] >= segs[l - 1];
    }
    if !monotonic {
        segs.sort_unstable();
    }
    let mut tx = 1u64;
    for l in 1..32 {
        tx += (segs[l] != segs[l - 1]) as u64;
    }
    tx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f32_and_i32() {
        let b = DeviceBuffer::from_f32(&[1.5, -2.25, 0.0]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_f32(), vec![1.5, -2.25, 0.0]);
        let b = DeviceBuffer::from_i32(&[-1, 7]);
        assert_eq!(b.to_i32(), vec![-1, 7]);
    }

    #[test]
    fn bits_access() {
        let mut b = DeviceBuffer::zeroed(4);
        assert!(!b.is_empty());
        b.store_bits(2, 1.0f32.to_bits());
        assert_eq!(b.load_bits(2), 0x3F80_0000);
        assert_eq!(b.to_f32()[2], 1.0);
    }

    #[test]
    fn fully_coalesced_row_is_one_transaction() {
        let addrs: Vec<Option<i64>> = (0..32).map(|i| Some(i as i64)).collect();
        assert_eq!(transactions_for_warp(&addrs), 1);
    }

    #[test]
    fn misaligned_row_spans_two_segments() {
        let addrs: Vec<Option<i64>> = (0..32).map(|i| Some(i as i64 + 16)).collect();
        assert_eq!(transactions_for_warp(&addrs), 2);
    }

    #[test]
    fn column_access_is_fully_scattered() {
        // Stride = one 4096-wide image row: every lane in its own segment.
        let addrs: Vec<Option<i64>> = (0..32).map(|i| Some(i as i64 * 4096)).collect();
        assert_eq!(transactions_for_warp(&addrs), 32);
    }

    #[test]
    fn inactive_lanes_cost_nothing() {
        let mut addrs: Vec<Option<i64>> = vec![None; 32];
        assert_eq!(transactions_for_warp(&addrs), 0);
        addrs[5] = Some(100);
        assert_eq!(transactions_for_warp(&addrs), 1);
    }

    #[test]
    fn broadcast_access_is_one_transaction() {
        let addrs: Vec<Option<i64>> = (0..32).map(|_| Some(77)).collect();
        assert_eq!(transactions_for_warp(&addrs), 1);
    }

    #[test]
    fn full_segment_count_matches_reference() {
        let cases: Vec<[i64; 32]> = vec![
            std::array::from_fn(|i| i as i64),
            std::array::from_fn(|i| i as i64 + 16),
            std::array::from_fn(|i| i as i64 * 4096),
            std::array::from_fn(|_| 77),
            std::array::from_fn(|i| (31 - i) as i64 * 3),
        ];
        for addrs in &cases {
            let opts: [Option<i64>; 32] = std::array::from_fn(|i| Some(addrs[i]));
            assert_eq!(
                segment_count_full(addrs),
                transactions_for_warp(&opts),
                "{addrs:?}"
            );
        }
    }

    #[test]
    fn fixed_variant_matches_reference_counts() {
        let cases: Vec<[Option<i64>; 32]> = vec![
            std::array::from_fn(|i| Some(i as i64)),
            std::array::from_fn(|i| Some(i as i64 + 16)),
            std::array::from_fn(|i| Some(i as i64 * 4096)),
            std::array::from_fn(|_| Some(77)),
            std::array::from_fn(|i| {
                if i % 3 == 0 {
                    Some(-5 * i as i64)
                } else {
                    None
                }
            }),
            [None; 32],
        ];
        for addrs in &cases {
            assert_eq!(
                transactions_for_warp_fixed(addrs),
                transactions_for_warp(addrs),
                "{addrs:?}"
            );
        }
    }

    #[test]
    fn negative_addresses_use_euclidean_segments() {
        // Clamped-at-zero minus offsets would be negative before clamping;
        // the transaction counter itself must not panic on them (bounds
        // checking happens elsewhere).
        let addrs = vec![Some(-1i64), Some(0)];
        assert_eq!(transactions_for_warp(&addrs), 2);
    }
}

#[cfg(test)]
mod tex_tests {
    use super::*;

    #[test]
    fn clamp_mode_resolution() {
        let m = TexAddressMode::Clamp;
        assert_eq!(m.resolve(-3, 8), Some(0));
        assert_eq!(m.resolve(7, 8), Some(7));
        assert_eq!(m.resolve(11, 8), Some(7));
    }

    #[test]
    fn wrap_mode_is_periodic() {
        let m = TexAddressMode::Wrap;
        assert_eq!(m.resolve(-1, 8), Some(7));
        assert_eq!(m.resolve(8, 8), Some(0));
        assert_eq!(m.resolve(-17, 8), Some(7));
        assert_eq!(m.resolve(19, 8), Some(3));
    }

    #[test]
    fn mirror_mode_reflects_with_edges() {
        let m = TexAddressMode::Mirror;
        // Matches the software Mirror pattern: -1 -> 0, -2 -> 1, 8 -> 7.
        assert_eq!(m.resolve(-1, 8), Some(0));
        assert_eq!(m.resolve(-2, 8), Some(1));
        assert_eq!(m.resolve(8, 8), Some(7));
        assert_eq!(m.resolve(9, 8), Some(6));
        // Full period: 16 maps back to 0.
        assert_eq!(m.resolve(16, 8), Some(0));
        assert_eq!(
            m.resolve(-9, 8),
            Some(7),
            "second reflection: -9 folds to 7"
        );
    }

    #[test]
    fn border_mode_returns_fill() {
        let m = TexAddressMode::Border(0.5);
        assert_eq!(m.resolve(-1, 8), None);
        assert_eq!(m.resolve(8, 8), None);
        assert_eq!(m.resolve(3, 8), Some(3));
        assert_eq!(m.border_value(), 0.5);
        assert_eq!(TexAddressMode::Clamp.border_value(), 0.0);
    }

    #[test]
    fn in_range_is_identity_for_all_modes() {
        for m in [
            TexAddressMode::Clamp,
            TexAddressMode::Wrap,
            TexAddressMode::Mirror,
            TexAddressMode::Border(1.0),
        ] {
            for i in 0..8 {
                assert_eq!(m.resolve(i, 8), Some(i as usize));
            }
        }
    }

    #[test]
    fn texture_binding_validates_dims() {
        let b = DeviceBuffer::zeroed(12).with_texture(TexDesc {
            width: 4,
            height: 3,
            mode: TexAddressMode::Clamp,
        });
        assert_eq!(b.texture().unwrap().width, 4);
    }

    #[test]
    #[should_panic(expected = "match the allocation")]
    fn texture_binding_rejects_bad_dims() {
        let _ = DeviceBuffer::zeroed(10).with_texture(TexDesc {
            width: 4,
            height: 3,
            mode: TexAddressMode::Clamp,
        });
    }
}
