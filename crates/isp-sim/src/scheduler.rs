//! Block dispatch and the cycle/time model.
//!
//! Blocks are assigned greedily to the earliest-finishing SM (the behaviour
//! of the hardware GigaThread engine), each SM's issue throughput is scaled
//! by achieved occupancy (the paper's "more rounds" cost, Eq. 10), and two
//! second-order effects are charged that the paper's *analytic model* leaves
//! out — which is exactly what produces its mispredictions near crossover
//! points:
//!
//! - a fixed kernel **launch overhead** (dominates tiny grids);
//! - an **instruction-fetch penalty** when an SM switches between blocks
//!   executing different specialised regions of a fat ISP kernel (i-cache
//!   locality; irrelevant for the naive kernel where every block runs the
//!   same code).

use crate::device::DeviceSpec;
use crate::occupancy::OccupancyResult;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Cost descriptor of one block for scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCost {
    /// Opaque class id: blocks of the same class execute the same code path
    /// (for ISP kernels, the region; for naive kernels, a single class).
    pub class: u32,
    /// Issue cycles of the block as measured by the interpreter.
    pub cycles: u64,
    /// Static instruction footprint of the code path this class executes
    /// (drives the i-cache switch penalty).
    pub static_footprint: u32,
}

/// Wall-clock result of a simulated launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    /// Total cycles from launch to last block retiring.
    pub cycles: u64,
    /// `cycles` at the device clock.
    pub millis: f64,
    /// Average dispatch waves per SM (`blocks / (blocks_per_sm * sms)`).
    pub waves: f64,
}

/// Schedule `blocks` (in dispatch order) onto `device` and return timing.
pub fn schedule(
    device: &DeviceSpec,
    occ: &OccupancyResult,
    blocks: impl IntoIterator<Item = BlockCost>,
) -> Timing {
    schedule_with(device, occ, blocks, |_, _, _, _| {})
}

/// [`schedule`] with a per-block placement callback: `on_block(i, sm,
/// start, end)` reports that dispatch-order block `i` occupies SM `sm`
/// from cycle `start` to cycle `end` (relative to the end of the fixed
/// launch overhead; the occupancy derating and i-cache switch penalty are
/// already folded into the interval).
///
/// This is how the probe layer reconstructs per-SM timelines without the
/// scheduler knowing about probes: [`schedule`] passes a no-op closure,
/// which monomorphises to exactly the pre-callback code.
pub fn schedule_with(
    device: &DeviceSpec,
    occ: &OccupancyResult,
    blocks: impl IntoIterator<Item = BlockCost>,
    mut on_block: impl FnMut(usize, u32, u64, u64),
) -> Timing {
    // Issue-throughput derating: below the saturation occupancy the SM
    // cannot hide latency and slows proportionally.
    let f = (occ.occupancy / device.saturation_occupancy).clamp(1e-6, 1.0);

    // Min-heap of (finish_cycles, sm) plus the last class each SM ran.
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> =
        (0..device.num_sms).map(|s| Reverse((0u64, s))).collect();
    let mut last_class: Vec<Option<u32>> = vec![None; device.num_sms as usize];

    let mut total_blocks = 0u64;
    let mut max_finish = 0u64;
    for (i, b) in blocks.into_iter().enumerate() {
        total_blocks += 1;
        let Reverse((busy, sm)) = heap.pop().expect("at least one SM");
        let icache = if last_class[sm as usize] == Some(b.class) {
            0
        } else {
            device.icache_switch_cycles_per_100_instrs * (b.static_footprint as u64) / 100
        };
        last_class[sm as usize] = Some(b.class);
        let effective = ((b.cycles + icache) as f64 / f).round() as u64;
        let finish = busy + effective;
        max_finish = max_finish.max(finish);
        on_block(i, sm, busy, finish);
        heap.push(Reverse((finish, sm)));
    }

    let cycles = device.launch_overhead_cycles + max_finish;
    let concurrent = (occ.blocks_per_sm as u64 * device.num_sms as u64).max(1);
    Timing {
        cycles,
        millis: device.cycles_to_ms(cycles),
        waves: total_blocks as f64 / concurrent as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::occupancy;

    fn occ_full(device: &DeviceSpec) -> OccupancyResult {
        occupancy(device, 128, 24)
    }

    fn uniform(n: u64, cycles: u64) -> Vec<BlockCost> {
        (0..n)
            .map(|_| BlockCost {
                class: 0,
                cycles,
                static_footprint: 100,
            })
            .collect()
    }

    #[test]
    fn empty_launch_is_pure_overhead() {
        let d = DeviceSpec::gtx680();
        let t = schedule(&d, &occ_full(&d), []);
        assert_eq!(t.cycles, d.launch_overhead_cycles);
        assert_eq!(t.waves, 0.0);
    }

    #[test]
    fn single_block_pays_full_cost_plus_one_icache_fill() {
        let d = DeviceSpec::gtx680();
        let t = schedule(&d, &occ_full(&d), uniform(1, 1000));
        let icache = d.icache_switch_cycles_per_100_instrs; // footprint 100
        assert_eq!(t.cycles, d.launch_overhead_cycles + 1000 + icache);
    }

    #[test]
    fn blocks_distribute_across_sms() {
        let d = DeviceSpec::gtx680(); // 8 SMs
        let one = schedule(&d, &occ_full(&d), uniform(1, 1000)).cycles;
        let eight = schedule(&d, &occ_full(&d), uniform(8, 1000)).cycles;
        // 8 equal blocks on 8 SMs take the same time as 1.
        assert_eq!(one, eight);
        let nine = schedule(&d, &occ_full(&d), uniform(9, 1000)).cycles;
        assert!(nine > eight, "ninth block forms a second wave on one SM");
    }

    #[test]
    fn low_occupancy_slows_execution() {
        let d = DeviceSpec::gtx680();
        let full = occupancy(&d, 128, 24); // 1.0
        let half = occupancy(&d, 128, 63); // register-limited
        assert!(half.occupancy < full.occupancy);
        let blocks = uniform(64, 10_000);
        let t_full = schedule(&d, &full, blocks.clone());
        let t_half = schedule(&d, &half, blocks);
        assert!(t_half.cycles > t_full.cycles);
        // Slowdown of the execution phase (excluding the fixed launch
        // overhead) tracks the occupancy ratio — the paper's Eq. 10.
        let measured = (t_half.cycles - d.launch_overhead_cycles) as f64
            / (t_full.cycles - d.launch_overhead_cycles) as f64;
        let predicted = full.occupancy / half.occupancy;
        assert!(
            (measured / predicted - 1.0).abs() < 0.05,
            "{measured} vs {predicted}"
        );
    }

    #[test]
    fn region_alternation_pays_icache_penalty() {
        let d = DeviceSpec::gtx680();
        let occ = occ_full(&d);
        let same: Vec<BlockCost> = (0..64)
            .map(|_| BlockCost {
                class: 0,
                cycles: 1000,
                static_footprint: 2000,
            })
            .collect();
        // Alternate classes wave by wave (8 SMs -> every SM sees a class
        // change between consecutive blocks it runs).
        let alternating: Vec<BlockCost> = (0..64)
            .map(|i| BlockCost {
                class: (i / 8) % 2,
                cycles: 1000,
                static_footprint: 2000,
            })
            .collect();
        let t_same = schedule(&d, &occ, same);
        let t_alt = schedule(&d, &occ, alternating);
        assert!(t_alt.cycles > t_same.cycles, "{t_alt:?} vs {t_same:?}");
    }

    #[test]
    fn waves_reflect_concurrency() {
        let d = DeviceSpec::gtx680();
        let occ = occupancy(&d, 128, 24); // 16 blocks/SM * 8 SMs = 128
        let t = schedule(&d, &occ, uniform(256, 100));
        assert!((t.waves - 2.0).abs() < 1e-12);
    }

    #[test]
    fn imbalanced_blocks_bound_by_slowest_chain() {
        let d = DeviceSpec::gtx680();
        let occ = occ_full(&d);
        let mut blocks = uniform(7, 100);
        blocks.push(BlockCost {
            class: 0,
            cycles: 50_000,
            static_footprint: 100,
        });
        let t = schedule(&d, &occ, blocks);
        let icache = d.icache_switch_cycles_per_100_instrs;
        assert_eq!(t.cycles, d.launch_overhead_cycles + 50_000 + icache);
    }
}
