//! NVProf-style launch reports: derived metrics and a formatted printout
//! from a [`LaunchReport`] — the simulator's answer to "The execution time
//! is obtained from the output of NVProf" (paper §VI).

use crate::counters::PerfCounters;
use crate::device::DeviceSpec;
use crate::launch::LaunchReport;
use isp_ir::InstrCategory;
use isp_json::Json;
use std::fmt::Write;

/// Derived metrics computed from a launch report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivedMetrics {
    /// Warp instructions issued per cycle across the whole device
    /// (an IPC-like utilisation figure).
    pub warp_ipc: f64,
    /// Fraction of conditional branches that diverged.
    pub divergence_rate: f64,
    /// Average 128-byte transactions per global memory warp-instruction.
    pub transactions_per_access: f64,
    /// Fraction of issue cycles spent on arithmetic categories.
    pub arithmetic_fraction: f64,
    /// Fraction of issue cycles spent on memory categories (issue slots +
    /// transactions).
    pub memory_fraction: f64,
    /// Simulated wall-clock in milliseconds.
    pub millis: f64,
}

/// Compute derived metrics from a report.
pub fn derive(device: &DeviceSpec, report: &LaunchReport) -> DerivedMetrics {
    let c = &report.counters;
    // Every memory pathway that produces transactions belongs in the
    // denominator: texture fetches hit the same 128-byte segments as global
    // loads, so omitting them would inflate transactions-per-access for the
    // texture ablation.
    let mem_instrs = c.loads + c.stores + c.tex_accesses;
    let mut arith_cycles = 0u64;
    let mut mem_cycles = c.mem_transactions * device.mem_transaction_cycles;
    let mut total_issue = 0u64;
    for (cat, n) in c.histogram.iter() {
        let cost = n * device.issue_cost(cat);
        total_issue += cost;
        if cat.is_arithmetic() {
            arith_cycles += cost;
        }
        if matches!(
            cat,
            InstrCategory::Ld | InstrCategory::Tex | InstrCategory::St
        ) {
            mem_cycles += cost;
        }
    }
    let busy = (total_issue + c.mem_transactions * device.mem_transaction_cycles).max(1);
    DerivedMetrics {
        warp_ipc: c.warp_instructions as f64 / report.timing.cycles.max(1) as f64,
        divergence_rate: c.divergence_rate(),
        transactions_per_access: if mem_instrs == 0 {
            0.0
        } else {
            c.mem_transactions as f64 / mem_instrs as f64
        },
        arithmetic_fraction: arith_cycles as f64 / busy as f64,
        memory_fraction: mem_cycles as f64 / busy as f64,
        millis: report.timing.millis,
    }
}

/// Render a human-readable profile, NVProf style.
pub fn format_report(device: &DeviceSpec, name: &str, report: &LaunchReport) -> String {
    let m = derive(device, report);
    let c = &report.counters;
    let mut s = String::new();
    let _ = writeln!(s, "==PROF== {name} on {}", device.name);
    let _ = writeln!(
        s,
        "  grid {}x{}, block {}x{} ({} threads), {} blocks total",
        report.config.grid.0,
        report.config.grid.1,
        report.config.block.0,
        report.config.block.1,
        report.config.threads_per_block(),
        report.config.total_blocks()
    );
    let _ = writeln!(
        s,
        "  time {:.3} ms ({} cycles), {:.2} waves",
        m.millis, report.timing.cycles, report.timing.waves
    );
    let _ = writeln!(
        s,
        "  occupancy {:.3} ({} blocks/SM, limited by {:?}), {} regs/thread",
        report.occupancy.occupancy,
        report.occupancy.blocks_per_sm,
        report.occupancy.limiter,
        report.regs_per_thread
    );
    let _ = writeln!(
        s,
        "  {} warp-instructions (IPC {:.3}), divergence {:.1}%",
        c.warp_instructions,
        m.warp_ipc,
        m.divergence_rate * 100.0
    );
    let _ = writeln!(
        s,
        "  {} mem transactions ({:.2} per access), pipes: {:.0}% arith / {:.0}% mem",
        c.mem_transactions,
        m.transactions_per_access,
        m.arithmetic_fraction * 100.0,
        m.memory_fraction * 100.0
    );
    let _ = writeln!(s, "  instruction mix: {}", c.histogram);
    if !report.per_class.is_empty() {
        let _ = writeln!(
            s,
            "  per-class counters ({} classes):",
            report.per_class.len()
        );
        for (class, cc) in &report.per_class {
            let _ = writeln!(
                s,
                "    class {class}: {} blocks, {} warp-instructions, {} mem tx, divergence {:.1}%",
                cc.blocks,
                cc.warp_instructions,
                cc.mem_transactions,
                cc.divergence_rate() * 100.0
            );
        }
    }
    s
}

/// Serialise one counter set as a JSON object. Counter values stay exact
/// (u64, never round-tripped through f64); the histogram is a nested object
/// keyed by category name in display order.
pub fn counters_to_json(c: &PerfCounters) -> Json {
    let mut hist = Json::obj();
    for (cat, n) in c.histogram.iter() {
        hist = hist.set(cat.name(), n);
    }
    Json::obj()
        .set("warp_instructions", c.warp_instructions)
        .set("divergent_branches", c.divergent_branches)
        .set("conditional_branches", c.conditional_branches)
        .set("mem_transactions", c.mem_transactions)
        .set("loads", c.loads)
        .set("stores", c.stores)
        .set("tex_accesses", c.tex_accesses)
        .set("threads_retired", c.threads_retired)
        .set("blocks", c.blocks)
        .set("histogram", hist)
}

/// Serialise a full launch report — geometry, occupancy, timing, aggregate
/// counters, derived metrics, and the per-class attribution — as a JSON
/// object. This is the machine-readable twin of [`format_report`].
pub fn report_to_json(device: &DeviceSpec, name: &str, report: &LaunchReport) -> Json {
    let m = derive(device, report);
    let per_class = report
        .per_class
        .iter()
        .map(|(class, c)| {
            Json::obj()
                .set("class", *class)
                .set("counters", counters_to_json(c))
        })
        .collect::<Vec<Json>>();
    Json::obj()
        .set("kernel", name)
        .set("device", device.name)
        .set(
            "launch",
            Json::obj()
                .set("grid", vec![report.config.grid.0, report.config.grid.1])
                .set("block", vec![report.config.block.0, report.config.block.1])
                .set("regs_per_thread", report.regs_per_thread),
        )
        .set(
            "occupancy",
            Json::obj()
                .set("value", report.occupancy.occupancy)
                .set("blocks_per_sm", report.occupancy.blocks_per_sm)
                .set("warps_per_sm", report.occupancy.warps_per_sm)
                .set("limiter", format!("{:?}", report.occupancy.limiter))
                .set(
                    "tied",
                    report
                        .occupancy
                        .tied
                        .iter()
                        .map(|l| Json::from(format!("{l:?}")))
                        .collect::<Vec<Json>>(),
                ),
        )
        .set(
            "timing",
            Json::obj()
                .set("cycles", report.timing.cycles)
                .set("millis", report.timing.millis)
                .set("waves", report.timing.waves),
        )
        .set("counters", counters_to_json(&report.counters))
        .set(
            "derived",
            Json::obj()
                .set("warp_ipc", m.warp_ipc)
                .set("divergence_rate", m.divergence_rate)
                .set("transactions_per_access", m.transactions_per_access)
                .set("arithmetic_fraction", m.arithmetic_fraction)
                .set("memory_fraction", m.memory_fraction),
        )
        .set("per_class", per_class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::{Gpu, LaunchConfig, ParamValue, SimMode};
    use crate::memory::DeviceBuffer;
    use isp_ir::{BinOp, CmpOp, IrBuilder, SReg, Ty};

    fn sample_report() -> (DeviceSpec, LaunchReport) {
        // Simple kernel with a divergent branch and memory traffic.
        let mut b = IrBuilder::new("prof", 2);
        let t = b.create_block("t");
        let e = b.create_block("e");
        let m = b.create_block("m");
        let x = b.sreg(SReg::TidX);
        let p = b.setp(CmpOp::Lt, x, 16i32);
        b.cond_br(p, t, e);
        b.switch_to(t);
        b.br(m);
        b.switch_to(e);
        b.br(m);
        b.switch_to(m);
        let v = b.ld(Ty::F32, 0, x);
        let w = b.bin(BinOp::Mul, Ty::F32, v, 2.0f32);
        b.st(1, x, w);
        b.ret();
        let k = b.finish();
        let device = DeviceSpec::gtx680();
        let gpu = Gpu::new(device.clone());
        let mut buffers = vec![DeviceBuffer::zeroed(64), DeviceBuffer::zeroed(64)];
        let report = gpu
            .launch(
                &k,
                LaunchConfig {
                    grid: (2, 1),
                    block: (32, 1),
                },
                &[] as &[ParamValue],
                &mut buffers,
                SimMode::Exhaustive,
            )
            .unwrap();
        (device, report)
    }

    #[test]
    fn derived_metrics_are_sane() {
        let (device, report) = sample_report();
        let m = derive(&device, &report);
        assert!(m.warp_ipc > 0.0);
        assert_eq!(
            m.divergence_rate, 1.0,
            "tid<16 always diverges in a 32-warp"
        );
        assert!(m.transactions_per_access >= 1.0);
        assert!(m.arithmetic_fraction > 0.0 && m.arithmetic_fraction < 1.0);
        assert!(m.memory_fraction > 0.0 && m.memory_fraction < 1.0);
        assert!(m.millis > 0.0);
    }

    #[test]
    fn report_contains_key_lines() {
        let (device, report) = sample_report();
        let text = format_report(&device, "prof", &report);
        assert!(text.contains("==PROF== prof on GTX680"));
        assert!(text.contains("grid 2x1, block 32x1 (32 threads), 2 blocks total"));
        assert!(text.contains("occupancy"));
        assert!(text.contains("divergence 100.0%"));
        assert!(text.contains("instruction mix"));
    }

    /// out[x] = tex2d(in, x, 0) over one 32-thread block: every memory
    /// access on the read side goes through the texture unit.
    fn tex_report() -> (DeviceSpec, LaunchReport) {
        use crate::memory::{TexAddressMode, TexDesc};
        let mut b = IrBuilder::new("texprof", 2);
        let x = b.sreg(SReg::TidX);
        let zero = b.mov(Ty::S32, 0i32);
        let v = b.tex(0, x, zero);
        b.st(1, x, v);
        b.ret();
        let k = b.finish();
        let device = DeviceSpec::gtx680();
        let gpu = Gpu::new(device.clone());
        let mut buffers = vec![
            DeviceBuffer::from_f32(&[1.0; 32]).with_texture(TexDesc {
                width: 32,
                height: 1,
                mode: TexAddressMode::Clamp,
            }),
            DeviceBuffer::zeroed(32),
        ];
        let report = gpu
            .launch(
                &k,
                LaunchConfig {
                    grid: (1, 1),
                    block: (32, 1),
                },
                &[] as &[ParamValue],
                &mut buffers,
                SimMode::Exhaustive,
            )
            .unwrap();
        (device, report)
    }

    #[test]
    fn tex_fetches_count_as_memory_accesses() {
        let (device, report) = tex_report();
        let c = &report.counters;
        assert_eq!(c.tex_accesses, 1, "one warp-wide tex fetch");
        assert_eq!(c.loads, 0, "tex fetches must not masquerade as loads");
        assert_eq!(c.stores, 1);
        // 2 warp-level accesses (1 tex + 1 store), each fully coalesced into
        // one 128-byte transaction: the ratio is exactly 1, not the 2 the
        // loads+stores denominator would report.
        let m = derive(&device, &report);
        assert_eq!(c.mem_transactions, 2);
        assert!((m.transactions_per_access - 1.0).abs() < 1e-12, "{m:?}");
    }

    #[test]
    fn json_export_roundtrips_key_fields() {
        let (device, report) = sample_report();
        let j = report_to_json(&device, "prof", &report);
        let text = j.render_pretty();
        assert!(text.contains("\"kernel\": \"prof\""));
        assert!(text.contains("\"device\": \"GTX680\""));
        assert!(text.contains("\"warp_instructions\""));
        assert!(text.contains("\"tex_accesses\""));
        assert!(text.contains("\"per_class\""));
        // Counter integers must be exact decimal literals.
        assert!(text.contains(&format!(
            "\"warp_instructions\": {}",
            report.counters.warp_instructions
        )));
    }
}
