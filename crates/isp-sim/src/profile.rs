//! NVProf-style launch reports: derived metrics and a formatted printout
//! from a [`LaunchReport`] — the simulator's answer to "The execution time
//! is obtained from the output of NVProf" (paper §VI).

use crate::device::DeviceSpec;
use crate::launch::LaunchReport;
use isp_ir::InstrCategory;
use std::fmt::Write;

/// Derived metrics computed from a launch report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivedMetrics {
    /// Warp instructions issued per cycle across the whole device
    /// (an IPC-like utilisation figure).
    pub warp_ipc: f64,
    /// Fraction of conditional branches that diverged.
    pub divergence_rate: f64,
    /// Average 128-byte transactions per global memory warp-instruction.
    pub transactions_per_access: f64,
    /// Fraction of issue cycles spent on arithmetic categories.
    pub arithmetic_fraction: f64,
    /// Fraction of issue cycles spent on memory categories (issue slots +
    /// transactions).
    pub memory_fraction: f64,
    /// Simulated wall-clock in milliseconds.
    pub millis: f64,
}

/// Compute derived metrics from a report.
pub fn derive(device: &DeviceSpec, report: &LaunchReport) -> DerivedMetrics {
    let c = &report.counters;
    let mem_instrs = c.loads + c.stores;
    let mut arith_cycles = 0u64;
    let mut mem_cycles = c.mem_transactions * device.mem_transaction_cycles;
    let mut total_issue = 0u64;
    for (cat, n) in c.histogram.iter() {
        let cost = n * device.issue_cost(cat);
        total_issue += cost;
        if cat.is_arithmetic() {
            arith_cycles += cost;
        }
        if matches!(
            cat,
            InstrCategory::Ld | InstrCategory::Tex | InstrCategory::St
        ) {
            mem_cycles += cost;
        }
    }
    let busy = (total_issue + c.mem_transactions * device.mem_transaction_cycles).max(1);
    DerivedMetrics {
        warp_ipc: c.warp_instructions as f64 / report.timing.cycles.max(1) as f64,
        divergence_rate: c.divergence_rate(),
        transactions_per_access: if mem_instrs == 0 {
            0.0
        } else {
            c.mem_transactions as f64 / mem_instrs as f64
        },
        arithmetic_fraction: arith_cycles as f64 / busy as f64,
        memory_fraction: mem_cycles as f64 / busy as f64,
        millis: report.timing.millis,
    }
}

/// Render a human-readable profile, NVProf style.
pub fn format_report(device: &DeviceSpec, name: &str, report: &LaunchReport) -> String {
    let m = derive(device, report);
    let c = &report.counters;
    let mut s = String::new();
    let _ = writeln!(s, "==PROF== {name} on {}", device.name);
    let _ = writeln!(
        s,
        "  grid {}x{}, block {}x{} ({} threads), {} blocks total",
        report.config.grid.0,
        report.config.grid.1,
        report.config.block.0,
        report.config.block.1,
        report.config.threads_per_block(),
        report.config.total_blocks()
    );
    let _ = writeln!(
        s,
        "  time {:.3} ms ({} cycles), {:.2} waves",
        m.millis, report.timing.cycles, report.timing.waves
    );
    let _ = writeln!(
        s,
        "  occupancy {:.3} ({} blocks/SM, limited by {:?}), {} regs/thread",
        report.occupancy.occupancy,
        report.occupancy.blocks_per_sm,
        report.occupancy.limiter,
        report.regs_per_thread
    );
    let _ = writeln!(
        s,
        "  {} warp-instructions (IPC {:.3}), divergence {:.1}%",
        c.warp_instructions,
        m.warp_ipc,
        m.divergence_rate * 100.0
    );
    let _ = writeln!(
        s,
        "  {} mem transactions ({:.2} per access), pipes: {:.0}% arith / {:.0}% mem",
        c.mem_transactions,
        m.transactions_per_access,
        m.arithmetic_fraction * 100.0,
        m.memory_fraction * 100.0
    );
    let _ = writeln!(s, "  instruction mix: {}", c.histogram);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::{Gpu, LaunchConfig, ParamValue, SimMode};
    use crate::memory::DeviceBuffer;
    use isp_ir::{BinOp, CmpOp, IrBuilder, SReg, Ty};

    fn sample_report() -> (DeviceSpec, LaunchReport) {
        // Simple kernel with a divergent branch and memory traffic.
        let mut b = IrBuilder::new("prof", 2);
        let t = b.create_block("t");
        let e = b.create_block("e");
        let m = b.create_block("m");
        let x = b.sreg(SReg::TidX);
        let p = b.setp(CmpOp::Lt, x, 16i32);
        b.cond_br(p, t, e);
        b.switch_to(t);
        b.br(m);
        b.switch_to(e);
        b.br(m);
        b.switch_to(m);
        let v = b.ld(Ty::F32, 0, x);
        let w = b.bin(BinOp::Mul, Ty::F32, v, 2.0f32);
        b.st(1, x, w);
        b.ret();
        let k = b.finish();
        let device = DeviceSpec::gtx680();
        let gpu = Gpu::new(device.clone());
        let mut buffers = vec![DeviceBuffer::zeroed(64), DeviceBuffer::zeroed(64)];
        let report = gpu
            .launch(
                &k,
                LaunchConfig {
                    grid: (2, 1),
                    block: (32, 1),
                },
                &[] as &[ParamValue],
                &mut buffers,
                SimMode::Exhaustive,
            )
            .unwrap();
        (device, report)
    }

    #[test]
    fn derived_metrics_are_sane() {
        let (device, report) = sample_report();
        let m = derive(&device, &report);
        assert!(m.warp_ipc > 0.0);
        assert_eq!(
            m.divergence_rate, 1.0,
            "tid<16 always diverges in a 32-warp"
        );
        assert!(m.transactions_per_access >= 1.0);
        assert!(m.arithmetic_fraction > 0.0 && m.arithmetic_fraction < 1.0);
        assert!(m.memory_fraction > 0.0 && m.memory_fraction < 1.0);
        assert!(m.millis > 0.0);
    }

    #[test]
    fn report_contains_key_lines() {
        let (device, report) = sample_report();
        let text = format_report(&device, "prof", &report);
        assert!(text.contains("==PROF== prof on GTX680"));
        assert!(text.contains("grid 2x1, block 32x1 (32 threads), 2 blocks total"));
        assert!(text.contains("occupancy"));
        assert!(text.contains("divergence 100.0%"));
        assert!(text.contains("instruction mix"));
    }
}
