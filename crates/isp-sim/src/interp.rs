#![allow(clippy::needless_range_loop)] // lane loops index several arrays at once

//! The warp-level IR interpreter: 32 lanes in lockstep, divergence
//! serialised via immediate post-dominator reconvergence, per-warp
//! instruction and memory-transaction accounting.

use crate::counters::PerfCounters;
use crate::device::DeviceSpec;
use crate::error::SimError;
use crate::launch::ParamValue;
use crate::memory::{transactions_for_warp, DeviceBuffer};
use isp_ir::kernel::{BlockId, Kernel};
use isp_ir::{BinOp, CmpOp, Instr, InstrCategory, Operand, SReg, Terminator, Ty, UnOp};

/// Warp width; fixed at 32 like every NVIDIA architecture.
pub const WARP: usize = 32;

/// Runaway guard: maximum warp-instructions one *warp* may execute before
/// the interpreter declares an infinite loop. Generated kernels are
/// loop-free and run a few thousand instructions per warp; two million is
/// a ~500x margin even for hand-written IR with loops.
pub const MAX_WARP_INSTRUCTIONS: u64 = 2_000_000;

/// Everything needed to execute one threadblock.
#[derive(Clone, Copy)]
pub struct BlockContext<'a> {
    /// The kernel to run.
    pub kernel: &'a Kernel,
    /// Immediate post-dominators of the kernel's CFG (reconvergence points).
    pub ipdom: &'a [Option<BlockId>],
    /// Device whose issue costs are charged.
    pub device: &'a DeviceSpec,
    /// Grid dimensions in blocks.
    pub grid: (u32, u32),
    /// Block dimensions in threads.
    pub block_dim: (u32, u32),
    /// This block's coordinates.
    pub block_idx: (u32, u32),
    /// Scalar parameter values (indexed by `LdParam`).
    pub params: &'a [ParamValue],
    /// Device buffers (read-only during execution; stores are journaled).
    pub buffers: &'a [DeviceBuffer],
}

/// Result of running one block.
#[derive(Debug, Clone)]
pub struct BlockRun {
    /// Counters for this block only.
    pub counters: PerfCounters,
    /// Issue cycles consumed by this block (all of its warps).
    pub cycles: u64,
    /// Journal of global stores `(buffer, element, bits)` in execution order.
    pub writes: Vec<(u32, usize, u32)>,
}

/// Where a warp's phase of execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExecOutcome {
    /// All lanes arrived at the `stop` block (inner divergent paths only).
    Arrived(u32),
    /// Every lane retired via `ret`.
    Retired,
    /// The warp reached a barrier block with the given active mask.
    Barrier(BlockId, u32),
}

/// Execute every warp of one threadblock. Warps run sequentially between
/// barriers; at each block-wide barrier all live warps must arrive (with
/// every non-retired lane) before any proceeds — the CUDA `__syncthreads`
/// contract, enforced rather than assumed.
pub fn run_block(ctx: &BlockContext<'_>) -> Result<BlockRun, SimError> {
    let threads = ctx.block_dim.0 as u64 * ctx.block_dim.1 as u64;
    let num_warps = threads.div_ceil(WARP as u64) as usize;
    let mut out = BlockRun {
        counters: PerfCounters::new(),
        cycles: 0,
        writes: Vec::new(),
    };
    let mut shared = vec![0u32; ctx.kernel.shared_elems as usize];
    // `threadIdx` of every linear thread slot, computed once per block
    // instead of a div/mod pair on every special-register read (warps are
    // linearised row-major within the block, so a 32xN block has one image
    // row per warp and a 128x1 block has four warps side by side — the
    // layout Listing 5 exploits).
    let tx = ctx.block_dim.0 as u64;
    let tids: Vec<(u32, u32)> = (0..num_warps as u64 * WARP as u64)
        .map(|linear| ((linear % tx) as u32, (linear / tx) as u32))
        .collect();
    // Blocks whose (sole) instruction is a barrier.
    let bar_blocks: Vec<bool> = ctx
        .kernel
        .blocks
        .iter()
        .map(|b| b.instrs.first().is_some_and(|i| matches!(i, Instr::Bar)))
        .collect();

    struct PerWarp {
        regs: Vec<[u32; WARP]>,
        mask: u32,
        init_mask: u32,
        pos: BlockId,
        budget: u64,
        done: bool,
    }
    let initial_mask = |w: usize| -> u32 {
        let base = w as u64 * WARP as u64;
        let mut mask = 0u32;
        for l in 0..WARP as u64 {
            if base + l < threads {
                mask |= 1 << l;
            }
        }
        mask
    };
    let mut warps: Vec<PerWarp> = (0..num_warps)
        .map(|w| {
            let m = initial_mask(w);
            PerWarp {
                regs: vec![[0u32; WARP]; ctx.kernel.num_vregs as usize],
                mask: m,
                init_mask: m,
                pos: ctx.kernel.entry(),
                budget: MAX_WARP_INSTRUCTIONS,
                done: m == 0,
            }
        })
        .collect();

    loop {
        let mut barrier: Option<BlockId> = None;
        let mut retired_this_phase = false;
        for (w, state) in warps.iter_mut().enumerate() {
            if state.done {
                continue;
            }
            let mut exec = WarpExec {
                ctx,
                warp_id: w as u32,
                tids: &tids,
                regs: &mut state.regs,
                out: &mut out,
                budget: &mut state.budget,
                shared: &mut shared,
                bar_blocks: &bar_blocks,
            };
            match exec.exec_from(state.pos, state.mask, None)? {
                ExecOutcome::Retired => {
                    state.done = true;
                    retired_this_phase = true;
                }
                ExecOutcome::Barrier(bb, mask) => {
                    if mask != state.init_mask {
                        return Err(SimError::BadLaunch(format!(
                            "barrier reached with a partial warp (mask {mask:#x} of {:#x}) in block ({},{}) — diverged threads may not sync",
                            state.init_mask, ctx.block_idx.0, ctx.block_idx.1
                        )));
                    }
                    match barrier {
                        None => barrier = Some(bb),
                        Some(prev) if prev == bb => {}
                        Some(prev) => {
                            return Err(SimError::BadLaunch(format!(
                                "warps reached different barriers ({prev} vs {bb}) — deadlock"
                            )))
                        }
                    }
                    state.pos = bb;
                    state.mask = mask;
                }
                ExecOutcome::Arrived(_) => unreachable!("no stop block at top level"),
            }
        }
        let Some(bb) = barrier else { break };
        if retired_this_phase && warps.iter().any(|w| !w.done) {
            // Tolerated by some hardware, but a deadlock by the book when a
            // whole warp exits while others sync. Keep strict.
            return Err(SimError::BadLaunch(
                "a warp retired while others wait at a barrier — deadlock".into(),
            ));
        }
        // Release the barrier: charge it once per live warp and step over
        // the barrier block (Bar + its unconditional branch).
        let next = match &ctx.kernel.block(bb).terminator {
            Terminator::Br { target } => *target,
            _ => unreachable!("validated: barrier blocks end in br"),
        };
        for state in warps.iter_mut().filter(|s| !s.done) {
            out.counters.histogram.add(InstrCategory::Bar2, 1);
            out.counters.histogram.add(InstrCategory::Bra, 1);
            out.counters.warp_instructions += 2;
            out.cycles += ctx.device.issue_cost(InstrCategory::Bar2)
                + ctx.device.issue_cost(InstrCategory::Bra);
            state.pos = next;
        }
    }
    out.counters.blocks = 1;
    Ok(out)
}

/// Mutable execution view of one warp during one phase.
struct WarpExec<'a, 'b> {
    ctx: &'a BlockContext<'a>,
    warp_id: u32,
    /// Per-block `(tidX, tidY)` table, indexed by linear thread id.
    tids: &'b [(u32, u32)],
    /// Register file: `num_vregs` slots of 32 lanes of raw bits.
    regs: &'b mut Vec<[u32; WARP]>,
    out: &'b mut BlockRun,
    budget: &'b mut u64,
    /// The block's shared-memory scratchpad (lives across warps and phases).
    shared: &'b mut Vec<u32>,
    /// Which blocks are barrier blocks.
    bar_blocks: &'b [bool],
}

impl<'a, 'b> WarpExec<'a, 'b> {
    /// `threadIdx` of a lane, looked up in the per-block table.
    fn tid(&self, lane: usize) -> (u32, u32) {
        self.tids[self.warp_id as usize * WARP + lane]
    }

    fn sreg_value(&self, sreg: SReg, lane: usize) -> i32 {
        let (tx, ty) = self.tid(lane);
        match sreg {
            SReg::TidX => tx as i32,
            SReg::TidY => ty as i32,
            SReg::CtaIdX => self.ctx.block_idx.0 as i32,
            SReg::CtaIdY => self.ctx.block_idx.1 as i32,
            SReg::NTidX => self.ctx.block_dim.0 as i32,
            SReg::NTidY => self.ctx.block_dim.1 as i32,
            SReg::NCtaIdX => self.ctx.grid.0 as i32,
            SReg::NCtaIdY => self.ctx.grid.1 as i32,
            SReg::LaneId => lane as i32,
            SReg::WarpIdX => (tx / self.ctx.device.warp_size) as i32,
        }
    }

    #[inline]
    fn read(&self, op: &Operand, lane: usize) -> u32 {
        match op {
            Operand::Reg(r) => self.regs[r.index as usize][lane],
            Operand::ImmI(v) => *v as u32,
            Operand::ImmF(v) => v.to_bits(),
        }
    }

    #[inline]
    fn read_i(&self, op: &Operand, lane: usize) -> i32 {
        self.read(op, lane) as i32
    }

    #[inline]
    fn read_f(&self, op: &Operand, lane: usize) -> f32 {
        f32::from_bits(self.read(op, lane))
    }

    fn charge(&mut self, cat: InstrCategory) -> Result<(), SimError> {
        // Budget first: a `RunawayBlock` must not record the instruction
        // that was never issued.
        if *self.budget == 0 {
            return Err(SimError::RunawayBlock {
                block: self.ctx.block_idx,
                limit: MAX_WARP_INSTRUCTIONS,
            });
        }
        *self.budget -= 1;
        self.out.counters.histogram.add(cat, 1);
        self.out.counters.warp_instructions += 1;
        self.out.cycles += self.ctx.device.issue_cost(cat);
        Ok(())
    }

    /// Execute starting at `block` with `mask` active lanes until reaching
    /// `stop` (the current reconvergence point), retiring via `ret`, or —
    /// at the top level only — entering a barrier block.
    fn exec_from(
        &mut self,
        mut block: BlockId,
        mut mask: u32,
        stop: Option<BlockId>,
    ) -> Result<ExecOutcome, SimError> {
        loop {
            if Some(block) == stop {
                return Ok(ExecOutcome::Arrived(mask));
            }
            if self.bar_blocks[block.0 as usize] {
                if stop.is_some() {
                    return Err(SimError::BadLaunch(format!(
                        "barrier {block} reached under divergence in block ({},{})",
                        self.ctx.block_idx.0, self.ctx.block_idx.1
                    )));
                }
                return Ok(ExecOutcome::Barrier(block, mask));
            }
            let bb = self.ctx.kernel.block(block);
            for instr in &bb.instrs {
                self.exec_instr(instr, mask)?;
            }
            match &bb.terminator {
                Terminator::Ret => {
                    self.charge(InstrCategory::Ret)?;
                    self.out.counters.threads_retired += mask.count_ones() as u64;
                    return Ok(if stop.is_some() {
                        ExecOutcome::Arrived(0)
                    } else {
                        ExecOutcome::Retired
                    });
                }
                Terminator::Br { target } => {
                    self.charge(InstrCategory::Bra)?;
                    block = *target;
                }
                Terminator::CondBr {
                    pred,
                    if_true,
                    if_false,
                } => {
                    self.charge(InstrCategory::Bra)?;
                    self.out.counters.conditional_branches += 1;
                    let pbits = &self.regs[pred.index as usize];
                    let mut m_true = 0u32;
                    for l in 0..WARP {
                        if mask & (1 << l) != 0 && pbits[l] != 0 {
                            m_true |= 1 << l;
                        }
                    }
                    let m_false = mask & !m_true;
                    if m_false == 0 {
                        block = *if_true;
                    } else if m_true == 0 {
                        block = *if_false;
                    } else {
                        // Divergence: serialise both sides, reconverge at
                        // the immediate post-dominator.
                        self.out.counters.divergent_branches += 1;
                        let reconv = self.ctx.ipdom[block.0 as usize];
                        let a = match self.exec_from(*if_true, m_true, reconv)? {
                            ExecOutcome::Arrived(m) => m,
                            ExecOutcome::Retired => 0,
                            ExecOutcome::Barrier(b, _) => {
                                return Err(SimError::BadLaunch(format!(
                                    "barrier {b} reached under divergence"
                                )))
                            }
                        };
                        let c = match self.exec_from(*if_false, m_false, reconv)? {
                            ExecOutcome::Arrived(m) => m,
                            ExecOutcome::Retired => 0,
                            ExecOutcome::Barrier(b, _) => {
                                return Err(SimError::BadLaunch(format!(
                                    "barrier {b} reached under divergence"
                                )))
                            }
                        };
                        match reconv {
                            Some(r) => {
                                mask = a | c;
                                if mask == 0 {
                                    return Ok(if stop.is_some() {
                                        ExecOutcome::Arrived(0)
                                    } else {
                                        ExecOutcome::Retired
                                    });
                                }
                                block = r;
                            }
                            None => {
                                debug_assert_eq!(a | c, 0);
                                return Ok(if stop.is_some() {
                                    ExecOutcome::Arrived(0)
                                } else {
                                    ExecOutcome::Retired
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    fn exec_instr(&mut self, instr: &Instr, mask: u32) -> Result<(), SimError> {
        self.charge(InstrCategory::of_instr(instr))?;
        let active = |l: usize| mask & (1 << l) != 0;
        match instr {
            Instr::Bin { op, dst, a, b } => {
                for l in 0..WARP {
                    if !active(l) {
                        continue;
                    }
                    let bits = match dst.ty {
                        Ty::S32 => {
                            let x = self.read_i(a, l);
                            let y = self.read_i(b, l);
                            eval_bin_i(*op, x, y) as u32
                        }
                        Ty::F32 => {
                            let x = self.read_f(a, l);
                            let y = self.read_f(b, l);
                            eval_bin_f(*op, x, y).to_bits()
                        }
                        Ty::Pred => {
                            let x = self.read(a, l) & 1;
                            let y = self.read(b, l) & 1;
                            match op {
                                BinOp::And => x & y,
                                BinOp::Or => x | y,
                                BinOp::Xor => x ^ y,
                                _ => unreachable!("validated IR"),
                            }
                        }
                    };
                    self.regs[dst.index as usize][l] = bits;
                }
            }
            Instr::Mad { dst, a, b, c } => {
                for l in 0..WARP {
                    if !active(l) {
                        continue;
                    }
                    let bits = match dst.ty {
                        Ty::S32 => {
                            let v = self
                                .read_i(a, l)
                                .wrapping_mul(self.read_i(b, l))
                                .wrapping_add(self.read_i(c, l));
                            v as u32
                        }
                        Ty::F32 => {
                            let v = self.read_f(a, l) * self.read_f(b, l) + self.read_f(c, l);
                            canon_f32(v).to_bits()
                        }
                        Ty::Pred => unreachable!("validated IR"),
                    };
                    self.regs[dst.index as usize][l] = bits;
                }
            }
            Instr::Un { op, dst, a } => {
                for l in 0..WARP {
                    if !active(l) {
                        continue;
                    }
                    let bits = match (op, dst.ty) {
                        (UnOp::Mov, _) => self.read(a, l),
                        (UnOp::Not, Ty::Pred) => (self.read(a, l) & 1) ^ 1,
                        // `not` is bitwise on the raw register for every
                        // non-predicate type (same bits as `eval_un_i`).
                        (UnOp::Not, _) => !self.read(a, l),
                        (_, Ty::S32) => eval_un_i(*op, self.read_i(a, l)) as u32,
                        (_, Ty::F32) => eval_un_f(*op, self.read_f(a, l)).to_bits(),
                        _ => unreachable!("validated IR"),
                    };
                    self.regs[dst.index as usize][l] = bits;
                }
            }
            Instr::Cvt { dst, a } => {
                for l in 0..WARP {
                    if !active(l) {
                        continue;
                    }
                    let bits = match dst.ty {
                        Ty::F32 => (self.read_i(a, l) as f32).to_bits(),
                        Ty::S32 => (self.read_f(a, l).round() as i32) as u32,
                        Ty::Pred => unreachable!("validated IR"),
                    };
                    self.regs[dst.index as usize][l] = bits;
                }
            }
            Instr::SetP { cmp, dst, a, b } => {
                for l in 0..WARP {
                    if !active(l) {
                        continue;
                    }
                    let t = match a.ty() {
                        Ty::F32 => eval_cmp_f(*cmp, self.read_f(a, l), self.read_f(b, l)),
                        _ => eval_cmp_i(*cmp, self.read_i(a, l), self.read_i(b, l)),
                    };
                    self.regs[dst.index as usize][l] = t as u32;
                }
            }
            Instr::SelP { dst, a, b, pred } => {
                for l in 0..WARP {
                    if !active(l) {
                        continue;
                    }
                    let take_a = self.regs[pred.index as usize][l] != 0;
                    self.regs[dst.index as usize][l] = if take_a {
                        self.read(a, l)
                    } else {
                        self.read(b, l)
                    };
                }
            }
            Instr::Sreg { dst, sreg } => {
                for l in 0..WARP {
                    if !active(l) {
                        continue;
                    }
                    self.regs[dst.index as usize][l] = self.sreg_value(*sreg, l) as u32;
                }
            }
            Instr::LdParam { dst, index } => {
                let bits = match self.ctx.params.get(*index as usize) {
                    Some(ParamValue::I32(v)) => *v as u32,
                    Some(ParamValue::F32(v)) => v.to_bits(),
                    None => {
                        return Err(SimError::BadLaunch(format!(
                            "kernel '{}' reads parameter {index} but only {} were supplied",
                            self.ctx.kernel.name,
                            self.ctx.params.len()
                        )))
                    }
                };
                for l in 0..WARP {
                    if active(l) {
                        self.regs[dst.index as usize][l] = bits;
                    }
                }
            }
            Instr::Ld { dst, buf, addr } => {
                let buffer = self.buffer(*buf)?;
                let len = buffer.len();
                let mut addrs: [Option<i64>; WARP] = [None; WARP];
                for l in 0..WARP {
                    if !active(l) {
                        continue;
                    }
                    let a = self.read_i(addr, l) as i64;
                    if a < 0 || a as usize >= len {
                        return Err(self.oob(*buf, a, len, l, false));
                    }
                    addrs[l] = Some(a);
                }
                let tx = transactions_for_warp(&addrs);
                self.out.counters.mem_transactions += tx;
                self.out.counters.loads += 1;
                self.out.cycles += tx * self.ctx.device.mem_transaction_cycles;
                let buffer = self.buffer(*buf)?;
                for l in 0..WARP {
                    if let Some(a) = addrs[l] {
                        self.regs[dst.index as usize][l] = buffer.load_bits(a as usize);
                    }
                }
            }
            Instr::Tex { dst, buf, x, y } => {
                let buffer = self.buffer(*buf)?;
                let desc = *buffer.texture().ok_or_else(|| {
                    SimError::BadLaunch(format!(
                        "kernel '{}' fetches buffer {buf} as a texture, but no texture is bound",
                        self.ctx.kernel.name
                    ))
                })?;
                let mut addrs: [Option<i64>; WARP] = [None; WARP];
                let mut values: [u32; WARP] = [0; WARP];
                for l in 0..WARP {
                    if !active(l) {
                        continue;
                    }
                    let cx = self.read_i(x, l) as i64;
                    let cy = self.read_i(y, l) as i64;
                    // Hardware address-mode resolution: never out of bounds.
                    let rx = desc.mode.resolve(cx, desc.width);
                    let ry = desc.mode.resolve(cy, desc.height);
                    match (rx, ry) {
                        (Some(rx), Some(ry)) => {
                            let a = (ry * desc.width + rx) as i64;
                            addrs[l] = Some(a);
                            values[l] = buffer.load_bits(a as usize);
                        }
                        _ => {
                            values[l] = desc.mode.border_value().to_bits();
                        }
                    }
                }
                // The texture cache services fetches in the same 128-byte
                // granules as L1 (border-value fetches cost no transaction).
                let tx = transactions_for_warp(&addrs);
                self.out.counters.mem_transactions += tx;
                self.out.counters.tex_accesses += 1;
                self.out.cycles += tx * self.ctx.device.mem_transaction_cycles;
                for l in 0..WARP {
                    if active(l) {
                        self.regs[dst.index as usize][l] = values[l];
                    }
                }
            }
            Instr::Lds { dst, addr } => {
                let len = self.shared.len();
                for l in 0..WARP {
                    if !active(l) {
                        continue;
                    }
                    let a = self.read_i(addr, l) as i64;
                    if a < 0 || a as usize >= len {
                        return Err(SimError::BadLaunch(format!(
                            "shared load out of bounds: [{a}] of {len} in block ({},{})",
                            self.ctx.block_idx.0, self.ctx.block_idx.1
                        )));
                    }
                    self.regs[dst.index as usize][l] = self.shared[a as usize];
                }
            }
            Instr::Sts { addr, val } => {
                let len = self.shared.len();
                for l in 0..WARP {
                    if !active(l) {
                        continue;
                    }
                    let a = self.read_i(addr, l) as i64;
                    if a < 0 || a as usize >= len {
                        return Err(SimError::BadLaunch(format!(
                            "shared store out of bounds: [{a}] of {len} in block ({},{})",
                            self.ctx.block_idx.0, self.ctx.block_idx.1
                        )));
                    }
                    let bits = self.read(val, l);
                    self.shared[a as usize] = bits;
                }
            }
            Instr::Bar => {
                unreachable!("barrier blocks are intercepted before execution")
            }
            Instr::St { buf, addr, val } => {
                let len = self.buffer(*buf)?.len();
                let mut addrs: [Option<i64>; WARP] = [None; WARP];
                for l in 0..WARP {
                    if !active(l) {
                        continue;
                    }
                    let a = self.read_i(addr, l) as i64;
                    if a < 0 || a as usize >= len {
                        return Err(self.oob(*buf, a, len, l, true));
                    }
                    addrs[l] = Some(a);
                }
                let tx = transactions_for_warp(&addrs);
                self.out.counters.mem_transactions += tx;
                self.out.counters.stores += 1;
                self.out.cycles += tx * self.ctx.device.mem_transaction_cycles;
                for l in 0..WARP {
                    if let Some(a) = addrs[l] {
                        let bits = self.read(val, l);
                        self.out.writes.push((*buf, a as usize, bits));
                    }
                }
            }
        }
        Ok(())
    }

    fn buffer(&self, buf: u32) -> Result<&'a DeviceBuffer, SimError> {
        self.ctx
            .buffers
            .get(buf as usize)
            .ok_or_else(|| SimError::BadLaunch(format!("missing buffer {buf}")))
    }

    fn oob(&self, buf: u32, addr: i64, len: usize, lane: usize, is_store: bool) -> SimError {
        SimError::OutOfBounds {
            buf,
            addr,
            len,
            thread: self.global_thread(lane),
            block: self.ctx.block_idx,
            is_store,
        }
    }

    fn global_thread(&self, lane: usize) -> (u32, u32) {
        let (tx, ty) = self.tid(lane);
        (
            self.ctx.block_idx.0 * self.ctx.block_dim.0 + tx,
            self.ctx.block_idx.1 * self.ctx.block_dim.1 + ty,
        )
    }
}

/// S32 binary-op semantics — the single source of truth the optimiser's
/// constant folder must be bit-identical to (`tests/fold_equivalence.rs`).
pub fn eval_bin_i(op: BinOp, x: i32, y: i32) -> i32 {
    match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        // Division by zero is defined as 0 (see the folding pass, which must
        // agree with the interpreter on every operation).
        BinOp::Div => {
            if y == 0 {
                0
            } else {
                x.wrapping_div(y)
            }
        }
        BinOp::Rem => {
            if y == 0 {
                0
            } else {
                x.wrapping_rem(y)
            }
        }
        BinOp::Min => x.min(y),
        BinOp::Max => x.max(y),
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Shl => x.wrapping_shl(y as u32 & 31),
        BinOp::Shr => x.wrapping_shr(y as u32 & 31),
    }
}

/// F32 binary-op semantics (Rust scalar float ops; `min`/`max` are
/// `f32::min`/`f32::max`, which propagate the non-NaN operand).
pub fn eval_bin_f(op: BinOp, x: f32, y: f32) -> f32 {
    canon_f32(match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        BinOp::Rem => x % y,
        BinOp::Min => x.min(y),
        BinOp::Max => x.max(y),
        _ => unreachable!("validated IR: logic/shift are integer-only"),
    })
}

/// Canonicalise an arithmetic result: any NaN becomes the canonical quiet
/// NaN `0x7fffffff`, exactly as PTX specifies for floating-point
/// instruction results. This is what makes NaN handling *deterministic*
/// across every execution path — host scalar code, the AVX2 row kernels,
/// and constant folding all quieten NaNs with platform- and
/// operand-order-defined payloads, so without a canonical form the same
/// two-NaN `add.f32` could yield different payload bits depending on which
/// engine (or which compilation of the same source) executed it.
/// Bit-preserving operations (`mov`, `neg`, `abs`, loads, stores, `selp`)
/// keep payloads intact, as on real hardware.
#[inline(always)]
pub fn canon_f32(v: f32) -> f32 {
    if v.is_nan() {
        f32::from_bits(0x7fff_ffff)
    } else {
        v
    }
}

/// S32 comparison semantics.
pub fn eval_cmp_i(cmp: CmpOp, x: i32, y: i32) -> bool {
    match cmp {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

/// F32 comparison semantics: IEEE unordered comparisons — every comparison
/// with a NaN operand is false except `Ne`, which is true.
pub fn eval_cmp_f(cmp: CmpOp, x: f32, y: f32) -> bool {
    match cmp {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

/// S32 unary-op semantics, mirroring the `Instr::Un` execution arm exactly
/// (raw register bits in and out). `Mov` is the identity; `Not` on S32 is
/// bitwise; `Neg`/`Abs` wrap (`i32::MIN.wrapping_abs() == i32::MIN`).
pub fn eval_un_i(op: UnOp, x: i32) -> i32 {
    match op {
        UnOp::Mov => x,
        UnOp::Not => !x,
        UnOp::Neg => x.wrapping_neg(),
        UnOp::Abs => x.wrapping_abs(),
        _ => unreachable!("validated IR: transcendental ops are f32-only"),
    }
}

/// F32 unary-op semantics, mirroring the `Instr::Un` execution arm exactly.
pub fn eval_un_f(op: UnOp, x: f32) -> f32 {
    match op {
        // Bit-preserving (sign-bit manipulation on hardware): payloads kept.
        UnOp::Mov => x,
        UnOp::Neg => -x,
        UnOp::Abs => x.abs(),
        // Arithmetic: results canonicalised like every other float op.
        UnOp::Exp => canon_f32(x.exp()),
        UnOp::Log => canon_f32(x.ln()),
        UnOp::Sqrt => canon_f32(x.sqrt()),
        UnOp::Rsqrt => canon_f32(1.0 / x.sqrt()),
        UnOp::Floor => canon_f32(x.floor()),
        UnOp::Not => unreachable!("validated IR: not is integer/predicate-only"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isp_ir::cfg::Cfg;
    use isp_ir::IrBuilder;

    fn run(
        kernel: &Kernel,
        grid: (u32, u32),
        block_dim: (u32, u32),
        block_idx: (u32, u32),
        params: &[ParamValue],
        buffers: &[DeviceBuffer],
    ) -> Result<BlockRun, SimError> {
        let device = DeviceSpec::gtx680();
        let ipdom = Cfg::new(kernel).ipostdom();
        run_block(&BlockContext {
            kernel,
            ipdom: &ipdom,
            device: &device,
            grid,
            block_dim,
            block_idx,
            params,
            buffers,
        })
    }

    fn apply_writes(buffers: &mut [DeviceBuffer], run: &BlockRun) {
        for &(buf, addr, bits) in &run.writes {
            buffers[buf as usize].store_bits(addr, bits);
        }
    }

    /// out[i] = in[i] * 2 for a 32x1 block.
    #[test]
    fn scale_kernel_computes_and_coalesces() {
        let mut b = IrBuilder::new("scale", 2);
        let x = b.sreg(SReg::TidX);
        let v = b.ld(Ty::F32, 0, x);
        let d = b.bin(BinOp::Mul, Ty::F32, v, 2.0f32);
        b.st(1, x, d);
        b.ret();
        let k = b.finish();
        let input: Vec<f32> = (0..32).map(|i| i as f32).collect();
        let mut buffers = vec![DeviceBuffer::from_f32(&input), DeviceBuffer::zeroed(32)];
        let r = run(&k, (1, 1), (32, 1), (0, 0), &[], &buffers).unwrap();
        apply_writes(&mut buffers, &r);
        let out = buffers[1].to_f32();
        for i in 0..32 {
            assert_eq!(out[i], 2.0 * i as f32);
        }
        // One fully coalesced load + one store = 2 transactions.
        assert_eq!(r.counters.mem_transactions, 2);
        assert_eq!(r.counters.loads, 1);
        assert_eq!(r.counters.stores, 1);
        assert_eq!(r.counters.threads_retired, 32);
        assert_eq!(r.counters.divergent_branches, 0);
    }

    #[test]
    fn divergent_branch_serialises_and_reconverges() {
        // v = (tid < 16) ? computed-in-then : computed-in-else, where each
        // side does distinct arithmetic; after the merge every lane adds 10
        // and stores — verifying both sides ran and the warp reconverged.
        let mut b = IrBuilder::new("diverge", 1);
        let t = b.create_block("then");
        let e = b.create_block("else");
        let m = b.create_block("merge");
        let x = b.sreg(SReg::TidX);
        let p = b.setp(CmpOp::Lt, x, 16i32);
        // Both sides write disjoint halves of the buffer (registers cannot
        // merge across SSA branches without phis, so use memory).
        b.cond_br(p, t, e);
        b.switch_to(t);
        let one = b.bin(BinOp::Add, Ty::F32, 0.5f32, 0.5f32); // 1.0
        b.st(0, x, one);
        b.br(m);
        b.switch_to(e);
        let two = b.bin(BinOp::Add, Ty::F32, 1.0f32, 1.0f32); // 2.0
        b.st(0, x, two);
        b.br(m);
        b.switch_to(m);
        let xf = b.cvt(Ty::F32, x);
        let off = b.bin(BinOp::Add, Ty::S32, x, 32i32);
        let w = b.bin(BinOp::Add, Ty::F32, xf, 10.0f32);
        b.st(0, off, w);
        b.ret();
        let k = b.finish();
        let mut buffers = vec![DeviceBuffer::zeroed(64)];
        let r = run(&k, (1, 1), (32, 1), (0, 0), &[], &buffers).unwrap();
        apply_writes(&mut buffers, &r);
        let out = buffers[0].to_f32();
        for i in 0..32 {
            let expect = if i < 16 { 1.0 } else { 2.0 };
            assert_eq!(out[i], expect, "lane {i} (divergent halves)");
            assert_eq!(
                out[i + 32],
                i as f32 + 10.0,
                "lane {i} (after reconvergence)"
            );
        }
        assert_eq!(r.counters.divergent_branches, 1);
        assert_eq!(r.counters.threads_retired, 32);
    }

    #[test]
    fn uniform_branch_does_not_diverge() {
        let mut b = IrBuilder::new("uniform", 1);
        let t = b.create_block("then");
        let e = b.create_block("else");
        let x = b.sreg(SReg::CtaIdX); // uniform across the warp
        let p = b.setp(CmpOp::Lt, x, 1i32);
        b.cond_br(p, t, e);
        b.switch_to(t);
        let tx = b.sreg(SReg::TidX);
        b.st(0, tx, 1.0f32);
        b.ret();
        b.switch_to(e);
        let tx2 = b.sreg(SReg::TidX);
        b.st(0, tx2, 2.0f32);
        b.ret();
        let k = b.finish();
        let buffers = vec![DeviceBuffer::zeroed(32)];
        let r = run(&k, (2, 1), (32, 1), (0, 0), &[], &buffers).unwrap();
        assert_eq!(r.counters.divergent_branches, 0);
        assert_eq!(r.counters.conditional_branches, 1);
    }

    #[test]
    fn out_of_bounds_load_is_reported() {
        let mut b = IrBuilder::new("oob", 1);
        let x = b.sreg(SReg::TidX);
        let bad = b.bin(BinOp::Sub, Ty::S32, x, 5i32); // negative for lanes < 5
        let v = b.ld(Ty::F32, 0, bad);
        b.st(0, x, v);
        b.ret();
        let k = b.finish();
        let buffers = vec![DeviceBuffer::zeroed(32)];
        let err = run(&k, (1, 1), (32, 1), (0, 0), &[], &buffers).unwrap_err();
        match err {
            SimError::OutOfBounds {
                buf: 0,
                addr: -5,
                len: 32,
                is_store: false,
                ..
            } => {}
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn partial_warp_masks_trailing_lanes() {
        // 24x1 block: one warp with 8 inactive lanes; they must not store.
        let mut b = IrBuilder::new("partial", 1);
        let x = b.sreg(SReg::TidX);
        b.st(0, x, 7.0f32);
        b.ret();
        let k = b.finish();
        let mut buffers = vec![DeviceBuffer::zeroed(32)];
        let r = run(&k, (1, 1), (24, 1), (0, 0), &[], &buffers).unwrap();
        apply_writes(&mut buffers, &r);
        let out = buffers[0].to_f32();
        assert!(out[..24].iter().all(|&v| v == 7.0));
        assert!(out[24..].iter().all(|&v| v == 0.0));
        assert_eq!(r.counters.threads_retired, 24);
    }

    #[test]
    fn two_dimensional_tids_and_warp_layout() {
        // 16x4 block = 2 warps; warp 0 covers rows 0-1, warp 1 rows 2-3.
        let mut b = IrBuilder::new("tid2d", 1);
        let px = b.param("width", Ty::S32);
        let x = b.sreg(SReg::TidX);
        let y = b.sreg(SReg::TidY);
        let w = b.ld_param(px);
        let addr = b.mad(Ty::S32, y, w, x);
        let yf = b.cvt(Ty::F32, y);
        b.st(0, addr, yf);
        b.ret();
        let k = b.finish();
        let mut buffers = vec![DeviceBuffer::zeroed(64)];
        let r = run(
            &k,
            (1, 1),
            (16, 4),
            (0, 0),
            &[ParamValue::I32(16)],
            &buffers,
        )
        .unwrap();
        apply_writes(&mut buffers, &r);
        let out = buffers[0].to_f32();
        for y in 0..4 {
            for x in 0..16 {
                assert_eq!(out[y * 16 + x], y as f32, "({x},{y})");
            }
        }
        assert_eq!(r.counters.threads_retired, 64);
    }

    #[test]
    fn predicated_wrap_implements_repeat_semantics() {
        // The loop-free Repeat lowering the DSL emits: one conditional wrap
        // per side, valid under the host-checked precondition radius < size.
        //   r = tid - 3; if (r < 0) r += 8; if (r >= 8) r -= 8  (size 8)
        let mut b = IrBuilder::new("wrap", 1);
        let x = b.sreg(SReg::TidX);
        let r0 = b.bin(BinOp::Sub, Ty::S32, x, 3i32);
        let p_neg = b.setp(CmpOp::Lt, r0, 0i32);
        let wrapped = b.bin(BinOp::Add, Ty::S32, r0, 8i32);
        let r1 = b.selp(Ty::S32, wrapped, r0, p_neg);
        let p_hi = b.setp(CmpOp::Ge, r1, 8i32);
        let unwrapped = b.bin(BinOp::Sub, Ty::S32, r1, 8i32);
        let r2 = b.selp(Ty::S32, unwrapped, r1, p_hi);
        let f = b.cvt(Ty::F32, r2);
        b.st(0, x, f);
        b.ret();
        let k = b.finish();
        let mut buffers = vec![DeviceBuffer::zeroed(16)];
        let r = run(&k, (1, 1), (16, 1), (0, 0), &[], &buffers).unwrap();
        apply_writes(&mut buffers, &r);
        let out = buffers[0].to_f32();
        for i in 0..16i64 {
            assert_eq!(out[i as usize], (i - 3).rem_euclid(8) as f32, "lane {i}");
        }
    }

    #[test]
    fn missing_param_is_bad_launch() {
        let mut b = IrBuilder::new("noparam", 1);
        let p = b.param("width", Ty::S32);
        let w = b.ld_param(p);
        b.st(0, w, 0.0f32);
        b.ret();
        let k = b.finish();
        let buffers = vec![DeviceBuffer::zeroed(32)];
        let err = run(&k, (1, 1), (32, 1), (0, 0), &[], &buffers).unwrap_err();
        assert!(matches!(err, SimError::BadLaunch(_)));
    }

    #[test]
    fn cycles_track_issue_costs() {
        let mut b = IrBuilder::new("cost", 1);
        let x = b.sreg(SReg::TidX); // mov: 1 cycle
        let f = b.cvt(Ty::F32, x); // cvt: 2 on Kepler
        let e = b.un(UnOp::Exp, Ty::F32, f); // sfu: 4
        b.st(0, x, e); // st: 2 issue + 1 transaction * mem_transaction_cycles
        b.ret(); // 1
        let k = b.finish();
        let buffers = vec![DeviceBuffer::zeroed(32)];
        let r = run(&k, (1, 1), (32, 1), (0, 0), &[], &buffers).unwrap();
        let mem = DeviceSpec::gtx680().mem_transaction_cycles;
        assert_eq!(r.cycles, 1 + 2 + 4 + 2 + mem + 1);
    }
}

#[cfg(test)]
mod guard_tests {
    use super::*;
    use isp_ir::cfg::Cfg;
    use isp_ir::{CmpOp, IrBuilder, SReg};

    #[test]
    fn infinite_loop_hits_runaway_guard() {
        // while (tid >= 0) {} — never terminates; the guard must fire
        // rather than hang.
        let mut b = IrBuilder::new("spin", 1);
        let header = b.create_block("header");
        b.br(header);
        b.switch_to(header);
        let x = b.sreg(SReg::TidX);
        let p = b.setp(CmpOp::Ge, x, 0i32); // always true
        let exit = b.create_block("exit");
        b.cond_br(p, header, exit);
        b.switch_to(exit);
        b.ret();
        let k = b.finish();
        let device = crate::device::DeviceSpec::gtx680();
        let ipdom = Cfg::new(&k).ipostdom();
        let buffers = vec![crate::memory::DeviceBuffer::zeroed(32)];
        let err = run_block(&BlockContext {
            kernel: &k,
            ipdom: &ipdom,
            device: &device,
            grid: (1, 1),
            block_dim: (32, 1),
            block_idx: (0, 0),
            params: &[],
            buffers: &buffers,
        })
        .unwrap_err();
        assert!(matches!(err, SimError::RunawayBlock { .. }), "{err}");
    }

    /// A counting loop sized to consume exactly the runaway budget. The
    /// budget check precedes the accounting, so a kernel that needs exactly
    /// `MAX_WARP_INSTRUCTIONS` charges succeeds with the counters pinned at
    /// the limit, and one more instruction tips it into `RunawayBlock`
    /// without recording the instruction that was never issued.
    #[test]
    fn counters_are_exact_at_the_runaway_limit() {
        use isp_ir::kernel::{BasicBlock, Kernel};
        use isp_ir::{BinOp, Instr, Operand, Terminator, Ty, UnOp, VReg};

        // entry:  r0 = 0                      (mov + br      = 2 charges)
        // header: r0 += 1; p = r0 < n         (3 charges per iteration,
        //         loop while p                 executed n times, uniform)
        // exit:   two filler movs; ret        (3 charges)
        // Total: 3n + 5.
        let counting_kernel = |n: i32| -> Kernel {
            let r0 = VReg::new(0, Ty::S32);
            let p = VReg::new(1, Ty::Pred);
            let fill = |i| Instr::Un {
                op: UnOp::Mov,
                dst: VReg::new(i, Ty::S32),
                a: Operand::ImmI(0),
            };
            Kernel {
                name: "count".into(),
                num_buffers: 0,
                params: vec![],
                blocks: vec![
                    BasicBlock {
                        label: "entry".into(),
                        instrs: vec![Instr::Un {
                            op: UnOp::Mov,
                            dst: r0,
                            a: Operand::ImmI(0),
                        }],
                        terminator: Terminator::Br { target: BlockId(1) },
                    },
                    BasicBlock {
                        label: "header".into(),
                        instrs: vec![
                            Instr::Bin {
                                op: BinOp::Add,
                                dst: r0,
                                a: Operand::Reg(r0),
                                b: Operand::ImmI(1),
                            },
                            Instr::SetP {
                                cmp: CmpOp::Lt,
                                dst: p,
                                a: Operand::Reg(r0),
                                b: Operand::ImmI(n),
                            },
                        ],
                        terminator: Terminator::CondBr {
                            pred: p,
                            if_true: BlockId(1),
                            if_false: BlockId(2),
                        },
                    },
                    BasicBlock {
                        label: "exit".into(),
                        instrs: vec![fill(2), fill(3)],
                        terminator: Terminator::Ret,
                    },
                ],
                num_vregs: 4,
                shared_elems: 0,
            }
        };
        let run = |n: i32| {
            let k = counting_kernel(n);
            let device = crate::device::DeviceSpec::gtx680();
            let ipdom = Cfg::new(&k).ipostdom();
            run_block(&BlockContext {
                kernel: &k,
                ipdom: &ipdom,
                device: &device,
                grid: (1, 1),
                block_dim: (32, 1),
                block_idx: (0, 0),
                params: &[],
                buffers: &[],
            })
        };
        // 3n + 5 == MAX_WARP_INSTRUCTIONS.
        let n_exact = ((MAX_WARP_INSTRUCTIONS - 5) / 3) as i32;
        assert_eq!(3 * n_exact as u64 + 5, MAX_WARP_INSTRUCTIONS);
        let r = run(n_exact).expect("exact-budget kernel must complete");
        assert_eq!(r.counters.warp_instructions, MAX_WARP_INSTRUCTIONS);
        assert_eq!(r.counters.histogram.total(), MAX_WARP_INSTRUCTIONS);
        assert_eq!(r.counters.divergent_branches, 0);
        assert_eq!(r.counters.threads_retired, 32);
        let err = run(n_exact + 1).unwrap_err();
        assert!(matches!(err, SimError::RunawayBlock { .. }), "{err}");
    }

    #[test]
    fn texture_fetch_without_binding_errors() {
        let mut b = IrBuilder::new("texless", 2);
        let x = b.sreg(SReg::TidX);
        let v = b.tex(0, x, x);
        b.st(1, x, v);
        b.ret();
        let k = b.finish();
        let device = crate::device::DeviceSpec::gtx680();
        let ipdom = Cfg::new(&k).ipostdom();
        let buffers = vec![
            crate::memory::DeviceBuffer::zeroed(64), // no texture binding
            crate::memory::DeviceBuffer::zeroed(64),
        ];
        let err = run_block(&BlockContext {
            kernel: &k,
            ipdom: &ipdom,
            device: &device,
            grid: (1, 1),
            block_dim: (32, 1),
            block_idx: (0, 0),
            params: &[],
            buffers: &buffers,
        })
        .unwrap_err();
        assert!(err.to_string().contains("no texture is bound"), "{err}");
    }
}

#[cfg(test)]
mod barrier_tests {
    use super::*;
    use isp_ir::cfg::Cfg;
    use isp_ir::{BinOp, IrBuilder, SReg};

    fn run_one(
        k: &Kernel,
        block_dim: (u32, u32),
        buffers: &[DeviceBuffer],
    ) -> Result<BlockRun, SimError> {
        let device = DeviceSpec::gtx680();
        let ipdom = Cfg::new(k).ipostdom();
        run_block(&BlockContext {
            kernel: k,
            ipdom: &ipdom,
            device: &device,
            grid: (1, 1),
            block_dim,
            block_idx: (0, 0),
            params: &[],
            buffers,
        })
    }

    /// Cooperative reverse across warps: thread i stores `i` to shared[i],
    /// synchronises, then reads shared[N-1-i] — a value written by a thread
    /// in the OTHER warp. Only correct if the barrier really phases
    /// execution and shared memory is block-visible.
    #[test]
    fn barrier_makes_cross_warp_shared_writes_visible() {
        const N: i32 = 64; // two warps
        let mut b = IrBuilder::new("reverse", 1);
        b.set_shared_elems(N as u32);
        let bar = b.create_block("bar");
        let after = b.create_block("after");
        let tx = b.sreg(SReg::TidX);
        let txf = b.cvt(Ty::F32, tx);
        b.sts(tx, txf);
        b.br(bar);
        b.switch_to(bar);
        b.bar();
        b.br(after);
        b.switch_to(after);
        let nm1 = b.mov(Ty::S32, N - 1);
        let rev = b.bin(BinOp::Sub, Ty::S32, nm1, tx);
        let v = b.lds(rev);
        b.st(0, tx, v);
        b.ret();
        let k = b.finish();
        assert!(
            isp_ir::validate::validate(&k).is_empty(),
            "{:?}",
            isp_ir::validate::validate(&k)
        );

        let mut buffers = vec![DeviceBuffer::zeroed(N as usize)];
        let r = run_one(&k, (N as u32, 1), &buffers).unwrap();
        for &(buf, addr, bits) in &r.writes {
            buffers[buf as usize].store_bits(addr, bits);
        }
        let out = buffers[0].to_f32();
        for i in 0..N as usize {
            assert_eq!(out[i], (N as usize - 1 - i) as f32, "thread {i}");
        }
        // Barrier charged once per warp.
        assert_eq!(r.counters.histogram.get(InstrCategory::Bar2), 2);
        assert_eq!(
            r.counters.histogram.get(InstrCategory::Shared),
            4,
            "2 sts + 2 lds warps"
        );
    }

    #[test]
    fn shared_out_of_bounds_is_reported() {
        let mut b = IrBuilder::new("oob_shared", 1);
        b.set_shared_elems(16);
        let tx = b.sreg(SReg::TidX); // 0..31 overruns the 16-element array
        let f = b.cvt(Ty::F32, tx);
        b.sts(tx, f);
        b.st(0, tx, f);
        b.ret();
        let k = b.finish();
        let buffers = vec![DeviceBuffer::zeroed(32)];
        let err = run_one(&k, (32, 1), &buffers).unwrap_err();
        assert!(
            err.to_string().contains("shared store out of bounds"),
            "{err}"
        );
    }

    #[test]
    fn divergent_barrier_is_rejected() {
        // if (tid < 16) { bar; } else { } — divergence into a barrier.
        let mut b = IrBuilder::new("divbar", 1);
        b.set_shared_elems(4);
        let bar = b.create_block("bar");
        let merge = b.create_block("merge");
        let tx = b.sreg(SReg::TidX);
        let p = b.setp(isp_ir::CmpOp::Lt, tx, 16i32);
        b.cond_br(p, bar, merge);
        b.switch_to(bar);
        b.bar();
        b.br(merge);
        b.switch_to(merge);
        b.st(0, tx, 1.0f32);
        b.ret();
        let k = b.finish();
        let buffers = vec![DeviceBuffer::zeroed(32)];
        let err = run_one(&k, (32, 1), &buffers).unwrap_err();
        assert!(err.to_string().contains("divergence"), "{err}");
    }
}
