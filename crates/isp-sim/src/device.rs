//! Device descriptors for the two GPU classes the paper evaluates.
//!
//! The numbers are the published architectural parameters of the GTX680
//! (Kepler GK104, compute capability 3.0) and RTX2080 (Turing TU104, compute
//! capability 7.5). The single parameter that drives the paper's
//! Kepler-vs-Turing divergence is visible here: at full thread occupancy a
//! Kepler SM affords `65536 regs / 2048 threads = 32` registers per thread,
//! while a Turing SM affords `65536 / 1024 = 64` — so the ISP fat kernel's
//! extra registers cost occupancy on Kepler but not on Turing (§VI-A.2).

use isp_ir::InstrCategory;

/// Average 128-byte transactions per warp memory instruction for row-major
/// stencil accesses from a warp-wide (32-lane-row) block: mostly coalesced,
/// slightly above 1 due to misaligned window offsets.
pub const AVG_TRANSACTIONS_PER_ACCESS: f64 = 1.25;

/// Expected 128-byte transactions per warp memory access for a `tx`-wide
/// block: a warp linearised over a block narrower than 32 lanes spans
/// `32 / tx` image rows, each hitting its own memory segment — the
/// quantitative form of the paper's remark that "the block layout in GPU
/// applications is mostly wide in x-dimension, which uses memory more
/// efficiently" (§V-B).
pub fn transactions_per_access_for_block(tx: u32) -> f64 {
    let rows_per_warp = (32.0 / tx.max(1) as f64).max(1.0);
    rows_per_warp * AVG_TRANSACTIONS_PER_ACCESS
}

/// GPU micro-architecture family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuArch {
    /// Kepler (GTX680 class, CC 3.0).
    Kepler,
    /// Turing (RTX2080 class, CC 7.5).
    Turing,
}

impl std::fmt::Display for GpuArch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuArch::Kepler => f.write_str("Kepler"),
            GpuArch::Turing => f.write_str("Turing"),
        }
    }
}

/// Architectural parameters of a simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name used in bench output ("GTX680", "RTX2080").
    pub name: &'static str,
    /// Architecture family.
    pub arch: GpuArch,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Threads per warp (32 on every NVIDIA architecture).
    pub warp_size: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Hard per-thread register cap (63 on Kepler, 255 on Turing).
    pub max_regs_per_thread: u32,
    /// Register allocation granularity (registers are allocated to blocks in
    /// chunks of this many).
    pub reg_alloc_granularity: u32,
    /// Core clock in GHz (converts cycles to milliseconds).
    pub clock_ghz: f64,
    /// Fixed kernel-launch overhead in cycles (driver + PCIe + dispatch).
    pub launch_overhead_cycles: u64,
    /// Extra cycles per 128-byte memory transaction beyond the issue slot
    /// (effective cached-stencil cost: local operators have high L1/L2/tex
    /// locality, so the steady-state cost per transaction is far below raw
    /// DRAM latency).
    pub mem_transaction_cycles: u64,
    /// Instruction-fetch penalty (cycles) an SM pays when the next block it
    /// runs executes a different specialised region than the previous one —
    /// the fat kernel's i-cache locality cost. Scaled by the region's static
    /// instruction footprint / 100.
    pub icache_switch_cycles_per_100_instrs: u64,
    /// Occupancy at which the SM reaches full issue throughput; below this
    /// latency hiding degrades linearly (the paper's Eq. 10 models the same
    /// effect as "more rounds").
    pub saturation_occupancy: f64,
    /// Shared memory per SM in bytes (a third occupancy limiter, relevant
    /// for tiled kernels).
    pub shared_mem_per_sm: u32,
}

impl DeviceSpec {
    /// Kepler-class device modelled after the Nvidia GTX680 (GK104).
    pub fn gtx680() -> Self {
        DeviceSpec {
            name: "GTX680",
            arch: GpuArch::Kepler,
            num_sms: 8,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 16,
            regs_per_sm: 65536,
            max_regs_per_thread: 63,
            reg_alloc_granularity: 256,
            clock_ghz: 1.006,
            launch_overhead_cycles: 8_000,
            mem_transaction_cycles: 6,
            icache_switch_cycles_per_100_instrs: 40,
            saturation_occupancy: 1.0,
            shared_mem_per_sm: 48 * 1024,
        }
    }

    /// Turing-class device modelled after the Nvidia RTX2080 (TU104).
    pub fn rtx2080() -> Self {
        DeviceSpec {
            name: "RTX2080",
            arch: GpuArch::Turing,
            num_sms: 46,
            warp_size: 32,
            max_threads_per_sm: 1024,
            max_warps_per_sm: 32,
            max_blocks_per_sm: 16,
            regs_per_sm: 65536,
            max_regs_per_thread: 255,
            reg_alloc_granularity: 256,
            clock_ghz: 1.710,
            launch_overhead_cycles: 12_000,
            mem_transaction_cycles: 4,
            icache_switch_cycles_per_100_instrs: 60,
            saturation_occupancy: 1.0,
            shared_mem_per_sm: 64 * 1024,
        }
    }

    /// Both evaluation devices, in the paper's order.
    pub fn all() -> Vec<DeviceSpec> {
        vec![DeviceSpec::gtx680(), DeviceSpec::rtx2080()]
    }

    /// Issue cost (cycles per warp-instruction) of one instruction category.
    /// Relative weights follow published per-architecture throughput tables:
    /// simple ALU ops are single-slot, integer multiplies and type
    /// conversions cost more on Kepler, transcendentals go to the SFU, and
    /// division is expensive everywhere.
    pub fn issue_cost(&self, cat: InstrCategory) -> u64 {
        use InstrCategory::*;
        match (self.arch, cat) {
            (_, Add)
            | (_, Sub)
            | (_, Min)
            | (_, Max)
            | (_, Logic)
            | (_, Shift)
            | (_, Abs)
            | (_, Neg)
            | (_, Mov)
            | (_, Setp)
            | (_, Selp) => 1,
            (GpuArch::Kepler, Mul) | (GpuArch::Kepler, Mad) => 2,
            (GpuArch::Turing, Mul) | (GpuArch::Turing, Mad) => 1,
            (GpuArch::Kepler, Cvt) => 2,
            (GpuArch::Turing, Cvt) => 1,
            (_, Div) | (_, Rem) => 20,
            (_, Sfu) => 4,
            (_, Bra) | (_, Ret) => 1,
            // Shared memory is on-chip: issue slot only, no transactions
            // (bank conflicts are not modelled).
            (_, Shared) => 1,
            // A barrier costs a couple of scheduler cycles once all warps
            // arrive; the waiting itself is covered by the occupancy model.
            (_, Bar2) => 2,
            // Issue slot only; transaction cost is added separately.
            (_, Ld) => 2,
            // Texture fetches go through the texture pipeline: hardware
            // border resolution is free, but per-fetch throughput is lower
            // than an L1 global load.
            (_, Tex) => 4,
            (_, St) => 2,
        }
    }

    /// Convert a cycle count to milliseconds at this device's clock.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1.0e6)
    }

    /// Issue-cost-weighted cost of a static instruction histogram, including
    /// the expected memory-transaction cost of its loads/stores. This is the
    /// per-thread cost estimate the analytic model feeds into `R_reduced`:
    /// the paper measures "at PTX level to obtain a more accurate estimation
    /// than at CUDA source code" — weighting by per-category issue cost is
    /// the cycle-accurate version of the same idea.
    pub fn weighted_cost(&self, hist: &isp_ir::InstrHistogram) -> f64 {
        self.weighted_cost_with(hist, AVG_TRANSACTIONS_PER_ACCESS)
    }

    /// [`DeviceSpec::weighted_cost`] with an explicit expected number of
    /// 128-byte transactions per warp memory access. Narrow blocks raise it
    /// (a warp then spans several image rows, each its own segment) — see
    /// [`transactions_per_access_for_block`].
    pub fn weighted_cost_with(&self, hist: &isp_ir::InstrHistogram, tx_per_access: f64) -> f64 {
        let mut cost = 0.0;
        for (cat, n) in hist.iter() {
            cost += n as f64 * self.issue_cost(cat) as f64;
            if matches!(
                cat,
                InstrCategory::Ld | InstrCategory::Tex | InstrCategory::St
            ) {
                cost += n as f64 * self.mem_transaction_cycles as f64 * tx_per_access;
            }
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kepler_vs_turing_register_headroom() {
        let k = DeviceSpec::gtx680();
        let t = DeviceSpec::rtx2080();
        // The paper's architectural pivot: registers per thread at full
        // thread occupancy.
        assert_eq!(k.regs_per_sm / k.max_threads_per_sm, 32);
        assert_eq!(t.regs_per_sm / t.max_threads_per_sm, 64);
        assert!(t.max_regs_per_thread > k.max_regs_per_thread);
    }

    #[test]
    fn warp_size_is_32() {
        for d in DeviceSpec::all() {
            assert_eq!(d.warp_size, 32);
            assert_eq!(d.max_threads_per_sm, d.max_warps_per_sm * 32);
        }
    }

    #[test]
    fn issue_costs_ordering() {
        let d = DeviceSpec::gtx680();
        assert_eq!(d.issue_cost(InstrCategory::Add), 1);
        assert!(d.issue_cost(InstrCategory::Div) > d.issue_cost(InstrCategory::Mul));
        assert!(d.issue_cost(InstrCategory::Sfu) > d.issue_cost(InstrCategory::Add));
        // Turing's unified ALU multiplies at full rate, Kepler does not.
        let t = DeviceSpec::rtx2080();
        assert!(d.issue_cost(InstrCategory::Mul) > t.issue_cost(InstrCategory::Mul));
    }

    #[test]
    fn cycles_to_ms() {
        let d = DeviceSpec::gtx680();
        let ms = d.cycles_to_ms(1_006_000);
        assert!((ms - 1.0).abs() < 1e-9);
    }

    #[test]
    fn arch_display() {
        assert_eq!(GpuArch::Kepler.to_string(), "Kepler");
        assert_eq!(GpuArch::Turing.to_string(), "Turing");
    }
}
