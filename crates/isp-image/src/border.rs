//! The four border handling patterns of the paper (Listing 1 / Figure 2).
//!
//! When a stencil window reaches past the image edge, the out-of-bounds
//! coordinate is re-indexed (Clamp/Mirror/Repeat) or the access is replaced
//! with a user constant (Constant). These functions are the *reference
//! semantics*: DSL-generated kernels, the GPU simulator, and the golden CPU
//! filters must all agree with them — property tests in this module and in
//! the workspace integration tests enforce that.

/// One of the four border handling patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BorderPattern {
    /// Return the nearest valid pixel ("duplicate" in the paper):
    /// `x < 0 -> 0`, `x >= sx -> sx - 1`.
    Clamp,
    /// Return the reflected pixel with the edge pixel included:
    /// `x < 0 -> -x - 1`, `x >= sx -> 2*sx - x - 1`.
    Mirror,
    /// Tile the image periodically along both axes; implemented with a
    /// `while` loop exactly as in the paper's Listing 1 so that small images
    /// filtered by large windows remain correct.
    Repeat,
    /// Return a user-defined constant for every out-of-bounds access.
    Constant,
}

impl BorderPattern {
    /// All four patterns, in the order the paper's evaluation reports them.
    pub const ALL: [BorderPattern; 4] = [
        BorderPattern::Clamp,
        BorderPattern::Mirror,
        BorderPattern::Repeat,
        BorderPattern::Constant,
    ];

    /// Stable lowercase name used in tables and bench output.
    pub fn name(&self) -> &'static str {
        match self {
            BorderPattern::Clamp => "clamp",
            BorderPattern::Mirror => "mirror",
            BorderPattern::Repeat => "repeat",
            BorderPattern::Constant => "constant",
        }
    }

    /// Whether the pattern re-indexes out-of-bounds coordinates (true) or
    /// substitutes a constant value (false). Constant is the odd one out: the
    /// paper notes its conditional structure differs — the value is
    /// initialised with the constant and only updated in bounds.
    pub fn reindexes(&self) -> bool {
        !matches!(self, BorderPattern::Constant)
    }
}

impl std::fmt::Display for BorderPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for BorderPattern {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "clamp" | "duplicate" => Ok(BorderPattern::Clamp),
            "mirror" => Ok(BorderPattern::Mirror),
            "repeat" | "periodic" => Ok(BorderPattern::Repeat),
            "constant" => Ok(BorderPattern::Constant),
            other => Err(format!("unknown border pattern '{other}'")),
        }
    }
}

/// A border pattern plus the constant used by [`BorderPattern::Constant`]
/// (ignored by the other three patterns). The constant lives in the `f32`
/// arithmetic domain, mirroring how generated kernels materialise it in a
/// float register.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BorderSpec {
    /// The re-indexing pattern.
    pub pattern: BorderPattern,
    /// Value returned for out-of-bounds accesses under `Constant`.
    pub constant: f32,
}

impl BorderSpec {
    /// Clamp borders.
    pub fn clamp() -> Self {
        BorderSpec {
            pattern: BorderPattern::Clamp,
            constant: 0.0,
        }
    }

    /// Mirrored borders.
    pub fn mirror() -> Self {
        BorderSpec {
            pattern: BorderPattern::Mirror,
            constant: 0.0,
        }
    }

    /// Periodically repeated borders.
    pub fn repeat() -> Self {
        BorderSpec {
            pattern: BorderPattern::Repeat,
            constant: 0.0,
        }
    }

    /// Constant borders with the given fill value.
    pub fn constant(value: f32) -> Self {
        BorderSpec {
            pattern: BorderPattern::Constant,
            constant: value,
        }
    }

    /// Build from a pattern with the default constant 0.
    pub fn from_pattern(pattern: BorderPattern) -> Self {
        BorderSpec {
            pattern,
            constant: 0.0,
        }
    }
}

/// Result of resolving one coordinate against one axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolved {
    /// The access maps to this valid index.
    Index(usize),
    /// The access is out of bounds and the pattern substitutes the constant.
    OutOfBounds,
}

/// Resolve a possibly negative / overflowing coordinate `idx` against an axis
/// of length `size` under `pattern`.
///
/// ```
/// use isp_image::border::{resolve_1d, BorderPattern, Resolved};
/// assert_eq!(resolve_1d(BorderPattern::Clamp, -3, 8), Resolved::Index(0));
/// assert_eq!(resolve_1d(BorderPattern::Mirror, 8, 8), Resolved::Index(7));
/// assert_eq!(resolve_1d(BorderPattern::Repeat, -1, 8), Resolved::Index(7));
/// assert_eq!(resolve_1d(BorderPattern::Constant, 9, 8), Resolved::OutOfBounds);
/// ```
///
/// All four patterns are **total** over `idx: i64, size >= 1`. Mirror folds
/// the coordinate into the period `2*size` first (edge pixels included in
/// the reflection), so stencils wider than the image — e.g. a 13x13 window
/// on a 4x4 image — resolve correctly instead of reflecting past the
/// opposite edge. The single-reflection shortcut `-x-1` / `2*size-x-1` that
/// Hipacc-generated kernels use agrees with this fold exactly on its
/// validity domain `-size <= idx < 2*size`; the DSL lowering keeps that
/// shortcut and its runner enforces the domain at launch.
#[inline]
pub fn resolve_1d(pattern: BorderPattern, idx: i64, size: usize) -> Resolved {
    debug_assert!(size > 0);
    let s = size as i64;
    if idx >= 0 && idx < s {
        return Resolved::Index(idx as usize);
    }
    match pattern {
        BorderPattern::Clamp => {
            if idx < 0 {
                Resolved::Index(0)
            } else {
                Resolved::Index(size - 1)
            }
        }
        BorderPattern::Mirror => {
            // Triangular fold: periodic with period 2*size, descending on
            // the second half. Total for every i64 — the previous
            // single-reflection formula indexed past the opposite edge
            // (straight through `get_unchecked` in release builds) whenever
            // `idx < -size` or `idx >= 2*size`.
            let period = 2 * s;
            let m = idx.rem_euclid(period);
            let r = if m < s { m } else { period - 1 - m };
            Resolved::Index(r as usize)
        }
        BorderPattern::Repeat => {
            let mut r = idx;
            while r < 0 {
                r += s;
            }
            while r >= s {
                r -= s;
            }
            Resolved::Index(r as usize)
        }
        BorderPattern::Constant => Resolved::OutOfBounds,
    }
}

/// Resolve a 2D access `(x, y)` against a `width x height` image.
///
/// For Constant, a single out-of-bounds axis makes the whole access out of
/// bounds; the re-indexing patterns resolve each axis independently (the
/// corner pixels compose both axes, exactly as the generated kernels do).
#[inline]
pub fn resolve_2d(
    pattern: BorderPattern,
    x: i64,
    y: i64,
    width: usize,
    height: usize,
) -> Option<(usize, usize)> {
    match (
        resolve_1d(pattern, x, width),
        resolve_1d(pattern, y, height),
    ) {
        (Resolved::Index(rx), Resolved::Index(ry)) => Some((rx, ry)),
        _ => None,
    }
}

/// Number of scalar conditional checks the *naive* implementation evaluates
/// per access for this pattern (used by documentation and sanity-checked by
/// the instruction-count model; the authoritative count comes from the IR).
pub fn naive_checks_per_access(pattern: BorderPattern) -> usize {
    match pattern {
        // if (x<0) / if (x>=sx) / if (y<0) / if (y>=sy)
        BorderPattern::Clamp | BorderPattern::Mirror => 4,
        // The generated kernels unroll each wrap loop twice per side (the
        // paper's Listing 1 `while` both ways on both axes): two guarded
        // wraps per side per axis = 8 checks.
        BorderPattern::Repeat => 8,
        // One in-bounds test per side per axis.
        BorderPattern::Constant => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn in_bounds_identity_for_all_patterns() {
        for pat in BorderPattern::ALL {
            for idx in 0..10i64 {
                assert_eq!(
                    resolve_1d(pat, idx, 10),
                    Resolved::Index(idx as usize),
                    "{pat}"
                );
            }
        }
    }

    #[test]
    fn clamp_semantics() {
        assert_eq!(resolve_1d(BorderPattern::Clamp, -1, 8), Resolved::Index(0));
        assert_eq!(
            resolve_1d(BorderPattern::Clamp, -100, 8),
            Resolved::Index(0)
        );
        assert_eq!(resolve_1d(BorderPattern::Clamp, 8, 8), Resolved::Index(7));
        assert_eq!(
            resolve_1d(BorderPattern::Clamp, 1000, 8),
            Resolved::Index(7)
        );
    }

    #[test]
    fn mirror_semantics() {
        // -1 -> 0, -2 -> 1 (edge pixel included in the reflection)
        assert_eq!(resolve_1d(BorderPattern::Mirror, -1, 8), Resolved::Index(0));
        assert_eq!(resolve_1d(BorderPattern::Mirror, -2, 8), Resolved::Index(1));
        assert_eq!(resolve_1d(BorderPattern::Mirror, -8, 8), Resolved::Index(7));
        // 8 -> 7, 9 -> 6
        assert_eq!(resolve_1d(BorderPattern::Mirror, 8, 8), Resolved::Index(7));
        assert_eq!(resolve_1d(BorderPattern::Mirror, 9, 8), Resolved::Index(6));
        assert_eq!(resolve_1d(BorderPattern::Mirror, 15, 8), Resolved::Index(0));
    }

    #[test]
    fn mirror_is_total_beyond_one_reflection() {
        // The old single-reflection formula covered only -size <= idx <
        // 2*size; these all fall outside that window. 16 -> reflects back to
        // 0 -> ascends again: 16 ≡ 0, 17 ≡ 1 (period 16, size 8).
        assert_eq!(resolve_1d(BorderPattern::Mirror, 16, 8), Resolved::Index(0));
        assert_eq!(resolve_1d(BorderPattern::Mirror, 17, 8), Resolved::Index(1));
        assert_eq!(resolve_1d(BorderPattern::Mirror, -9, 8), Resolved::Index(7));
        assert_eq!(
            resolve_1d(BorderPattern::Mirror, -17, 8),
            Resolved::Index(0)
        );
        // The 13x13-window-on-4x4-image case: offset -6 on size 4. Old
        // formula: -(-6)-1 = 5 >= 4 (out of bounds, UB through unchecked
        // indexing in release). Fold: -6 mod 8 = 2 -> index 2.
        assert_eq!(resolve_1d(BorderPattern::Mirror, -6, 4), Resolved::Index(2));
        // Sequence for size 4 past the right edge: 4,5,6,7 -> 3,2,1,0 then
        // ascending again: 8 -> 0, 9 -> 1.
        assert_eq!(resolve_1d(BorderPattern::Mirror, 9, 4), Resolved::Index(1));
        // Extreme magnitudes must not panic or overflow.
        assert!(matches!(
            resolve_1d(BorderPattern::Mirror, i64::MIN / 2, 7),
            Resolved::Index(r) if r < 7
        ));
        assert!(matches!(
            resolve_1d(BorderPattern::Mirror, i64::MAX / 2, 7),
            Resolved::Index(r) if r < 7
        ));
    }

    #[test]
    fn repeat_semantics() {
        assert_eq!(resolve_1d(BorderPattern::Repeat, -1, 8), Resolved::Index(7));
        assert_eq!(resolve_1d(BorderPattern::Repeat, 8, 8), Resolved::Index(0));
        assert_eq!(resolve_1d(BorderPattern::Repeat, 17, 8), Resolved::Index(1));
        // Far out of bounds: the while loop wraps multiple times.
        assert_eq!(
            resolve_1d(BorderPattern::Repeat, -25, 8),
            Resolved::Index(7)
        );
        assert_eq!(resolve_1d(BorderPattern::Repeat, 80, 8), Resolved::Index(0));
        // Small image, large offset: the case the paper calls out.
        assert_eq!(resolve_1d(BorderPattern::Repeat, 10, 3), Resolved::Index(1));
    }

    #[test]
    fn constant_semantics() {
        assert_eq!(
            resolve_1d(BorderPattern::Constant, -1, 8),
            Resolved::OutOfBounds
        );
        assert_eq!(
            resolve_1d(BorderPattern::Constant, 8, 8),
            Resolved::OutOfBounds
        );
        assert_eq!(
            resolve_1d(BorderPattern::Constant, 3, 8),
            Resolved::Index(3)
        );
    }

    #[test]
    fn resolve_2d_corner_composition() {
        // Clamp corner: both axes clamp independently.
        assert_eq!(resolve_2d(BorderPattern::Clamp, -2, -3, 8, 6), Some((0, 0)));
        assert_eq!(resolve_2d(BorderPattern::Mirror, -1, 6, 8, 6), Some((0, 5)));
        // Constant: one axis out is enough.
        assert_eq!(resolve_2d(BorderPattern::Constant, -1, 3, 8, 6), None);
        assert_eq!(resolve_2d(BorderPattern::Constant, 3, 6, 8, 6), None);
        assert_eq!(
            resolve_2d(BorderPattern::Constant, 3, 3, 8, 6),
            Some((3, 3))
        );
    }

    #[test]
    fn pattern_names_and_parsing() {
        for pat in BorderPattern::ALL {
            let parsed: BorderPattern = pat.name().parse().unwrap();
            assert_eq!(parsed, pat);
        }
        assert_eq!(
            "DUPLICATE".parse::<BorderPattern>().unwrap(),
            BorderPattern::Clamp
        );
        assert_eq!(
            "periodic".parse::<BorderPattern>().unwrap(),
            BorderPattern::Repeat
        );
        assert!("nearest".parse::<BorderPattern>().is_err());
    }

    #[test]
    fn spec_constructors() {
        assert_eq!(BorderSpec::clamp().pattern, BorderPattern::Clamp);
        assert_eq!(BorderSpec::constant(3.5).constant, 3.5);
        assert!(BorderPattern::Clamp.reindexes());
        assert!(!BorderPattern::Constant.reindexes());
    }

    proptest! {
        /// Every re-indexing pattern must return a valid in-bounds index for
        /// EVERY `idx: i64, size >= 1` — no carve-outs: totality is the
        /// release-mode memory-safety guarantee of the reference resolver.
        #[test]
        fn reindexing_always_lands_in_bounds(
            idx in -100_000i64..100_000,
            size in 1usize..256,
            pat_idx in 0usize..3,
        ) {
            let pat = BorderPattern::ALL[pat_idx];
            match resolve_1d(pat, idx, size) {
                Resolved::Index(r) => prop_assert!(r < size),
                Resolved::OutOfBounds => prop_assert!(false, "reindexing pattern returned OOB"),
            }
        }

        /// Mirror equals the closed-form triangular wave on all of i64.
        #[test]
        fn mirror_matches_triangular_wave(idx in i64::MIN / 4..i64::MAX / 4, size in 1usize..64) {
            let s = size as i64;
            let m = idx.rem_euclid(2 * s);
            let expect = if m < s { m } else { 2 * s - 1 - m } as usize;
            prop_assert_eq!(resolve_1d(BorderPattern::Mirror, idx, size), Resolved::Index(expect));
        }

        /// Repeat is exactly `idx mod size` (Euclidean).
        #[test]
        fn repeat_is_euclidean_modulo(idx in -1000i64..1000, size in 1usize..50) {
            let expect = idx.rem_euclid(size as i64) as usize;
            prop_assert_eq!(resolve_1d(BorderPattern::Repeat, idx, size), Resolved::Index(expect));
        }

        /// Clamp is idempotent: resolving a resolved index is the identity.
        #[test]
        fn clamp_idempotent(idx in -100i64..200, size in 1usize..64) {
            if let Resolved::Index(r) = resolve_1d(BorderPattern::Clamp, idx, size) {
                prop_assert_eq!(
                    resolve_1d(BorderPattern::Clamp, r as i64, size),
                    Resolved::Index(r)
                );
            }
        }

        /// Mirror is symmetric about the image edges: the reflection of a
        /// coordinate `d` pixels past an edge is `d-1` pixels inside it.
        #[test]
        fn mirror_symmetry(d in 1i64..32, size in 32usize..64) {
            // Left edge.
            prop_assert_eq!(
                resolve_1d(BorderPattern::Mirror, -d, size),
                Resolved::Index((d - 1) as usize)
            );
            // Right edge.
            prop_assert_eq!(
                resolve_1d(BorderPattern::Mirror, size as i64 - 1 + d, size),
                Resolved::Index(size - d as usize)
            );
        }

        /// All patterns agree with each other on in-bounds accesses.
        #[test]
        fn patterns_agree_in_bounds(x in 0i64..32, y in 0i64..32) {
            for pat in BorderPattern::ALL {
                prop_assert_eq!(
                    resolve_2d(pat, x, y, 32, 32),
                    Some((x as usize, y as usize))
                );
            }
        }
    }
}
