//! Minimal binary PGM (P5) / PPM (P6) reader and writer.
//!
//! The examples write their outputs as PGM so results can be inspected with
//! any image viewer; no external imaging crates are needed.

use crate::error::ImageError;
use crate::image::Image;
use crate::pixel::Pixel;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Serialise an image as binary PGM (P5, maxval 255). Non-`u8` images are
/// normalised through the `f32` domain against `T::MAX_VALUE`.
pub fn encode_pgm<T: Pixel>(image: &Image<T>) -> Vec<u8> {
    let (w, h) = image.dims();
    let mut buf = Vec::with_capacity(32 + w * h);
    buf.extend_from_slice(format!("P5\n{w} {h}\n255\n").as_bytes());
    for y in 0..h {
        for x in 0..w {
            let unit = image.get_unchecked(x, y).to_f32() / T::MAX_VALUE;
            buf.push(u8::from_f32(unit * 255.0));
        }
    }
    buf
}

/// Write an image to a PGM file.
pub fn write_pgm<T: Pixel>(image: &Image<T>, path: impl AsRef<Path>) -> Result<(), ImageError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&encode_pgm(image))?;
    Ok(())
}

/// Read a binary PGM (P5) stream into a `u8` image.
pub fn decode_pgm(reader: impl Read) -> Result<Image<u8>, ImageError> {
    let mut r = BufReader::new(reader);
    let magic = read_token(&mut r)?;
    if magic != "P5" {
        return Err(ImageError::Format(format!("expected P5, got '{magic}'")));
    }
    let w: usize = parse_token(&mut r)?;
    let h: usize = parse_token(&mut r)?;
    let maxval: usize = parse_token(&mut r)?;
    if maxval == 0 || maxval > 255 {
        return Err(ImageError::Format(format!("unsupported maxval {maxval}")));
    }
    let mut data = vec![
        0u8;
        w.checked_mul(h).ok_or(ImageError::InvalidDimensions {
            width: w,
            height: h,
        })?
    ];
    r.read_exact(&mut data)?;
    Image::from_vec(w, h, data)
}

/// Read a PGM file into a `u8` image.
pub fn read_pgm(path: impl AsRef<Path>) -> Result<Image<u8>, ImageError> {
    decode_pgm(std::fs::File::open(path)?)
}

/// Serialise three equally-sized channel images as binary PPM (P6).
pub fn encode_ppm<T: Pixel>(
    r: &Image<T>,
    g: &Image<T>,
    b: &Image<T>,
) -> Result<Vec<u8>, ImageError> {
    if r.dims() != g.dims() || r.dims() != b.dims() {
        return Err(ImageError::SizeMismatch {
            left: r.dims(),
            right: g.dims(),
        });
    }
    let (w, h) = r.dims();
    let mut buf = Vec::with_capacity(32 + 3 * w * h);
    buf.extend_from_slice(format!("P6\n{w} {h}\n255\n").as_bytes());
    for y in 0..h {
        for x in 0..w {
            for img in [r, g, b] {
                let unit = img.get_unchecked(x, y).to_f32() / T::MAX_VALUE;
                buf.push(u8::from_f32(unit * 255.0));
            }
        }
    }
    Ok(buf)
}

/// Skip PNM whitespace and `#` comments, then read one token.
fn read_token(r: &mut impl BufRead) -> Result<String, ImageError> {
    let mut tok = String::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) => {
                if tok.is_empty() {
                    return Err(ImageError::Io(e));
                }
                return Ok(tok);
            }
        }
        let c = byte[0] as char;
        if c == '#' {
            // Comment until end of line.
            let mut line = String::new();
            r.read_line(&mut line)?;
            continue;
        }
        if c.is_ascii_whitespace() {
            if tok.is_empty() {
                continue;
            }
            return Ok(tok);
        }
        tok.push(c);
    }
}

fn parse_token<F: std::str::FromStr>(r: &mut impl BufRead) -> Result<F, ImageError> {
    let tok = read_token(r)?;
    tok.parse()
        .map_err(|_| ImageError::Format(format!("bad numeric token '{tok}'")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::ImageGenerator;

    #[test]
    fn pgm_roundtrip_u8() {
        let img = ImageGenerator::new(3).uniform_noise::<u8>(13, 7);
        let bytes = encode_pgm(&img);
        let back = decode_pgm(&bytes[..]).unwrap();
        assert_eq!(back.dims(), (13, 7));
        assert_eq!(img.max_abs_diff(&back).unwrap(), 0.0);
    }

    #[test]
    fn pgm_header_format() {
        let img = Image::<u8>::filled(3, 2, 128);
        let bytes = encode_pgm(&img);
        assert!(bytes.starts_with(b"P5\n3 2\n255\n"));
        assert_eq!(bytes.len(), 11 + 6);
    }

    #[test]
    fn pgm_f32_normalisation() {
        let img = Image::<f32>::from_fn(2, 1, |x, _| x as f32); // 0.0, 1.0
        let bytes = encode_pgm(&img);
        let back = decode_pgm(&bytes[..]).unwrap();
        assert_eq!(back.get(0, 0), 0);
        assert_eq!(back.get(1, 0), 255);
    }

    #[test]
    fn pgm_decode_handles_comments() {
        let data = b"P5 # magic\n# a comment line\n 2 2\n255\n\xff\x00\x7f\x01";
        let img = decode_pgm(&data[..]).unwrap();
        assert_eq!(img.get(0, 0), 255);
        assert_eq!(img.get(1, 1), 1);
    }

    #[test]
    fn pgm_decode_rejects_bad_magic() {
        assert!(decode_pgm(&b"P2\n2 2\n255\n...."[..]).is_err());
    }

    #[test]
    fn pgm_decode_rejects_truncated_payload() {
        assert!(decode_pgm(&b"P5\n4 4\n255\nxx"[..]).is_err());
    }

    #[test]
    fn ppm_encode() {
        let r = Image::<u8>::filled(2, 1, 255);
        let g = Image::<u8>::filled(2, 1, 0);
        let b = Image::<u8>::filled(2, 1, 128);
        let bytes = encode_ppm(&r, &g, &b).unwrap();
        assert!(bytes.starts_with(b"P6\n2 1\n255\n"));
        assert_eq!(&bytes[11..], &[255, 0, 128, 255, 0, 128]);
        let bad = Image::<u8>::filled(3, 1, 0);
        assert!(encode_ppm(&r, &g, &bad).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("isp_image_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.pgm");
        let img = ImageGenerator::new(8).shapes::<u8>(20, 20);
        write_pgm(&img, &path).unwrap();
        let back = read_pgm(&path).unwrap();
        assert_eq!(img.max_abs_diff(&back).unwrap(), 0.0);
        std::fs::remove_file(path).ok();
    }
}
