//! Border-resolved read access to an image.

use crate::border::{resolve_2d, BorderSpec};
use crate::image::Image;
use crate::pixel::Pixel;

/// An image wrapped with a [`BorderSpec`]: reads at any signed coordinate are
/// legal and produce the pattern-defined value.
///
/// This is the reference analogue of Hipacc's `BoundaryCondition` +
/// `Accessor` pair: the golden filters read through it, and the simulated
/// kernels must produce identical pixels.
#[derive(Debug, Clone, Copy)]
pub struct BorderedImage<'a, T: Pixel> {
    image: &'a Image<T>,
    spec: BorderSpec,
}

impl<'a, T: Pixel> BorderedImage<'a, T> {
    /// Wrap `image` with border handling `spec`.
    pub fn new(image: &'a Image<T>, spec: BorderSpec) -> Self {
        BorderedImage { image, spec }
    }

    /// The wrapped image.
    pub fn image(&self) -> &'a Image<T> {
        self.image
    }

    /// The border specification in effect.
    pub fn spec(&self) -> BorderSpec {
        self.spec
    }

    /// Read the border-resolved pixel value at signed coordinates `(x, y)`,
    /// in the `f32` arithmetic domain.
    #[inline]
    pub fn get(&self, x: i64, y: i64) -> f32 {
        match resolve_2d(
            self.spec.pattern,
            x,
            y,
            self.image.width(),
            self.image.height(),
        ) {
            Some((rx, ry)) => self.image.get_unchecked(rx, ry).to_f32(),
            None => self.spec.constant,
        }
    }

    /// Read relative to a centre pixel: `get(cx + dx, cy + dy)`.
    #[inline]
    pub fn get_offset(&self, cx: usize, cy: usize, dx: i64, dy: i64) -> f32 {
        self.get(cx as i64 + dx, cy as i64 + dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::border::BorderPattern;

    fn ramp() -> Image<u8> {
        // 4x3: value = y*4 + x
        Image::from_fn(4, 3, |x, y| (y * 4 + x) as u8)
    }

    #[test]
    fn in_bounds_reads_match_image() {
        let img = ramp();
        for spec in [
            BorderSpec::clamp(),
            BorderSpec::mirror(),
            BorderSpec::repeat(),
            BorderSpec::constant(99.0),
        ] {
            let b = BorderedImage::new(&img, spec);
            for y in 0..3i64 {
                for x in 0..4i64 {
                    assert_eq!(b.get(x, y), (y * 4 + x) as f32, "{:?}", spec.pattern);
                }
            }
        }
    }

    #[test]
    fn clamp_edges() {
        let img = ramp();
        let b = BorderedImage::new(&img, BorderSpec::clamp());
        assert_eq!(b.get(-1, 0), 0.0);
        assert_eq!(b.get(4, 0), 3.0);
        assert_eq!(b.get(-5, -5), 0.0);
        assert_eq!(b.get(10, 10), 11.0);
    }

    #[test]
    fn mirror_edges() {
        let img = ramp();
        let b = BorderedImage::new(&img, BorderSpec::mirror());
        assert_eq!(b.get(-1, 0), 0.0); // reflects to x=0
        assert_eq!(b.get(-2, 0), 1.0); // reflects to x=1
        assert_eq!(b.get(4, 0), 3.0); // reflects to x=3
        assert_eq!(b.get(0, -1), 0.0); // reflects to y=0
        assert_eq!(b.get(0, 3), 8.0); // reflects to y=2
    }

    #[test]
    fn repeat_edges() {
        let img = ramp();
        let b = BorderedImage::new(&img, BorderSpec::repeat());
        assert_eq!(b.get(-1, 0), 3.0); // wraps to x=3
        assert_eq!(b.get(4, 0), 0.0); // wraps to x=0
        assert_eq!(b.get(0, -1), 8.0); // wraps to y=2
        assert_eq!(b.get(-4, -3), 0.0); // exact period
    }

    #[test]
    fn constant_edges() {
        let img = ramp();
        let b = BorderedImage::new(&img, BorderSpec::constant(42.5));
        assert_eq!(b.get(-1, 0), 42.5);
        assert_eq!(b.get(0, 3), 42.5);
        assert_eq!(b.get(3, 2), 11.0);
    }

    #[test]
    fn offset_access() {
        let img = ramp();
        let b = BorderedImage::new(&img, BorderSpec::clamp());
        assert_eq!(b.get_offset(0, 0, -1, -1), 0.0);
        assert_eq!(b.get_offset(2, 1, 1, 1), 11.0);
        assert_eq!(b.get_offset(2, 1, 0, 0), 6.0);
    }

    #[test]
    fn spec_accessors() {
        let img = ramp();
        let b = BorderedImage::new(&img, BorderSpec::constant(7.0));
        assert_eq!(b.spec().pattern, BorderPattern::Constant);
        assert_eq!(b.image().dims(), (4, 3));
    }
}
