//! Deterministic synthetic image generators.
//!
//! The paper benchmarks on natural images; absolute pixel content does not
//! affect instruction counts or occupancy, only (slightly) the data-dependent
//! `Repeat` loop trip counts and bilateral weights. We therefore substitute
//! seeded synthetic content: noise, gradients, smoothed "natural-like"
//! scenes, and structured targets for the edge-detection examples.

use crate::image::Image;
use crate::pixel::Pixel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded generator for reproducible synthetic images. All methods produce
/// identical output for identical seeds and parameters.
#[derive(Debug, Clone)]
pub struct ImageGenerator {
    seed: u64,
}

impl ImageGenerator {
    /// Create a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        ImageGenerator { seed }
    }

    fn rng(&self, salt: u64) -> StdRng {
        StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(salt),
        )
    }

    /// Uniform noise over the pixel type's full range.
    pub fn uniform_noise<T: Pixel>(&self, width: usize, height: usize) -> Image<T> {
        let mut rng = self.rng(1);
        Image::from_fn(width, height, |_, _| {
            T::from_f32(rng.gen::<f32>() * T::MAX_VALUE)
        })
    }

    /// Horizontal linear gradient from 0 to the type maximum.
    pub fn gradient_x<T: Pixel>(&self, width: usize, height: usize) -> Image<T> {
        Image::from_fn(width, height, |x, _| {
            T::from_f32(x as f32 / (width.max(2) - 1) as f32 * T::MAX_VALUE)
        })
    }

    /// Checkerboard with `cell`-pixel squares (structured high-frequency
    /// content; stresses edge-preserving filters).
    pub fn checkerboard<T: Pixel>(&self, width: usize, height: usize, cell: usize) -> Image<T> {
        assert!(cell > 0);
        Image::from_fn(width, height, |x, y| {
            if ((x / cell) + (y / cell)).is_multiple_of(2) {
                T::from_f32(T::MAX_VALUE)
            } else {
                T::ZERO
            }
        })
    }

    /// "Natural-like" content: sum of a few smooth sinusoidal octaves plus
    /// low-amplitude noise — has the broad spectral falloff of photographs,
    /// which matters for the bilateral filter's data-dependent weights.
    pub fn natural<T: Pixel>(&self, width: usize, height: usize) -> Image<T> {
        let mut rng = self.rng(2);
        // Random phases/frequencies for 6 octaves.
        let octaves: Vec<(f32, f32, f32, f32, f32)> = (0..6)
            .map(|i| {
                let f = 2.0f32.powi(i) * std::f32::consts::TAU / width.max(height) as f32;
                (
                    f,
                    rng.gen::<f32>() * std::f32::consts::TAU,
                    rng.gen::<f32>() * std::f32::consts::TAU,
                    rng.gen_range(0.6..1.4),
                    0.5f32.powi(i),
                )
            })
            .collect();
        let mut noise_rng = self.rng(3);
        Image::from_fn(width, height, |x, y| {
            let mut v = 0.0f32;
            let mut norm = 0.0f32;
            for &(f, px, py, skew, amp) in &octaves {
                v += amp * ((x as f32 * f * skew + px).sin() * (y as f32 * f + py).cos());
                norm += amp;
            }
            let n = noise_rng.gen::<f32>() * 0.05;
            let unit = ((v / norm) * 0.5 + 0.5 + n).clamp(0.0, 1.0);
            T::from_f32(unit * T::MAX_VALUE)
        })
    }

    /// A dark scene with bright point lights, for the Night filter example.
    pub fn night_scene<T: Pixel>(&self, width: usize, height: usize, lights: usize) -> Image<T> {
        let mut rng = self.rng(4);
        let centres: Vec<(f32, f32, f32)> = (0..lights)
            .map(|_| {
                (
                    rng.gen::<f32>() * width as f32,
                    rng.gen::<f32>() * height as f32,
                    rng.gen_range(2.0..8.0),
                )
            })
            .collect();
        let mut noise_rng = self.rng(5);
        Image::from_fn(width, height, |x, y| {
            let mut v = 0.02f32 + noise_rng.gen::<f32>() * 0.03; // dark noise floor
            for &(cx, cy, r) in &centres {
                let d2 = (x as f32 - cx).powi(2) + (y as f32 - cy).powi(2);
                v += (-d2 / (2.0 * r * r)).exp();
            }
            T::from_f32(v.clamp(0.0, 1.0) * T::MAX_VALUE)
        })
    }

    /// Geometric test card: filled rectangle, circle, and diagonal edge —
    /// gives the Sobel example clean gradients to find.
    pub fn shapes<T: Pixel>(&self, width: usize, height: usize) -> Image<T> {
        let w = width as f32;
        let h = height as f32;
        Image::from_fn(width, height, |x, y| {
            let xf = x as f32;
            let yf = y as f32;
            let in_rect = xf > w * 0.1 && xf < w * 0.35 && yf > h * 0.15 && yf < h * 0.6;
            let in_circle = (xf - w * 0.68).powi(2) + (yf - h * 0.35).powi(2) < (w * 0.15).powi(2);
            let below_diag = yf > h * 0.7 + (xf / w) * h * 0.15;
            let v: f32 = if in_rect {
                0.85
            } else if in_circle {
                0.6
            } else if below_diag {
                0.35
            } else {
                0.1
            };
            T::from_f32(v * T::MAX_VALUE)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = ImageGenerator::new(11).uniform_noise::<u8>(16, 16);
        let b = ImageGenerator::new(11).uniform_noise::<u8>(16, 16);
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.0);
        let c = ImageGenerator::new(12).uniform_noise::<u8>(16, 16);
        assert!(a.max_abs_diff(&c).unwrap() > 0.0);
    }

    #[test]
    fn noise_spans_range() {
        let img = ImageGenerator::new(1).uniform_noise::<u8>(64, 64);
        let (lo, hi) = img.min_max();
        assert!(lo < 16.0, "min {lo}");
        assert!(hi > 239.0, "max {hi}");
    }

    #[test]
    fn gradient_monotone() {
        let img = ImageGenerator::new(1).gradient_x::<u8>(32, 4);
        assert_eq!(img.get(0, 0), 0);
        assert_eq!(img.get(31, 3), 255);
        for x in 1..32 {
            assert!(img.get(x, 0) >= img.get(x - 1, 0));
        }
    }

    #[test]
    fn checkerboard_alternates() {
        let img = ImageGenerator::new(1).checkerboard::<u8>(8, 8, 2);
        assert_eq!(img.get(0, 0), 255);
        assert_eq!(img.get(2, 0), 0);
        assert_eq!(img.get(0, 2), 0);
        assert_eq!(img.get(2, 2), 255);
    }

    #[test]
    fn natural_is_midrange_and_smooth() {
        let img = ImageGenerator::new(5).natural::<f32>(64, 64);
        let m = img.mean();
        assert!(m > 0.2 && m < 0.8, "mean {m}");
        // Smooth: adjacent pixel difference well below full range on average.
        let mut acc = 0.0f64;
        for y in 0..64 {
            for x in 1..64 {
                acc += (img.get(x, y) - img.get(x - 1, y)).abs() as f64;
            }
        }
        let avg_grad = acc / (63.0 * 64.0);
        assert!(avg_grad < 0.2, "avg gradient {avg_grad}");
    }

    #[test]
    fn night_scene_is_dark_with_highlights() {
        let img = ImageGenerator::new(9).night_scene::<f32>(64, 64, 6);
        assert!(img.mean() < 0.3);
        let (_, hi) = img.min_max();
        assert!(hi > 0.8);
    }

    #[test]
    fn shapes_have_flat_regions() {
        let img = ImageGenerator::new(1).shapes::<f32>(100, 100);
        // Inside the rectangle.
        assert_eq!(img.get(20, 30), 0.85);
        // Background.
        assert_eq!(img.get(95, 5), 0.1);
    }
}
