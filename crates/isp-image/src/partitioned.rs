//! Index-set splitting on the **CPU**: the general-purpose optimisation the
//! paper derives ISP from (§III-B, Listing 2), applied to host convolution.
//!
//! The iteration space splits into the guard-free body `[rx, sx-rx) x
//! [ry, sy-ry)` (paper Eq. 1) and four border strips that keep the full
//! border handling. Unlike the GPU story there is no switching or occupancy
//! cost. The `kernels` criterion bench measures this module against the
//! checked-everywhere baseline on the host CPU — and finds **parity**, not
//! a win: an out-of-order core branch-predicts the always-false border
//! checks to near-zero cost. That measurement is itself instructive: it is
//! exactly why the paper's contribution targets GPUs, where a SIMT warp
//! pays every check as a real lockstep issue slot and branch prediction
//! cannot help.

use crate::accessor::BorderedImage;
use crate::border::BorderSpec;
use crate::image::Image;
use crate::mask::Mask;
use crate::pixel::Pixel;
use rayon::prelude::*;

/// Convolution with host-side index-set splitting: the interior is computed
/// with unchecked direct indexing, only the border strips go through the
/// border-resolving accessor. Produces results identical to
/// [`crate::convolve::convolve`].
pub fn convolve_partitioned<T: Pixel>(input: &Image<T>, mask: &Mask, spec: BorderSpec) -> Image<T> {
    let (sx, sy) = input.dims();
    let rx = mask.radius_x();
    let ry = mask.radius_y();
    // Degenerate split (image thinner than the window): all border.
    if 2 * rx >= sx || 2 * ry >= sy {
        return crate::convolve::convolve(input, mask, spec);
    }

    let domain = mask.domain();
    let offsets: Vec<(i64, i64, f32)> = domain
        .iter_offsets()
        .map(|(dx, dy)| (dx, dy, mask.coeff_at(dx, dy)))
        .collect();
    let bordered = BorderedImage::new(input, spec);

    // Row-parallel: each output row knows whether it is a border row; border
    // rows use the checked path throughout, body rows split into
    // left strip / unchecked middle / right strip (the 1D analogue of the
    // paper's Listing 2 loop split).
    let rows: Vec<Vec<T>> = (0..sy)
        .into_par_iter()
        .map(|y| {
            let mut row = Vec::with_capacity(sx);
            let border_row = y < ry || y >= sy - ry;
            if border_row {
                for x in 0..sx {
                    row.push(checked_pixel(&bordered, &offsets, x, y));
                }
            } else {
                for x in 0..rx {
                    row.push(checked_pixel(&bordered, &offsets, x, y));
                }
                for x in rx..sx - rx {
                    // Guard-free interior: direct unchecked reads.
                    let mut acc = 0.0f32;
                    for &(dx, dy, c) in &offsets {
                        let px = (x as i64 + dx) as usize;
                        let py = (y as i64 + dy) as usize;
                        acc += c * input.get_unchecked(px, py).to_f32();
                    }
                    row.push(T::from_f32(acc));
                }
                for x in sx - rx..sx {
                    row.push(checked_pixel(&bordered, &offsets, x, y));
                }
            }
            row
        })
        .collect();

    let mut data = Vec::with_capacity(sx * sy);
    for row in rows {
        data.extend(row);
    }
    Image::from_vec(sx, sy, data).expect("partitioned convolution covers every pixel")
}

#[inline]
fn checked_pixel<T: Pixel>(
    bordered: &BorderedImage<'_, T>,
    offsets: &[(i64, i64, f32)],
    x: usize,
    y: usize,
) -> T {
    let mut acc = 0.0f32;
    for &(dx, dy, c) in offsets {
        acc += c * bordered.get_offset(x, y, dx, dy);
    }
    T::from_f32(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::border::BorderPattern;
    use crate::generator::ImageGenerator;

    #[test]
    fn matches_naive_convolution_exactly() {
        let img = ImageGenerator::new(11).uniform_noise::<f32>(61, 47);
        for pat in BorderPattern::ALL {
            for size in [3usize, 5, 9] {
                let mask = Mask::gaussian(size, 1.0).unwrap();
                let spec = BorderSpec {
                    pattern: pat,
                    constant: 0.4,
                };
                let naive = crate::convolve::convolve(&img, &mask, spec);
                let split = convolve_partitioned(&img, &mask, spec);
                assert_eq!(
                    naive.max_abs_diff(&split).unwrap(),
                    0.0,
                    "{pat} {size}: identical arithmetic must give identical pixels"
                );
            }
        }
    }

    #[test]
    fn degenerate_small_images_fall_back() {
        // 8x8 image with a 9x9 window: no interior exists.
        let img = ImageGenerator::new(2).uniform_noise::<f32>(8, 8);
        let mask = Mask::box_filter(9).unwrap();
        let spec = BorderSpec::repeat();
        let naive = crate::convolve::convolve(&img, &mask, spec);
        let split = convolve_partitioned(&img, &mask, spec);
        assert_eq!(naive.max_abs_diff(&split).unwrap(), 0.0);
    }

    #[test]
    fn integer_pixels_round_identically() {
        let img = ImageGenerator::new(4).uniform_noise::<u8>(40, 40);
        let mask = Mask::gaussian(5, 1.2).unwrap();
        let spec = BorderSpec::mirror();
        let naive = crate::convolve::convolve(&img, &mask, spec);
        let split = convolve_partitioned(&img, &mask, spec);
        assert_eq!(naive.max_abs_diff(&split).unwrap(), 0.0);
    }

    #[test]
    fn sparse_masks_supported() {
        let base = Mask::gaussian(3, 0.85).unwrap();
        let sparse = Mask::atrous(&base, 4).unwrap();
        let img = ImageGenerator::new(6).uniform_noise::<f32>(50, 36);
        let spec = BorderSpec::clamp();
        let naive = crate::convolve::convolve(&img, &sparse, spec);
        let split = convolve_partitioned(&img, &sparse, spec);
        assert_eq!(naive.max_abs_diff(&split).unwrap(), 0.0);
    }
}
