//! Convolution masks and domains (Hipacc's `Mask` / `Domain` analogues).

use crate::error::ImageError;

/// A constant coefficient window of odd dimensions `width x height`, anchored
/// at its centre. The anchor offsets are `(width/2, height/2)`; the paper's
/// `m x n` window has radii `m/2`, `n/2`.
#[derive(Debug, Clone, PartialEq)]
pub struct Mask {
    width: usize,
    height: usize,
    coeffs: Vec<f32>,
}

impl Mask {
    /// Build a mask from row-major coefficients. Dimensions must be odd.
    pub fn from_coeffs(width: usize, height: usize, coeffs: Vec<f32>) -> Result<Self, ImageError> {
        if width == 0 || height == 0 || width.is_multiple_of(2) || height.is_multiple_of(2) {
            return Err(ImageError::EvenMaskDimensions { width, height });
        }
        if coeffs.len() != width * height {
            return Err(ImageError::MaskSizeMismatch {
                expected: width * height,
                actual: coeffs.len(),
            });
        }
        Ok(Mask {
            width,
            height,
            coeffs,
        })
    }

    /// Square mask from a slice.
    pub fn square(size: usize, coeffs: &[f32]) -> Result<Self, ImageError> {
        Self::from_coeffs(size, size, coeffs.to_vec())
    }

    /// `size x size` box (mean) filter, coefficients summing to one.
    pub fn box_filter(size: usize) -> Result<Self, ImageError> {
        let n = size * size;
        Self::from_coeffs(size, size, vec![1.0 / n as f32; n])
    }

    /// Sampled, normalised Gaussian of standard deviation `sigma`.
    pub fn gaussian(size: usize, sigma: f32) -> Result<Self, ImageError> {
        assert!(sigma > 0.0, "sigma must be positive");
        let r = (size / 2) as i64;
        let mut coeffs = Vec::with_capacity(size * size);
        let mut sum = 0.0f32;
        for dy in -r..=r {
            for dx in -r..=r {
                let v = (-((dx * dx + dy * dy) as f32) / (2.0 * sigma * sigma)).exp();
                coeffs.push(v);
                sum += v;
            }
        }
        for c in &mut coeffs {
            *c /= sum;
        }
        Self::from_coeffs(size, size, coeffs)
    }

    /// Discrete Laplacian. Supported sizes: 3 (4-neighbour) and 5
    /// (Laplacian-of-Gaussian-style integer stencil), matching the window
    /// sizes the paper evaluates.
    pub fn laplace(size: usize) -> Result<Self, ImageError> {
        match size {
            3 => Self::square(3, &[0.0, 1.0, 0.0, 1.0, -4.0, 1.0, 0.0, 1.0, 0.0]),
            5 => Self::square(
                5,
                &[
                    0.0, 0.0, 1.0, 0.0, 0.0, //
                    0.0, 1.0, 2.0, 1.0, 0.0, //
                    1.0, 2.0, -16.0, 2.0, 1.0, //
                    0.0, 1.0, 2.0, 1.0, 0.0, //
                    0.0, 0.0, 1.0, 0.0, 0.0,
                ],
            ),
            _ => Err(ImageError::EvenMaskDimensions {
                width: size,
                height: size,
            }),
        }
    }

    /// Sobel horizontal derivative (3x3).
    pub fn sobel_x() -> Mask {
        Mask::square(3, &[-1.0, 0.0, 1.0, -2.0, 0.0, 2.0, -1.0, 0.0, 1.0]).unwrap()
    }

    /// Sobel vertical derivative (3x3).
    pub fn sobel_y() -> Mask {
        Mask::square(3, &[-1.0, -2.0, -1.0, 0.0, 0.0, 0.0, 1.0, 2.0, 1.0]).unwrap()
    }

    /// "À trous" (with holes) dilation of a base 3x3 kernel: the base
    /// coefficients are spread onto a `(2*d+1) x (2*d+1)`-spaced grid,
    /// producing effective window sizes 3, 5, 9, 17 for dilations 1, 2, 4, 8
    /// — the Night filter's pyramid in the paper.
    pub fn atrous(base: &Mask, dilation: usize) -> Result<Self, ImageError> {
        assert!(dilation >= 1, "dilation must be >= 1");
        assert_eq!(base.width(), 3, "atrous base must be 3x3");
        assert_eq!(base.height(), 3, "atrous base must be 3x3");
        // Effective window: offsets {-d, 0, +d} scaled from base offsets
        // {-1, 0, 1}. Window size = 2*d + 1.
        let w = 2 * dilation + 1;
        let mut coeffs = vec![0.0f32; w * w];
        for by in 0..3 {
            for bx in 0..3 {
                let c = base.coeff(bx, by);
                let x = (bx as i64 - 1) * dilation as i64 + dilation as i64;
                let y = (by as i64 - 1) * dilation as i64 + dilation as i64;
                coeffs[y as usize * w + x as usize] = c;
            }
        }
        Self::from_coeffs(w, w, coeffs)
    }

    /// Width (`m` in the paper).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height (`n` in the paper).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Horizontal radius `m/2`.
    pub fn radius_x(&self) -> usize {
        self.width / 2
    }

    /// Vertical radius `n/2`.
    pub fn radius_y(&self) -> usize {
        self.height / 2
    }

    /// Coefficient at window position `(x, y)` with `x in [0, width)`.
    #[inline]
    pub fn coeff(&self, x: usize, y: usize) -> f32 {
        self.coeffs[y * self.width + x]
    }

    /// Coefficient at centred offset `(dx, dy)`, `dx in [-rx, rx]`.
    #[inline]
    pub fn coeff_at(&self, dx: i64, dy: i64) -> f32 {
        let x = (dx + self.radius_x() as i64) as usize;
        let y = (dy + self.radius_y() as i64) as usize;
        self.coeff(x, y)
    }

    /// All coefficients, row-major.
    pub fn coeffs(&self) -> &[f32] {
        &self.coeffs
    }

    /// Sum of all coefficients.
    pub fn sum(&self) -> f32 {
        self.coeffs.iter().sum()
    }

    /// Attempt to separate the mask into an outer product of a column
    /// vector and a row vector (`M[y][x] = col[y] * row[x]`), the classic
    /// rank-1 factorisation enabling two cheap 1D passes instead of one 2D
    /// pass. Returns `(column_mask, row_mask)` as `1 x height` and
    /// `width x 1` masks, or `None` when the mask is not separable.
    ///
    /// ```
    /// use isp_image::Mask;
    /// let g = Mask::gaussian(5, 1.0).unwrap();
    /// let (col, row) = g.separate().expect("gaussians are separable");
    /// assert_eq!(col.height(), 5);
    /// assert_eq!(row.width(), 5);
    /// assert!(Mask::laplace(3).unwrap().separate().is_none());
    /// ```
    pub fn separate(&self) -> Option<(Mask, Mask)> {
        const EPS: f32 = 1e-5;
        // Pivot: the largest-magnitude coefficient.
        let (mut px, mut py, mut pv) = (0usize, 0usize, 0.0f32);
        for y in 0..self.height {
            for x in 0..self.width {
                if self.coeff(x, y).abs() > pv.abs() {
                    (px, py, pv) = (x, y, self.coeff(x, y));
                }
            }
        }
        if pv == 0.0 {
            return None;
        }
        // Candidate factors through the pivot row/column.
        let row: Vec<f32> = (0..self.width).map(|x| self.coeff(x, py)).collect();
        let col: Vec<f32> = (0..self.height).map(|y| self.coeff(px, y) / pv).collect();
        // Verify the outer product reconstructs the mask.
        for (y, &cv) in col.iter().enumerate() {
            for (x, &rv) in row.iter().enumerate() {
                let recon = cv * rv;
                if (recon - self.coeff(x, y)).abs() > EPS * pv.abs().max(1.0) {
                    return None;
                }
            }
        }
        let col_mask = Mask::from_coeffs(1, self.height, col).expect("odd height");
        let row_mask = Mask::from_coeffs(self.width, 1, row).expect("odd width");
        Some((col_mask, row_mask))
    }

    /// Derive the boolean footprint of non-zero coefficients.
    pub fn domain(&self) -> Domain {
        Domain {
            width: self.width,
            height: self.height,
            active: self.coeffs.iter().map(|&c| c != 0.0).collect(),
        }
    }
}

/// The boolean iteration footprint of a window: which `(dx, dy)` offsets a
/// local operator actually touches. Hipacc infers this from the mask; sparse
/// domains (e.g. à-trous) skip inactive cells entirely.
#[derive(Debug, Clone, PartialEq)]
pub struct Domain {
    width: usize,
    height: usize,
    active: Vec<bool>,
}

impl Domain {
    /// A fully active `width x height` domain. Dimensions must be odd.
    pub fn full(width: usize, height: usize) -> Result<Self, ImageError> {
        if width == 0 || height == 0 || width.is_multiple_of(2) || height.is_multiple_of(2) {
            return Err(ImageError::EvenMaskDimensions { width, height });
        }
        Ok(Domain {
            width,
            height,
            active: vec![true; width * height],
        })
    }

    /// Width of the footprint.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height of the footprint.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Horizontal radius.
    pub fn radius_x(&self) -> usize {
        self.width / 2
    }

    /// Vertical radius.
    pub fn radius_y(&self) -> usize {
        self.height / 2
    }

    /// Whether offset `(dx, dy)` (centred) is part of the footprint.
    #[inline]
    pub fn active_at(&self, dx: i64, dy: i64) -> bool {
        let x = (dx + self.radius_x() as i64) as usize;
        let y = (dy + self.radius_y() as i64) as usize;
        self.active[y * self.width + x]
    }

    /// Number of active cells.
    pub fn popcount(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Iterate over active centred offsets `(dx, dy)` row-major.
    pub fn iter_offsets(&self) -> impl Iterator<Item = (i64, i64)> + '_ {
        let rx = self.radius_x() as i64;
        let ry = self.radius_y() as i64;
        (-ry..=ry).flat_map(move |dy| {
            (-rx..=rx).filter_map(move |dx| {
                if self.active_at(dx, dy) {
                    Some((dx, dy))
                } else {
                    None
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_coeffs_validation() {
        assert!(Mask::from_coeffs(2, 3, vec![0.0; 6]).is_err());
        assert!(Mask::from_coeffs(3, 3, vec![0.0; 8]).is_err());
        assert!(Mask::from_coeffs(3, 3, vec![0.0; 9]).is_ok());
        assert!(Mask::from_coeffs(0, 1, vec![]).is_err());
    }

    #[test]
    fn box_filter_normalised() {
        let m = Mask::box_filter(5).unwrap();
        assert_eq!(m.width(), 5);
        assert!((m.sum() - 1.0).abs() < 1e-6);
        assert!((m.coeff(0, 0) - 1.0 / 25.0).abs() < 1e-7);
    }

    #[test]
    fn gaussian_properties() {
        let m = Mask::gaussian(5, 1.0).unwrap();
        assert!((m.sum() - 1.0).abs() < 1e-5);
        // Peak at centre, symmetric.
        let c = m.coeff_at(0, 0);
        assert!(c > m.coeff_at(1, 0));
        assert_eq!(m.coeff_at(1, 0), m.coeff_at(-1, 0));
        assert_eq!(m.coeff_at(0, 2), m.coeff_at(0, -2));
        assert_eq!(m.coeff_at(2, 2), m.coeff_at(-2, -2));
    }

    #[test]
    fn laplace_sums_to_zero() {
        for size in [3usize, 5] {
            let m = Mask::laplace(size).unwrap();
            assert_eq!(m.width(), size);
            assert!(m.sum().abs() < 1e-6, "laplace {size} must sum to 0");
        }
        assert!(Mask::laplace(7).is_err());
    }

    #[test]
    fn sobel_masks() {
        let sx = Mask::sobel_x();
        let sy = Mask::sobel_y();
        assert_eq!(sx.coeff_at(-1, 0), -2.0);
        assert_eq!(sx.coeff_at(1, 0), 2.0);
        assert_eq!(sy.coeff_at(0, -1), -2.0);
        assert!(sx.sum().abs() < 1e-6);
        // x/y derivative masks are transposes of each other.
        for dy in -1..=1i64 {
            for dx in -1..=1i64 {
                assert_eq!(sx.coeff_at(dx, dy), sy.coeff_at(dy, dx));
            }
        }
    }

    #[test]
    fn atrous_window_sizes() {
        let base = Mask::gaussian(3, 0.85).unwrap();
        // Dilations 1, 2, 4, 8 give the paper's 3, 5, 9, 17 windows.
        for (d, expect) in [(1usize, 3usize), (2, 5), (4, 9), (8, 17)] {
            let m = Mask::atrous(&base, d).unwrap();
            assert_eq!(m.width(), expect, "dilation {d}");
            assert_eq!(m.height(), expect);
            // Coefficient mass is preserved.
            assert!((m.sum() - base.sum()).abs() < 1e-5);
            // Only 9 non-zero cells regardless of window size.
            assert_eq!(m.domain().popcount(), 9);
            // Corner of the dilated grid carries the base corner coefficient.
            assert_eq!(m.coeff_at(-(d as i64), -(d as i64)), base.coeff_at(-1, -1));
            assert_eq!(m.coeff_at(0, 0), base.coeff_at(0, 0));
        }
    }

    #[test]
    fn domain_from_mask_sparsity() {
        let m = Mask::laplace(3).unwrap();
        let d = m.domain();
        assert_eq!(d.popcount(), 5); // 4-neighbour + centre
        assert!(d.active_at(0, 0));
        assert!(d.active_at(0, -1));
        assert!(!d.active_at(-1, -1));
        let offs: Vec<_> = d.iter_offsets().collect();
        assert_eq!(offs, vec![(0, -1), (-1, 0), (0, 0), (1, 0), (0, 1)]);
    }

    #[test]
    fn full_domain() {
        let d = Domain::full(3, 5).unwrap();
        assert_eq!(d.popcount(), 15);
        assert_eq!(d.radius_x(), 1);
        assert_eq!(d.radius_y(), 2);
        assert!(Domain::full(4, 3).is_err());
    }

    #[test]
    fn coeff_at_centred_indexing() {
        let m = Mask::square(3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]).unwrap();
        assert_eq!(m.coeff_at(-1, -1), 1.0);
        assert_eq!(m.coeff_at(0, 0), 5.0);
        assert_eq!(m.coeff_at(1, 1), 9.0);
        assert_eq!(m.coeff_at(1, -1), 3.0);
    }
}

#[cfg(test)]
mod separability_tests {
    use super::*;
    use crate::border::BorderSpec;
    use crate::convolve::convolve;
    use crate::generator::ImageGenerator;

    #[test]
    fn gaussian_separates_and_recombines() {
        let g = Mask::gaussian(7, 1.4).unwrap();
        let (col, row) = g.separate().expect("separable");
        assert_eq!((col.width(), col.height()), (1, 7));
        assert_eq!((row.width(), row.height()), (7, 1));
        // Two 1D passes equal the 2D pass.
        let img = ImageGenerator::new(13).uniform_noise::<f32>(40, 30);
        let spec = BorderSpec::mirror();
        let two_d = convolve(&img, &g, spec);
        let horizontal = convolve(&img, &row, spec);
        let separable = convolve(&horizontal, &col, spec);
        // Borders differ slightly (1D passes re-filter border-extended
        // intermediate values), interiors must agree tightly.
        let interior_a = two_d.crop(crate::roi::Roi::new(3, 3, 34, 24)).unwrap();
        let interior_b = separable.crop(crate::roi::Roi::new(3, 3, 34, 24)).unwrap();
        assert!(interior_a.max_abs_diff(&interior_b).unwrap() < 1e-4);
    }

    #[test]
    fn box_filter_is_separable() {
        assert!(Mask::box_filter(5).unwrap().separate().is_some());
    }

    #[test]
    fn sobel_masks_are_separable() {
        // sobel_x = [1,2,1]^T x [-1,0,1].
        let (col, row) = Mask::sobel_x().separate().expect("rank 1");
        let prod: Vec<f32> = (0..3)
            .flat_map(|y| (0..3).map(move |x| (y, x)))
            .map(|(y, x)| col.coeff(0, y) * row.coeff(x, 0))
            .collect();
        let expect = [-1.0, 0.0, 1.0, -2.0, 0.0, 2.0, -1.0, 0.0, 1.0];
        for (a, b) in prod.iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn laplace_is_not_separable() {
        assert!(Mask::laplace(3).unwrap().separate().is_none());
        assert!(Mask::laplace(5).unwrap().separate().is_none());
    }

    #[test]
    fn atrous_dilated_gaussian_stays_separable() {
        let base = Mask::gaussian(3, 0.85).unwrap();
        let dil = Mask::atrous(&base, 2).unwrap();
        assert!(dil.separate().is_some(), "dilation preserves rank");
    }
}
