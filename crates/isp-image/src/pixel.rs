//! Pixel traits: the numeric element types an [`crate::Image`] may hold.
//!
//! The paper's filters operate on single-channel images (greyscale) stored as
//! `u8`, `u16`, `i16`, `i32`, or `f32`. The GPU simulator internally computes
//! in `f32`/`i32` just like the generated CUDA kernels, so every pixel type
//! must round-trip through `f32`.

/// A numeric pixel element.
///
/// Implementors are plain-old-data scalars. Conversion to and from `f32`
/// defines the arithmetic domain used by filters and by the simulated
/// kernels (CUDA kernels likewise `cvt` integer pixels to float registers).
pub trait Pixel: Copy + Clone + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// The additive identity for this pixel type.
    const ZERO: Self;
    /// The largest representable value (used for normalisation and I/O).
    const MAX_VALUE: f32;

    /// Widen to `f32` for filter arithmetic.
    fn to_f32(self) -> f32;
    /// Narrow from `f32`, saturating at the type's representable range and
    /// rounding to nearest for integer types.
    fn from_f32(v: f32) -> Self;
    /// Human-readable name of the storage type (for diagnostics).
    fn type_name() -> &'static str;
}

impl Pixel for u8 {
    const ZERO: Self = 0;
    const MAX_VALUE: f32 = 255.0;

    #[inline]
    fn to_f32(self) -> f32 {
        self as f32
    }

    #[inline]
    fn from_f32(v: f32) -> Self {
        v.round().clamp(0.0, 255.0) as u8
    }

    fn type_name() -> &'static str {
        "u8"
    }
}

impl Pixel for u16 {
    const ZERO: Self = 0;
    const MAX_VALUE: f32 = 65535.0;

    #[inline]
    fn to_f32(self) -> f32 {
        self as f32
    }

    #[inline]
    fn from_f32(v: f32) -> Self {
        v.round().clamp(0.0, 65535.0) as u16
    }

    fn type_name() -> &'static str {
        "u16"
    }
}

impl Pixel for i16 {
    const ZERO: Self = 0;
    const MAX_VALUE: f32 = i16::MAX as f32;

    #[inline]
    fn to_f32(self) -> f32 {
        self as f32
    }

    #[inline]
    fn from_f32(v: f32) -> Self {
        v.round().clamp(i16::MIN as f32, i16::MAX as f32) as i16
    }

    fn type_name() -> &'static str {
        "i16"
    }
}

impl Pixel for i32 {
    const ZERO: Self = 0;
    const MAX_VALUE: f32 = i32::MAX as f32;

    #[inline]
    fn to_f32(self) -> f32 {
        self as f32
    }

    #[inline]
    fn from_f32(v: f32) -> Self {
        // f32 cannot represent all of i32; saturate conservatively.
        if v >= i32::MAX as f32 {
            i32::MAX
        } else if v <= i32::MIN as f32 {
            i32::MIN
        } else {
            v.round() as i32
        }
    }

    fn type_name() -> &'static str {
        "i32"
    }
}

impl Pixel for f32 {
    const ZERO: Self = 0.0;
    const MAX_VALUE: f32 = 1.0;

    #[inline]
    fn to_f32(self) -> f32 {
        self
    }

    #[inline]
    fn from_f32(v: f32) -> Self {
        v
    }

    fn type_name() -> &'static str {
        "f32"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u8_roundtrip_and_saturation() {
        assert_eq!(u8::from_f32(0.0), 0);
        assert_eq!(u8::from_f32(255.0), 255);
        assert_eq!(u8::from_f32(300.0), 255);
        assert_eq!(u8::from_f32(-4.0), 0);
        assert_eq!(u8::from_f32(127.4), 127);
        assert_eq!(u8::from_f32(127.6), 128);
        assert_eq!(200u8.to_f32(), 200.0);
    }

    #[test]
    fn u16_roundtrip_and_saturation() {
        assert_eq!(u16::from_f32(65535.0), 65535);
        assert_eq!(u16::from_f32(70000.0), 65535);
        assert_eq!(u16::from_f32(-1.0), 0);
        assert_eq!(1234u16.to_f32(), 1234.0);
    }

    #[test]
    fn i16_saturation_both_ends() {
        assert_eq!(i16::from_f32(40000.0), i16::MAX);
        assert_eq!(i16::from_f32(-40000.0), i16::MIN);
        assert_eq!(i16::from_f32(-12.0), -12);
    }

    #[test]
    fn i32_saturation() {
        assert_eq!(i32::from_f32(f32::MAX), i32::MAX);
        assert_eq!(i32::from_f32(f32::MIN), i32::MIN);
        assert_eq!(i32::from_f32(42.0), 42);
        assert_eq!(i32::from_f32(-42.49), -42);
    }

    #[test]
    fn f32_identity() {
        assert_eq!(f32::from_f32(0.25), 0.25);
        assert_eq!(0.75f32.to_f32(), 0.75);
    }

    #[test]
    fn zero_constants() {
        assert_eq!(u8::ZERO, 0);
        assert_eq!(f32::ZERO, 0.0);
        assert_eq!(i32::ZERO, 0);
    }

    #[test]
    fn type_names() {
        assert_eq!(u8::type_name(), "u8");
        assert_eq!(f32::type_name(), "f32");
        assert_eq!(i16::type_name(), "i16");
    }
}
