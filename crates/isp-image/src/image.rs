//! Row-major single-channel image container with stride support.

use crate::error::ImageError;
use crate::pixel::Pixel;
use crate::roi::Roi;

/// A two-dimensional, single-channel image stored row-major.
///
/// The container owns its pixels and supports an explicit row stride so that
/// padded layouts (as produced by `cudaMallocPitch`-style allocators) can be
/// represented. Coordinates are `(x, y)` with the origin in the top-left
/// corner, matching the paper's iteration space `x in [0, sx), y in [0, sy)`.
#[derive(Clone, PartialEq)]
pub struct Image<T: Pixel> {
    width: usize,
    height: usize,
    stride: usize,
    data: Vec<T>,
}

impl<T: Pixel> Image<T> {
    /// Create an image filled with `T::ZERO`.
    pub fn zeros(width: usize, height: usize) -> Self {
        Self::filled(width, height, T::ZERO)
    }

    /// Create an image where every pixel is `value`.
    pub fn filled(width: usize, height: usize, value: T) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        Image {
            width,
            height,
            stride: width,
            data: vec![value; width * height],
        }
    }

    /// Create an image by evaluating `f(x, y)` for every pixel.
    ///
    /// ```
    /// use isp_image::Image;
    /// let ramp = Image::<u8>::from_fn(4, 2, |x, y| (y * 4 + x) as u8);
    /// assert_eq!(ramp.get(3, 1), 7);
    /// ```
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        Image {
            width,
            height,
            stride: width,
            data,
        }
    }

    /// Wrap an existing tightly-packed buffer (stride == width).
    pub fn from_vec(width: usize, height: usize, data: Vec<T>) -> Result<Self, ImageError> {
        if width == 0 || height == 0 {
            return Err(ImageError::InvalidDimensions { width, height });
        }
        let expected = width
            .checked_mul(height)
            .ok_or(ImageError::InvalidDimensions { width, height })?;
        if data.len() != expected {
            return Err(ImageError::BufferSizeMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Image {
            width,
            height,
            stride: width,
            data,
        })
    }

    /// Wrap a strided buffer. `data.len()` must equal `stride * height` and
    /// `stride >= width`.
    pub fn from_vec_strided(
        width: usize,
        height: usize,
        stride: usize,
        data: Vec<T>,
    ) -> Result<Self, ImageError> {
        if width == 0 || height == 0 || stride < width {
            return Err(ImageError::InvalidDimensions { width, height });
        }
        let expected = stride
            .checked_mul(height)
            .ok_or(ImageError::InvalidDimensions { width, height })?;
        if data.len() != expected {
            return Err(ImageError::BufferSizeMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Image {
            width,
            height,
            stride,
            data,
        })
    }

    /// Image width in pixels (`sx` in the paper).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels (`sy` in the paper).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Row stride in elements (>= width).
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// `(width, height)` pair.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Total number of addressable pixels (`width * height`).
    #[inline]
    pub fn len(&self) -> usize {
        self.width * self.height
    }

    /// Always false: zero-sized images cannot be constructed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Read the pixel at `(x, y)`. Panics when out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> T {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[y * self.stride + x]
    }

    /// Read without bounds checking beyond the underlying slice index.
    #[inline]
    pub fn get_unchecked(&self, x: usize, y: usize) -> T {
        self.data[y * self.stride + x]
    }

    /// Write the pixel at `(x, y)`. Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: T) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[y * self.stride + x] = value;
    }

    /// Borrow one row (only the `width` visible pixels, not padding).
    #[inline]
    pub fn row(&self, y: usize) -> &[T] {
        assert!(y < self.height, "row {y} out of bounds");
        let start = y * self.stride;
        &self.data[start..start + self.width]
    }

    /// Mutably borrow one row.
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [T] {
        assert!(y < self.height, "row {y} out of bounds");
        let start = y * self.stride;
        &mut self.data[start..start + self.width]
    }

    /// Raw backing storage, including stride padding.
    #[inline]
    pub fn raw(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw backing storage.
    #[inline]
    pub fn raw_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Copy out a tightly-packed `Vec` (drops stride padding).
    pub fn to_packed_vec(&self) -> Vec<T> {
        if self.stride == self.width {
            return self.data.clone();
        }
        let mut out = Vec::with_capacity(self.width * self.height);
        for y in 0..self.height {
            out.extend_from_slice(self.row(y));
        }
        out
    }

    /// Iterate over `(x, y, value)` in row-major order.
    pub fn pixels(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.height)
            .flat_map(move |y| (0..self.width).map(move |x| (x, y, self.get_unchecked(x, y))))
    }

    /// Apply `f` to every pixel, producing a new image of another pixel type.
    pub fn map<U: Pixel>(&self, mut f: impl FnMut(T) -> U) -> Image<U> {
        Image::from_fn(self.width, self.height, |x, y| f(self.get_unchecked(x, y)))
    }

    /// Convert storage type via the `f32` arithmetic domain.
    pub fn convert<U: Pixel>(&self) -> Image<U> {
        self.map(|p| U::from_f32(p.to_f32()))
    }

    /// Extract a copied sub-image described by `roi`.
    pub fn crop(&self, roi: Roi) -> Result<Image<T>, ImageError> {
        roi.validate(self.width, self.height)?;
        Ok(Image::from_fn(roi.width, roi.height, |x, y| {
            self.get_unchecked(roi.x + x, roi.y + y)
        }))
    }

    /// Maximum absolute difference against another image of identical size,
    /// measured in the `f32` domain. Used pervasively by correctness tests.
    pub fn max_abs_diff(&self, other: &Image<T>) -> Result<f32, ImageError> {
        if self.dims() != other.dims() {
            return Err(ImageError::SizeMismatch {
                left: self.dims(),
                right: other.dims(),
            });
        }
        let mut max = 0.0f32;
        for y in 0..self.height {
            for x in 0..self.width {
                let d =
                    (self.get_unchecked(x, y).to_f32() - other.get_unchecked(x, y).to_f32()).abs();
                if d > max {
                    max = d;
                }
            }
        }
        Ok(max)
    }

    /// Count pixels differing by more than `tol` in the `f32` domain.
    pub fn count_diff(&self, other: &Image<T>, tol: f32) -> Result<usize, ImageError> {
        if self.dims() != other.dims() {
            return Err(ImageError::SizeMismatch {
                left: self.dims(),
                right: other.dims(),
            });
        }
        let mut n = 0;
        for y in 0..self.height {
            for x in 0..self.width {
                let d =
                    (self.get_unchecked(x, y).to_f32() - other.get_unchecked(x, y).to_f32()).abs();
                if d > tol {
                    n += 1;
                }
            }
        }
        Ok(n)
    }

    /// Mean pixel value in the `f32` domain.
    pub fn mean(&self) -> f64 {
        let mut acc = 0.0f64;
        for y in 0..self.height {
            for x in 0..self.width {
                acc += self.get_unchecked(x, y).to_f32() as f64;
            }
        }
        acc / (self.len() as f64)
    }

    /// Minimum and maximum pixel values in the `f32` domain.
    pub fn min_max(&self) -> (f32, f32) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for y in 0..self.height {
            for x in 0..self.width {
                let v = self.get_unchecked(x, y).to_f32();
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        (lo, hi)
    }
}

impl<T: Pixel> std::fmt::Debug for Image<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Image<{}> {{ {}x{}, stride {} }}",
            T::type_name(),
            self.width,
            self.height,
            self.stride
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_filled() {
        let img = Image::<u8>::zeros(4, 3);
        assert_eq!(img.dims(), (4, 3));
        assert_eq!(img.len(), 12);
        assert!(img.pixels().all(|(_, _, v)| v == 0));
        let img = Image::<f32>::filled(2, 2, 0.5);
        assert!(img.pixels().all(|(_, _, v)| v == 0.5));
    }

    #[test]
    fn from_fn_coordinates() {
        let img = Image::<i32>::from_fn(5, 4, |x, y| (y * 10 + x) as i32);
        assert_eq!(img.get(0, 0), 0);
        assert_eq!(img.get(4, 0), 4);
        assert_eq!(img.get(0, 3), 30);
        assert_eq!(img.get(4, 3), 34);
    }

    #[test]
    fn from_vec_validation() {
        assert!(Image::<u8>::from_vec(2, 2, vec![1, 2, 3, 4]).is_ok());
        assert!(matches!(
            Image::<u8>::from_vec(2, 2, vec![1, 2, 3]),
            Err(ImageError::BufferSizeMismatch {
                expected: 4,
                actual: 3
            })
        ));
        assert!(matches!(
            Image::<u8>::from_vec(0, 2, vec![]),
            Err(ImageError::InvalidDimensions { .. })
        ));
    }

    #[test]
    fn strided_layout() {
        // 3x2 image with stride 4: row padding must be skipped.
        let data = vec![1u8, 2, 3, 99, 4, 5, 6, 99];
        let img = Image::from_vec_strided(3, 2, 4, data).unwrap();
        assert_eq!(img.get(0, 0), 1);
        assert_eq!(img.get(2, 1), 6);
        assert_eq!(img.row(1), &[4, 5, 6]);
        assert_eq!(img.to_packed_vec(), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn strided_rejects_narrow_stride() {
        assert!(Image::<u8>::from_vec_strided(4, 2, 3, vec![0; 6]).is_err());
    }

    #[test]
    fn set_get_roundtrip() {
        let mut img = Image::<u16>::zeros(8, 8);
        img.set(3, 5, 777);
        assert_eq!(img.get(3, 5), 777);
        assert_eq!(img.get(5, 3), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let img = Image::<u8>::zeros(2, 2);
        let _ = img.get(2, 0);
    }

    #[test]
    fn map_and_convert() {
        let img = Image::<u8>::from_fn(3, 3, |x, _| (x * 100) as u8);
        let doubled = img.map(|p| p.saturating_add(p));
        assert_eq!(doubled.get(1, 0), 200);
        let f: Image<f32> = img.convert();
        assert_eq!(f.get(2, 1), 200.0);
        let back: Image<u8> = f.convert();
        assert_eq!(back.get(2, 2), 200);
    }

    #[test]
    fn crop_respects_roi() {
        let img = Image::<i32>::from_fn(6, 6, |x, y| (y * 6 + x) as i32);
        let sub = img.crop(Roi::new(2, 3, 3, 2)).unwrap();
        assert_eq!(sub.dims(), (3, 2));
        assert_eq!(sub.get(0, 0), 3 * 6 + 2);
        assert_eq!(sub.get(2, 1), 4 * 6 + 4);
        assert!(img.crop(Roi::new(5, 5, 3, 3)).is_err());
    }

    #[test]
    fn diff_metrics() {
        let a = Image::<f32>::filled(4, 4, 1.0);
        let mut b = a.clone();
        b.set(1, 1, 1.5);
        b.set(2, 2, 0.9);
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.5);
        assert_eq!(a.count_diff(&b, 0.2).unwrap(), 1);
        assert_eq!(a.count_diff(&b, 0.05).unwrap(), 2);
        let c = Image::<f32>::filled(3, 4, 1.0);
        assert!(a.max_abs_diff(&c).is_err());
    }

    #[test]
    fn stats() {
        let img = Image::<u8>::from_fn(2, 2, |x, y| (x + 2 * y) as u8 * 10);
        assert!((img.mean() - 15.0).abs() < 1e-9);
        assert_eq!(img.min_max(), (0.0, 30.0));
    }

    #[test]
    fn pixels_iterator_order() {
        let img = Image::<u8>::from_fn(2, 2, |x, y| (y * 2 + x) as u8);
        let collected: Vec<_> = img.pixels().map(|(_, _, v)| v).collect();
        assert_eq!(collected, vec![0, 1, 2, 3]);
    }
}

/// Peak signal-to-noise ratio between two images (dB), with the peak taken
/// from the pixel type's nominal maximum. `None` when the images are
/// identical (infinite PSNR) — callers usually treat that as "perfect".
pub fn psnr<T: Pixel>(a: &Image<T>, b: &Image<T>) -> Result<Option<f64>, ImageError> {
    if a.dims() != b.dims() {
        return Err(ImageError::SizeMismatch {
            left: a.dims(),
            right: b.dims(),
        });
    }
    let mut mse = 0.0f64;
    for y in 0..a.height() {
        for x in 0..a.width() {
            let d = (a.get_unchecked(x, y).to_f32() - b.get_unchecked(x, y).to_f32()) as f64;
            mse += d * d;
        }
    }
    mse /= a.len() as f64;
    if mse == 0.0 {
        return Ok(None);
    }
    let peak = T::MAX_VALUE as f64;
    Ok(Some(10.0 * (peak * peak / mse).log10()))
}

#[cfg(test)]
mod psnr_tests {
    use super::*;

    #[test]
    fn identical_images_have_infinite_psnr() {
        let a = Image::<u8>::filled(8, 8, 100);
        assert_eq!(psnr(&a, &a).unwrap(), None);
    }

    #[test]
    fn known_mse_gives_expected_db() {
        let a = Image::<u8>::filled(4, 4, 100);
        let b = Image::<u8>::filled(4, 4, 110); // MSE = 100
        let db = psnr(&a, &b).unwrap().unwrap();
        // 10*log10(255^2/100) = 28.13 dB
        assert!((db - 28.13).abs() < 0.01, "{db}");
    }

    #[test]
    fn size_mismatch_errors() {
        let a = Image::<u8>::filled(4, 4, 0);
        let b = Image::<u8>::filled(4, 5, 0);
        assert!(psnr(&a, &b).is_err());
    }

    #[test]
    fn noisier_is_lower() {
        let a = Image::<f32>::filled(16, 16, 0.5);
        let mut slightly = a.clone();
        slightly.set(3, 3, 0.6);
        let mut very = a.clone();
        for x in 0..16 {
            very.set(x, 8, 0.9);
        }
        let p1 = psnr(&a, &slightly).unwrap().unwrap();
        let p2 = psnr(&a, &very).unwrap().unwrap();
        assert!(p1 > p2);
    }
}
