//! # isp-image
//!
//! Image substrate for the iteration-space-partitioning (ISP) border handling
//! reproduction: image containers, pixel traits, the four border handling
//! patterns from the paper (Clamp, Mirror, Repeat, Constant), bordered
//! accessors, mask/domain types, a golden (CPU) reference convolution engine,
//! synthetic image generators, and minimal PGM/PPM I/O.
//!
//! Everything in this crate is *reference semantics*: the GPU simulator and
//! the DSL-generated kernels are checked against the functions defined here.
//!
//! ```
//! use isp_image::{convolve, BorderSpec, ImageGenerator, Mask};
//!
//! let image = ImageGenerator::new(7).natural::<f32>(64, 64);
//! let mask = Mask::gaussian(5, 1.0)?;
//! let smoothed = convolve(&image, &mask, BorderSpec::mirror());
//! assert_eq!(smoothed.dims(), image.dims());
//! # Ok::<(), isp_image::ImageError>(())
//! ```

pub mod accessor;
pub mod border;
pub mod convolve;
pub mod error;
pub mod generator;
pub mod image;
pub mod io;
pub mod mask;
pub mod partitioned;
pub mod pixel;
pub mod roi;

pub use accessor::BorderedImage;
pub use border::{naive_checks_per_access, resolve_1d, resolve_2d, BorderPattern, BorderSpec};
pub use convolve::{apply_local_op, bilateral_reference, convolve, convolve_par};
pub use error::ImageError;
pub use generator::ImageGenerator;
pub use image::{psnr, Image};
pub use mask::{Domain, Mask};
pub use partitioned::convolve_partitioned;
pub use pixel::Pixel;
pub use roi::Roi;
