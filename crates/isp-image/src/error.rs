//! Error type shared across the image substrate.

use std::fmt;

/// Errors produced by image construction, indexing, and I/O.
#[derive(Debug)]
pub enum ImageError {
    /// Image dimensions were zero or would overflow the address space.
    InvalidDimensions { width: usize, height: usize },
    /// A raw buffer did not match `width * height` (or stride) elements.
    BufferSizeMismatch { expected: usize, actual: usize },
    /// A region of interest fell outside its parent image.
    RoiOutOfBounds {
        x: usize,
        y: usize,
        width: usize,
        height: usize,
        parent_width: usize,
        parent_height: usize,
    },
    /// Mask dimensions must be odd in both axes so the anchor is centred.
    EvenMaskDimensions { width: usize, height: usize },
    /// A mask/domain coefficient buffer did not match its dimensions.
    MaskSizeMismatch { expected: usize, actual: usize },
    /// Two images that had to agree in size did not.
    SizeMismatch {
        left: (usize, usize),
        right: (usize, usize),
    },
    /// An I/O failure while reading or writing an image file.
    Io(std::io::Error),
    /// A PGM/PPM stream was malformed.
    Format(String),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::InvalidDimensions { width, height } => {
                write!(f, "invalid image dimensions {width}x{height}")
            }
            ImageError::BufferSizeMismatch { expected, actual } => {
                write!(f, "buffer size mismatch: expected {expected}, got {actual}")
            }
            ImageError::RoiOutOfBounds {
                x,
                y,
                width,
                height,
                parent_width,
                parent_height,
            } => write!(
                f,
                "ROI {width}x{height}+{x}+{y} exceeds parent {parent_width}x{parent_height}"
            ),
            ImageError::EvenMaskDimensions { width, height } => {
                write!(f, "mask dimensions must be odd, got {width}x{height}")
            }
            ImageError::MaskSizeMismatch { expected, actual } => {
                write!(
                    f,
                    "mask coefficient count mismatch: expected {expected}, got {actual}"
                )
            }
            ImageError::SizeMismatch { left, right } => write!(
                f,
                "image size mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            ImageError::Io(e) => write!(f, "i/o error: {e}"),
            ImageError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for ImageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ImageError {
    fn from(e: std::io::Error) -> Self {
        ImageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ImageError::InvalidDimensions {
            width: 0,
            height: 4,
        };
        assert!(e.to_string().contains("0x4"));
        let e = ImageError::BufferSizeMismatch {
            expected: 16,
            actual: 15,
        };
        assert!(e.to_string().contains("16"));
        assert!(e.to_string().contains("15"));
        let e = ImageError::SizeMismatch {
            left: (4, 4),
            right: (8, 8),
        };
        assert!(e.to_string().contains("4x4"));
    }

    #[test]
    fn io_error_preserves_source() {
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e = ImageError::from(inner);
        assert!(std::error::Error::source(&e).is_some());
    }
}
