//! Rectangular region-of-interest descriptor.

use crate::error::ImageError;

/// A rectangular region of interest within an image, `width x height`
/// starting at pixel `(x, y)`.
///
/// ROIs describe the sub-grids the iteration space partitioner produces: each
/// of the nine ISP regions maps to one ROI of the output iteration space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Roi {
    /// Left edge (inclusive).
    pub x: usize,
    /// Top edge (inclusive).
    pub y: usize,
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
}

impl Roi {
    /// Construct a ROI. Zero-sized ROIs are legal (an ISP region may be
    /// empty, e.g. when the whole image fits into border blocks).
    pub fn new(x: usize, y: usize, width: usize, height: usize) -> Self {
        Roi {
            x,
            y,
            width,
            height,
        }
    }

    /// ROI covering a full `width x height` image.
    pub fn full(width: usize, height: usize) -> Self {
        Roi {
            x: 0,
            y: 0,
            width,
            height,
        }
    }

    /// Number of pixels covered.
    pub fn area(&self) -> usize {
        self.width * self.height
    }

    /// True when the ROI covers no pixels.
    pub fn is_empty(&self) -> bool {
        self.width == 0 || self.height == 0
    }

    /// Right edge (exclusive).
    pub fn x_end(&self) -> usize {
        self.x + self.width
    }

    /// Bottom edge (exclusive).
    pub fn y_end(&self) -> usize {
        self.y + self.height
    }

    /// Whether `(px, py)` lies inside the ROI.
    pub fn contains(&self, px: usize, py: usize) -> bool {
        px >= self.x && px < self.x_end() && py >= self.y && py < self.y_end()
    }

    /// Whether this ROI overlaps `other` in at least one pixel.
    pub fn intersects(&self, other: &Roi) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.x < other.x_end()
            && other.x < self.x_end()
            && self.y < other.y_end()
            && other.y < self.y_end()
    }

    /// Check the ROI fits within a `parent_width x parent_height` image.
    pub fn validate(&self, parent_width: usize, parent_height: usize) -> Result<(), ImageError> {
        let fits_x = self
            .x
            .checked_add(self.width)
            .is_some_and(|e| e <= parent_width);
        let fits_y = self
            .y
            .checked_add(self.height)
            .is_some_and(|e| e <= parent_height);
        if fits_x && fits_y {
            Ok(())
        } else {
            Err(ImageError::RoiOutOfBounds {
                x: self.x,
                y: self.y,
                width: self.width,
                height: self.height,
                parent_width,
                parent_height,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_geometry() {
        let r = Roi::new(2, 3, 4, 5);
        assert_eq!(r.area(), 20);
        assert_eq!(r.x_end(), 6);
        assert_eq!(r.y_end(), 8);
        assert!(!r.is_empty());
        assert!(Roi::new(0, 0, 0, 4).is_empty());
    }

    #[test]
    fn contains_edges() {
        let r = Roi::new(1, 1, 2, 2);
        assert!(r.contains(1, 1));
        assert!(r.contains(2, 2));
        assert!(!r.contains(3, 2));
        assert!(!r.contains(0, 1));
    }

    #[test]
    fn intersection() {
        let a = Roi::new(0, 0, 4, 4);
        let b = Roi::new(3, 3, 4, 4);
        let c = Roi::new(4, 0, 2, 2);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        // Empty ROIs never intersect.
        let e = Roi::new(1, 1, 0, 5);
        assert!(!a.intersects(&e));
    }

    #[test]
    fn validation() {
        assert!(Roi::new(0, 0, 8, 8).validate(8, 8).is_ok());
        assert!(Roi::new(1, 0, 8, 8).validate(8, 8).is_err());
        assert!(Roi::new(usize::MAX, 0, 2, 2).validate(8, 8).is_err());
        assert!(Roi::full(16, 16).validate(16, 16).is_ok());
    }
}
