//! Golden (CPU) reference filters.
//!
//! These are deliberately simple, obviously-correct implementations: every
//! simulated kernel variant (naive, ISP block-grained, ISP warp-grained) is
//! validated pixel-for-pixel against them. `convolve_par` additionally
//! parallelises rows with rayon for the wall-clock criterion benches.

use crate::accessor::BorderedImage;
use crate::border::BorderSpec;
use crate::image::Image;
use crate::mask::{Domain, Mask};
use crate::pixel::Pixel;
use rayon::prelude::*;

/// Reference convolution of `input` with `mask` under border handling `spec`.
///
/// Output pixel `(x, y) = sum over (dx, dy) in mask of
/// coeff(dx, dy) * bordered(x + dx, y + dy)`, skipping zero coefficients via
/// the mask's domain (as Hipacc's `iterate` does).
pub fn convolve<T: Pixel>(input: &Image<T>, mask: &Mask, spec: BorderSpec) -> Image<T> {
    let bordered = BorderedImage::new(input, spec);
    let domain = mask.domain();
    Image::from_fn(input.width(), input.height(), |x, y| {
        let mut acc = 0.0f32;
        for (dx, dy) in domain.iter_offsets() {
            acc += mask.coeff_at(dx, dy) * bordered.get_offset(x, y, dx, dy);
        }
        T::from_f32(acc)
    })
}

/// Row-parallel variant of [`convolve`] (identical results).
pub fn convolve_par<T: Pixel>(input: &Image<T>, mask: &Mask, spec: BorderSpec) -> Image<T> {
    let bordered = BorderedImage::new(input, spec);
    let domain = mask.domain();
    let (w, h) = input.dims();
    let offsets: Vec<(i64, i64, f32)> = domain
        .iter_offsets()
        .map(|(dx, dy)| (dx, dy, mask.coeff_at(dx, dy)))
        .collect();
    let rows: Vec<Vec<T>> = (0..h)
        .into_par_iter()
        .map(|y| {
            (0..w)
                .map(|x| {
                    let mut acc = 0.0f32;
                    for &(dx, dy, c) in &offsets {
                        acc += c * bordered.get_offset(x, y, dx, dy);
                    }
                    T::from_f32(acc)
                })
                .collect()
        })
        .collect();
    let mut data = Vec::with_capacity(w * h);
    for row in rows {
        data.extend(row);
    }
    Image::from_vec(w, h, data).expect("row-parallel convolution produced wrong pixel count")
}

/// Apply an arbitrary local operator: `f` receives the bordered input and the
/// centre coordinates and returns the output value in the `f32` domain.
///
/// This is the general form used by non-linear filters (bilateral) and by
/// multi-input point operators via closures capturing extra images.
pub fn apply_local_op<T: Pixel, U: Pixel>(
    input: &Image<T>,
    spec: BorderSpec,
    f: impl Fn(&BorderedImage<'_, T>, usize, usize) -> f32 + Sync,
) -> Image<U> {
    let bordered = BorderedImage::new(input, spec);
    let (w, h) = input.dims();
    let rows: Vec<Vec<U>> = (0..h)
        .into_par_iter()
        .map(|y| (0..w).map(|x| U::from_f32(f(&bordered, x, y))).collect())
        .collect();
    let mut data = Vec::with_capacity(w * h);
    for row in rows {
        data.extend(row);
    }
    Image::from_vec(w, h, data).expect("local op produced wrong pixel count")
}

/// Reference bilateral filter (the paper's motivating example, §IV-A).
///
/// `sigma_d` controls the spatial closeness component (precomputed, like the
/// Hipacc `Mask`), `sigma_r` the intensity similarity component (computed
/// per pixel pair with `expf`).
pub fn bilateral_reference<T: Pixel>(
    input: &Image<T>,
    window: usize,
    sigma_d: f32,
    sigma_r: f32,
    spec: BorderSpec,
) -> Image<T> {
    assert!(window % 2 == 1, "bilateral window must be odd");
    let r = (window / 2) as i64;
    let spatial = Mask::gaussian(window, sigma_d).expect("odd window");
    apply_local_op(input, spec, move |bordered, x, y| {
        let centre = bordered.get(x as i64, y as i64);
        let mut num = 0.0f32;
        let mut den = 0.0f32;
        for dy in -r..=r {
            for dx in -r..=r {
                let p = bordered.get_offset(x, y, dx, dy);
                let closeness = spatial.coeff_at(dx, dy);
                let diff = p - centre;
                let similarity = (-(diff * diff) / (2.0 * sigma_r * sigma_r)).exp();
                let w = closeness * similarity;
                num += w * p;
                den += w;
            }
        }
        num / den
    })
}

/// Check that a mask's domain matches an explicitly supplied domain (used by
/// DSL validation paths).
pub fn domain_matches(mask: &Mask, domain: &Domain) -> bool {
    mask.domain() == *domain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::border::BorderPattern;
    use crate::generator::ImageGenerator;

    #[test]
    fn identity_mask_is_identity() {
        let img = Image::<f32>::from_fn(8, 8, |x, y| (x * 8 + y) as f32);
        let ident = Mask::square(3, &[0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        let out = convolve(&img, &ident, BorderSpec::clamp());
        assert_eq!(out.max_abs_diff(&img).unwrap(), 0.0);
    }

    #[test]
    fn box_filter_on_constant_image_is_constant_with_reindexing_borders() {
        let img = Image::<f32>::filled(16, 16, 3.0);
        let mask = Mask::box_filter(5).unwrap();
        for spec in [
            BorderSpec::clamp(),
            BorderSpec::mirror(),
            BorderSpec::repeat(),
        ] {
            let out = convolve(&img, &mask, spec);
            let (lo, hi) = out.min_max();
            assert!(
                (lo - 3.0).abs() < 1e-5 && (hi - 3.0).abs() < 1e-5,
                "{:?}",
                spec.pattern
            );
        }
        // Constant borders with a different fill value darken the edges.
        let out = convolve(&img, &mask, BorderSpec::constant(0.0));
        assert!(out.get(0, 0).to_f32() < 3.0);
        assert!((out.get(8, 8).to_f32() - 3.0).abs() < 1e-5);
    }

    #[test]
    fn border_pattern_changes_only_border_pixels() {
        let img = ImageGenerator::new(42).uniform_noise::<u8>(32, 32);
        let mask = Mask::gaussian(5, 1.0).unwrap();
        let a = convolve(&img, &mask, BorderSpec::clamp());
        let b = convolve(&img, &mask, BorderSpec::repeat());
        // Interior (further than the radius from any edge) must agree.
        let interior_a = a.crop(crate::roi::Roi::new(2, 2, 28, 28)).unwrap();
        let interior_b = b.crop(crate::roi::Roi::new(2, 2, 28, 28)).unwrap();
        assert_eq!(interior_a.max_abs_diff(&interior_b).unwrap(), 0.0);
        // But the borders differ for noise input.
        assert!(a.max_abs_diff(&b).unwrap() > 0.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let img = ImageGenerator::new(7).uniform_noise::<f32>(33, 17);
        let mask = Mask::gaussian(7, 1.5).unwrap();
        for pat in BorderPattern::ALL {
            let spec = BorderSpec {
                pattern: pat,
                constant: 0.25,
            };
            let seq = convolve(&img, &mask, spec);
            let par = convolve_par(&img, &mask, spec);
            assert_eq!(seq.max_abs_diff(&par).unwrap(), 0.0, "{pat}");
        }
    }

    #[test]
    fn sparse_domain_skips_zero_coeffs() {
        // Atrous mask touches only 9 cells; a dense equivalent must agree.
        let base = Mask::gaussian(3, 0.85).unwrap();
        let sparse = Mask::atrous(&base, 4).unwrap();
        let img = ImageGenerator::new(3).uniform_noise::<f32>(24, 24);
        let out = convolve(&img, &sparse, BorderSpec::mirror());
        // Manual dense evaluation.
        let bordered = BorderedImage::new(&img, BorderSpec::mirror());
        let expect = Image::<f32>::from_fn(24, 24, |x, y| {
            let mut acc = 0.0;
            for dy in -4i64..=4 {
                for dx in -4i64..=4 {
                    acc += sparse.coeff_at(dx, dy) * bordered.get_offset(x, y, dx, dy);
                }
            }
            acc
        });
        assert!(out.max_abs_diff(&expect).unwrap() < 1e-4);
    }

    #[test]
    fn bilateral_preserves_constant_regions() {
        let img = Image::<f32>::filled(16, 16, 0.5);
        let out = bilateral_reference(&img, 5, 1.0, 0.1, BorderSpec::clamp());
        assert!(out.max_abs_diff(&img).unwrap() < 1e-5);
    }

    #[test]
    fn bilateral_preserves_edges_better_than_gaussian() {
        // Step edge image.
        let img = Image::<f32>::from_fn(32, 32, |x, _| if x < 16 { 0.0 } else { 1.0 });
        let bil = bilateral_reference(&img, 9, 2.0, 0.05, BorderSpec::clamp());
        let gau = convolve(&img, &Mask::gaussian(9, 2.0).unwrap(), BorderSpec::clamp());
        // Sample right at the edge: bilateral keeps it sharp.
        let bil_edge = (bil.get(15, 16) - bil.get(16, 16)).abs();
        let gau_edge = (gau.get(15, 16) - gau.get(16, 16)).abs();
        assert!(
            bil_edge > gau_edge,
            "bilateral {bil_edge} vs gaussian {gau_edge}"
        );
        assert!(bil_edge > 0.8);
    }

    #[test]
    fn bilateral_window_larger_than_image_mirror() {
        // The ISSUE's regression case: a 13x13 bilateral window on an 8x8
        // image under Mirror drives offsets to +/-6 against both axes. Every
        // access must resolve in bounds (the old single-reflection formula
        // read past the opposite edge through `get_unchecked` in release
        // builds once radius >= size) and outputs must stay in the input's
        // convex hull, since bilateral weights are a convex combination.
        let img = ImageGenerator::new(11).uniform_noise::<f32>(8, 8);
        let (lo, hi) = img.min_max();
        let out = bilateral_reference(&img, 13, 3.0, 0.2, BorderSpec::mirror());
        assert_eq!(out.dims(), (8, 8));
        let (olo, ohi) = out.min_max();
        assert!(
            olo >= lo - 1e-5 && ohi <= hi + 1e-5,
            "[{olo}, {ohi}] escapes [{lo}, {hi}]"
        );
    }

    #[test]
    fn window_radius_exceeding_image_size_mirror() {
        // Radius 6 > size 4: offsets reach -6 and +9, strictly outside the
        // single-reflection validity window [-size, 2*size). With the total
        // fold this must agree with a hand-evaluated dense sum over the
        // reference resolver.
        let img = ImageGenerator::new(5).uniform_noise::<f32>(4, 4);
        let out = bilateral_reference(&img, 13, 3.0, 0.2, BorderSpec::mirror());
        assert_eq!(out.dims(), (4, 4));
        let (lo, hi) = img.min_max();
        let (olo, ohi) = out.min_max();
        assert!(olo >= lo - 1e-5 && ohi <= hi + 1e-5);

        // Linear case, checked value-for-value.
        let mask = Mask::box_filter(13).unwrap();
        let got = convolve(&img, &mask, BorderSpec::mirror());
        let bordered = BorderedImage::new(&img, BorderSpec::mirror());
        let expect = Image::<f32>::from_fn(4, 4, |x, y| {
            let mut acc = 0.0;
            for dy in -6i64..=6 {
                for dx in -6i64..=6 {
                    acc += bordered.get_offset(x, y, dx, dy) / 169.0;
                }
            }
            acc
        });
        assert!(got.max_abs_diff(&expect).unwrap() < 1e-4);
    }

    #[test]
    fn apply_local_op_type_conversion() {
        let img = Image::<u8>::filled(4, 4, 100);
        let out: Image<f32> = apply_local_op(&img, BorderSpec::clamp(), |b, x, y| {
            b.get(x as i64, y as i64) / 200.0
        });
        assert_eq!(out.get(2, 2), 0.5);
    }

    #[test]
    fn domain_matches_helper() {
        let m = Mask::laplace(3).unwrap();
        assert!(domain_matches(&m, &m.domain()));
        assert!(!domain_matches(&m, &Domain::full(3, 3).unwrap()));
    }
}
