//! Criterion wall-clock benchmarks of the host-side substrate: DSL
//! compilation of each variant and the golden reference filters.
//!
//! Run with: `cargo bench -p isp-bench --bench kernels`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isp_core::Variant;
use isp_dsl::Compiler;
use isp_image::{convolve_par, convolve_partitioned, BorderPattern, BorderSpec, ImageGenerator, Mask};

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    g.sample_size(10);
    for (name, spec) in [
        ("gaussian3", isp_filters::gaussian::spec(3)),
        ("laplace5", isp_filters::laplace::spec(5)),
        ("bilateral13", isp_filters::bilateral::spec(13)),
    ] {
        g.bench_function(BenchmarkId::new("naive+isp", name), |b| {
            b.iter(|| {
                std::hint::black_box(Compiler::new().compile(
                    &spec,
                    BorderPattern::Clamp,
                    Variant::IspBlock,
                ))
            })
        });
    }
    g.finish();
}

fn bench_reference_filters(c: &mut Criterion) {
    let mut g = c.benchmark_group("reference");
    g.sample_size(10);
    let img = ImageGenerator::new(1).natural::<f32>(512, 512);
    for pattern in BorderPattern::ALL {
        let spec = BorderSpec { pattern, constant: 0.2 };
        let mask = Mask::gaussian(5, 1.0).unwrap();
        g.bench_function(BenchmarkId::new("gauss5_512", pattern.name()), |b| {
            b.iter(|| std::hint::black_box(convolve_par(&img, &mask, spec)))
        });
    }
    g.finish();
}

/// Index-set splitting on the host CPU (paper §III-B, Listing 2): this is a
/// REAL-hardware result — the partitioned convolution skips border checks in
/// the interior and should beat the checked-everywhere baseline wall-clock.
fn bench_cpu_index_set_splitting(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu_iss");
    g.sample_size(10);
    let img = ImageGenerator::new(2).natural::<f32>(1024, 1024);
    let mask = Mask::gaussian(5, 1.0).unwrap();
    for pattern in [BorderPattern::Clamp, BorderPattern::Repeat] {
        let spec = BorderSpec { pattern, constant: 0.0 };
        g.bench_function(BenchmarkId::new("naive_1024", pattern.name()), |b| {
            b.iter(|| std::hint::black_box(convolve_par(&img, &mask, spec)))
        });
        g.bench_function(BenchmarkId::new("partitioned_1024", pattern.name()), |b| {
            b.iter(|| std::hint::black_box(convolve_partitioned(&img, &mask, spec)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_compile, bench_reference_filters, bench_cpu_index_set_splitting);
criterion_main!(benches);
