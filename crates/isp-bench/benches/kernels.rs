//! Wall-clock benchmarks of the host-side substrate: DSL compilation of
//! each variant and the golden reference filters. Self-timed (median of N
//! runs) so the harness needs no external bench framework.
//!
//! Run with: `cargo bench -p isp-bench --bench kernels`

use isp_core::Variant;
use isp_dsl::Compiler;
use isp_image::{
    convolve_par, convolve_partitioned, BorderPattern, BorderSpec, ImageGenerator, Mask,
};
use std::time::Instant;

/// Median wall-clock time of `runs` invocations of `f`, in milliseconds.
fn time_ms<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn bench_compile() {
    println!("== compile (median of 10, ms)");
    for (name, spec) in [
        ("gaussian3", isp_filters::gaussian::spec(3)),
        ("laplace5", isp_filters::laplace::spec(5)),
        ("bilateral13", isp_filters::bilateral::spec(13)),
    ] {
        let ms = time_ms(10, || {
            Compiler::new().compile(&spec, BorderPattern::Clamp, Variant::IspBlock)
        });
        println!("  naive+isp/{name:<12} {ms:9.3}");
    }
}

fn bench_reference_filters() {
    println!("== reference gauss5 512^2 (median of 10, ms)");
    let img = ImageGenerator::new(1).natural::<f32>(512, 512);
    let mask = Mask::gaussian(5, 1.0).unwrap();
    for pattern in BorderPattern::ALL {
        let spec = BorderSpec {
            pattern,
            constant: 0.2,
        };
        let ms = time_ms(10, || convolve_par(&img, &mask, spec));
        println!("  gauss5_512/{:<9} {ms:9.3}", pattern.name());
    }
}

/// Index-set splitting on the host CPU (paper §III-B, Listing 2): this is a
/// REAL-hardware result — the partitioned convolution skips border checks in
/// the interior and should beat the checked-everywhere baseline wall-clock.
fn bench_cpu_index_set_splitting() {
    println!("== cpu index-set splitting 1024^2 (median of 10, ms)");
    let img = ImageGenerator::new(2).natural::<f32>(1024, 1024);
    let mask = Mask::gaussian(5, 1.0).unwrap();
    for pattern in [BorderPattern::Clamp, BorderPattern::Repeat] {
        let spec = BorderSpec {
            pattern,
            constant: 0.0,
        };
        let naive = time_ms(10, || convolve_par(&img, &mask, spec));
        let part = time_ms(10, || convolve_partitioned(&img, &mask, spec));
        println!(
            "  {:<9} naive {naive:9.3}  partitioned {part:9.3}  speedup {:5.2}x",
            pattern.name(),
            naive / part
        );
    }
}

fn main() {
    bench_compile();
    bench_reference_filters();
    bench_cpu_index_set_splitting();
}
