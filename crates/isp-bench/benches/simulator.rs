//! Criterion wall-clock benchmarks of the GPU simulator itself: exhaustive
//! warp interpretation throughput and region-sampled launch latency — the
//! numbers that justify the two-mode design.
//!
//! Run with: `cargo bench -p isp-bench --bench simulator`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isp_core::Variant;
use isp_dsl::runner::{run_filter, ExecMode};
use isp_dsl::Compiler;
use isp_image::{BorderPattern, ImageGenerator};
use isp_sim::{DeviceSpec, Gpu};

fn bench_exhaustive(c: &mut Criterion) {
    let mut g = c.benchmark_group("exhaustive_interpretation");
    g.sample_size(10);
    let gpu = Gpu::new(DeviceSpec::gtx680());
    let spec = isp_filters::gaussian::spec(3);
    let ck = Compiler::new().compile(&spec, BorderPattern::Clamp, Variant::IspBlock);
    for size in [64usize, 128, 256] {
        let img = ImageGenerator::new(3).natural::<f32>(size, size);
        g.bench_function(BenchmarkId::new("gauss3_naive", size), |b| {
            b.iter(|| {
                run_filter(
                    &gpu,
                    &ck,
                    Variant::Naive,
                    &[&img],
                    &[],
                    0.0,
                    (32, 4),
                    ExecMode::Exhaustive,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_sampled(c: &mut Criterion) {
    let mut g = c.benchmark_group("region_sampled_launch");
    g.sample_size(10);
    let gpu = Gpu::new(DeviceSpec::rtx2080());
    let spec = isp_filters::bilateral::spec(13);
    let ck = Compiler::new().compile(&spec, BorderPattern::Mirror, Variant::IspBlock);
    let params = [isp_filters::bilateral::range_param(isp_filters::bilateral::DEFAULT_SIGMA_R)];
    for size in [1024usize, 4096] {
        let img = ImageGenerator::new(3).natural::<f32>(size, size);
        g.bench_function(BenchmarkId::new("bilateral13_isp", size), |b| {
            b.iter(|| {
                run_filter(
                    &gpu,
                    &ck,
                    Variant::IspBlock,
                    &[&img],
                    &params,
                    0.0,
                    (32, 4),
                    ExecMode::Sampled,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_exhaustive, bench_sampled);
criterion_main!(benches);
