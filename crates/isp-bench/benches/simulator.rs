//! Wall-clock benchmarks of the GPU simulator and the execution engine:
//! exhaustive warp interpretation throughput, region-sampled launch latency,
//! and the cached engine sweep vs the uncached compile-per-point baseline —
//! the numbers that justify the two-mode design and the `isp-exec` layer.
//!
//! Run with: `cargo bench -p isp-bench --bench simulator`

use isp_core::Variant;
use isp_dsl::runner::{run_filter, ExecMode};
use isp_dsl::Compiler;
use isp_exec::{Engine, Sweep, PAPER_BLOCK};
use isp_image::{BorderPattern, ImageGenerator};
use isp_sim::{DeviceSpec, Gpu};
use std::time::Instant;

/// Median wall-clock time of `runs` invocations of `f`, in milliseconds.
fn time_ms<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn bench_exhaustive() {
    println!("== exhaustive interpretation, gauss3 naive (median of 10, ms)");
    let gpu = Gpu::new(DeviceSpec::gtx680());
    let spec = isp_filters::gaussian::spec(3);
    let ck = Compiler::new().compile(&spec, BorderPattern::Clamp, Variant::IspBlock);
    for size in [64usize, 128, 256] {
        let img = ImageGenerator::new(3).natural::<f32>(size, size);
        let ms = time_ms(10, || {
            run_filter(
                &gpu,
                &ck,
                Variant::Naive,
                &[&img],
                &[],
                0.0,
                (32, 4),
                ExecMode::Exhaustive,
            )
            .unwrap()
        });
        println!("  gauss3_naive/{size:<5} {ms:9.3}");
    }
}

fn bench_sampled() {
    println!("== region-sampled launch, bilateral13 isp (median of 10, ms)");
    let gpu = Gpu::new(DeviceSpec::rtx2080());
    let spec = isp_filters::bilateral::spec(13);
    let ck = Compiler::new().compile(&spec, BorderPattern::Mirror, Variant::IspBlock);
    let params = [isp_filters::bilateral::range_param(
        isp_filters::bilateral::DEFAULT_SIGMA_R,
    )];
    for size in [1024usize, 4096] {
        let img = ImageGenerator::new(3).natural::<f32>(size, size);
        let ms = time_ms(10, || {
            run_filter(
                &gpu,
                &ck,
                Variant::IspBlock,
                &[&img],
                &params,
                0.0,
                (32, 4),
                ExecMode::Sampled,
            )
            .unwrap()
        });
        println!("  bilateral13_isp/{size:<5} {ms:9.3}");
    }
}

/// The engine's reason to exist: a 4-size x 4-pattern sweep of one app
/// compiles each kernel variant once through the engine's caches, vs once
/// per point for the uncached per-point baseline.
fn bench_engine_sweep() {
    println!("== gaussian 4-size x 4-pattern sweep (total wall-clock, ms)");
    let device = DeviceSpec::gtx680();
    let app = isp_filters::by_name("gaussian").unwrap();
    let sizes = [512usize, 1024, 2048, 4096];

    let t = Instant::now();
    for pattern in BorderPattern::ALL {
        for size in sizes {
            // Baseline: what every bench binary did before isp-exec —
            // recompile the pipeline at every experiment point.
            let gpu = Gpu::new(device.clone());
            let border = isp_image::BorderSpec::from_pattern(pattern);
            let compiled = app
                .pipeline
                .compile(&Compiler::new(), border, Variant::IspBlock);
            let img = isp_exec::bench_image(size);
            for policy in [
                isp_dsl::pipeline::Policy::Naive,
                isp_dsl::pipeline::Policy::AlwaysIsp(Variant::IspBlock),
                isp_dsl::pipeline::Policy::Model(Variant::IspBlock),
            ] {
                app.pipeline
                    .run(
                        &gpu,
                        &compiled,
                        &img,
                        border,
                        PAPER_BLOCK,
                        policy,
                        ExecMode::Sampled,
                    )
                    .unwrap();
            }
        }
    }
    let uncached = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let engine = Engine::new(device);
    for pattern in BorderPattern::ALL {
        for size in sizes {
            engine.measure(&Sweep::paper(app.clone(), pattern, size));
        }
    }
    let cached = t.elapsed().as_secs_f64() * 1e3;
    let stats = engine.cache_stats();
    println!("  uncached per-point path {uncached:9.1}");
    println!(
        "  engine (kernel+plan cache) {cached:9.1}  speedup {:5.2}x",
        uncached / cached
    );
    println!(
        "  engine cache: {} kernel compiles, {} kernel hits, {} plan hits",
        stats.kernel_misses, stats.kernel_hits, stats.plan_hits
    );
}

fn main() {
    bench_exhaustive();
    bench_sampled();
    bench_engine_sweep();
}
