//! Per-region kernel profiling with model residuals.
//!
//! Runs one kernel exhaustively in both naive and ISP form, attributes the
//! ISP run's counters to the nine regions (via the simulator's classified
//! exhaustive mode), and compares the measured per-region warp-instruction
//! counts against the analytic model's predictions — the IR-statistics
//! per-thread path counts scaled by the Eq. (8) block populations, and the
//! Eq. (4)/(9) totals `N_ISP` / `R_reduced`. The residual columns quantify
//! exactly how much dynamic behaviour (ragged-edge masking, warp rounding)
//! the static model misses.

use crate::report::Table;
use isp_core::{IndexBounds, Region, Variant};
use isp_dsl::runner::{geometry_for, ExecMode};
use isp_dsl::{FilterOutput, KernelSpec};
use isp_exec::Engine;
use isp_image::{BorderPattern, Image};
use isp_json::Json;
use isp_sim::profile::counters_to_json;
use isp_sim::{DeoptReason, DeviceSpec, PerfCounters, SimError, TraceStats};

/// Measured vs predicted figures for one region.
#[derive(Debug, Clone)]
pub struct RegionProfile {
    /// The region.
    pub region: Region,
    /// Block population of the region (Eq. 8).
    pub blocks: u64,
    /// Counters attributed to the region's blocks (exact, exhaustive mode).
    pub counters: PerfCounters,
    /// Model-predicted warp-instructions: the region's static per-thread
    /// path count scaled by its block population and warps per block.
    pub predicted_warp_instructions: f64,
    /// `(measured - predicted) / predicted`; 0 = the static model was
    /// exact, positive = the region executed more than predicted.
    pub residual: f64,
    /// Trace-replay reuse for the region's blocks (all zero when the engine
    /// is not the replay engine).
    pub trace: TraceStats,
}

/// A full per-region profile of one kernel at one geometry.
#[derive(Debug, Clone)]
pub struct KernelProfile {
    /// Device name.
    pub device: &'static str,
    /// Kernel name from the spec.
    pub kernel: String,
    /// Border pattern profiled.
    pub pattern: BorderPattern,
    /// Square image size.
    pub size: usize,
    /// Block size.
    pub block: (u32, u32),
    /// The naive exhaustive run.
    pub naive: FilterOutput,
    /// The ISP exhaustive run (per-region counters populated).
    pub isp: FilterOutput,
    /// Per-region rows in [`Region::ALL`] order.
    pub regions: Vec<RegionProfile>,
    /// Model-predicted total naive warp-instructions (N_naive analogue).
    pub n_naive_model: f64,
    /// Model-predicted total ISP warp-instructions (Eq. 4's N_ISP, from IR
    /// statistics).
    pub n_isp_model: f64,
    /// Eq. (9) `R_reduced` from the IR-statistics model.
    pub r_reduced_model: f64,
    /// Measured `R_reduced`: naive / ISP aggregate warp-instructions.
    pub r_reduced_measured: f64,
}

/// Profile one kernel spec: exhaustive naive + ISP runs on the engine's
/// device, per-region attribution, and model residuals.
pub fn profile_kernel(
    device: &DeviceSpec,
    spec: &KernelSpec,
    pattern: BorderPattern,
    source: &Image<f32>,
    user_params: &[f32],
    block: (u32, u32),
) -> Result<KernelProfile, SimError> {
    let engine = Engine::global(device);
    let ck = engine.compile(spec, pattern, Variant::IspBlock);
    let (w, h) = source.dims();
    assert_eq!(w, h, "profiles use square images");

    let naive = engine.run_kernel(
        &ck,
        Variant::Naive,
        &[source],
        user_params,
        0.0,
        block,
        ExecMode::Exhaustive,
    )?;
    let isp = engine.run_kernel(
        &ck,
        Variant::IspBlock,
        &[source],
        user_params,
        0.0,
        block,
        ExecMode::Exhaustive,
    )?;

    let geom = geometry_for(&ck, w, h, block);
    let bounds = IndexBounds::new(&geom);
    let counts = bounds.block_counts();
    let model = ck
        .ir_stats_model()
        .ok_or_else(|| SimError::BadLaunch(format!("kernel '{}' has no ISP variant", spec.name)))?;
    let warps_per_block = (block.0 * block.1).div_ceil(32) as f64;

    let trace_of = |region: Region| {
        isp.per_region_trace
            .iter()
            .find(|(r, _)| *r == region)
            .map(|&(_, t)| t)
            .unwrap_or_default()
    };
    let regions = isp
        .per_region
        .iter()
        .map(|(region, counters)| {
            let blocks = counts.get(*region);
            let predicted =
                model.region_per_thread[region.index()] * blocks as f64 * warps_per_block;
            let residual = if predicted > 0.0 {
                (counters.warp_instructions as f64 - predicted) / predicted
            } else {
                0.0
            };
            RegionProfile {
                region: *region,
                blocks,
                counters: counters.clone(),
                predicted_warp_instructions: predicted,
                residual,
                trace: trace_of(*region),
            }
        })
        .collect();

    let total_blocks = counts.total() as f64;
    let n_naive_model = model.naive_per_thread * total_blocks * warps_per_block;
    let n_isp_model: f64 = Region::ALL
        .iter()
        .map(|&r| model.region_per_thread[r.index()] * counts.get(r) as f64 * warps_per_block)
        .sum();
    let r_reduced_measured = naive.report.counters.warp_instructions as f64
        / isp.report.counters.warp_instructions.max(1) as f64;

    Ok(KernelProfile {
        device: device.name,
        kernel: spec.name.clone(),
        pattern,
        size: w,
        block,
        naive,
        isp,
        regions,
        n_naive_model,
        n_isp_model,
        r_reduced_model: model.r_reduced(&bounds),
        r_reduced_measured,
    })
}

/// Render the `==PROF==` per-region table with model-residual columns.
pub fn format_profile(p: &KernelProfile) -> String {
    let mut s = format!(
        "==PROF== {} ({}) {}x{} on {}, block {}x{}\n",
        p.kernel, p.pattern, p.size, p.size, p.device, p.block.0, p.block.1
    );
    let mut t = Table::new(&[
        "region",
        "blocks",
        "warp-instr",
        "predicted",
        "residual",
        "mem-tx",
        "div%",
        "recorded",
        "replayed",
        "deopted",
    ]);
    for r in &p.regions {
        t.row(&[
            format!("{:?}", r.region),
            r.blocks.to_string(),
            r.counters.warp_instructions.to_string(),
            format!("{:.0}", r.predicted_warp_instructions),
            format!("{:+.2}%", r.residual * 100.0),
            r.counters.mem_transactions.to_string(),
            format!("{:.1}", r.counters.divergence_rate() * 100.0),
            r.trace.recorded.to_string(),
            r.trace.replayed.to_string(),
            r.trace.deopted.to_string(),
        ]);
    }
    s.push_str(&t.render());
    let mut reasons = [0u64; DeoptReason::COUNT];
    for r in &p.regions {
        for (slot, n) in reasons.iter_mut().zip(r.trace.deopt_reasons) {
            *slot += n;
        }
    }
    let by_reason = DeoptReason::ALL
        .iter()
        .map(|&d| format!("{} {}", d.name(), reasons[d.index()]))
        .collect::<Vec<String>>()
        .join(", ");
    s.push_str(&format!("deopts by reason: {by_reason}\n"));
    let isp_total = p.isp.report.counters.warp_instructions;
    let isp_residual = (isp_total as f64 - p.n_isp_model) / p.n_isp_model;
    s.push_str(&format!(
        "totals: naive {} warp-instr (model {:.0}), isp {} (model N_ISP {:.0}, residual {:+.2}%)\n",
        p.naive.report.counters.warp_instructions,
        p.n_naive_model,
        isp_total,
        p.n_isp_model,
        isp_residual * 100.0,
    ));
    s.push_str(&format!(
        "R_reduced: measured {:.4}, model {:.4}\n",
        p.r_reduced_measured, p.r_reduced_model
    ));
    s
}

/// Serialise one profile as a JSON object (per-region counters exact, model
/// figures as floats).
pub fn profile_to_json(p: &KernelProfile) -> Json {
    let regions = p
        .regions
        .iter()
        .map(|r| {
            Json::obj()
                .set("region", format!("{:?}", r.region))
                .set("blocks", r.blocks)
                .set("counters", counters_to_json(&r.counters))
                .set("predicted_warp_instructions", r.predicted_warp_instructions)
                .set("residual", r.residual)
                .set("trace", {
                    let mut reasons = Json::obj();
                    for &d in DeoptReason::ALL.iter() {
                        reasons = reasons.set(d.name(), r.trace.deopt_reasons[d.index()]);
                    }
                    Json::obj()
                        .set("recorded", r.trace.recorded)
                        .set("replayed", r.trace.replayed)
                        .set("deopted", r.trace.deopted)
                        // Sorted keys: byte-stable regardless of enum order.
                        .set("deopt_reasons", reasons.sort_keys())
                })
        })
        .collect::<Vec<Json>>();
    Json::obj()
        .set("kernel", p.kernel.as_str())
        .set("device", p.device)
        .set("pattern", p.pattern.name())
        .set("size", p.size)
        .set("block", vec![p.block.0, p.block.1])
        .set("naive_counters", counters_to_json(&p.naive.report.counters))
        .set("isp_counters", counters_to_json(&p.isp.report.counters))
        .set("per_region", regions)
        .set(
            "model",
            Json::obj()
                .set("n_naive", p.n_naive_model)
                .set("n_isp", p.n_isp_model)
                .set("r_reduced", p.r_reduced_model)
                .set("r_reduced_measured", p.r_reduced_measured),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use isp_exec::bench_image;
    use isp_sim::PerfCounters;

    fn gaussian_profile(size: usize) -> KernelProfile {
        profile_kernel(
            &DeviceSpec::gtx680(),
            &isp_filters::gaussian::spec(5),
            BorderPattern::Clamp,
            &bench_image(size),
            &[],
            (32, 4),
        )
        .unwrap()
    }

    #[test]
    fn per_region_counters_merge_bit_identically() {
        let p = gaussian_profile(128);
        assert_eq!(p.regions.len(), 9, "all nine regions present");
        let mut merged = PerfCounters::new();
        for r in &p.regions {
            merged.merge(&r.counters);
        }
        assert_eq!(
            merged, p.isp.report.counters,
            "exhaustive per-region counters must merge exactly to the aggregate"
        );
        // The global engine runs the replay engine: every block of the ISP
        // run must be accounted for as recorded, replayed, or deopted.
        let reused: u64 = p
            .regions
            .iter()
            .map(|r| r.trace.recorded + r.trace.replayed + r.trace.deopted)
            .sum();
        let blocks: u64 = p.regions.iter().map(|r| r.blocks).sum();
        assert_eq!(reused, blocks, "trace stats cover the whole grid");
    }

    #[test]
    fn residuals_are_small_and_totals_consistent() {
        let p = gaussian_profile(128);
        // Pixels agree between variants (sanity that we profiled real runs).
        let d = p
            .naive
            .image
            .as_ref()
            .unwrap()
            .max_abs_diff(p.isp.image.as_ref().unwrap())
            .unwrap();
        assert!(d < 1e-4, "naive/isp pixel diff {d}");
        // The static model predicts dynamic warp-instructions to within a
        // modest margin on aligned geometries (no masked edge threads here:
        // 128 is a multiple of both block dims).
        for r in &p.regions {
            assert!(
                r.residual.abs() < 0.05,
                "{:?}: residual {}",
                r.region,
                r.residual
            );
        }
        assert!(p.r_reduced_measured > 1.0, "ISP must reduce instructions");
        assert!((p.r_reduced_measured - p.r_reduced_model).abs() < 0.2);
    }

    #[test]
    fn json_and_text_outputs_carry_key_fields() {
        let p = gaussian_profile(128);
        let text = format_profile(&p);
        assert!(text.contains("==PROF=="));
        assert!(text.contains("Body"));
        assert!(text.contains("residual"));
        assert!(text.contains("R_reduced"));
        assert!(text.contains("replayed"));
        assert!(text.contains("deopts by reason"));
        let json = profile_to_json(&p).render_pretty();
        assert!(json.contains("\"per_region\""));
        assert!(json.contains("\"replayed\""));
        assert!(json.contains("\"deopt_reasons\""));
        assert!(json.contains("\"mem-pattern\""));
        assert!(json.contains("\"n_isp\""));
        assert!(json.contains("\"residual\""));
        assert!(json.contains("\"warp_instructions\""));
    }
}
