//! # isp-bench
//!
//! Shared machinery for the harness binaries that regenerate the paper's
//! tables and figures:
//!
//! | Binary   | Reproduces                                                    |
//! |----------|---------------------------------------------------------------|
//! | `table1` | Table I — bilateral PTX instruction counts per region         |
//! | `table2` | Table II — register usage and theoretical occupancy           |
//! | `table3` | Table III — measured best variant vs model prediction         |
//! | `table4` | Table IV — geometric-mean speedups of isp+m per application   |
//! | `fig3`   | Figure 3 — fraction of blocks executing the Body region       |
//! | `fig4`   | Figure 4 — bilateral ISP speedups across sizes and patterns   |
//! | `fig6`   | Figure 6 — all apps x patterns x sizes x devices              |
//! | `ablation_*` | design-choice ablations (warp granularity, multi-kernel, CSE) |
//!
//! All measurements run the simulator in region-sampled mode (exact counters
//! for the uniform region classes, see `isp-sim`), on deterministic
//! generated imagery.

pub mod prof;
pub mod report;
pub mod runner;
pub mod stats;

pub use runner::{measure_app, AppMeasurement, Experiment, PAPER_BLOCK, PAPER_SIZES};
pub use stats::{geometric_mean, pearson};
