//! Small statistics helpers used across the harness.

/// Geometric mean of strictly positive values (the paper's Table IV metric).
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of nothing");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean needs positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Pearson correlation coefficient between two equally sized samples (the
/// paper's Table III model-quality metric). Returns `None` when either
/// sample has zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "samples must pair up");
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return None;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx * vy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geometric_mean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        // Geomean of reciprocals is reciprocal of geomean.
        let v = [1.5, 0.8, 2.2];
        let inv: Vec<f64> = v.iter().map(|x| 1.0 / x).collect();
        assert!((geometric_mean(&v) * geometric_mean(&inv) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn pearson_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
        // Constant sample: undefined.
        assert_eq!(pearson(&xs, &[1.0; 4]), None);
        assert_eq!(pearson(&[1.0], &[1.0]), None);
    }

    #[test]
    fn pearson_uncorrelated_is_small() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let ys = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&xs, &ys).unwrap().abs() < 0.3);
    }
}
