//! Plain-text table rendering and JSON artifact output for the harness
//! binaries.

use isp_json::Json;
use std::fs;
use std::io;
use std::path::PathBuf;

/// A simple fixed-width table printer: collects rows of strings and renders
/// them with per-column widths, the way the paper's tables read.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given header.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>w$}", w = widths[c]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Format a speedup with the measured-winner marker used in the output.
pub fn fmt_speedup(s: f64) -> String {
    format!("{s:.3}{}", if s >= 1.0 { "" } else { " (naive wins)" })
}

/// The directory all harness binaries publish JSON artifacts into
/// (`target/results/`), created on first use. Shared by `prof_json`,
/// `sim_speed`, and `timeline` so CI uploads one predictable location.
pub fn results_dir() -> io::Result<PathBuf> {
    let dir = PathBuf::from("target/results");
    fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Write a JSON document to `target/results/{name}.json` (pretty-printed)
/// and return the path. This is how the profiling harness publishes its
/// `BENCH_PR2.json` trajectory for CI artifact upload.
pub fn write_json_doc(name: &str, doc: &Json) -> io::Result<PathBuf> {
    let path = results_dir()?.join(format!("{name}.json"));
    fs::write(&path, doc.render_pretty())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1.0".into()]);
        t.row(&["long-name".into(), "12.25".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // Right-aligned: the short name is padded.
        assert!(lines[2].starts_with("        a"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_wrong_arity() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(fmt_speedup(1.25), "1.250");
        assert!(fmt_speedup(0.8).contains("naive wins"));
    }
}
