//! Ablation: the fixed-point optimizer pipeline vs an unoptimized build —
//! static before/after instruction counts per pass, executed-instruction
//! reduction on the naive border variants, and three-engine wall-clock.
//! Writes `target/results/BENCH_PR7.json` for CI artifact upload.
//!
//! Usage: `cargo run -p isp-bench --bin ablation_opt --release [-- size runs]`
//!
//! `size` is the exhaustive image edge (default 256; CI passes a small one),
//! `runs` the per-point wall-clock sample count (default 3, median).

use isp_bench::report::{write_json_doc, Table};
use isp_core::Variant;
use isp_dsl::compile::CompiledVariant;
use isp_dsl::pipeline::{PipelineRun, Policy};
use isp_dsl::runner::ExecMode;
use isp_dsl::Compiler;
use isp_image::{BorderPattern, BorderSpec};
use isp_ir::opt::OptConfig;
use isp_json::Json;
use isp_sim::{DeviceSpec, ExecEngine, Gpu};
use std::time::Instant;

/// Median wall-clock time of `runs` invocations of `f`, in milliseconds.
fn time_ms<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// One exhaustive pipeline run under the given engine and optimizer config.
fn run_once(
    engine: ExecEngine,
    app: &isp_filters::App,
    policy: Policy,
    opt: OptConfig,
    size: usize,
) -> PipelineRun {
    let gpu = Gpu::new(DeviceSpec::gtx680()).with_engine(engine);
    let border = BorderSpec::from_pattern(BorderPattern::Clamp);
    let compiled = app
        .pipeline
        .compile(&Compiler::with_opt(opt), border, Variant::IspBlock);
    let img = isp_exec::bench_image(size);
    app.pipeline
        .run(
            &gpu,
            &compiled,
            &img,
            border,
            (32, 4),
            policy,
            ExecMode::Exhaustive,
        )
        .expect("bench run")
}

/// The static before/after record for one compiled variant, summed over
/// pipeline stages per pass so multi-stage filters report whole-app counts.
fn variant_json(stages: &[&CompiledVariant]) -> Json {
    let sum = |f: fn(&CompiledVariant) -> u64| stages.iter().map(|v| f(v)).sum::<u64>();
    Json::obj()
        .set("before_instrs", sum(|v| v.opt_stats.before_instrs))
        .set("after_instrs", sum(|v| v.opt_stats.after_instrs))
        .set(
            "iterations",
            stages
                .iter()
                .map(|v| v.opt_stats.iterations)
                .max()
                .unwrap_or(0),
        )
        .set(
            "reached_fixed_point",
            stages.iter().all(|v| v.opt_stats.reached_fixed_point),
        )
        .set("copy_prop_removed", sum(|v| v.opt_stats.copy_prop_removed))
        .set("fold_removed", sum(|v| v.opt_stats.fold_removed))
        .set("strength_rewrites", sum(|v| v.opt_stats.strength_rewrites))
        .set("vn_removed", sum(|v| v.opt_stats.vn_removed))
        .set("dce_removed", sum(|v| v.opt_stats.dce_removed))
        .set("cfg_removed", sum(|v| v.opt_stats.cfg_removed))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let size: usize = args
        .first()
        .map(|s| s.parse().expect("size must be an integer"))
        .unwrap_or(256);
    let runs: usize = args
        .get(1)
        .map(|s| s.parse().expect("runs must be an integer"))
        .unwrap_or(3);
    let border = BorderSpec::from_pattern(BorderPattern::Clamp);

    println!(
        "Ablation: fixed-point optimizer pipeline vs OptConfig::none()\n\
         (all filters, Clamp, {size}^2 exhaustive, 32x4 blocks, median of {runs})\n"
    );

    let mut filters: Vec<Json> = Vec::new();
    let mut static_table = Table::new(&[
        "filter",
        "naive before",
        "naive after",
        "isp before",
        "isp after",
        "iters",
    ]);
    let mut exec_table = Table::new(&[
        "filter",
        "naive exec none",
        "naive exec pipeline",
        "reduction",
    ]);
    let mut wall_table = Table::new(&[
        "filter",
        "reference ms",
        "decoded ms",
        "replay ms",
        "decoded none ms",
    ]);

    for app in isp_filters::apps::all_apps() {
        // Static counts: the optimizer's own before/after bookkeeping,
        // per variant, summed across pipeline stages.
        let compiled = app.pipeline.compile(
            &Compiler::with_opt(OptConfig::pipeline()),
            border,
            Variant::IspBlock,
        );
        let naive_stages: Vec<&CompiledVariant> = compiled.iter().map(|ck| &ck.naive).collect();
        let isp_stages: Vec<&CompiledVariant> =
            compiled.iter().filter_map(|ck| ck.isp.as_ref()).collect();
        let naive_static = variant_json(&naive_stages);
        let isp_static = variant_json(&isp_stages);
        assert!(
            naive_stages.iter().all(|v| v.opt_stats.reached_fixed_point),
            "{}: optimizer must reach a fixed point",
            app.name
        );

        // Executed counts on the naive border variants: pipeline vs none.
        let exec_none = run_once(
            ExecEngine::Decoded,
            &app,
            Policy::Naive,
            OptConfig::none(),
            size,
        );
        let exec_pipe = run_once(
            ExecEngine::Decoded,
            &app,
            Policy::Naive,
            OptConfig::pipeline(),
            size,
        );
        let (before, after) = (
            exec_none.counters.warp_instructions,
            exec_pipe.counters.warp_instructions,
        );
        let reduction = 1.0 - after as f64 / before as f64;

        // Three-engine wall-clock of the optimized build, plus the decoded
        // engine on the unoptimized build for scale.
        let policy = Policy::AlwaysIsp(Variant::IspBlock);
        let wall = |engine, opt| time_ms(runs, || run_once(engine, &app, policy, opt, size));
        let reference_ms = wall(ExecEngine::Reference, OptConfig::pipeline());
        let decoded_ms = wall(ExecEngine::Decoded, OptConfig::pipeline());
        let replay_ms = wall(ExecEngine::Replay, OptConfig::pipeline());
        let decoded_none_ms = wall(ExecEngine::Decoded, OptConfig::none());

        let g = |j: &Json, k: &str| j.get(k).unwrap().render();
        static_table.row(&[
            app.name.to_string(),
            g(&naive_static, "before_instrs"),
            g(&naive_static, "after_instrs"),
            g(&isp_static, "before_instrs"),
            g(&isp_static, "after_instrs"),
            g(&naive_static, "iterations"),
        ]);
        exec_table.row(&[
            app.name.to_string(),
            before.to_string(),
            after.to_string(),
            format!("{:.1}%", 100.0 * reduction),
        ]);
        wall_table.row(&[
            app.name.to_string(),
            format!("{reference_ms:.1}"),
            format!("{decoded_ms:.1}"),
            format!("{replay_ms:.1}"),
            format!("{decoded_none_ms:.1}"),
        ]);
        filters.push(
            Json::obj()
                .set("filter", app.name)
                .set("naive", naive_static)
                .set("isp", isp_static)
                .set(
                    "executed_naive",
                    Json::obj()
                        .set("none_warp_instructions", before)
                        .set("pipeline_warp_instructions", after)
                        .set("reduction", reduction),
                )
                .set(
                    "wall_ms",
                    Json::obj()
                        .set("reference", reference_ms)
                        .set("decoded", decoded_ms)
                        .set("replay", replay_ms)
                        .set("decoded_none", decoded_none_ms),
                ),
        );
    }

    println!("== static instruction counts (optimizer before/after, per variant)");
    print!("{}", static_table.render());
    println!("\n== executed warp instructions, naive policy (none vs pipeline)");
    print!("{}", exec_table.render());
    println!("\n== wall-clock, AlwaysIsp exhaustive (optimized; last column unoptimized)");
    print!("{}", wall_table.render());

    let doc = Json::obj()
        .set("schema", "isp-ablation-opt-v1")
        .set("device", DeviceSpec::gtx680().name)
        .set("size", size)
        .set("runs", runs)
        .set("pattern", "clamp")
        .set("filters", filters);
    let path = write_json_doc("BENCH_PR7", &doc).expect("write BENCH_PR7.json");
    println!("\nwrote {}", path.display());
}
