//! Ablation: block-grained (Listing 3) vs warp-grained (Listing 5) region
//! switching — the paper's §V-B refinement. Warp granularity only matters
//! for blocks wider than one warp, so this sweep uses 128x1 blocks.
//!
//! Regenerate with: `cargo run -p isp-bench --bin ablation_warp --release`

use isp_bench::report::Table;
use isp_bench::runner::{measure_app, Experiment};
use isp_core::Variant;
use isp_filters::by_name;
use isp_image::BorderPattern;
use isp_sim::DeviceSpec;

fn main() {
    println!(
        "Ablation: block- vs warp-grained ISP (gaussian 3x3, 128x1 blocks)\n\
         Warp refinement redirects interior warps of border blocks to cheaper\n\
         regions (TL->T, L->Body, ...), trading a slightly longer switch for\n\
         fewer checked warps.\n"
    );
    for device in DeviceSpec::all() {
        let mut t = Table::new(&[
            "pattern",
            "size",
            "S(isp-block)",
            "S(isp-warp)",
            "warp vs block",
        ]);
        for pattern in BorderPattern::ALL {
            for size in [512usize, 1024, 2048, 4096] {
                let mk = |granularity| Experiment {
                    device: device.clone(),
                    app: by_name("gaussian").unwrap(),
                    pattern,
                    size,
                    block: (128, 1),
                    granularity,
                };
                let block = measure_app(&mk(Variant::IspBlock));
                let warp = measure_app(&mk(Variant::IspWarp));
                t.row(&[
                    pattern.name().into(),
                    size.to_string(),
                    format!("{:.3}", block.speedup_isp),
                    format!("{:.3}", warp.speedup_isp),
                    format!("{:.3}x", block.isp_cycles as f64 / warp.isp_cycles as f64),
                ]);
            }
        }
        println!("--- {} ---", device.name);
        println!("{}", t.render());
    }
    println!(
        "Expected shape: warp granularity helps most at small sizes (border\n\
         blocks are a larger fraction) and never hurts by more than its extra\n\
         switch instructions."
    );
}
