//! Table II: register usage and theoretical occupancy of the bilateral
//! filter, naive vs ISP, for all four border handling patterns on the
//! Kepler-class device (with the Turing-class comparison appended — the
//! §VI-A.2 explanation of the model's Turing mispredictions).
//!
//! Regenerate with: `cargo run -p isp-bench --bin table2 --release`

use isp_bench::report::Table;
use isp_bench::runner::PAPER_BLOCK;
use isp_core::Variant;
use isp_exec::Engine;
use isp_filters::bilateral;
use isp_image::BorderPattern;
use isp_sim::{occupancy, DeviceSpec};

fn main() {
    let spec = bilateral::spec(13);
    let threads = PAPER_BLOCK.0 * PAPER_BLOCK.1;
    for device in DeviceSpec::all() {
        let engine = Engine::global(&device);
        println!(
            "Table II ({}): bilateral 13x13, {}x{} blocks — registers & occupancy\n",
            device.name, PAPER_BLOCK.0, PAPER_BLOCK.1
        );
        let mut t = Table::new(&[
            "pattern",
            "regs naive",
            "regs isp",
            "occ naive",
            "occ isp",
            "occupancy drop?",
        ]);
        for pattern in BorderPattern::ALL {
            let ck = engine.compile(&spec, pattern, Variant::IspBlock);
            let isp = ck.isp.as_ref().expect("stencil kernel");
            let on = occupancy(&device, threads, ck.naive.regs.data_regs).occupancy;
            let oi = occupancy(&device, threads, isp.regs.data_regs).occupancy;
            t.row(&[
                pattern.name().into(),
                ck.naive.regs.data_regs.to_string(),
                isp.regs.data_regs.to_string(),
                format!("{on:.3}"),
                format!("{oi:.3}"),
                if oi < on { "yes".into() } else { "no".into() },
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "Shape check (paper): ISP raises register usage under every pattern; on\n\
         the Kepler-class device this costs theoretical occupancy for most\n\
         patterns, while the Turing-class device (twice the registers per\n\
         thread at full occupancy) absorbs the increase — the root cause of\n\
         the model's small-image mispredictions on the RTX2080."
    );
}
