//! Deterministic load generator for the serving layer: drives the same
//! seeded workload through the single-shard FIFO baseline and the
//! batched, model-routed two-device fleet, then through an open-loop
//! burst that exercises admission control. Every number is derived from
//! simulated cycles on a virtual clock — no wall-clock dependence — so
//! the report is bit-stable across runs and machines.
//!
//! Writes `target/results/BENCH_PR6.json` (throughput + p50/p95/p99 for
//! both configurations, per-shard cache stats including cross-launch
//! trace hits, and the server's queue metrics) and
//! `target/results/TRACE_PR6.json` (a Perfetto timeline with one process
//! per shard plus one for the server's queue lanes).
//!
//! Usage: `cargo run -p isp-bench --bin loadgen --release [-- requests clients size]`

use isp_bench::report::{results_dir, write_json_doc, Table};
use isp_core::{Region, Variant};
use isp_dsl::pipeline::Policy;
use isp_exec::Request;
use isp_filters::by_name;
use isp_image::BorderPattern;
use isp_json::Json;
use isp_probe::chrome_trace_groups;
use isp_serve::{Arrivals, ServeConfig, ServeReport, Server, Workload};

const SEED: u64 = 42;
const THINK_MS: f64 = 0.02;
const OPEN_RATE_RPS: f64 = 120_000.0;
const OPEN_QUEUE_CAP: usize = 8;

fn mix(size: usize) -> Vec<Request> {
    // Three pipelines x three border patterns, exhaustive mode so batch
    // mates replay each other's recorded traces from block 0.
    let policy = Policy::Model(Variant::IspBlock);
    vec![
        Request::paper(
            by_name("gaussian").unwrap(),
            BorderPattern::Clamp,
            size,
            policy,
        )
        .exhaustive(),
        Request::paper(
            by_name("laplace").unwrap(),
            BorderPattern::Mirror,
            size,
            policy,
        )
        .exhaustive(),
        Request::paper(
            by_name("sobel").unwrap(),
            BorderPattern::Repeat,
            size,
            policy,
        )
        .exhaustive(),
    ]
}

fn percentiles(report: &ServeReport) -> (f64, f64, f64) {
    (
        report.latency_percentile_ms(50.0),
        report.latency_percentile_ms(95.0),
        report.latency_percentile_ms(99.0),
    )
}

fn report_json(report: &ServeReport) -> Json {
    let (p50, p95, p99) = percentiles(report);
    let shards: Vec<Json> = report
        .shards
        .iter()
        .map(|s| {
            Json::obj()
                .set("name", s.name.clone())
                .set("device", s.device.clone())
                .set("batches", s.batches)
                .set("images", s.images)
                .set("busy_ms", s.busy_ns as f64 / 1.0e6)
                .set(
                    "cache",
                    Json::obj()
                        .set("kernel_hits", s.cache.kernel_hits)
                        .set("plan_hits", s.cache.plan_hits)
                        .set("decode_hits", s.cache.decode_hits)
                        .set("trace_recorded", s.cache.trace_recorded)
                        .set("trace_replayed", s.cache.trace_replayed)
                        .set("trace_cross_launch_hits", s.cache.trace_cross_launch_hits)
                        .set("trace_deopted", s.cache.trace_deopts),
                )
        })
        .collect();
    Json::obj()
        .set("completed", report.completed.len())
        .set("admitted", report.admitted)
        .set("rejected", report.rejected)
        .set("max_queue_depth", report.max_queue_depth)
        .set("makespan_ms", report.makespan_ns as f64 / 1.0e6)
        .set("throughput_rps", report.throughput_rps())
        .set("p50_ms", p50)
        .set("p95_ms", p95)
        .set("p99_ms", p99)
        .set("batches", report.batches)
        .set("mean_batch_size", report.mean_batch_size())
        .set("shards", Json::Arr(shards))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let requests: usize = args
        .first()
        .map(|s| s.parse().expect("requests must be an integer"))
        .unwrap_or(48);
    let clients: usize = args
        .get(1)
        .map(|s| s.parse().expect("clients must be an integer"))
        .unwrap_or(8);
    let size: usize = args
        .get(2)
        .map(|s| s.parse().expect("size must be an integer"))
        .unwrap_or(128);

    let closed = Workload {
        seed: SEED,
        requests,
        arrivals: Arrivals::Closed {
            clients,
            think_ms: THINK_MS,
        },
        mix: mix(size),
    };

    // Baseline: one RTX2080 shard, FIFO, no batching.
    let mut baseline_server = Server::new(ServeConfig::baseline());
    let baseline = baseline_server.run(&closed);

    // Fleet: GTX680 + RTX2080, Eq. 1-10 model routing, batching on.
    let mut fleet_server = Server::new(ServeConfig::fleet());
    let fleet = fleet_server.run(&closed);

    // Open-loop burst on the warm fleet: arrival rate far above service
    // capacity with a small queue, so admission control must reject a
    // deterministic share of the offered load.
    let open = Workload {
        seed: SEED + 1,
        requests,
        arrivals: Arrivals::Open {
            rate_rps: OPEN_RATE_RPS,
            exponential: true,
        },
        mix: mix(size),
    };
    let mut open_server = Server::new(ServeConfig::fleet().with_queue_cap(OPEN_QUEUE_CAP));
    let open_report = open_server.run(&open);

    let (b50, b95, b99) = percentiles(&baseline);
    let (f50, f95, f99) = percentiles(&fleet);
    let mut table = Table::new(&[
        "config",
        "completed",
        "throughput rps",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "mean batch",
    ]);
    for (name, report, p) in [
        ("baseline (1x RTX2080, FIFO)", &baseline, (b50, b95, b99)),
        ("fleet (GTX680+RTX2080, model)", &fleet, (f50, f95, f99)),
    ] {
        table.row(&[
            name.to_string(),
            report.completed.len().to_string(),
            format!("{:.0}", report.throughput_rps()),
            format!("{:.3}", p.0),
            format!("{:.3}", p.1),
            format!("{:.3}", p.2),
            format!("{:.2}", report.mean_batch_size()),
        ]);
    }
    println!("{}", table.render());

    let speedup = fleet.throughput_rps() / baseline.throughput_rps();
    println!(
        "fleet throughput {:.0} rps vs baseline {:.0} rps ({speedup:.2}x) at p99 {:.3} ms vs {:.3} ms",
        fleet.throughput_rps(),
        baseline.throughput_rps(),
        f99,
        b99,
    );
    println!(
        "open loop @ {OPEN_RATE_RPS:.0} rps, queue cap {OPEN_QUEUE_CAP}: {} admitted, {} rejected, max depth {}",
        open_report.admitted, open_report.rejected, open_report.max_queue_depth,
    );
    // The acceptance bar: batching + model routing must beat the FIFO
    // baseline on throughput at equal-or-better p99. Deterministic, so
    // this either always holds or never does.
    assert!(
        speedup > 1.0 && f99 <= b99,
        "fleet must beat baseline: speedup {speedup:.2}, fleet p99 {f99:.3} ms, baseline p99 {b99:.3} ms"
    );

    let doc = Json::obj()
        .set("schema", "isp-serve-v1")
        .set(
            "config",
            Json::obj()
                .set("seed", SEED)
                .set("requests", requests)
                .set("clients", clients)
                .set("think_ms", THINK_MS)
                .set("size", size)
                .set(
                    "mix",
                    Json::Arr(
                        mix(size)
                            .iter()
                            .map(|r| {
                                Json::obj()
                                    .set("app", r.app.name)
                                    .set("pattern", r.pattern.name())
                                    .set("size", r.size)
                            })
                            .collect(),
                    ),
                ),
        )
        .set(
            "closed_loop",
            Json::obj()
                .set("baseline", report_json(&baseline))
                .set("fleet", report_json(&fleet))
                .set("throughput_speedup", speedup)
                .set("p99_ratio", f99 / b99),
        )
        .set(
            "open_loop",
            Json::obj()
                .set("rate_rps", OPEN_RATE_RPS)
                .set("queue_cap", OPEN_QUEUE_CAP)
                .set("report", report_json(&open_report)),
        )
        .set("metrics", fleet_server.metrics_json());
    let bench_path = write_json_doc("BENCH_PR6", &doc).expect("write bench report");

    // Export the fleet's closed-loop run as a Perfetto timeline: one
    // process for the server's queue lanes, one per shard (host spans +
    // that shard's launch timelines).
    let class_name = |c: u32| {
        Region::ALL
            .get(c as usize)
            .map(|r| format!("{r:?}"))
            .unwrap_or_else(|| format!("class {c}"))
    };
    let trace = chrome_trace_groups(&fleet_server.trace_groups(), &class_name);
    let dir = results_dir().expect("create target/results");
    let trace_path = dir.join("TRACE_PR6.json");
    std::fs::write(&trace_path, trace.render_pretty()).expect("write trace");

    println!("report: {}", bench_path.display());
    println!("trace:  {}", trace_path.display());
    println!("open the trace at https://ui.perfetto.dev");
}
