//! Table IV: geometric-mean speedup of the `isp+m` implementation over the
//! naive implementation per application, across all patterns, sizes, and
//! both devices (the paper's headline result: 10% to 87% mean speedups,
//! largest for multi-kernel apps with cheap kernels).
//!
//! Regenerate with: `cargo run -p isp-bench --bin table4 --release`

use isp_bench::report::Table;
use isp_bench::runner::{measure_app, Experiment, PAPER_SIZES};
use isp_bench::stats::geometric_mean;
use isp_filters::all_apps;
use isp_image::BorderPattern;
use isp_sim::DeviceSpec;

fn main() {
    println!(
        "Table IV: geometric mean of isp+m speedup over naive across all\n\
         patterns (4) x sizes (4) x devices (2) per application\n"
    );
    let mut t = Table::new(&["app", "geomean S(isp+m)", "min", "max", "samples"]);
    let mut summary: Vec<(String, f64)> = Vec::new();
    for app in all_apps() {
        let mut speedups = Vec::new();
        for device in DeviceSpec::all() {
            for pattern in BorderPattern::ALL {
                for size in PAPER_SIZES {
                    let exp = Experiment::paper(device.clone(), app.clone(), pattern, size);
                    speedups.push(measure_app(&exp).speedup_ispm);
                }
            }
        }
        let g = geometric_mean(&speedups);
        let lo = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = speedups.iter().cloned().fold(0.0f64, f64::max);
        t.row(&[
            app.name.into(),
            format!("{g:.3}"),
            format!("{lo:.3}"),
            format!("{hi:.3}"),
            speedups.len().to_string(),
        ]);
        summary.push((app.name.to_string(), g));
    }
    println!("{}", t.render());
    println!(
        "Paper's Table IV for reference: Gaussian 1.438, Laplace 1.422,\n\
         Bilateral 1.355, Sobel 1.877, Night 1.102 (range 1.10-1.88).\n\
         Reproduced shapes: every geomean is >= 1.0 (isp+m falls back to\n\
         naive when the model predicts a loss), the range overlaps the\n\
         paper's, and Bilateral lands within 1% of the paper's value. See\n\
         EXPERIMENTS.md for where the per-app ordering differs and why\n\
         (this compiler's CSE strengthens cheap kernels' naive baselines;\n\
         Sobel's point-op magnitude stage dilutes its pipeline total)."
    );
    for (name, g) in &summary {
        assert!(
            *g >= 1.0,
            "{name}: isp+m must never lose on geomean, got {g}"
        );
    }
}
