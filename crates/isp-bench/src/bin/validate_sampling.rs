//! Validation: region-sampled simulation must agree exactly with exhaustive
//! interpretation on counters (the ISP region classes execute identical
//! control flow per class, making sampling lossless) — the precondition for
//! trusting the large-size bench numbers.
//!
//! Regenerate with: `cargo run -p isp-bench --bin validate_sampling --release`

use isp_bench::report::Table;
use isp_core::Variant;
use isp_dsl::runner::ExecMode;
use isp_exec::Engine;
use isp_image::{BorderPattern, ImageGenerator};
use isp_sim::DeviceSpec;

fn main() {
    println!("Sampled-vs-exhaustive counter agreement (gaussian 3x3, 192x96)\n");
    let engine = Engine::global(&DeviceSpec::gtx680());
    let img = ImageGenerator::new(5).natural::<f32>(192, 96);
    let spec = isp_filters::gaussian::spec(3);
    let mut t = Table::new(&[
        "pattern",
        "variant",
        "warp-instrs (exhaustive)",
        "warp-instrs (sampled)",
        "match",
    ]);
    let mut all_match = true;
    for pattern in BorderPattern::ALL {
        let ck = engine.compile(&spec, pattern, Variant::IspBlock);
        for variant in [Variant::Naive, Variant::IspBlock] {
            let ex = engine
                .run_kernel(
                    &ck,
                    variant,
                    &[&img],
                    &[],
                    0.1,
                    (32, 4),
                    ExecMode::Exhaustive,
                )
                .expect("exhaustive");
            let sa = engine
                .run_kernel(&ck, variant, &[&img], &[], 0.1, (32, 4), ExecMode::Sampled)
                .expect("sampled");
            let ok = ex.report.counters.histogram == sa.report.counters.histogram
                && ex.report.counters.mem_transactions == sa.report.counters.mem_transactions;
            all_match &= ok;
            t.row(&[
                pattern.name().into(),
                variant.name().into(),
                ex.report.counters.warp_instructions.to_string(),
                sa.report.counters.warp_instructions.to_string(),
                if ok { "exact" } else { "MISMATCH" }.into(),
            ]);
        }
    }
    println!("{}", t.render());
    assert!(
        all_match,
        "sampling must be lossless for uniform region classes"
    );
    println!("All counters agree exactly: sampled mode is lossless here.");
}
