//! Observability harness: run one filter through a probed engine and export
//! the recorded spans, metrics, and simulated-time launch timelines as a
//! Chrome trace-event document (Perfetto-loadable).
//!
//! Writes `target/results/TRACE_PR5.json` (the trace: open it at
//! <https://ui.perfetto.dev> or `chrome://tracing`) and
//! `target/results/BENCH_PR5.json` (the aggregated metrics registry).
//!
//! Usage: `cargo run -p isp-bench --bin timeline --release [-- filter pattern size]`
//!
//! Defaults to gaussian/clamp at 128 px — small enough for the exhaustive
//! engines CI runs, large enough that every one of the nine regions is
//! populated and the replay engine records, replays, and (on ragged
//! geometries) deopts.

use isp_bench::report::{results_dir, write_json_doc};
use isp_core::Region;
use isp_dsl::pipeline::Policy;
use isp_exec::{Engine, Request};
use isp_filters::by_name;
use isp_image::BorderPattern;
use isp_json::Json;
use isp_probe::RecordingProbe;
use isp_sim::{DeoptReason, DeviceSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let filter = args.first().map(String::as_str).unwrap_or("gaussian");
    let pattern = match args.get(1).map(String::as_str).unwrap_or("clamp") {
        "clamp" => BorderPattern::Clamp,
        "mirror" => BorderPattern::Mirror,
        "repeat" => BorderPattern::Repeat,
        "constant" => BorderPattern::Constant,
        other => panic!("unknown pattern '{other}'"),
    };
    let size: usize = args
        .get(2)
        .map(|s| s.parse().expect("size must be an integer"))
        .unwrap_or(128);

    let app = by_name(filter).unwrap_or_else(|| panic!("unknown filter '{filter}'"));

    // A fresh engine (not the process-global share) so the trace contains
    // exactly this run: cold compiles, cold plans, cold trace cache.
    let (probe, handle) = RecordingProbe::new_handle();
    let engine = Engine::new(DeviceSpec::gtx680()).with_probe(handle);

    // One naive and one ISP pass, exhaustively: the naive launch gives the
    // single-class baseline lane, the ISP launch the nine-region picture
    // with recorded/replayed/deopted block outcomes.
    for policy in [
        Policy::Naive,
        Policy::AlwaysIsp(isp_core::Variant::IspBlock),
    ] {
        let req = Request::paper(app.clone(), pattern, size, policy).exhaustive();
        engine
            .run(&req)
            .unwrap_or_else(|e| panic!("{filter} {pattern} {size}: {e}"));
    }

    // Block classes are region indices; label slices with the region names
    // so Perfetto colors the timeline by region.
    let class_name = |c: u32| {
        Region::ALL
            .get(c as usize)
            .map(|r| format!("{r:?}"))
            .unwrap_or_else(|| format!("class {c}"))
    };
    let trace = probe.chrome_trace(&class_name);
    let dir = results_dir().expect("create target/results");
    let trace_path = dir.join("TRACE_PR5.json");
    std::fs::write(&trace_path, trace.render_pretty()).expect("write trace");

    let stats = engine.cache_stats();
    let mut reasons = Json::obj();
    for &d in DeoptReason::ALL.iter() {
        reasons = reasons.set(d.name(), stats.trace_deopt_reasons[d.index()]);
    }
    let doc = Json::obj()
        .set("schema", "isp-probe-v1")
        .set(
            "config",
            Json::obj()
                .set("filter", filter)
                .set("pattern", pattern.name())
                .set("size", size)
                .set("device", engine.device().name),
        )
        .set(
            "trace_cache",
            Json::obj()
                .set("recorded", stats.trace_recorded)
                .set("replayed", stats.trace_replayed)
                .set("deopted", stats.trace_deopts)
                .set("deopt_reasons", reasons.sort_keys()),
        )
        .set("metrics", probe.metrics_json());
    let bench_path = write_json_doc("BENCH_PR5", &doc).expect("write metrics");

    let timelines = probe.timelines();
    let spans = probe.host_events().len();
    let slices: usize = timelines.iter().map(|t| t.slices.len()).sum();
    let deopts: usize = timelines.iter().map(|t| t.deopts.len()).sum();
    println!(
        "captured {spans} host events, {} launch timelines ({slices} block slices, {deopts} deopt markers)",
        timelines.len()
    );
    println!("trace:   {}", trace_path.display());
    println!("metrics: {}", bench_path.display());
    println!("open the trace at https://ui.perfetto.dev");
}
