//! Ablation: one fat kernel with runtime region switching vs nine separate
//! per-region kernel launches — the alternative the paper rejects in §III-C
//! because of per-launch overhead (and host-side iteration-space splitting).
//!
//! The multi-kernel estimate reuses the fat kernel's measured per-region
//! block costs (minus nothing — the thin kernels would be marginally
//! cheaper, which only strengthens the conclusion at large sizes) and pays
//! one launch overhead per non-empty region.
//!
//! Regenerate with: `cargo run -p isp-bench --bin ablation_multikernel --release`

use isp_bench::report::Table;
use isp_bench::runner::{bench_image, compile_app, Experiment};
use isp_core::Variant;
use isp_dsl::runner::ExecMode;
use isp_filters::by_name;
use isp_image::BorderPattern;
use isp_sim::scheduler::{schedule, BlockCost};
use isp_sim::{occupancy, DeviceSpec};

fn main() {
    println!(
        "Ablation: fat kernel (one launch, Listing 3 switch) vs nine\n\
         per-region kernel launches (gaussian 3x3, Clamp)\n"
    );
    for device in DeviceSpec::all() {
        let mut t = Table::new(&[
            "size",
            "fat kernel Mcyc",
            "9-launch Mcyc",
            "fat speedup",
            "regions launched",
        ]);
        for size in [256usize, 512, 1024, 2048, 4096] {
            let exp = Experiment::paper(
                device.clone(),
                by_name("gaussian").unwrap(),
                BorderPattern::Clamp,
                size,
            );
            let engine = exp.engine();
            let compiled = compile_app(&exp);
            let source = bench_image(size);
            // Pipeline reports fold per-stage data; run the single stage
            // directly to get class costs.
            let out = engine
                .run_kernel(
                    &compiled[0],
                    Variant::IspBlock,
                    &[&source],
                    &[],
                    0.0,
                    exp.block,
                    ExecMode::Sampled,
                )
                .expect("filter run");
            let fat_cycles = out.report.timing.cycles;

            // Re-schedule each region's blocks as its own launch.
            let isp = compiled[0].isp.as_ref().unwrap();
            let occ = occupancy(&device, exp.block.0 * exp.block.1, isp.regs.data_regs);
            let mut multi_cycles = 0u64;
            let mut launches = 0u32;
            for &(class, count, cycles) in &out.report.class_costs {
                if count == 0 {
                    continue;
                }
                launches += 1;
                let fp = isp.region_footprints.unwrap()[class as usize];
                let blocks = (0..count).map(|_| BlockCost {
                    class,
                    cycles,
                    static_footprint: fp,
                });
                multi_cycles += schedule(&device, &occ, blocks).cycles;
            }
            t.row(&[
                size.to_string(),
                format!("{:.3}", fat_cycles as f64 / 1e6),
                format!("{:.3}", multi_cycles as f64 / 1e6),
                format!("{:.3}", multi_cycles as f64 / fat_cycles as f64),
                launches.to_string(),
            ]);
        }
        println!("--- {} ---", device.name);
        println!("{}", t.render());
    }
    println!(
        "Expected shape (paper section III-C): the separate-launch strategy pays\n\
         ~9 launch overheads plus per-region tail waves, which dominates at\n\
         small sizes; the fat kernel amortises everything into one dispatch."
    );
}
