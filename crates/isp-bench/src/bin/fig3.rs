//! Figure 3: percentage of blocks that execute the Body region for a 5x5
//! local operator, as a function of image size, for two block-size
//! configurations.
//!
//! Regenerate with: `cargo run -p isp-bench --bin fig3 --release`

use isp_bench::report::Table;
use isp_core::bounds::Geometry;
use isp_exec::Engine;
use isp_sim::DeviceSpec;

fn main() {
    println!("Figure 3: fraction of blocks executing the Body region (5x5 operator)\n");
    let engine = Engine::global(&DeviceSpec::gtx680());
    let configs: [(u32, u32); 2] = [(32, 4), (128, 2)];
    let mut t = Table::new(&[
        "image size",
        "body % (32x4 blocks)",
        "body % (128x2 blocks)",
    ]);
    let sizes: Vec<usize> = (1..=16).map(|i| i * 256).collect();
    for size in sizes {
        let mut row = vec![format!("{size}x{size}")];
        for block in configs {
            let g = Geometry {
                sx: size,
                sy: size,
                m: 5,
                n: 5,
                tx: block.0,
                ty: block.1,
            };
            let frac = engine.partition(&g).block_counts().body_fraction();
            row.push(format!("{:.1}", frac * 100.0));
        }
        t.row(&row);
    }
    println!("{}", t.render());
    println!(
        "Shape check (paper): the body fraction grows with image size, and the\n\
         larger block configuration trails the smaller one at every size."
    );
}
