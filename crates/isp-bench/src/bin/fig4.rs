//! Figure 4: bilateral filter ISP-over-naive speedup as a function of image
//! size, for all four border handling patterns, on the Kepler-class device
//! (the paper's GTX680 plot; the Turing-class curve is appended).
//!
//! Regenerate with: `cargo run -p isp-bench --bin fig4 --release`

use isp_bench::report::Table;
use isp_bench::runner::{measure_app, Experiment};
use isp_filters::by_name;
use isp_image::BorderPattern;
use isp_sim::DeviceSpec;

fn main() {
    let sizes: Vec<usize> = (2..=16).map(|i| i * 256).collect();
    for device in DeviceSpec::all() {
        println!(
            "Figure 4 ({}): bilateral 13x13 speedup of isp over naive vs image size\n",
            device.name
        );
        let mut t = Table::new(&["size", "clamp", "mirror", "repeat", "constant"]);
        for &size in &sizes {
            let mut row = vec![size.to_string()];
            for pattern in BorderPattern::ALL {
                let exp =
                    Experiment::paper(device.clone(), by_name("bilateral").unwrap(), pattern, size);
                let m = measure_app(&exp);
                row.push(format!("{:.3}", m.speedup_isp));
            }
            t.row(&row);
        }
        println!("{}", t.render());
    }
    println!(
        "Shape check (paper): speedups grow with image size; small images on the\n\
         Kepler-class device dip below 1.0 (occupancy loss), so the naive\n\
         implementation is the better choice there."
    );
}
