//! Ablation: shared-memory tiling vs the flat (global-memory) variants —
//! the other classic way to amortise border handling. Tiling moves the
//! checks from "every window access of every thread" to "once per staged
//! tile element", so it competes with ISP on the same overhead; stacking
//! ISP on top of tiling would have little left to win.
//!
//! All variants run exhaustively (every warp interpreted) for exact
//! counters.
//!
//! Regenerate with: `cargo run -p isp-bench --bin ablation_tiling --release`

use isp_bench::report::Table;
use isp_bench::runner::bench_image;
use isp_core::Variant;
use isp_dsl::runner::{run_compiled, ExecMode};
use isp_dsl::Compiler;
use isp_exec::Engine;
use isp_image::BorderPattern;
use isp_ir::InstrCategory;
use isp_sim::DeviceSpec;

fn main() {
    println!(
        "Ablation: shared-memory tiling vs flat naive/ISP (512^2, 32x4 blocks,\n\
         exhaustive interpretation)\n"
    );
    let size = 512usize;
    let img = bench_image(size);
    for device in DeviceSpec::all() {
        let engine = Engine::global(&device);
        let mut t = Table::new(&[
            "app",
            "pattern",
            "naive Mcyc",
            "isp Mcyc",
            "tiled Mcyc",
            "global lds naive",
            "global lds tiled",
            "tiled occupancy",
            "best",
        ]);
        for (name, spec, user) in [
            ("gaussian3", isp_filters::gaussian::spec(3), vec![]),
            (
                "bilateral5",
                isp_filters::bilateral::spec(5),
                vec![isp_filters::bilateral::range_param(
                    isp_filters::bilateral::DEFAULT_SIGMA_R,
                )],
            ),
        ] {
            for pattern in [BorderPattern::Clamp, BorderPattern::Repeat] {
                let ck = engine.compile(&spec, pattern, Variant::IspBlock);
                let run_flat = |variant| {
                    engine
                        .run_kernel(
                            &ck,
                            variant,
                            &[&img],
                            &user,
                            0.2,
                            (32, 4),
                            ExecMode::Exhaustive,
                        )
                        .expect("flat launch")
                };
                let naive = run_flat(Variant::Naive);
                let isp = run_flat(Variant::IspBlock);
                // Tiled variants live outside the engine cache: they are a
                // different compilation product (standalone CompiledVariant).
                let tiled_cv = Compiler::new().compile_tiled(&spec, pattern, (32, 4));
                let tiled = run_compiled(
                    engine.gpu(),
                    &tiled_cv,
                    &[&img],
                    &user,
                    0.2,
                    (32, 4),
                    ExecMode::Exhaustive,
                )
                .expect("tiled launch");
                let rows = [
                    (naive.report.timing.cycles, "naive"),
                    (isp.report.timing.cycles, "isp"),
                    (tiled.report.timing.cycles, "tiled"),
                ];
                let best = rows.iter().min_by_key(|&&(c, _)| c).unwrap().1;
                t.row(&[
                    name.into(),
                    pattern.name().into(),
                    format!("{:.2}", naive.report.timing.cycles as f64 / 1e6),
                    format!("{:.2}", isp.report.timing.cycles as f64 / 1e6),
                    format!("{:.2}", tiled.report.timing.cycles as f64 / 1e6),
                    naive.report.counters.count(InstrCategory::Ld).to_string(),
                    tiled.report.counters.count(InstrCategory::Ld).to_string(),
                    format!("{:.3}", tiled.report.occupancy.occupancy),
                    best.into(),
                ]);
            }
        }
        println!("--- {} ---", device.name);
        println!("{}", t.render());
    }
    println!(
        "Reading: tiling divides global traffic by roughly the window size and\n\
         pays shared-memory traffic, barriers, and a shared-memory occupancy\n\
         limit instead. Both tiling and ISP attack the same border-handling\n\
         overhead from different ends — which wins depends on how\n\
         memory-bound the kernel is."
    );
}
