//! Figure 6: speedups of `isp` (always partition) and `isp+m` (partition
//! when the model predicts a gain) over the naive implementation, for all
//! five applications x four border patterns x four image sizes x both
//! devices — the paper's full evaluation sweep.
//!
//! Regenerate with: `cargo run -p isp-bench --bin fig6 --release`

use isp_bench::report::Table;
use isp_bench::runner::{measure_app, write_json, Experiment, ExperimentRecord, PAPER_SIZES};
use isp_filters::all_apps;
use isp_image::BorderPattern;
use isp_sim::DeviceSpec;

fn main() {
    let mut records = Vec::new();
    for device in DeviceSpec::all() {
        for app in all_apps() {
            println!(
                "Figure 6 ({} / {}): speedup over naive\n",
                device.name, app.name
            );
            let mut t = Table::new(&[
                "pattern", "size", "S(isp)", "S(isp+m)", "naive ms", "isp ms", "isp+m ms",
            ]);
            for pattern in BorderPattern::ALL {
                for size in PAPER_SIZES {
                    let exp = Experiment::paper(device.clone(), app.clone(), pattern, size);
                    let m = measure_app(&exp);
                    records.push(ExperimentRecord::new(&exp, &m));
                    let ms = |cycles: u64| device.cycles_to_ms(cycles);
                    t.row(&[
                        pattern.name().into(),
                        size.to_string(),
                        format!("{:.3}", m.speedup_isp),
                        format!("{:.3}", m.speedup_ispm),
                        format!("{:.3}", ms(m.naive_cycles)),
                        format!("{:.3}", ms(m.isp_cycles)),
                        format!("{:.3}", ms(m.ispm_cycles)),
                    ]);
                }
            }
            println!("{}", t.render());
        }
    }
    println!(
        "Shape checks (paper): speedup grows with image size; Repeat benefits\n\
         most; isp+m never falls meaningfully below 1.0 because it backs off\n\
         to the naive variant when the model predicts a loss."
    );
    match write_json("fig6", &records) {
        Ok(path) => println!("machine-readable results: {}", path.display()),
        Err(e) => eprintln!("could not write JSON results: {e}"),
    }
}
