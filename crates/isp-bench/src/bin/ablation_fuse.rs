//! Superinstruction-fusion / SIMD ablation harness: static dispatch counts
//! before and after decode-time fusion, per-filter decoded and replay
//! wall-clocks under {fusion off + scalar, fusion on + scalar, fusion on +
//! SIMD}, the full exhaustive sweep under the same three configurations,
//! and the opcode-sequence top-10 that justified the superinstruction set.
//! Bit-identity across every engine x configuration cell is asserted before
//! anything is timed. Writes `target/results/BENCH_PR8.json` for CI
//! artifact upload.
//!
//! Usage: `cargo run -p isp-bench --bin ablation_fuse --release [--features simd] [-- size sweep_sizes...]`
//!
//! The first argument is the per-filter exhaustive image size (default 256);
//! the remaining arguments are the sweep sizes (default 512/1024). Without
//! `--features simd` (or on a machine without AVX2) the SIMD column
//! degrades to the scalar row kernels and `simd_active` reports `false`.

use isp_bench::report::{write_json_doc, Table};
use isp_core::Variant;
use isp_dsl::pipeline::Policy;
use isp_dsl::runner::ExecMode;
use isp_dsl::Compiler;
use isp_exec::{Engine, Request, PAPER_BLOCK};
use isp_image::{BorderPattern, BorderSpec};
use isp_json::Json;
use isp_probe::RecordingProbe;
use isp_sim::{decode_with_fusion, DeviceSpec, ExecEngine, Gpu};
use std::time::Instant;

/// One ablation cell: fusion toggle plus SIMD toggle (SIMD only ever runs
/// on top of the fused engine — that is the configuration the PR ships).
#[derive(Clone, Copy, PartialEq)]
struct Config {
    label: &'static str,
    fusion: bool,
    simd: bool,
}

const CONFIGS: [Config; 3] = [
    Config {
        label: "fuse-off scalar",
        fusion: false,
        simd: false,
    },
    Config {
        label: "fuse-on  scalar",
        fusion: true,
        simd: false,
    },
    Config {
        label: "fuse-on  simd",
        fusion: true,
        simd: true,
    },
];

/// Median wall-clock time of `runs` invocations of `f`, in milliseconds.
fn time_ms<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Run one exhaustive request on a fresh engine under `cfg` and return the
/// outcome (pixels + counters + cycles).
fn run_cell(
    exec: ExecEngine,
    cfg: Config,
    app: &isp_filters::App,
    pattern: BorderPattern,
    size: usize,
) -> isp_exec::Outcome {
    isp_sim::set_simd_enabled(cfg.simd);
    let engine = Engine::with_fusion(DeviceSpec::gtx680(), exec, cfg.fusion);
    let source = isp_exec::bench_image(size);
    engine
        .run_on(
            &Request::paper(
                app.clone(),
                pattern,
                size,
                Policy::AlwaysIsp(Variant::IspBlock),
            )
            .exhaustive(),
            &source,
        )
        .unwrap_or_else(|e| panic!("{} {pattern:?} under {}: {e}", app.name, cfg.label))
}

/// Assert that decoded and replay match the reference oracle bit-for-bit —
/// pixels, merged counters, and total cycles — under every ablation
/// configuration. Returns the number of cells checked.
fn assert_identity(app: &isp_filters::App, pattern: BorderPattern, size: usize) -> usize {
    let oracle = run_cell(ExecEngine::Reference, CONFIGS[0], app, pattern, size);
    let oracle_bits: Vec<u32> = oracle
        .image
        .as_ref()
        .expect("exhaustive run returns pixels")
        .to_packed_vec()
        .iter()
        .map(|p| p.to_bits())
        .collect();
    let mut cells = 0;
    for exec in [
        ExecEngine::Reference,
        ExecEngine::Decoded,
        ExecEngine::Replay,
    ] {
        for cfg in CONFIGS {
            let got = run_cell(exec, cfg, app, pattern, size);
            let bits: Vec<u32> = got
                .image
                .as_ref()
                .expect("exhaustive run returns pixels")
                .to_packed_vec()
                .iter()
                .map(|p| p.to_bits())
                .collect();
            assert_eq!(
                bits, oracle_bits,
                "{} {pattern:?}: {exec:?} under '{}' diverged from reference pixels",
                app.name, cfg.label
            );
            assert_eq!(
                got.counters, oracle.counters,
                "{} {pattern:?}: {exec:?} under '{}' diverged from reference counters",
                app.name, cfg.label
            );
            assert_eq!(
                got.total_cycles, oracle.total_cycles,
                "{} {pattern:?}: {exec:?} under '{}' diverged from reference cycles",
                app.name, cfg.label
            );
            cells += 1;
        }
    }
    cells
}

/// Time one exhaustive pipeline run of `app` under `(exec, cfg)`.
fn filter_ms(
    exec: ExecEngine,
    cfg: Config,
    app: &isp_filters::App,
    size: usize,
    runs: usize,
) -> f64 {
    isp_sim::set_simd_enabled(cfg.simd);
    let gpu = Gpu::new(DeviceSpec::gtx680())
        .with_engine(exec)
        .with_fusion(cfg.fusion);
    let border = BorderSpec::from_pattern(BorderPattern::Clamp);
    let compiled = app
        .pipeline
        .compile(&Compiler::new(), border, Variant::IspBlock);
    let img = isp_exec::bench_image(size);
    time_ms(runs, || {
        app.pipeline
            .run(
                &gpu,
                &compiled,
                &img,
                border,
                PAPER_BLOCK,
                Policy::AlwaysIsp(Variant::IspBlock),
                ExecMode::Exhaustive,
            )
            .unwrap()
    })
}

/// Median total wall-clock of the full exhaustive sweep (the PR 4 benchmark
/// configuration: gaussian, 4 patterns x `sizes`, three policies per point)
/// under `(exec, cfg)`.
fn sweep_ms(exec: ExecEngine, cfg: Config, sizes: &[usize], runs: usize) -> f64 {
    isp_sim::set_simd_enabled(cfg.simd);
    let engine = Engine::with_fusion(DeviceSpec::gtx680(), exec, cfg.fusion);
    let app = isp_filters::by_name("gaussian").unwrap();
    let sources: Vec<_> = sizes.iter().map(|&s| isp_exec::bench_image(s)).collect();
    time_ms(runs, || {
        for pattern in BorderPattern::ALL {
            for (&size, source) in sizes.iter().zip(&sources) {
                for policy in [
                    Policy::Naive,
                    Policy::AlwaysIsp(Variant::IspBlock),
                    Policy::Model(Variant::IspBlock),
                ] {
                    engine
                        .run_on(
                            &Request::paper(app.clone(), pattern, size, policy).exhaustive(),
                            source,
                        )
                        .unwrap();
                }
            }
        }
    })
}

/// Static fusion effect for one filter: ops, dispatch slots after fusion,
/// groups formed, and dispatches saved — summed over every stage's naive
/// and ISP variants under the Clamp pattern.
fn static_counts(app: &isp_filters::App, device: &DeviceSpec) -> (usize, usize, u64, u64) {
    let compiler = Compiler::new();
    let (mut ops, mut dispatches, mut groups, mut saved) = (0usize, 0usize, 0u64, 0u64);
    for stage in &app.pipeline.stages {
        let ck = compiler.compile(&stage.spec, BorderPattern::Clamp, Variant::IspBlock);
        for cv in [Some(&ck.naive), ck.isp.as_ref()].into_iter().flatten() {
            let fused = decode_with_fusion(&cv.kernel, device, true);
            let unfused = decode_with_fusion(&cv.kernel, device, false);
            assert_eq!(
                fused.num_ops(),
                unfused.num_ops(),
                "fusion must not add ops"
            );
            let stats = fused.fusion_stats();
            ops += fused.num_ops();
            dispatches += fused.num_dispatches();
            groups += stats.groups;
            saved += stats.dispatches_saved;
        }
    }
    (ops, dispatches, groups, saved)
}

/// Opcode-sequence histogram: one probed exhaustive gaussian run on the
/// decoded engine, returning the top-`k` pair and triple counters.
/// `(sequence label, count)` rows, most frequent first.
type SeqCounts = Vec<(String, u64)>;

fn opseq_top(size: usize, k: usize) -> (SeqCounts, SeqCounts) {
    let (probe, handle) = RecordingProbe::new_handle();
    let engine =
        Engine::with_fusion(DeviceSpec::gtx680(), ExecEngine::Decoded, true).with_probe(handle);
    let app = isp_filters::by_name("gaussian").unwrap();
    let source = isp_exec::bench_image(size);
    engine
        .run_on(
            &Request::paper(
                app,
                BorderPattern::Clamp,
                size,
                Policy::AlwaysIsp(Variant::IspBlock),
            )
            .exhaustive(),
            &source,
        )
        .unwrap();
    let metrics = probe.metrics();
    let strip = |prefix: &str, v: Vec<(String, u64)>| {
        v.into_iter()
            .map(|(key, n)| (key[prefix.len()..].to_string(), n))
            .collect::<Vec<_>>()
    };
    (
        strip("sim.opseq2.", metrics.top_counters("sim.opseq2.", k)),
        strip("sim.opseq3.", metrics.top_counters("sim.opseq3.", k)),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let size: usize = args
        .first()
        .map(|s| s.parse().expect("size must be an integer"))
        .unwrap_or(256);
    let sweep_sizes: Vec<usize> = if args.len() > 1 {
        args[1..]
            .iter()
            .map(|s| s.parse().expect("size must be an integer"))
            .collect()
    } else {
        vec![512, 1024]
    };
    let runs = 3;
    let device = DeviceSpec::gtx680();
    isp_sim::set_simd_enabled(true);
    let simd_active = isp_sim::simd_enabled();
    println!(
        "== fusion/SIMD ablation on {} (simd compiled: {}, active: {simd_active})",
        device.name,
        cfg!(feature = "simd"),
    );

    // Part 0: bit-identity across every engine x configuration cell, before
    // anything is timed. Gaussian covers all four patterns; every other
    // filter is checked under Clamp.
    let identity_size = size.min(96);
    let mut cells = 0;
    for pattern in BorderPattern::ALL {
        cells += assert_identity(
            &isp_filters::by_name("gaussian").unwrap(),
            pattern,
            identity_size,
        );
    }
    for app in isp_filters::apps::all_apps() {
        if app.name != "gaussian" {
            cells += assert_identity(&app, BorderPattern::Clamp, identity_size);
        }
    }
    println!("== bit-identity: {cells} engine x config cells identical at {identity_size}x{identity_size}");

    // Part 1: static dispatch counts before/after fusion.
    println!("== static fusion effect per filter (naive + isp variants, all stages)");
    let mut table = Table::new(&[
        "filter",
        "ops",
        "dispatches",
        "groups",
        "saved",
        "reduction",
    ]);
    let mut kernels: Vec<Json> = Vec::new();
    for app in isp_filters::apps::all_apps() {
        let (ops, dispatches, groups, saved) = static_counts(&app, &device);
        let reduction = saved as f64 / ops as f64;
        table.row(&[
            app.name.to_string(),
            ops.to_string(),
            dispatches.to_string(),
            groups.to_string(),
            saved.to_string(),
            format!("{:.0}%", reduction * 100.0),
        ]);
        kernels.push(
            Json::obj()
                .set("filter", app.name)
                .set("ops", ops)
                .set("dispatches_fused", dispatches)
                .set("groups", groups)
                .set("dispatches_saved", saved),
        );
    }
    print!("{}", table.render());

    // Part 2: per-filter decoded / replay wall-clock under each config.
    println!("== exhaustive {size}x{size} Clamp isp, per filter (median of {runs}, ms)");
    let mut table = Table::new(&[
        "filter",
        "dec off",
        "dec fuse",
        "dec simd",
        "dec speedup",
        "rep off",
        "rep fuse",
        "rep simd",
        "rep speedup",
    ]);
    let mut filters: Vec<Json> = Vec::new();
    for app in isp_filters::apps::all_apps() {
        let dec: Vec<f64> = CONFIGS
            .iter()
            .map(|&c| filter_ms(ExecEngine::Decoded, c, &app, size, runs))
            .collect();
        let rep: Vec<f64> = CONFIGS
            .iter()
            .map(|&c| filter_ms(ExecEngine::Replay, c, &app, size, runs))
            .collect();
        let dec_speedup = dec[0] / dec[2];
        let rep_speedup = rep[0] / rep[2];
        table.row(&[
            app.name.to_string(),
            format!("{:.1}", dec[0]),
            format!("{:.1}", dec[1]),
            format!("{:.1}", dec[2]),
            format!("{dec_speedup:.2}x"),
            format!("{:.1}", rep[0]),
            format!("{:.1}", rep[1]),
            format!("{:.1}", rep[2]),
            format!("{rep_speedup:.2}x"),
        ]);
        filters.push(
            Json::obj()
                .set("filter", app.name)
                .set(
                    "decoded",
                    Json::obj()
                        .set("baseline_ms", dec[0])
                        .set("fused_ms", dec[1])
                        .set("fused_simd_ms", dec[2])
                        .set("speedup", dec_speedup),
                )
                .set(
                    "replay",
                    Json::obj()
                        .set("baseline_ms", rep[0])
                        .set("fused_ms", rep[1])
                        .set("fused_simd_ms", rep[2])
                        .set("speedup", rep_speedup),
                ),
        );
    }
    print!("{}", table.render());

    // Part 3: the full exhaustive sweep under each config, decoded and
    // replay (the acceptance numbers).
    println!("== full exhaustive sweep: gaussian 4-pattern x {sweep_sizes:?} x 3 policies (median of {runs}, ms)");
    let dec_sweep: Vec<f64> = CONFIGS
        .iter()
        .map(|&c| sweep_ms(ExecEngine::Decoded, c, &sweep_sizes, runs))
        .collect();
    let rep_sweep: Vec<f64> = CONFIGS
        .iter()
        .map(|&c| sweep_ms(ExecEngine::Replay, c, &sweep_sizes, runs))
        .collect();
    let dec_speedup = dec_sweep[0] / dec_sweep[2];
    let rep_speedup = rep_sweep[0] / rep_sweep[2];
    for (cfg, (d, r)) in CONFIGS.iter().zip(dec_sweep.iter().zip(&rep_sweep)) {
        println!("  {:16} decoded {d:9.1}  replay {r:9.1}", cfg.label);
    }
    println!("  decoded speedup {dec_speedup:5.2}x   replay speedup {rep_speedup:5.2}x");

    // Part 4: the opcode-sequence histogram that motivated the
    // superinstruction set.
    let (pairs, triples) = opseq_top(identity_size, 10);
    println!(
        "== top opcode sequences (gaussian Clamp {identity_size}x{identity_size}, decoded engine)"
    );
    let mut table = Table::new(&["pair", "count", "triple", "count"]);
    for i in 0..pairs.len().max(triples.len()) {
        let (p, pn) = pairs
            .get(i)
            .map(|(k, n)| (k.clone(), n.to_string()))
            .unwrap_or_default();
        let (t, tn) = triples
            .get(i)
            .map(|(k, n)| (k.clone(), n.to_string()))
            .unwrap_or_default();
        table.row(&[p, pn, t, tn]);
    }
    print!("{}", table.render());

    let seq_json = |v: &[(String, u64)]| {
        v.iter()
            .map(|(k, n)| Json::obj().set("seq", k.as_str()).set("count", *n))
            .collect::<Vec<_>>()
    };
    let sweep_json = |ms: &[f64], speedup: f64| {
        Json::obj()
            .set("baseline_ms", ms[0])
            .set("fused_ms", ms[1])
            .set("fused_simd_ms", ms[2])
            .set("speedup", speedup)
    };
    let doc = Json::obj()
        .set("schema", "isp-fuse-v1")
        .set("device", device.name)
        .set("exhaustive_size", size)
        .set("runs", runs)
        .set("simd_compiled", cfg!(feature = "simd"))
        .set("simd_active", simd_active)
        .set(
            "identity",
            Json::obj().set("cells", cells).set("all_identical", true),
        )
        .set("kernels", kernels)
        .set("filters", filters)
        .set(
            "sweep",
            Json::obj()
                .set(
                    "sizes",
                    sweep_sizes
                        .iter()
                        .map(|&s| Json::from(s))
                        .collect::<Vec<_>>(),
                )
                .set("patterns", 4u32)
                .set("policies", 3u32)
                .set("decoded", sweep_json(&dec_sweep, dec_speedup))
                .set("replay", sweep_json(&rep_sweep, rep_speedup)),
        )
        .set(
            "opseq",
            Json::obj()
                .set("pairs", seq_json(&pairs))
                .set("triples", seq_json(&triples)),
        );
    let path = write_json_doc("BENCH_PR8", &doc).expect("write BENCH_PR8.json");
    println!("wrote {}", path.display());
}
