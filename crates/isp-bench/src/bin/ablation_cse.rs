//! Ablation: the compiler's CSE settings and their effect on the
//! naive-vs-ISP instruction gap — quantifying the paper's §IV-A observation
//! that NVCC's common-subexpression elimination shrinks what partitioning
//! can save.
//!
//! Regenerate with: `cargo run -p isp-bench --bin ablation_cse --release`

use isp_bench::report::Table;
use isp_core::{bounds::Geometry, IndexBounds, Variant};
use isp_dsl::Compiler;
use isp_image::BorderPattern;
use isp_ir::opt::OptConfig;

fn main() {
    println!(
        "Ablation: CSE configuration vs naive instruction count and R_reduced\n\
         (gaussian 3x3 and bilateral 13x13, Clamp, 2048^2, 32x4 blocks)\n"
    );
    let configs: [(&str, OptConfig); 4] = [
        ("no CSE", OptConfig::no_cse()),
        ("windowed CSE (legacy full)", OptConfig::full()),
        ("unbounded CSE", OptConfig::unbounded_cse()),
        ("fixed-point pipeline (default)", OptConfig::pipeline()),
    ];
    for (app, spec) in [
        ("gaussian3", isp_filters::gaussian::spec(3)),
        ("bilateral13", isp_filters::bilateral::spec(13)),
    ] {
        let mut t = Table::new(&[
            "CSE config",
            "naive instrs",
            "body-path instrs",
            "R_reduced @2048^2",
            "naive regs",
        ]);
        for (name, opt) in configs.iter() {
            let ck =
                Compiler::with_opt(*opt).compile(&spec, BorderPattern::Clamp, Variant::IspBlock);
            let (m, n) = ck.spec.window();
            let geom = Geometry {
                sx: 2048,
                sy: 2048,
                m,
                n,
                tx: 32,
                ty: 4,
            };
            let bounds = IndexBounds::new(&geom);
            let model = ck.ir_stats_model().expect("stencil");
            let body = &ck
                .isp
                .as_ref()
                .unwrap()
                .region_histograms
                .as_ref()
                .unwrap()
                .iter()
                .find(|(r, _)| *r == isp_core::Region::Body)
                .unwrap()
                .1;
            t.row(&[
                (*name).into(),
                ck.naive.static_histogram.total().to_string(),
                body.total().to_string(),
                format!("{:.3}", model.r_reduced(&bounds)),
                ck.naive.regs.data_regs.to_string(),
            ]);
        }
        println!("--- {app} ---");
        println!("{}", t.render());
    }
    println!(
        "Expected shape: disabling CSE inflates the naive count (and thus the\n\
         apparent ISP benefit); unbounded CSE shrinks the gap but hoards\n\
         registers; the windowed default models a production compiler's\n\
         rematerialization trade-off."
    );
}
