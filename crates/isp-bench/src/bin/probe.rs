//! Calibration probe (not a paper artefact): prints the naive/isp/isp+m
//! landscape for quick inspection while tuning the simulator.

use isp_bench::report::Table;
use isp_bench::runner::{measure_app, Experiment};
use isp_filters::by_name;
use isp_image::BorderPattern;
use isp_sim::DeviceSpec;

fn main() {
    let apps = ["gaussian", "bilateral"];
    for device in DeviceSpec::all() {
        for app_name in apps {
            let mut t = Table::new(&[
                "app",
                "pattern",
                "size",
                "naive Mcyc",
                "isp Mcyc",
                "S(isp)",
                "S(isp+m)",
                "G(model)",
                "regsN",
                "regsI",
            ]);
            for pattern in BorderPattern::ALL {
                for size in [512usize, 1024, 2048, 4096] {
                    let exp = Experiment::paper(
                        device.clone(),
                        by_name(app_name).unwrap(),
                        pattern,
                        size,
                    );
                    let compiled = isp_bench::runner::compile_app(&exp);
                    let ck = &compiled[0];
                    let m = measure_app(&exp);
                    t.row(&[
                        app_name.into(),
                        pattern.name().into(),
                        size.to_string(),
                        format!("{:.2}", m.naive_cycles as f64 / 1e6),
                        format!("{:.2}", m.isp_cycles as f64 / 1e6),
                        format!("{:.3}", m.speedup_isp),
                        format!("{:.3}", m.speedup_ispm),
                        format!("{:.3}", m.stage_gains.first().copied().unwrap_or(1.0)),
                        ck.naive.regs.data_regs.to_string(),
                        ck.isp
                            .as_ref()
                            .map(|v| v.regs.data_regs.to_string())
                            .unwrap_or("-".into()),
                    ]);
                }
            }
            println!("== {} / {} ==", device.name, app_name);
            println!("{}", t.render());
        }
    }
}
