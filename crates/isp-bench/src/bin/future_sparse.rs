//! The paper's stated future work, implemented: "explore the ISP
//! optimization on irregular stencil kernels ... such as using a sparse
//! stencil mask that is only applied to a few neighbors."
//!
//! Sparse masks make the *kernel computation* cheap while the window reach
//! (and thus the border margin) stays large — the regime where border
//! handling dominates and ISP's benefit is largest.
//!
//! Regenerate with: `cargo run -p isp-bench --bin future_sparse --release`

use isp_bench::report::Table;
use isp_bench::runner::bench_image;
use isp_core::Variant;
use isp_dsl::runner::ExecMode;
use isp_dsl::KernelSpec;
use isp_exec::Engine;
use isp_image::{BorderPattern, Mask};
use isp_sim::DeviceSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random sparse mask: `taps` active cells scattered over a
/// `window x window` reach (always including the centre), unit-normalised.
fn sparse_mask(window: usize, taps: usize, seed: u64) -> Mask {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coeffs = vec![0.0f32; window * window];
    coeffs[window * window / 2] = 1.0;
    let mut placed = 1;
    while placed < taps {
        let i = rng.gen_range(0..coeffs.len());
        if coeffs[i] == 0.0 {
            coeffs[i] = rng.gen_range(0.2..1.0);
            placed += 1;
        }
    }
    let sum: f32 = coeffs.iter().sum();
    for c in &mut coeffs {
        *c /= sum;
    }
    Mask::from_coeffs(window, window, coeffs).expect("odd window")
}

fn main() {
    println!(
        "Future work (paper section VII): ISP on irregular sparse stencils\n\
         (window reach 17x17, varying active taps; Repeat pattern, 2048^2)\n"
    );
    let engine = Engine::global(&DeviceSpec::gtx680());
    let img = bench_image(2048);
    let mut t = Table::new(&[
        "active taps",
        "naive Mcyc",
        "isp Mcyc",
        "S(isp)",
        "checks per output (naive)",
    ]);
    for taps in [5usize, 9, 17, 33, 65, 129, 289] {
        let taps = taps.min(17 * 17);
        let mask = sparse_mask(17, taps, 42);
        let spec = KernelSpec::convolution(format!("sparse{taps}"), &mask);
        let ck = engine.compile(&spec, BorderPattern::Repeat, Variant::IspBlock);
        let cycles = |variant| {
            engine
                .run_kernel(&ck, variant, &[&img], &[], 0.0, (32, 4), ExecMode::Sampled)
                .map(|o| o.report.timing.cycles)
                .expect("launch")
        };
        let n = cycles(Variant::Naive);
        let i = cycles(Variant::IspBlock);
        t.row(&[
            taps.to_string(),
            format!("{:.2}", n as f64 / 1e6),
            format!("{:.2}", i as f64 / 1e6),
            format!("{:.3}", n as f64 / i as f64),
            format!(
                "{}",
                ck.naive.static_histogram.get(isp_ir::InstrCategory::Setp)
                    + ck.naive.static_histogram.get(isp_ir::InstrCategory::Selp)
            ),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Reading: the sparser the stencil, the larger ISP's relative win —\n\
         the border margin (and its checks) is set by the 17x17 reach while\n\
         the useful arithmetic shrinks with the tap count. Irregular masks\n\
         need no new compiler machinery: domain inference already skips\n\
         inactive cells."
    );
}
