//! Table I: bilateral filter instruction comparison, naive vs the nine ISP
//! regions, counted at the IR ("PTX") level by keyword category. The counts
//! include both the region body and the switching statements needed to reach
//! the region, exactly as the paper describes.
//!
//! Regenerate with: `cargo run -p isp-bench --bin table1 --release`

use isp_bench::report::Table;
use isp_core::{Region, Variant};
use isp_exec::Engine;
use isp_filters::bilateral;
use isp_image::BorderPattern;
use isp_ir::{InstrCategory, InstrHistogram};
use isp_sim::DeviceSpec;

fn main() {
    // Paper setup: bilateral 13x13, Clamp pattern.
    let spec = bilateral::spec(13);
    let engine = Engine::global(&DeviceSpec::gtx680());
    let ck = engine.compile(&spec, BorderPattern::Clamp, Variant::IspBlock);
    let isp = ck.isp.as_ref().expect("bilateral is a stencil");
    let region_hists = isp
        .region_histograms
        .as_ref()
        .expect("isp variant has regions");

    println!("Table I: bilateral (13x13, Clamp) per-thread static instruction counts");
    println!("(PTX-level keyword categories; region columns include the switch cost)\n");

    let mut header: Vec<String> = vec!["category".into(), "naive".into()];
    for r in Region::ALL {
        header.push(r.name().to_string());
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&header_refs);

    let hist_of = |r: Region| -> &InstrHistogram {
        &region_hists
            .iter()
            .find(|(pr, _)| *pr == r)
            .expect("all regions present")
            .1
    };

    for cat in InstrCategory::ALL {
        let naive = ck.naive.static_histogram.get(cat);
        let by_region: Vec<u64> = Region::ALL.iter().map(|&r| hist_of(r).get(cat)).collect();
        if naive == 0 && by_region.iter().all(|&c| c == 0) {
            continue;
        }
        let mut row = vec![cat.name().to_string(), naive.to_string()];
        row.extend(by_region.iter().map(|c| c.to_string()));
        t.row(&row);
    }
    // Totals row.
    let mut row = vec![
        "TOTAL".to_string(),
        ck.naive.static_histogram.total().to_string(),
    ];
    row.extend(Region::ALL.iter().map(|&r| hist_of(r).total().to_string()));
    t.row(&row);
    // Arithmetic-only totals (the paper's key observation).
    let mut row = vec![
        "arith".to_string(),
        ck.naive.static_histogram.arithmetic_total().to_string(),
    ];
    row.extend(
        Region::ALL
            .iter()
            .map(|&r| hist_of(r).arithmetic_total().to_string()),
    );
    t.row(&row);
    println!("{}", t.render());

    let body = hist_of(Region::Body);
    println!(
        "\nObservations (paper section IV-A):\n\
         - Body executes {} arithmetic instructions vs {} naive (clear benefit).\n\
         - Corner/edge regions sit near or above the naive count once the\n\
           switching statements are included — \"not all the regions have a\n\
           noticeable reduction\".\n\
         - The reduction concentrates in address-calculation categories\n\
           (max/min/add/setp/selp), not loads or SFU work.",
        body.arithmetic_total(),
        ck.naive.static_histogram.arithmetic_total(),
    );
}
