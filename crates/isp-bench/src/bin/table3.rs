//! Table III: measured best implementation vs model prediction for the
//! bilateral filter across image sizes and patterns, plus the Pearson
//! correlation between predicted gain G and measured speedup per pattern.
//!
//! Regenerate with: `cargo run -p isp-bench --bin table3 --release`

use isp_bench::report::Table;
use isp_bench::runner::{measure_app, Experiment};
use isp_bench::stats::pearson;
use isp_filters::by_name;
use isp_image::BorderPattern;
use isp_sim::DeviceSpec;

fn main() {
    let sizes: Vec<usize> = (2..=16).map(|i| i * 256).collect();
    for device in DeviceSpec::all() {
        println!(
            "Table III ({}): bilateral 13x13 — measured best vs model prediction\n\
             (cells: measured-best / model-predicted; MISS marks mispredictions)\n",
            device.name
        );
        let mut t = Table::new(&["size", "clamp", "mirror", "repeat", "constant"]);
        let mut gains: Vec<Vec<f64>> = vec![Vec::new(); 4];
        let mut speeds: Vec<Vec<f64>> = vec![Vec::new(); 4];
        let mut misses = 0usize;
        let mut total = 0usize;
        for &size in &sizes {
            let mut row = vec![size.to_string()];
            for (pi, pattern) in BorderPattern::ALL.into_iter().enumerate() {
                let exp =
                    Experiment::paper(device.clone(), by_name("bilateral").unwrap(), pattern, size);
                let m = measure_app(&exp);
                let measured_isp = m.isp_measured_better();
                let predicted_isp = m.model_chose_isp();
                let cell = format!(
                    "{}/{}{}",
                    if measured_isp { "isp" } else { "nai" },
                    if predicted_isp { "isp" } else { "nai" },
                    if measured_isp != predicted_isp {
                        " MISS"
                    } else {
                        ""
                    },
                );
                misses += usize::from(measured_isp != predicted_isp);
                total += 1;
                gains[pi].push(m.stage_gains[0]);
                speeds[pi].push(m.speedup_isp);
                row.push(cell);
            }
            t.row(&row);
        }
        println!("{}", t.render());
        let mut pt = Table::new(&["pattern", "Pearson r (G vs measured speedup)"]);
        for (pi, pattern) in BorderPattern::ALL.into_iter().enumerate() {
            let r = pearson(&gains[pi], &speeds[pi])
                .map(|r| format!("{r:.3}"))
                .unwrap_or_else(|| "n/a".into());
            pt.row(&[pattern.name().into(), r]);
        }
        println!("{}", pt.render());
        println!(
            "{misses}/{total} mispredictions on {} — expected near the crossover\n",
            device.name
        );
    }
}
