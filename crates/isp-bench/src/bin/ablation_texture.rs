//! Ablation: hardware texture-unit border handling vs software variants —
//! the alternative the paper's introduction weighs ("texture memory is
//! cached and can be efficiently accessed at the image border. However, the
//! access is bound to the image size and is not supported for sub-regions").
//!
//! Regenerate with: `cargo run -p isp-bench --bin ablation_texture --release`

use isp_bench::report::Table;
use isp_bench::runner::bench_image;
use isp_core::Variant;
use isp_dsl::runner::ExecMode;
use isp_exec::Engine;
use isp_image::BorderPattern;
use isp_sim::DeviceSpec;

fn main() {
    println!(
        "Ablation: texture-unit border handling vs naive vs ISP\n\
         (gaussian 3x3 and bilateral 13x13, 2048^2, 32x4 blocks)\n"
    );
    for device in DeviceSpec::all() {
        let engine = Engine::global(&device);
        let mut t = Table::new(&[
            "app",
            "pattern",
            "naive Mcyc",
            "isp Mcyc",
            "texture Mcyc",
            "best",
        ]);
        for (name, spec) in [
            ("gaussian3", isp_filters::gaussian::spec(3)),
            ("bilateral13", isp_filters::bilateral::spec(13)),
        ] {
            let img = bench_image(2048);
            let user: Vec<f32> = if spec.user_params.is_empty() {
                vec![]
            } else {
                vec![isp_filters::bilateral::range_param(
                    isp_filters::bilateral::DEFAULT_SIGMA_R,
                )]
            };
            for pattern in BorderPattern::ALL {
                let ck = engine.compile(&spec, pattern, Variant::IspBlock);
                let cycles = |variant| {
                    engine
                        .run_kernel(
                            &ck,
                            variant,
                            &[&img],
                            &user,
                            0.2,
                            (32, 4),
                            ExecMode::Sampled,
                        )
                        .map(|o| o.report.timing.cycles)
                        .unwrap_or(u64::MAX)
                };
                let (n, i, x) = (
                    cycles(Variant::Naive),
                    cycles(Variant::IspBlock),
                    cycles(Variant::Texture),
                );
                let best = [(n, "naive"), (i, "isp"), (x, "texture")]
                    .into_iter()
                    .min_by_key(|&(c, _)| c)
                    .unwrap()
                    .1;
                t.row(&[
                    name.into(),
                    pattern.name().into(),
                    format!("{:.2}", n as f64 / 1e6),
                    format!("{:.2}", i as f64 / 1e6),
                    format!("{:.2}", x as f64 / 1e6),
                    best.into(),
                ]);
            }
        }
        println!("--- {} ---", device.name);
        println!("{}", t.render());
    }
    println!(
        "Reading: the texture path removes all border arithmetic (like the ISP\n\
         Body region everywhere) but pays the texture pipeline's lower fetch\n\
         throughput, and cannot serve sub-region reads or non-image buffers —\n\
         which is why the paper pursues the software approach."
    );
}
