//! Per-region profiling harness: exhaustive naive + ISP runs, `==PROF==`
//! per-region tables with model-residual columns, and a JSON metrics
//! trajectory written to `target/results/BENCH_PR2.json` for CI artifact
//! upload.
//!
//! Usage: `cargo run -p isp-bench --bin prof_json --release [-- filter pattern size...]`
//!
//! Defaults to the paper's gaussian/Clamp configuration on GTX 680 at sizes
//! 256 and 512; CI passes a single small size to keep the exhaustive
//! interpreter fast.

use isp_bench::prof::{format_profile, profile_kernel, profile_to_json};
use isp_bench::report::write_json_doc;
use isp_exec::{bench_image, PAPER_BLOCK};
use isp_filters::by_name;
use isp_image::BorderPattern;
use isp_json::Json;
use isp_sim::DeviceSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let filter = args.first().map(String::as_str).unwrap_or("gaussian");
    let pattern = match args.get(1).map(String::as_str).unwrap_or("clamp") {
        "clamp" => BorderPattern::Clamp,
        "mirror" => BorderPattern::Mirror,
        "repeat" => BorderPattern::Repeat,
        "constant" => BorderPattern::Constant,
        other => panic!("unknown pattern '{other}'"),
    };
    let sizes: Vec<usize> = if args.len() > 2 {
        args[2..]
            .iter()
            .map(|s| s.parse().expect("size must be an integer"))
            .collect()
    } else {
        vec![256, 512]
    };

    let app = by_name(filter).unwrap_or_else(|| panic!("unknown filter '{filter}'"));
    let stage = app
        .pipeline
        .stages
        .iter()
        .find(|s| !s.spec.is_point_op())
        .unwrap_or_else(|| panic!("filter '{filter}' has no stencil stage"))
        .clone();

    let device = DeviceSpec::gtx680();
    let mut trajectory: Vec<Json> = Vec::new();
    for &size in &sizes {
        let source = bench_image(size);
        let p = profile_kernel(
            &device,
            &stage.spec,
            pattern,
            &source,
            &stage.user_params,
            PAPER_BLOCK,
        )
        .unwrap_or_else(|e| panic!("profiling {filter} at {size}: {e}"));
        print!("{}", format_profile(&p));
        println!();
        trajectory.push(profile_to_json(&p));
    }

    let doc = Json::obj()
        .set("schema", "isp-prof-v1")
        .set("filter", filter)
        .set("pattern", pattern.name())
        .set("device", device.name)
        .set("profiles", trajectory);
    let path = write_json_doc("BENCH_PR2", &doc).expect("write BENCH_PR2.json");
    println!("wrote {}", path.display());
}
