//! Simulator speed harness: the tree-walking reference interpreter vs the
//! decoded-microcode fast path vs the guarded trace-replay engine, per
//! filter and on the PR 1 engine-sweep configuration. Writes
//! `target/results/BENCH_PR4.json` for CI artifact upload.
//!
//! Usage: `cargo run -p isp-bench --bin sim_speed --release [-- size sweep_sizes...]`
//!
//! The first argument is the per-filter exhaustive image size (default 256);
//! the remaining arguments are the sweep sizes (default the paper's
//! 512/1024/2048/4096). CI passes a small configuration to keep the
//! exhaustive interpreter fast.

use isp_bench::report::{write_json_doc, Table};
use isp_core::Variant;
use isp_dsl::pipeline::Policy;
use isp_dsl::runner::ExecMode;
use isp_dsl::Compiler;
use isp_exec::{Engine, Request, PAPER_BLOCK};
use isp_image::{BorderPattern, BorderSpec};
use isp_json::Json;
use isp_sim::{DeviceSpec, ExecEngine, Gpu};
use std::time::Instant;

/// Median wall-clock time of `runs` invocations of `f`, in milliseconds.
fn time_ms<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Time one exhaustive pipeline run of `app` under the given engine.
fn filter_ms(engine: ExecEngine, app: &isp_filters::App, size: usize, runs: usize) -> f64 {
    let gpu = Gpu::new(DeviceSpec::gtx680()).with_engine(engine);
    let border = BorderSpec::from_pattern(BorderPattern::Clamp);
    let compiled = app
        .pipeline
        .compile(&Compiler::new(), border, Variant::IspBlock);
    let img = isp_exec::bench_image(size);
    time_ms(runs, || {
        app.pipeline
            .run(
                &gpu,
                &compiled,
                &img,
                border,
                PAPER_BLOCK,
                Policy::AlwaysIsp(Variant::IspBlock),
                ExecMode::Exhaustive,
            )
            .unwrap()
    })
}

/// Median total wall-clock of the full exhaustive sweep — the PR 1
/// benchmark configuration (gaussian, 4 patterns x `sizes`, three policies
/// per point) with every launch exhaustively interpreted. Sources are
/// generated once per size outside the timed region so both engines time
/// the same pure-simulation work; the median of `runs` sweeps rides out
/// machine noise.
fn sweep_ms(exec: ExecEngine, sizes: &[usize], runs: usize) -> f64 {
    let engine = Engine::with_exec_engine(DeviceSpec::gtx680(), exec);
    let app = isp_filters::by_name("gaussian").unwrap();
    let sources: Vec<_> = sizes.iter().map(|&s| isp_exec::bench_image(s)).collect();
    time_ms(runs, || {
        for pattern in BorderPattern::ALL {
            for (&size, source) in sizes.iter().zip(&sources) {
                for policy in [
                    Policy::Naive,
                    Policy::AlwaysIsp(Variant::IspBlock),
                    Policy::Model(Variant::IspBlock),
                ] {
                    engine
                        .run_on(
                            &Request::paper(app.clone(), pattern, size, policy).exhaustive(),
                            source,
                        )
                        .unwrap();
                }
            }
        }
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let size: usize = args
        .first()
        .map(|s| s.parse().expect("size must be an integer"))
        .unwrap_or(256);
    let sweep_sizes: Vec<usize> = if args.len() > 1 {
        args[1..]
            .iter()
            .map(|s| s.parse().expect("size must be an integer"))
            .collect()
    } else {
        vec![512, 1024, 2048, 4096]
    };
    let runs = 3;

    // Part 1: per-filter exhaustive interpretation, all three engines.
    println!("== exhaustive {size}x{size} Clamp isp, per filter (median of {runs}, ms)");
    let mut table = Table::new(&["filter", "reference", "decoded", "replay", "speedup"]);
    let mut filters: Vec<Json> = Vec::new();
    for app in isp_filters::apps::all_apps() {
        let reference = filter_ms(ExecEngine::Reference, &app, size, runs);
        let decoded = filter_ms(ExecEngine::Decoded, &app, size, runs);
        let replay = filter_ms(ExecEngine::Replay, &app, size, runs);
        let speedup = reference / replay;
        table.row(&[
            app.name.to_string(),
            format!("{reference:.1}"),
            format!("{decoded:.1}"),
            format!("{replay:.1}"),
            format!("{speedup:.2}x"),
        ]);
        filters.push(
            Json::obj()
                .set("filter", app.name)
                .set("reference_ms", reference)
                .set("decoded_ms", decoded)
                .set("replay_ms", replay)
                .set("speedup", speedup),
        );
    }
    print!("{}", table.render());

    // Part 2: the full exhaustive sweep (PR 1 benchmark configuration,
    // exhaustively interpreted), before/after.
    println!("== full exhaustive sweep: gaussian 4-pattern x {sweep_sizes:?} x 3 policies (median of {runs} total wall-clocks, ms)");
    let reference = sweep_ms(ExecEngine::Reference, &sweep_sizes, runs);
    let decoded = sweep_ms(ExecEngine::Decoded, &sweep_sizes, runs);
    let replay = sweep_ms(ExecEngine::Replay, &sweep_sizes, runs);
    let sweep_speedup = reference / replay;
    let replay_vs_decoded = decoded / replay;
    println!("  reference tree-walker {reference:9.1}");
    println!(
        "  decoded microcode     {decoded:9.1}  speedup {:5.2}x",
        reference / decoded
    );
    println!(
        "  trace replay          {replay:9.1}  speedup {sweep_speedup:5.2}x  ({replay_vs_decoded:.2}x over decoded)"
    );

    let doc = Json::obj()
        .set("schema", "isp-sim-speed-v2")
        .set("device", DeviceSpec::gtx680().name)
        .set("exhaustive_size", size)
        .set("runs", runs)
        .set("filters", filters)
        .set(
            "sweep",
            Json::obj()
                .set(
                    "sizes",
                    sweep_sizes
                        .iter()
                        .map(|&s| Json::from(s))
                        .collect::<Vec<_>>(),
                )
                .set("patterns", 4u32)
                .set("policies", 3u32)
                .set("reference_ms", reference)
                .set("decoded_ms", decoded)
                .set("replay_ms", replay)
                .set("speedup", sweep_speedup)
                .set("replay_over_decoded", replay_vs_decoded),
        );
    let path = write_json_doc("BENCH_PR4", &doc).expect("write BENCH_PR4.json");
    println!("wrote {}", path.display());
}
