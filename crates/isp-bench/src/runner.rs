//! The shared experiment driver: compile an app's pipeline for a device,
//! pattern, and size; run naive / isp / isp+m in region-sampled mode; and
//! report timings, counters, and model decisions.

use isp_core::Variant;
use serde::Serialize;
use isp_dsl::pipeline::Policy;
use isp_dsl::runner::ExecMode;
use isp_dsl::{CompiledKernel, Compiler};
use isp_filters::App;
use isp_image::{BorderPattern, BorderSpec, Image, ImageGenerator};
use isp_sim::{DeviceSpec, Gpu};

/// The paper's block size (32x4 = 128 threads, wide in x).
pub const PAPER_BLOCK: (u32, u32) = (32, 4);

/// The paper's four evaluated image sizes.
pub const PAPER_SIZES: [usize; 4] = [512, 1024, 2048, 4096];

/// Seed for all generated bench imagery.
pub const BENCH_SEED: u64 = 42;

/// One experiment point.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Simulated device.
    pub device: DeviceSpec,
    /// Application under test.
    pub app: App,
    /// Border handling pattern.
    pub pattern: BorderPattern,
    /// Square image size.
    pub size: usize,
    /// Block size.
    pub block: (u32, u32),
    /// ISP granularity to use for the isp/isp+m variants.
    pub granularity: Variant,
}

impl Experiment {
    /// Standard experiment at the paper's block size with block-grained ISP.
    pub fn paper(device: DeviceSpec, app: App, pattern: BorderPattern, size: usize) -> Self {
        Experiment {
            device,
            app,
            pattern,
            size,
            block: PAPER_BLOCK,
            granularity: Variant::IspBlock,
        }
    }
}

/// A flat, serialisable record of one experiment for machine-readable
/// output (`target/results/*.json`).
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentRecord {
    /// Device name.
    pub device: &'static str,
    /// Application name.
    pub app: &'static str,
    /// Border pattern name.
    pub pattern: &'static str,
    /// Square image size.
    pub size: usize,
    /// Naive cycles.
    pub naive_cycles: u64,
    /// Always-ISP cycles.
    pub isp_cycles: u64,
    /// Model-guided cycles.
    pub ispm_cycles: u64,
    /// naive/isp speedup.
    pub speedup_isp: f64,
    /// naive/ispm speedup.
    pub speedup_ispm: f64,
    /// Eq. 10 gains per stencil stage.
    pub stage_gains: Vec<f64>,
}

impl ExperimentRecord {
    /// Assemble a record from an experiment and its measurement.
    pub fn new(exp: &Experiment, m: &AppMeasurement) -> Self {
        ExperimentRecord {
            device: exp.device.name,
            app: exp.app.name,
            pattern: exp.pattern.name(),
            size: exp.size,
            naive_cycles: m.naive_cycles,
            isp_cycles: m.isp_cycles,
            ispm_cycles: m.ispm_cycles,
            speedup_isp: m.speedup_isp,
            speedup_ispm: m.speedup_ispm,
            stage_gains: m.stage_gains.clone(),
        }
    }
}

/// Write records as pretty JSON under `target/results/`.
pub fn write_json(name: &str, records: &[ExperimentRecord]) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("target/results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, serde_json::to_string_pretty(records)?)?;
    Ok(path)
}

/// Measured results of one experiment (cycles are simulated totals over all
/// pipeline stages).
#[derive(Debug, Clone)]
pub struct AppMeasurement {
    /// Naive-variant cycles.
    pub naive_cycles: u64,
    /// Always-ISP cycles.
    pub isp_cycles: u64,
    /// Model-guided (isp+m) cycles.
    pub ispm_cycles: u64,
    /// `naive / isp` — Figure 4/6's "isp" series.
    pub speedup_isp: f64,
    /// `naive / ispm` — Figure 6's "isp+m" series.
    pub speedup_ispm: f64,
    /// Variant each stage ran under the model policy.
    pub ispm_variants: Vec<Variant>,
    /// Warp-instruction totals (naive, isp).
    pub warp_instructions: (u64, u64),
    /// Per-stage model gains G (Eq. 10) for stencil stages.
    pub stage_gains: Vec<f64>,
}

impl AppMeasurement {
    /// Whether ISP actually beat naive in measured (simulated) time.
    pub fn isp_measured_better(&self) -> bool {
        self.speedup_isp > 1.0
    }

    /// Whether the model predicted ISP for at least the stencil stages
    /// (point-op stages are always naive and not counted).
    pub fn model_chose_isp(&self) -> bool {
        self.stage_gains.iter().any(|&g| g > 1.0)
    }
}

/// The deterministic source image for a given size.
pub fn bench_image(size: usize) -> Image<f32> {
    ImageGenerator::new(BENCH_SEED).natural::<f32>(size, size)
}

/// Compile an app's pipeline for one experiment. Compilation depends only on
/// `(app, pattern, granularity)` — not the image size — so results are
/// memoised across the size sweeps the harness binaries run.
pub fn compile_app(exp: &Experiment) -> Vec<CompiledKernel> {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    type Key = (&'static str, BorderPattern, Variant);
    static CACHE: OnceLock<Mutex<HashMap<Key, Vec<CompiledKernel>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (exp.app.name, exp.pattern, exp.granularity);
    if let Some(hit) = cache.lock().expect("cache lock").get(&key) {
        return hit.clone();
    }
    let border = BorderSpec::from_pattern(exp.pattern);
    let compiled = exp.app.pipeline.compile(&Compiler::new(), border, exp.granularity);
    cache.lock().expect("cache lock").insert(key, compiled.clone());
    compiled
}

/// Run the three policies for one experiment in region-sampled mode.
pub fn measure_app(exp: &Experiment) -> AppMeasurement {
    let gpu = Gpu::new(exp.device.clone());
    let border = BorderSpec::from_pattern(exp.pattern);
    let source = bench_image(exp.size);
    let compiled = compile_app(exp);

    let run = |policy: Policy| {
        exp.app
            .pipeline
            .run(&gpu, &compiled, &source, border, exp.block, policy, ExecMode::Sampled)
            .unwrap_or_else(|e| panic!("{} {} {}: {e}", exp.app.name, exp.pattern, exp.size))
    };
    let naive = run(Policy::Naive);
    let isp = run(Policy::AlwaysIsp(exp.granularity));
    let ispm = run(Policy::Model(exp.granularity));

    let stage_gains = compiled
        .iter()
        .filter(|ck| ck.isp.is_some())
        .map(|ck| {
            let geom = isp_dsl::runner::geometry_for(ck, exp.size, exp.size, exp.block);
            isp_dsl::runner::plan_for(&gpu, ck, &geom).predicted_gain
        })
        .collect();

    AppMeasurement {
        naive_cycles: naive.total_cycles,
        isp_cycles: isp.total_cycles,
        ispm_cycles: ispm.total_cycles,
        speedup_isp: naive.total_cycles as f64 / isp.total_cycles as f64,
        speedup_ispm: naive.total_cycles as f64 / ispm.total_cycles as f64,
        ispm_variants: ispm.stage_variants,
        warp_instructions: (naive.counters.warp_instructions, isp.counters.warp_instructions),
        stage_gains,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isp_filters::by_name;

    #[test]
    fn gaussian_repeat_large_image_wins_with_isp() {
        // The paper's headline direction on the cheapest kernel and the most
        // expensive pattern.
        let exp = Experiment::paper(
            DeviceSpec::gtx680(),
            by_name("gaussian").unwrap(),
            BorderPattern::Repeat,
            1024,
        );
        let m = measure_app(&exp);
        assert!(m.speedup_isp > 1.1, "expected solid ISP win, got {}", m.speedup_isp);
        assert!(m.warp_instructions.1 < m.warp_instructions.0);
        // isp+m should agree and match the isp timing.
        assert!(m.model_chose_isp());
        assert_eq!(m.ispm_cycles, m.isp_cycles);
    }

    #[test]
    fn ispm_never_loses_to_both_alternatives() {
        // By construction isp+m picks one of the two measured variants per
        // stage; its total can never exceed BOTH of them... it must equal
        // one of them for single-kernel apps.
        let exp = Experiment::paper(
            DeviceSpec::gtx680(),
            by_name("laplace").unwrap(),
            BorderPattern::Clamp,
            512,
        );
        let m = measure_app(&exp);
        assert!(
            m.ispm_cycles == m.naive_cycles || m.ispm_cycles == m.isp_cycles,
            "single-kernel isp+m must match one policy exactly"
        );
    }
}
