//! The shared experiment driver, now a thin compatibility layer over
//! [`isp_exec::Engine`]: an [`Experiment`] maps onto an engine [`Sweep`],
//! and [`measure_app`] / [`compile_app`] route through the process-wide
//! engine for the experiment's device, so every harness binary shares one
//! kernel cache and one plan cache.

use isp_core::Variant;
use isp_dsl::CompiledKernel;
use isp_exec::{Engine, Sweep};
use isp_filters::App;
use isp_image::BorderPattern;
use isp_json::Json;
use isp_sim::DeviceSpec;

pub use isp_exec::Measurement as AppMeasurement;
pub use isp_exec::{bench_image, BENCH_SEED, PAPER_BLOCK, PAPER_SIZES};

/// One experiment point.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Simulated device.
    pub device: DeviceSpec,
    /// Application under test.
    pub app: App,
    /// Border handling pattern.
    pub pattern: BorderPattern,
    /// Square image size.
    pub size: usize,
    /// Block size.
    pub block: (u32, u32),
    /// ISP granularity to use for the isp/isp+m variants.
    pub granularity: Variant,
}

impl Experiment {
    /// Standard experiment at the paper's block size with block-grained ISP.
    pub fn paper(device: DeviceSpec, app: App, pattern: BorderPattern, size: usize) -> Self {
        Experiment {
            device,
            app,
            pattern,
            size,
            block: PAPER_BLOCK,
            granularity: Variant::IspBlock,
        }
    }

    /// The engine sweep point this experiment describes (the device moves
    /// to the engine, everything else carries over).
    pub fn sweep(&self) -> Sweep {
        Sweep {
            app: self.app.clone(),
            pattern: self.pattern,
            size: self.size,
            block: self.block,
            granularity: self.granularity,
        }
    }

    /// The process-wide engine for this experiment's device.
    pub fn engine(&self) -> std::sync::Arc<Engine> {
        Engine::global(&self.device)
    }
}

/// A flat record of one experiment for machine-readable output
/// (`target/results/*.json`).
#[derive(Debug, Clone)]
pub struct ExperimentRecord {
    /// Device name.
    pub device: &'static str,
    /// Application name.
    pub app: &'static str,
    /// Border pattern name.
    pub pattern: &'static str,
    /// Square image size.
    pub size: usize,
    /// Naive cycles.
    pub naive_cycles: u64,
    /// Always-ISP cycles.
    pub isp_cycles: u64,
    /// Model-guided cycles.
    pub ispm_cycles: u64,
    /// naive/isp speedup.
    pub speedup_isp: f64,
    /// naive/ispm speedup.
    pub speedup_ispm: f64,
    /// Eq. 10 gains per stencil stage.
    pub stage_gains: Vec<f64>,
}

impl ExperimentRecord {
    /// Assemble a record from an experiment and its measurement.
    pub fn new(exp: &Experiment, m: &AppMeasurement) -> Self {
        ExperimentRecord {
            device: exp.device.name,
            app: exp.app.name,
            pattern: exp.pattern.name(),
            size: exp.size,
            naive_cycles: m.naive_cycles,
            isp_cycles: m.isp_cycles,
            ispm_cycles: m.ispm_cycles,
            speedup_isp: m.speedup_isp,
            speedup_ispm: m.speedup_ispm,
            stage_gains: m.stage_gains.clone(),
        }
    }

    /// Render as a JSON object with sorted keys.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("device", self.device)
            .set("app", self.app)
            .set("pattern", self.pattern)
            .set("size", self.size)
            .set("naive_cycles", self.naive_cycles)
            .set("isp_cycles", self.isp_cycles)
            .set("ispm_cycles", self.ispm_cycles)
            .set("speedup_isp", self.speedup_isp)
            .set("speedup_ispm", self.speedup_ispm)
            .set(
                "stage_gains",
                Json::Arr(self.stage_gains.iter().map(|&g| Json::from(g)).collect()),
            )
            .sort_keys()
    }
}

/// Write records as a pretty JSON array under `target/results/` via the
/// shared report path ([`crate::report::write_json_doc`]), keys sorted.
pub fn write_json(name: &str, records: &[ExperimentRecord]) -> std::io::Result<std::path::PathBuf> {
    let doc = Json::Arr(records.iter().map(ExperimentRecord::to_json).collect());
    crate::report::write_json_doc(name, &doc)
}

/// Compile an app's pipeline for one experiment through the engine's
/// kernel cache. Compatibility shim: new code should call
/// [`Engine::compile_pipeline`] and keep the `Arc`s.
pub fn compile_app(exp: &Experiment) -> Vec<CompiledKernel> {
    let border = isp_image::BorderSpec::from_pattern(exp.pattern);
    exp.engine()
        .compile_pipeline(&exp.app.pipeline, border.pattern, exp.granularity)
        .into_iter()
        .map(|ck| (*ck).clone())
        .collect()
}

/// Run the three policies for one experiment in region-sampled mode.
/// Compatibility shim over [`Engine::measure`].
pub fn measure_app(exp: &Experiment) -> AppMeasurement {
    exp.engine().measure(&exp.sweep())
}

#[cfg(test)]
mod tests {
    use super::*;
    use isp_filters::by_name;

    #[test]
    fn gaussian_repeat_large_image_wins_with_isp() {
        // The paper's headline direction on the cheapest kernel and the most
        // expensive pattern.
        let exp = Experiment::paper(
            DeviceSpec::gtx680(),
            by_name("gaussian").unwrap(),
            BorderPattern::Repeat,
            1024,
        );
        let m = measure_app(&exp);
        assert!(
            m.speedup_isp > 1.1,
            "expected solid ISP win, got {}",
            m.speedup_isp
        );
        assert!(m.warp_instructions.1 < m.warp_instructions.0);
        // isp+m should agree and match the isp timing.
        assert!(m.model_chose_isp());
        assert_eq!(m.ispm_cycles, m.isp_cycles);
    }

    #[test]
    fn ispm_never_loses_to_both_alternatives() {
        // By construction isp+m picks one of the two measured variants per
        // stage; its total can never exceed BOTH of them... it must equal
        // one of them for single-kernel apps.
        let exp = Experiment::paper(
            DeviceSpec::gtx680(),
            by_name("laplace").unwrap(),
            BorderPattern::Clamp,
            512,
        );
        let m = measure_app(&exp);
        assert!(
            m.ispm_cycles == m.naive_cycles || m.ispm_cycles == m.isp_cycles,
            "single-kernel isp+m must match one policy exactly"
        );
    }

    #[test]
    fn repeated_experiments_share_the_global_engine() {
        let exp = Experiment::paper(
            DeviceSpec::gtx680(),
            by_name("laplace").unwrap(),
            BorderPattern::Mirror,
            512,
        );
        let before = exp.engine().cache_stats();
        let _ = measure_app(&exp);
        let mid = exp.engine().cache_stats();
        let _ = measure_app(&exp);
        let after = exp.engine().cache_stats();
        assert!(
            mid.kernel_misses > before.kernel_misses,
            "first run compiles"
        );
        assert_eq!(
            after.kernel_misses, mid.kernel_misses,
            "second run is all hits"
        );
        assert!(after.kernel_hits > mid.kernel_hits);
        assert!(after.plan_hits > mid.plan_hits, "plans are reused too");
    }

    #[test]
    fn json_output_is_well_formed() {
        let exp = Experiment::paper(
            DeviceSpec::gtx680(),
            by_name("gaussian").unwrap(),
            BorderPattern::Clamp,
            512,
        );
        let rec = ExperimentRecord::new(&exp, &measure_app(&exp));
        let json = rec.to_json().render();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"app\": \"Gaussian\""));
        assert!(json.contains("\"size\": 512"));
        // Balanced quotes and braces (cheap structural sanity check).
        assert_eq!(json.matches('"').count() % 2, 0);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Keys come out sorted, byte-stable regardless of assembly order.
        let keys: Vec<&str> = json
            .split('"')
            .skip(1)
            .step_by(2)
            .filter(|k| !k.is_empty())
            .collect();
        assert_eq!(keys.first(), Some(&"app"));
    }
}
