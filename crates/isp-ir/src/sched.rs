//! Pressure-aware instruction scheduling.
//!
//! The DSL lowers expressions tree-at-a-time, which can produce pathological
//! register pressure: a bilateral kernel's numerator and denominator share
//! 169 CSE'd range weights, and evaluating the numerator tree first keeps
//! every weight alive until the denominator consumes it. Real compilers
//! (`ptxas` included) list-schedule within basic blocks to balance pressure;
//! this pass does the same with a classic greedy policy: among ready
//! instructions, prefer the one that kills the most live values and spawns
//! the fewest.
//!
//! Correctness is preserved by keeping all memory operations in their
//! original relative order (no aliasing analysis needed) and only reordering
//! pure data flow.

use crate::instr::Instr;
use crate::kernel::Kernel;
use std::collections::HashMap;

/// Reorder every block's instructions to reduce register pressure.
///
/// The greedy policy is a heuristic and can regress on code whose original
/// order is already pressure-optimal (tap-at-a-time fused reductions), so
/// the result is only adopted when the liveness estimate actually improves
/// — like an optimising compiler comparing schedules.
pub fn schedule_min_pressure(kernel: &Kernel) -> Kernel {
    let before = crate::regalloc::estimate(kernel);
    let candidate = schedule_greedy(kernel);
    let after = crate::regalloc::estimate(&candidate);
    if after.max_live_data < before.max_live_data {
        candidate
    } else {
        kernel.clone()
    }
}

/// The unguarded greedy scheduler (exposed for tests and ablations).
pub fn schedule_greedy(kernel: &Kernel) -> Kernel {
    let mut k = kernel.clone();

    // Global use counts (uses in any block or terminator): a register whose
    // remaining uses all sit in the current block can die here; others are
    // treated as immortal for scoring purposes.
    let mut global_uses: HashMap<u32, u32> = HashMap::new();
    for b in &k.blocks {
        for i in &b.instrs {
            for s in i.sources() {
                *global_uses.entry(s.index).or_insert(0) += 1;
            }
        }
        if let Some(p) = b.terminator.pred() {
            *global_uses.entry(p.index).or_insert(0) += 1;
        }
    }

    for b in &mut k.blocks {
        let n = b.instrs.len();
        // Tiny blocks have nothing to gain; enormous blocks (fully unrolled
        // pathological windows) would make the O(steps x ready) greedy loop
        // too slow for interactive compilation — their natural fused-reduce
        // order is already near-optimal, so leave them untouched.
        if !(3..=20_000).contains(&n) {
            continue;
        }
        // Dependency edges: def -> use, plus a chain over memory ops.
        // `succs` is deduplicated with per-edge multiplicities so that
        // high-fanout values (a base coordinate read by every tap) cost
        // O(consumers), not O(consumers^2).
        let mut def_of: HashMap<u32, usize> = HashMap::new();
        for (i, instr) in b.instrs.iter().enumerate() {
            if let Some(d) = instr.dst() {
                def_of.insert(d.index, i);
            }
        }
        let mut preds_left: Vec<u32> = vec![0; n];
        let mut succs: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
        let add_edge = |succs: &mut Vec<Vec<(usize, u32)>>, from: usize, to: usize| {
            if let Some(e) = succs[from].iter_mut().find(|(t, _)| *t == to) {
                e.1 += 1;
            } else {
                succs[from].push((to, 1));
            }
        };
        let mut last_mem: Option<usize> = None;
        for (i, instr) in b.instrs.iter().enumerate() {
            for s in instr.sources() {
                if let Some(&d) = def_of.get(&s.index) {
                    if d != i {
                        add_edge(&mut succs, d, i);
                        preds_left[i] += 1;
                    }
                }
            }
            if matches!(instr, Instr::Ld { .. } | Instr::St { .. }) {
                if let Some(m) = last_mem {
                    add_edge(&mut succs, m, i);
                    preds_left[i] += 1;
                }
                last_mem = Some(i);
            }
        }

        // Remaining-use counters for kill detection, scoped to this pass.
        let mut remaining: HashMap<u32, u32> = global_uses.clone();

        let mut ready: Vec<usize> = (0..n).filter(|&i| preds_left[i] == 0).collect();
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut scheduled = vec![false; n];
        while order.len() < n {
            // Score: +1 per source register this instruction kills, -1 if it
            // defines a value (which becomes newly live). First tiebreak: a
            // one-step lookahead — does scheduling this unlock a successor
            // that kills values? (This is what gets accumulator-chain heads
            // scheduled early.) Final tiebreak: original index, for
            // determinism.
            let (pos, &best) = ready
                .iter()
                .enumerate()
                .max_by_key(|&(_, &i)| {
                    let instr = &b.instrs[i];
                    let kills = instr
                        .sources()
                        .iter()
                        .filter(|s| remaining.get(&s.index).copied() == Some(1))
                        .count() as i64;
                    let defines = i64::from(instr.dst().is_some());
                    let dst = instr.dst();
                    let mut lookahead = i64::MIN;
                    for &(s, edge_count) in &succs[i] {
                        if preds_left[s] != edge_count {
                            continue; // would not become ready
                        }
                        let sk = b.instrs[s]
                            .sources()
                            .iter()
                            .filter(|r| {
                                Some(**r) == dst || remaining.get(&r.index).copied() == Some(1)
                            })
                            .count() as i64;
                        let sd = i64::from(b.instrs[s].dst().is_some());
                        lookahead = lookahead.max(sk - sd);
                    }
                    (kills - defines, lookahead, std::cmp::Reverse(i))
                })
                .expect("ready set is non-empty while instructions remain");
            ready.swap_remove(pos);
            scheduled[best] = true;
            order.push(best);
            for s in b.instrs[best].sources() {
                if let Some(c) = remaining.get_mut(&s.index) {
                    *c = c.saturating_sub(1);
                }
            }
            // An instruction can depend on `best` through several registers;
            // release every edge it contributed.
            for &(succ, edge_count) in &succs[best] {
                preds_left[succ] -= edge_count;
                if preds_left[succ] == 0 && !scheduled[succ] {
                    ready.push(succ);
                }
            }
        }
        b.instrs = order.into_iter().map(|i| b.instrs[i].clone()).collect();
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IrBuilder;
    use crate::instr::{BinOp, Operand, SReg};
    use crate::regalloc;
    use crate::types::Ty;

    /// N independent load->scale chains, lowered breadth-first (all loads,
    /// then all scales, then the accumulation): the classic pressure
    /// pathology a list scheduler untangles by consuming each load
    /// immediately.
    #[test]
    fn interleaves_independent_chains() {
        const N: usize = 16;
        let mut b = IrBuilder::new("chains", 2);
        let loads: Vec<_> = (0..N).map(|i| b.ld(Ty::F32, 0, i as i32)).collect();
        let scaled: Vec<_> = loads
            .iter()
            .map(|&x| b.bin(BinOp::Mul, Ty::F32, x, 0.5f32))
            .collect();
        let mut acc = b.mov(Ty::F32, 0.0f32);
        for &s in &scaled {
            acc = b.bin(BinOp::Add, Ty::F32, acc, s);
        }
        b.st(1, 0i32, acc);
        b.ret();
        let k = b.finish();
        let before = regalloc::estimate(&k);
        let after = regalloc::estimate(&schedule_min_pressure(&k));
        assert!(
            after.max_live_data < before.max_live_data,
            "scheduling must reduce pressure: {} -> {}",
            before.max_live_data,
            after.max_live_data
        );
        assert!(
            after.max_live_data <= 5,
            "interleaved pressure stays small: {after:?}"
        );
    }

    #[test]
    fn preserves_semantics_of_dataflow() {
        // Verify by re-running the validator and checking defs still precede
        // uses in the scheduled order.
        let mut b = IrBuilder::new("k", 2);
        let x = b.sreg(SReg::TidX);
        let a = b.bin(BinOp::Add, Ty::S32, x, 1i32);
        let c = b.bin(BinOp::Mul, Ty::S32, a, 3i32);
        let d = b.bin(BinOp::Add, Ty::S32, x, 2i32);
        let e = b.bin(BinOp::Add, Ty::S32, c, d);
        b.st(1, e, Operand::ImmF(0.0));
        b.ret();
        let k = b.finish();
        let s = schedule_min_pressure(&k);
        assert!(crate::validate::validate(&s).is_empty());
        // All instructions retained.
        assert_eq!(s.blocks[0].instrs.len(), k.blocks[0].instrs.len());
    }

    #[test]
    fn memory_operations_keep_their_order() {
        let mut b = IrBuilder::new("mem", 2);
        let v0 = b.ld(Ty::F32, 0, 0i32);
        b.st(1, 0i32, v0);
        let v1 = b.ld(Ty::F32, 0, 1i32);
        b.st(1, 1i32, v1);
        b.ret();
        let k = b.finish();
        let s = schedule_min_pressure(&k);
        let mem_ops: Vec<&Instr> = s.blocks[0]
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Ld { .. } | Instr::St { .. }))
            .collect();
        // ld0, st0, ld1, st1 in original order.
        assert!(matches!(
            mem_ops[0],
            Instr::Ld {
                addr: Operand::ImmI(0),
                ..
            }
        ));
        assert!(matches!(
            mem_ops[1],
            Instr::St {
                addr: Operand::ImmI(0),
                ..
            }
        ));
        assert!(matches!(
            mem_ops[2],
            Instr::Ld {
                addr: Operand::ImmI(1),
                ..
            }
        ));
        assert!(matches!(
            mem_ops[3],
            Instr::St {
                addr: Operand::ImmI(1),
                ..
            }
        ));
    }

    #[test]
    fn idempotent_on_minimal_blocks() {
        let mut b = IrBuilder::new("tiny", 1);
        let x = b.sreg(SReg::TidX);
        b.st(0, x, Operand::ImmF(1.0));
        b.ret();
        let k = b.finish();
        let s = schedule_min_pressure(&k);
        assert_eq!(s, k);
    }
}
