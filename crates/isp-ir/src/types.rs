//! Register types and virtual registers.

/// The IR's value types, mirroring the PTX register classes the generated
/// stencil kernels actually use (address arithmetic in `.s32`, pixel
/// arithmetic in `.f32`, branch conditions in `.pred`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ty {
    /// 1-bit predicate (PTX `.pred`, SASS `P` register).
    Pred,
    /// 32-bit signed integer (PTX `.s32`).
    S32,
    /// 32-bit IEEE float (PTX `.f32`).
    F32,
}

impl Ty {
    /// PTX-style type suffix used by the pretty-printer.
    pub fn suffix(&self) -> &'static str {
        match self {
            Ty::Pred => "pred",
            Ty::S32 => "s32",
            Ty::F32 => "f32",
        }
    }

    /// Whether values of this type live in the general-purpose (data)
    /// register file. Predicates have their own file on real hardware.
    pub fn is_data(&self) -> bool {
        !matches!(self, Ty::Pred)
    }
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.suffix())
    }
}

/// A typed virtual register. The index is unique per kernel across all
/// classes (the class is carried in `ty`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg {
    /// Unique index within the kernel.
    pub index: u32,
    /// Register class.
    pub ty: Ty,
}

impl VReg {
    /// Construct a virtual register.
    pub fn new(index: u32, ty: Ty) -> Self {
        VReg { index, ty }
    }
}

impl std::fmt::Display for VReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let prefix = match self.ty {
            Ty::Pred => "%p",
            Ty::S32 => "%r",
            Ty::F32 => "%f",
        };
        write!(f, "{prefix}{}", self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffixes() {
        assert_eq!(Ty::Pred.suffix(), "pred");
        assert_eq!(Ty::S32.suffix(), "s32");
        assert_eq!(Ty::F32.suffix(), "f32");
    }

    #[test]
    fn data_classes() {
        assert!(!Ty::Pred.is_data());
        assert!(Ty::S32.is_data());
        assert!(Ty::F32.is_data());
    }

    #[test]
    fn display_prefixes() {
        assert_eq!(VReg::new(3, Ty::Pred).to_string(), "%p3");
        assert_eq!(VReg::new(11, Ty::S32).to_string(), "%r11");
        assert_eq!(VReg::new(0, Ty::F32).to_string(), "%f0");
    }
}
