//! Convenience builder for constructing kernels.

use crate::instr::{BinOp, CmpOp, Instr, Operand, SReg, Terminator, UnOp};
use crate::kernel::{BasicBlock, BlockId, Kernel, ParamDecl};
use crate::types::{Ty, VReg};

/// Incremental kernel construction: create blocks, emit instructions into
/// the current block, seal blocks with terminators, then [`IrBuilder::finish`].
///
/// ```
/// use isp_ir::{BinOp, IrBuilder, SReg, Ty};
/// let mut b = IrBuilder::new("double", 2);
/// let x = b.sreg(SReg::TidX);
/// let v = b.ld(Ty::F32, 0, x);
/// let d = b.bin(BinOp::Mul, Ty::F32, v, 2.0f32);
/// b.st(1, x, d);
/// b.ret();
/// let kernel = b.finish();
/// assert!(isp_ir::validate::validate(&kernel).is_empty());
/// ```
#[derive(Debug)]
pub struct IrBuilder {
    name: String,
    num_buffers: u32,
    shared_elems: u32,
    params: Vec<ParamDecl>,
    blocks: Vec<PendingBlock>,
    current: Option<BlockId>,
    next_vreg: u32,
}

#[derive(Debug)]
struct PendingBlock {
    label: String,
    instrs: Vec<Instr>,
    terminator: Option<Terminator>,
}

impl IrBuilder {
    /// Start a new kernel with `num_buffers` buffer parameters. An `"entry"`
    /// block is created and selected automatically.
    pub fn new(name: impl Into<String>, num_buffers: u32) -> Self {
        let mut b = IrBuilder {
            name: name.into(),
            num_buffers,
            shared_elems: 0,
            params: Vec::new(),
            blocks: Vec::new(),
            current: None,
            next_vreg: 0,
        };
        let entry = b.create_block("entry");
        b.switch_to(entry);
        b
    }

    /// Declare a scalar parameter, returning its index for `ld_param`.
    pub fn param(&mut self, name: impl Into<String>, ty: Ty) -> u32 {
        let idx = self.params.len() as u32;
        self.params.push(ParamDecl {
            name: name.into(),
            ty,
        });
        idx
    }

    /// Allocate a fresh virtual register.
    pub fn fresh(&mut self, ty: Ty) -> VReg {
        let r = VReg::new(self.next_vreg, ty);
        self.next_vreg += 1;
        r
    }

    /// Create a new (empty, unterminated) block.
    pub fn create_block(&mut self, label: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(PendingBlock {
            label: label.into(),
            instrs: Vec::new(),
            terminator: None,
        });
        id
    }

    /// Select the block subsequent instructions are emitted into.
    pub fn switch_to(&mut self, id: BlockId) {
        assert!((id.0 as usize) < self.blocks.len(), "unknown block {id}");
        self.current = Some(id);
    }

    /// The currently selected block.
    pub fn current_block(&self) -> BlockId {
        self.current.expect("no block selected")
    }

    fn cur(&mut self) -> &mut PendingBlock {
        let id = self.current.expect("no block selected");
        &mut self.blocks[id.0 as usize]
    }

    /// Emit a raw instruction.
    pub fn emit(&mut self, instr: Instr) {
        let b = self.cur();
        assert!(b.terminator.is_none(), "emitting into a sealed block");
        b.instrs.push(instr);
    }

    /// `dst = a <op> b`, with `dst` freshly allocated of type `ty`.
    pub fn bin(&mut self, op: BinOp, ty: Ty, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        let dst = self.fresh(ty);
        self.emit(Instr::Bin {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Fused multiply-add `a * b + c`.
    pub fn mad(
        &mut self,
        ty: Ty,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> VReg {
        let dst = self.fresh(ty);
        self.emit(Instr::Mad {
            dst,
            a: a.into(),
            b: b.into(),
            c: c.into(),
        });
        dst
    }

    /// `dst = <op> a`.
    pub fn un(&mut self, op: UnOp, ty: Ty, a: impl Into<Operand>) -> VReg {
        let dst = self.fresh(ty);
        self.emit(Instr::Un {
            op,
            dst,
            a: a.into(),
        });
        dst
    }

    /// Materialise an immediate into a register (a `mov`).
    pub fn mov(&mut self, ty: Ty, a: impl Into<Operand>) -> VReg {
        self.un(UnOp::Mov, ty, a)
    }

    /// Convert between `s32` and `f32`.
    pub fn cvt(&mut self, to: Ty, a: impl Into<Operand>) -> VReg {
        let dst = self.fresh(to);
        self.emit(Instr::Cvt { dst, a: a.into() });
        dst
    }

    /// Compare, producing a fresh predicate.
    pub fn setp(&mut self, cmp: CmpOp, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        let dst = self.fresh(Ty::Pred);
        self.emit(Instr::SetP {
            cmp,
            dst,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Select `pred ? a : b`.
    pub fn selp(
        &mut self,
        ty: Ty,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        pred: VReg,
    ) -> VReg {
        let dst = self.fresh(ty);
        self.emit(Instr::SelP {
            dst,
            a: a.into(),
            b: b.into(),
            pred,
        });
        dst
    }

    /// Read a special register.
    pub fn sreg(&mut self, sreg: SReg) -> VReg {
        let dst = self.fresh(Ty::S32);
        self.emit(Instr::Sreg { dst, sreg });
        dst
    }

    /// Load scalar parameter `index`.
    pub fn ld_param(&mut self, index: u32) -> VReg {
        let ty = self.params[index as usize].ty;
        let dst = self.fresh(ty);
        self.emit(Instr::LdParam { dst, index });
        dst
    }

    /// Global load of a `f32` element.
    pub fn ld(&mut self, ty: Ty, buf: u32, addr: impl Into<Operand>) -> VReg {
        let dst = self.fresh(ty);
        self.emit(Instr::Ld {
            dst,
            buf,
            addr: addr.into(),
        });
        dst
    }

    /// 2D texture fetch of an `f32` element (hardware border handling).
    pub fn tex(&mut self, buf: u32, x: impl Into<Operand>, y: impl Into<Operand>) -> VReg {
        let dst = self.fresh(Ty::F32);
        self.emit(Instr::Tex {
            dst,
            buf,
            x: x.into(),
            y: y.into(),
        });
        dst
    }

    /// Global store.
    pub fn st(&mut self, buf: u32, addr: impl Into<Operand>, val: impl Into<Operand>) {
        self.emit(Instr::St {
            buf,
            addr: addr.into(),
            val: val.into(),
        });
    }

    /// Declare the per-block shared-memory scratchpad size (in elements).
    pub fn set_shared_elems(&mut self, elems: u32) {
        self.shared_elems = elems;
    }

    /// Shared-memory load of an `f32` element.
    pub fn lds(&mut self, addr: impl Into<Operand>) -> VReg {
        let dst = self.fresh(Ty::F32);
        self.emit(Instr::Lds {
            dst,
            addr: addr.into(),
        });
        dst
    }

    /// Shared-memory store.
    pub fn sts(&mut self, addr: impl Into<Operand>, val: impl Into<Operand>) {
        self.emit(Instr::Sts {
            addr: addr.into(),
            val: val.into(),
        });
    }

    /// Block-wide barrier.
    pub fn bar(&mut self) {
        self.emit(Instr::Bar);
    }

    /// Seal the current block with an unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        let b = self.cur();
        assert!(b.terminator.is_none(), "block already sealed");
        b.terminator = Some(Terminator::Br { target });
    }

    /// Seal the current block with a conditional branch.
    pub fn cond_br(&mut self, pred: VReg, if_true: BlockId, if_false: BlockId) {
        assert_eq!(pred.ty, Ty::Pred, "cond_br needs a predicate register");
        let b = self.cur();
        assert!(b.terminator.is_none(), "block already sealed");
        b.terminator = Some(Terminator::CondBr {
            pred,
            if_true,
            if_false,
        });
    }

    /// Seal the current block with a thread exit.
    pub fn ret(&mut self) {
        let b = self.cur();
        assert!(b.terminator.is_none(), "block already sealed");
        b.terminator = Some(Terminator::Ret);
    }

    /// Whether the current block is already sealed.
    pub fn is_sealed(&self) -> bool {
        let id = self.current.expect("no block selected");
        self.blocks[id.0 as usize].terminator.is_some()
    }

    /// Finish construction. Panics if any block lacks a terminator.
    pub fn finish(self) -> Kernel {
        let blocks = self
            .blocks
            .into_iter()
            .map(|b| BasicBlock {
                terminator: b
                    .terminator
                    .unwrap_or_else(|| panic!("block '{}' has no terminator", b.label)),
                label: b.label,
                instrs: b.instrs,
            })
            .collect();
        Kernel {
            name: self.name,
            num_buffers: self.num_buffers,
            params: self.params,
            blocks,
            num_vregs: self.next_vreg,
            shared_elems: self.shared_elems,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_straightline_kernel() {
        let mut b = IrBuilder::new("k", 2);
        let p_w = b.param("width", Ty::S32);
        let w = b.ld_param(p_w);
        let x = b.sreg(SReg::TidX);
        let addr = b.bin(BinOp::Add, Ty::S32, x, w);
        let v = b.ld(Ty::F32, 0, addr);
        let two = b.bin(BinOp::Mul, Ty::F32, v, 2.0f32);
        b.st(1, addr, two);
        b.ret();
        let k = b.finish();
        assert_eq!(k.name, "k");
        assert_eq!(k.num_buffers, 2);
        assert_eq!(k.blocks.len(), 1);
        assert_eq!(k.blocks[0].instrs.len(), 6);
        assert_eq!(k.num_vregs, 5);
        assert!(matches!(k.blocks[0].terminator, Terminator::Ret));
    }

    #[test]
    fn builds_diamond_cfg() {
        let mut b = IrBuilder::new("diamond", 0);
        let t = b.create_block("then");
        let e = b.create_block("else");
        let m = b.create_block("merge");
        let x = b.sreg(SReg::TidX);
        let p = b.setp(CmpOp::Lt, x, 4i32);
        b.cond_br(p, t, e);
        b.switch_to(t);
        b.br(m);
        b.switch_to(e);
        b.br(m);
        b.switch_to(m);
        b.ret();
        let k = b.finish();
        assert_eq!(k.blocks.len(), 4);
        assert_eq!(
            k.block(BlockId(0)).terminator.successors(),
            vec![BlockId(1), BlockId(2)]
        );
        assert_eq!(k.block_by_label("merge"), Some(BlockId(3)));
    }

    #[test]
    #[should_panic(expected = "no terminator")]
    fn finish_rejects_unterminated_blocks() {
        let b = IrBuilder::new("bad", 0);
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "sealed")]
    fn emitting_into_sealed_block_panics() {
        let mut b = IrBuilder::new("bad", 0);
        b.ret();
        b.sreg(SReg::TidX);
    }

    #[test]
    #[should_panic(expected = "predicate")]
    fn cond_br_requires_predicate() {
        let mut b = IrBuilder::new("bad", 0);
        let t = b.create_block("t");
        let f = b.create_block("f");
        let x = b.sreg(SReg::TidX); // s32, not pred
        b.cond_br(x, t, f);
    }

    #[test]
    fn param_types_flow_through_ld_param() {
        let mut b = IrBuilder::new("p", 0);
        let pi = b.param("i", Ty::S32);
        let pf = b.param("f", Ty::F32);
        let ri = b.ld_param(pi);
        let rf = b.ld_param(pf);
        assert_eq!(ri.ty, Ty::S32);
        assert_eq!(rf.ty, Ty::F32);
        b.ret();
        let k = b.finish();
        assert_eq!(k.params.len(), 2);
        assert_eq!(k.param_index("f"), Some(1));
    }
}
