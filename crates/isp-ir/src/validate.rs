//! IR validation: structural and type rules every kernel must satisfy before
//! being interpreted or counted. The DSL compiler validates each generated
//! variant; a validation failure is always a compiler bug, never user error.

use crate::cfg::Cfg;
use crate::instr::{BinOp, Instr};
use crate::kernel::Kernel;
use crate::types::Ty;

/// A validation diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Block label where the problem was found.
    pub block: String,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.block, self.message)
    }
}

/// Validate `kernel`, returning all problems found (empty = valid).
pub fn validate(kernel: &Kernel) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    fn push(errors: &mut Vec<ValidationError>, block: &str, message: String) {
        errors.push(ValidationError {
            block: block.to_string(),
            message,
        });
    }

    if kernel.blocks.is_empty() {
        push(&mut errors, "<kernel>", "kernel has no blocks".into());
        return errors;
    }

    // Block labels must be unique: region paths and other metadata resolve
    // blocks by label after optimisation renumbers `BlockId`s.
    {
        let mut seen = std::collections::HashSet::new();
        for b in &kernel.blocks {
            if !seen.insert(b.label.as_str()) {
                push(
                    &mut errors,
                    &b.label,
                    "duplicate block label (labels must be unique)".into(),
                );
            }
        }
    }

    // Branch targets in range; collect defs.
    let n = kernel.blocks.len() as u32;
    let mut defined = vec![false; kernel.num_vregs as usize];
    for b in &kernel.blocks {
        for t in b.terminator.successors() {
            if t.0 >= n {
                push(
                    &mut errors,
                    &b.label,
                    format!("branch target {t} out of range"),
                );
            }
        }
        for i in &b.instrs {
            if let Some(d) = i.dst() {
                if d.index >= kernel.num_vregs {
                    push(
                        &mut errors,
                        &b.label,
                        format!("register {d} beyond num_vregs {}", kernel.num_vregs),
                    );
                } else if defined[d.index as usize] {
                    push(
                        &mut errors,
                        &b.label,
                        format!("register {d} defined more than once (SSA violation)"),
                    );
                } else {
                    defined[d.index as usize] = true;
                }
            }
        }
    }
    // Out-of-range targets abort validation early: the CFG analyses below
    // index blocks by target id and would panic.
    if !errors.is_empty() {
        return errors;
    }

    // Uses reference defined registers; operand types are consistent.
    for b in &kernel.blocks {
        for i in &b.instrs {
            for s in i.sources() {
                if s.index >= kernel.num_vregs || !defined[s.index as usize] {
                    push(
                        &mut errors,
                        &b.label,
                        format!("use of undefined register {s}"),
                    );
                }
            }
            check_types(i, &b.label, &mut errors);
        }
        if let Some(p) = b.terminator.pred() {
            if p.ty != Ty::Pred {
                push(
                    &mut errors,
                    &b.label,
                    format!("conditional branch on non-predicate {p}"),
                );
            }
            if p.index >= kernel.num_vregs || !defined[p.index as usize] {
                push(
                    &mut errors,
                    &b.label,
                    format!("branch on undefined predicate {p}"),
                );
            }
        }
    }

    // Buffer indices in range.
    for b in &kernel.blocks {
        for i in &b.instrs {
            let buf = match i {
                Instr::Ld { buf, .. } | Instr::St { buf, .. } | Instr::Tex { buf, .. } => {
                    Some(*buf)
                }
                _ => None,
            };
            if let Some(buf) = buf {
                if buf >= kernel.num_buffers {
                    push(
                        &mut errors,
                        &b.label,
                        format!("buffer index {buf} out of range"),
                    );
                }
            }
            if let Instr::LdParam { index, .. } = i {
                if *index as usize >= kernel.params.len() {
                    push(
                        &mut errors,
                        &b.label,
                        format!("parameter index {index} out of range"),
                    );
                }
            }
        }
    }

    // Shared-memory structural rules: shared ops require a declared
    // scratchpad, and a barrier must be the only instruction in its block
    // (the interpreter phases execution at barrier blocks).
    for b in &kernel.blocks {
        for (idx, i) in b.instrs.iter().enumerate() {
            match i {
                Instr::Lds { .. } | Instr::Sts { .. } if kernel.shared_elems == 0 => {
                    push(
                        &mut errors,
                        &b.label,
                        "shared access but shared_elems is 0".into(),
                    );
                }
                Instr::Bar => {
                    if b.instrs.len() != 1 || idx != 0 {
                        push(
                            &mut errors,
                            &b.label,
                            "a barrier must be the sole instruction of its block".into(),
                        );
                    }
                    if !matches!(b.terminator, crate::instr::Terminator::Br { .. }) {
                        push(
                            &mut errors,
                            &b.label,
                            "a barrier block must end in an unconditional branch".into(),
                        );
                    }
                }
                _ => {}
            }
        }
    }

    // Warn about unreachable blocks (structural smell, not fatal for
    // execution, but generated code should never contain them).
    let cfg = Cfg::new(kernel);
    for (i, b) in kernel.blocks.iter().enumerate() {
        if !cfg.reachable[i] {
            push(
                &mut errors,
                &b.label,
                "block is unreachable from entry".into(),
            );
        }
    }

    errors
}

fn check_types(i: &Instr, block: &str, errors: &mut Vec<ValidationError>) {
    let mut err = |message: String| {
        errors.push(ValidationError {
            block: block.to_string(),
            message,
        });
    };
    match i {
        Instr::Bin { op, dst, a, b } => {
            if dst.ty == Ty::Pred && !matches!(op, BinOp::And | BinOp::Or | BinOp::Xor) {
                err(format!("binary {op:?} cannot target a predicate register"));
            }
            let shift = matches!(op, BinOp::Shl | BinOp::Shr);
            if a.ty() != dst.ty {
                err(format!("operand a type {} != dst type {}", a.ty(), dst.ty));
            }
            if !shift && b.ty() != dst.ty {
                err(format!("operand b type {} != dst type {}", b.ty(), dst.ty));
            }
            if shift && b.ty() != Ty::S32 {
                err("shift amount must be s32".into());
            }
        }
        Instr::Mad { dst, a, b, c } => {
            for (name, op) in [("a", a), ("b", b), ("c", c)] {
                if op.ty() != dst.ty {
                    err(format!(
                        "mad operand {name} type {} != dst {}",
                        op.ty(),
                        dst.ty
                    ));
                }
            }
            if dst.ty == Ty::Pred {
                err("mad cannot target predicates".into());
            }
        }
        Instr::Un { op, dst, a } => {
            if *op == crate::instr::UnOp::Not {
                if a.ty() != dst.ty {
                    err("not operand/dst mismatch".into());
                }
            } else if dst.ty == Ty::Pred || a.ty() == Ty::Pred {
                err(format!("unary {op:?} cannot involve predicates"));
            } else if a.ty() != dst.ty {
                err(format!("unary operand type {} != dst {}", a.ty(), dst.ty));
            }
        }
        Instr::Cvt { dst, a } => {
            if dst.ty == a.ty() {
                err("cvt between identical types".into());
            }
            if dst.ty == Ty::Pred || a.ty() == Ty::Pred {
                err("cvt cannot involve predicates".into());
            }
        }
        Instr::SetP { dst, a, b, .. } => {
            if dst.ty != Ty::Pred {
                err("setp must target a predicate".into());
            }
            if a.ty() != b.ty() {
                err(format!("setp compares {} against {}", a.ty(), b.ty()));
            }
        }
        Instr::SelP { dst, a, b, pred } => {
            if pred.ty != Ty::Pred {
                err("selp selector must be a predicate".into());
            }
            if a.ty() != dst.ty || b.ty() != dst.ty {
                err("selp operand/dst type mismatch".into());
            }
        }
        Instr::Sreg { dst, .. } => {
            if dst.ty != Ty::S32 {
                err("special registers are s32".into());
            }
        }
        Instr::LdParam { .. } => {}
        Instr::Ld { dst, addr, .. } => {
            if addr.ty() != Ty::S32 {
                err("load address must be s32".into());
            }
            if dst.ty == Ty::Pred {
                err("cannot load into a predicate".into());
            }
        }
        Instr::Tex { dst, x, y, .. } => {
            if x.ty() != Ty::S32 || y.ty() != Ty::S32 {
                err("texture coordinates must be s32".into());
            }
            if dst.ty != Ty::F32 {
                err("texture fetches produce f32".into());
            }
        }
        Instr::Lds { dst, addr } => {
            if addr.ty() != Ty::S32 {
                err("shared load address must be s32".into());
            }
            if dst.ty != Ty::F32 {
                err("shared loads produce f32".into());
            }
        }
        Instr::Sts { addr, val } => {
            if addr.ty() != Ty::S32 {
                err("shared store address must be s32".into());
            }
            if val.ty() == Ty::Pred {
                err("cannot store a predicate to shared memory".into());
            }
        }
        Instr::Bar => {}
        Instr::St { addr, val, .. } => {
            if addr.ty() != Ty::S32 {
                err("store address must be s32".into());
            }
            if val.ty() == Ty::Pred {
                err("cannot store a predicate".into());
            }
        }
    }
}

/// Panic with a readable report if `kernel` is invalid. Used by the DSL
/// compiler after every lowering step.
pub fn assert_valid(kernel: &Kernel) {
    let errs = validate(kernel);
    if !errs.is_empty() {
        let mut msg = format!("kernel '{}' failed validation:\n", kernel.name);
        for e in &errs {
            msg.push_str(&format!("  - {e}\n"));
        }
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IrBuilder;
    use crate::instr::{CmpOp, Operand, SReg, Terminator};
    use crate::kernel::{BasicBlock, BlockId, ParamDecl};
    use crate::types::VReg;

    #[test]
    fn valid_kernel_passes() {
        let mut b = IrBuilder::new("ok", 2);
        let pw = b.param("width", Ty::S32);
        let exit = b.create_block("exit");
        let body = b.create_block("body");
        let x = b.sreg(SReg::TidX);
        let w = b.ld_param(pw);
        let p = b.setp(CmpOp::Lt, x, w);
        b.cond_br(p, body, exit);
        b.switch_to(body);
        let v = b.ld(Ty::F32, 0, x);
        b.st(1, x, v);
        b.br(exit);
        b.switch_to(exit);
        b.ret();
        let k = b.finish();
        assert!(validate(&k).is_empty(), "{:?}", validate(&k));
        assert_valid(&k);
    }

    fn raw_kernel(blocks: Vec<BasicBlock>, num_vregs: u32) -> Kernel {
        Kernel {
            name: "raw".into(),
            shared_elems: 0,
            num_buffers: 1,
            params: vec![ParamDecl {
                name: "w".into(),
                ty: Ty::S32,
            }],
            blocks,
            num_vregs,
        }
    }

    #[test]
    fn detects_out_of_range_branch() {
        let k = raw_kernel(
            vec![BasicBlock {
                label: "entry".into(),
                instrs: vec![],
                terminator: Terminator::Br { target: BlockId(5) },
            }],
            0,
        );
        let errs = validate(&k);
        assert!(errs.iter().any(|e| e.message.contains("out of range")));
    }

    #[test]
    fn detects_undefined_register_use() {
        let k = raw_kernel(
            vec![BasicBlock {
                label: "entry".into(),
                instrs: vec![Instr::St {
                    buf: 0,
                    addr: Operand::Reg(VReg::new(0, Ty::S32)),
                    val: Operand::ImmF(0.0),
                }],
                terminator: Terminator::Ret,
            }],
            1,
        );
        let errs = validate(&k);
        assert!(errs
            .iter()
            .any(|e| e.message.contains("undefined register")));
    }

    #[test]
    fn detects_ssa_violation() {
        let r0 = VReg::new(0, Ty::S32);
        let k = raw_kernel(
            vec![BasicBlock {
                label: "entry".into(),
                instrs: vec![
                    Instr::Un {
                        op: crate::instr::UnOp::Mov,
                        dst: r0,
                        a: Operand::ImmI(1),
                    },
                    Instr::Un {
                        op: crate::instr::UnOp::Mov,
                        dst: r0,
                        a: Operand::ImmI(2),
                    },
                ],
                terminator: Terminator::Ret,
            }],
            1,
        );
        let errs = validate(&k);
        assert!(errs.iter().any(|e| e.message.contains("SSA")));
    }

    #[test]
    fn detects_type_mismatches() {
        let rf = VReg::new(0, Ty::F32);
        let k = raw_kernel(
            vec![BasicBlock {
                label: "entry".into(),
                instrs: vec![Instr::Bin {
                    op: BinOp::Add,
                    dst: rf,
                    a: Operand::ImmI(1), // s32 into f32 add
                    b: Operand::ImmF(1.0),
                }],
                terminator: Terminator::Ret,
            }],
            1,
        );
        let errs = validate(&k);
        assert!(errs.iter().any(|e| e.message.contains("type")));
    }

    #[test]
    fn detects_bad_buffer_and_param_indices() {
        let r0 = VReg::new(0, Ty::F32);
        let k = raw_kernel(
            vec![BasicBlock {
                label: "entry".into(),
                instrs: vec![
                    Instr::Ld {
                        dst: r0,
                        buf: 7,
                        addr: Operand::ImmI(0),
                    },
                    Instr::LdParam {
                        dst: VReg::new(1, Ty::S32),
                        index: 9,
                    },
                ],
                terminator: Terminator::Ret,
            }],
            2,
        );
        let errs = validate(&k);
        assert!(errs.iter().any(|e| e.message.contains("buffer index")));
        assert!(errs.iter().any(|e| e.message.contains("parameter index")));
    }

    #[test]
    fn detects_unreachable_block() {
        let k = raw_kernel(
            vec![
                BasicBlock {
                    label: "entry".into(),
                    instrs: vec![],
                    terminator: Terminator::Ret,
                },
                BasicBlock {
                    label: "island".into(),
                    instrs: vec![],
                    terminator: Terminator::Ret,
                },
            ],
            0,
        );
        let errs = validate(&k);
        assert!(errs.iter().any(|e| e.message.contains("unreachable")));
    }

    #[test]
    fn detects_duplicate_labels() {
        let k = raw_kernel(
            vec![
                BasicBlock {
                    label: "entry".into(),
                    instrs: vec![],
                    terminator: Terminator::Br { target: BlockId(1) },
                },
                BasicBlock {
                    label: "entry".into(),
                    instrs: vec![],
                    terminator: Terminator::Ret,
                },
            ],
            0,
        );
        let errs = validate(&k);
        assert!(errs.iter().any(|e| e.message.contains("duplicate block")));
    }

    #[test]
    #[should_panic(expected = "failed validation")]
    fn assert_valid_panics_with_report() {
        let k = raw_kernel(
            vec![BasicBlock {
                label: "entry".into(),
                instrs: vec![],
                terminator: Terminator::Br { target: BlockId(9) },
            }],
            0,
        );
        assert_valid(&k);
    }
}
