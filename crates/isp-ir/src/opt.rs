//! IR optimisation passes: constant folding, local value numbering (CSE),
//! algebraic simplification, and dead-code elimination.
//!
//! These model the NVCC behaviour the paper leans on in §IV-A: "the naive
//! version may have many conditional statements in the source code, but many
//! of them share common sub-expressions that can be optimized by the NVCC
//! compiler". Running the same passes over naive and ISP variants keeps the
//! instruction-count comparison honest — and the `ablation_cse` bench
//! disables CSE to show how large the *un*-optimised gap would look.
//!
//! The builder produces SSA-form code (every virtual register has exactly
//! one definition and uses are dominated by it), which is what makes the
//! global substitution step of local value numbering sound.

use crate::instr::{BinOp, CmpOp, Instr, Operand, SReg, Terminator, UnOp};
use crate::kernel::Kernel;
use crate::types::{Ty, VReg};
use std::collections::HashMap;

/// Which passes to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptConfig {
    /// Constant folding + algebraic identities.
    pub fold: bool,
    /// Local (per-block) common-subexpression elimination.
    pub cse: bool,
    /// Dead-code elimination.
    pub dce: bool,
    /// CSE **rematerialization window**: a previously computed value is only
    /// reused when it was defined at most this many (kept) instructions ago;
    /// older values are recomputed. This mirrors production GPU compilers,
    /// which deliberately rematerialize cheap address arithmetic rather than
    /// hold dozens of resolved border coordinates in registers across a
    /// 169-tap unrolled window — unbounded CSE would understate the naive
    /// variant's instruction count AND overstate everyone's register usage.
    pub cse_window: usize,
    /// Reuse window for global loads, which compilers keep in registers far
    /// more aggressively than recomputable arithmetic (rematerializing a
    /// load is a memory access). Must be at least `cse_window` so that the
    /// load-reuse behaviour of code variants with different amounts of
    /// interleaved arithmetic stays comparable.
    pub cse_window_loads: usize,
}

/// Default rematerialization window (instructions).
pub const DEFAULT_CSE_WINDOW: usize = 120;

/// Default load-reuse window (instructions).
pub const DEFAULT_CSE_WINDOW_LOADS: usize = 250;

impl OptConfig {
    /// Everything on — the default compilation mode, mirroring `nvcc -O3`.
    pub fn full() -> Self {
        OptConfig {
            fold: true,
            cse: true,
            dce: true,
            cse_window: DEFAULT_CSE_WINDOW,
            cse_window_loads: DEFAULT_CSE_WINDOW_LOADS,
        }
    }

    /// No optimisation at all.
    pub fn none() -> Self {
        OptConfig {
            fold: false,
            cse: false,
            dce: false,
            cse_window: 0,
            cse_window_loads: 0,
        }
    }

    /// CSE disabled, folding/DCE on — the `ablation_cse` configuration.
    pub fn no_cse() -> Self {
        OptConfig {
            fold: true,
            cse: false,
            dce: true,
            cse_window: 0,
            cse_window_loads: 0,
        }
    }

    /// Unbounded CSE (no rematerialization) — for tests and ablations.
    pub fn unbounded_cse() -> Self {
        OptConfig {
            fold: true,
            cse: true,
            dce: true,
            cse_window: usize::MAX,
            cse_window_loads: usize::MAX,
        }
    }
}

impl Default for OptConfig {
    fn default() -> Self {
        Self::full()
    }
}

/// Hashable operand key for value numbering (f32 via bit pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum OpKey {
    Reg(u32),
    ImmI(i32),
    ImmF(u32),
}

impl OpKey {
    fn of(op: &Operand) -> OpKey {
        match op {
            Operand::Reg(r) => OpKey::Reg(r.index),
            Operand::ImmI(v) => OpKey::ImmI(*v),
            Operand::ImmF(v) => OpKey::ImmF(v.to_bits()),
        }
    }
}

/// Value-numbering key of a pure instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum VnKey {
    Bin(BinOp, Ty, OpKey, OpKey),
    Mad(Ty, OpKey, OpKey, OpKey),
    Un(UnOp, Ty, OpKey),
    Cvt(Ty, OpKey),
    SetP(CmpOp, OpKey, OpKey),
    SelP(Ty, OpKey, OpKey, u32),
    Sreg(SReg),
    LdParam(u32),
    /// Global loads are value-numbered too: generated kernels never store
    /// to a buffer they read (single output store at the end), matching the
    /// `__restrict__` qualifiers Hipacc emits — so identical loads within
    /// the window collapse, as `nvcc` does for restrict-qualified inputs.
    Ld(u32, OpKey),
    /// Texture fetches are read-only by construction: same reuse rule.
    Tex(u32, OpKey, OpKey),
}

/// Run the configured passes over `kernel`, returning the optimised kernel.
pub fn optimize(kernel: &Kernel, config: OptConfig) -> Kernel {
    let mut k = kernel.clone();
    if config.fold || config.cse {
        value_number(&mut k, config);
    }
    if config.dce {
        dead_code_elim(&mut k);
    }
    k
}

/// Resolve an operand through the substitution map (with chaining).
fn resolve(subst: &HashMap<u32, Operand>, op: Operand) -> Operand {
    let mut cur = op;
    let mut hops = 0;
    while let Operand::Reg(r) = cur {
        match subst.get(&r.index) {
            Some(&next) => {
                cur = next;
                hops += 1;
                assert!(hops < 10_000, "substitution cycle");
            }
            None => break,
        }
    }
    cur
}

fn fold_bin(op: BinOp, ty: Ty, a: &Operand, b: &Operand) -> Option<Operand> {
    match (ty, a, b) {
        (Ty::S32, Operand::ImmI(x), Operand::ImmI(y)) => {
            let (x, y) = (*x, *y);
            let v = match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                // Division semantics chosen deliberately: defined as 0 on
                // divide-by-zero so folding matches the interpreter.
                BinOp::Div => {
                    if y == 0 {
                        0
                    } else {
                        x.wrapping_div(y)
                    }
                }
                BinOp::Rem => {
                    if y == 0 {
                        0
                    } else {
                        x.wrapping_rem(y)
                    }
                }
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
                BinOp::And => x & y,
                BinOp::Or => x | y,
                BinOp::Xor => x ^ y,
                BinOp::Shl => x.wrapping_shl(y as u32 & 31),
                BinOp::Shr => x.wrapping_shr(y as u32 & 31),
            };
            Some(Operand::ImmI(v))
        }
        (Ty::F32, Operand::ImmF(x), Operand::ImmF(y)) => {
            let (x, y) = (*x, *y);
            let v = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Rem => x % y,
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
                _ => return None,
            };
            Some(Operand::ImmF(v))
        }
        _ => None,
    }
}

/// Algebraic identities that replace the instruction with one of its
/// operands. Kept to transformations valid under the "fast math" rules real
/// GPU compilation of these kernels uses (`x * 0.0 -> 0.0` etc.).
fn simplify_bin(op: BinOp, ty: Ty, a: &Operand, b: &Operand) -> Option<Operand> {
    let is_zero =
        |o: &Operand| matches!(o, Operand::ImmI(0)) || matches!(o, Operand::ImmF(f) if *f == 0.0);
    let is_one =
        |o: &Operand| matches!(o, Operand::ImmI(1)) || matches!(o, Operand::ImmF(f) if *f == 1.0);
    match op {
        BinOp::Add => {
            if is_zero(a) {
                return Some(*b);
            }
            if is_zero(b) {
                return Some(*a);
            }
        }
        BinOp::Sub if is_zero(b) => {
            return Some(*a);
        }
        BinOp::Mul => {
            if is_one(a) {
                return Some(*b);
            }
            if is_one(b) {
                return Some(*a);
            }
            if is_zero(a) || is_zero(b) {
                return Some(if ty == Ty::F32 {
                    Operand::ImmF(0.0)
                } else {
                    Operand::ImmI(0)
                });
            }
        }
        BinOp::Div if is_one(b) => {
            return Some(*a);
        }
        BinOp::Min | BinOp::Max if OpKey::of(a) == OpKey::of(b) => {
            return Some(*a);
        }
        BinOp::And | BinOp::Or if OpKey::of(a) == OpKey::of(b) => {
            return Some(*a);
        }
        BinOp::Shl | BinOp::Shr if is_zero(b) => {
            return Some(*a);
        }
        _ => {}
    }
    None
}

fn fold_cmp(cmp: CmpOp, a: &Operand, b: &Operand) -> Option<bool> {
    let ord = match (a, b) {
        (Operand::ImmI(x), Operand::ImmI(y)) => x.partial_cmp(y),
        (Operand::ImmF(x), Operand::ImmF(y)) => x.partial_cmp(y),
        _ => return None,
    }?;
    Some(match cmp {
        CmpOp::Eq => ord == std::cmp::Ordering::Equal,
        CmpOp::Ne => ord != std::cmp::Ordering::Equal,
        CmpOp::Lt => ord == std::cmp::Ordering::Less,
        CmpOp::Le => ord != std::cmp::Ordering::Greater,
        CmpOp::Gt => ord == std::cmp::Ordering::Greater,
        CmpOp::Ge => ord != std::cmp::Ordering::Less,
    })
}

/// One pass of folding + per-block value numbering with global (SSA-sound)
/// substitution.
fn value_number(k: &mut Kernel, config: OptConfig) {
    let mut subst: HashMap<u32, Operand> = HashMap::new();
    // Predicates that folded to a constant (used to simplify CondBr).
    let mut const_preds: HashMap<u32, bool> = HashMap::new();

    for b in &mut k.blocks {
        // Value table: key -> (register, position of its definition among
        // kept instructions). Reuse is limited to the rematerialization
        // window; stale entries are refreshed by the new definition.
        let mut vn: HashMap<VnKey, (VReg, usize)> = HashMap::new();
        let mut kept: Vec<Instr> = Vec::with_capacity(b.instrs.len());
        for instr in b.instrs.drain(..) {
            // Rewrite operands through the substitution map first.
            let instr = rewrite_operands(instr, &subst);
            match &instr {
                Instr::Bin { op, dst, a, b: rhs } => {
                    if config.fold {
                        if let Some(v) = fold_bin(*op, dst.ty, a, rhs) {
                            subst.insert(dst.index, v);
                            continue;
                        }
                        if let Some(v) = simplify_bin(*op, dst.ty, a, rhs) {
                            subst.insert(dst.index, v);
                            continue;
                        }
                    }
                    if config.cse {
                        let (ka, kb) = canonical_pair(*op, a, rhs);
                        let key = VnKey::Bin(*op, dst.ty, ka, kb);
                        if let Some(&(prev, def_pos)) = vn.get(&key) {
                            if kept.len().saturating_sub(def_pos) <= config.cse_window {
                                subst.insert(dst.index, Operand::Reg(prev));
                                continue;
                            }
                        }
                        vn.insert(key, (*dst, kept.len()));
                    }
                }
                Instr::Mad { dst, a, b: rhs, c } => {
                    if config.cse {
                        let mut ab = [OpKey::of(a), OpKey::of(rhs)];
                        ab.sort();
                        let key = VnKey::Mad(dst.ty, ab[0], ab[1], OpKey::of(c));
                        if let Some(&(prev, def_pos)) = vn.get(&key) {
                            if kept.len().saturating_sub(def_pos) <= config.cse_window {
                                subst.insert(dst.index, Operand::Reg(prev));
                                continue;
                            }
                        }
                        vn.insert(key, (*dst, kept.len()));
                    }
                }
                Instr::Un { op, dst, a } => {
                    if config.fold {
                        if *op == UnOp::Mov {
                            // Copy propagation: mov is pure renaming.
                            if a.ty() == dst.ty {
                                subst.insert(dst.index, *a);
                                continue;
                            }
                        }
                        if let Some(v) = fold_un(*op, dst.ty, a) {
                            subst.insert(dst.index, v);
                            continue;
                        }
                    }
                    if config.cse {
                        let key = VnKey::Un(*op, dst.ty, OpKey::of(a));
                        if let Some(&(prev, def_pos)) = vn.get(&key) {
                            if kept.len().saturating_sub(def_pos) <= config.cse_window {
                                subst.insert(dst.index, Operand::Reg(prev));
                                continue;
                            }
                        }
                        vn.insert(key, (*dst, kept.len()));
                    }
                }
                Instr::Cvt { dst, a } => {
                    if config.fold {
                        match (dst.ty, a) {
                            (Ty::F32, Operand::ImmI(v)) => {
                                subst.insert(dst.index, Operand::ImmF(*v as f32));
                                continue;
                            }
                            (Ty::S32, Operand::ImmF(v)) => {
                                subst.insert(dst.index, Operand::ImmI(v.round() as i32));
                                continue;
                            }
                            _ => {}
                        }
                    }
                    if config.cse {
                        let key = VnKey::Cvt(dst.ty, OpKey::of(a));
                        if let Some(&(prev, def_pos)) = vn.get(&key) {
                            if kept.len().saturating_sub(def_pos) <= config.cse_window {
                                subst.insert(dst.index, Operand::Reg(prev));
                                continue;
                            }
                        }
                        vn.insert(key, (*dst, kept.len()));
                    }
                }
                Instr::SetP {
                    cmp,
                    dst,
                    a,
                    b: rhs,
                } => {
                    if config.fold {
                        if let Some(v) = fold_cmp(*cmp, a, rhs) {
                            const_preds.insert(dst.index, v);
                            continue;
                        }
                    }
                    if config.cse {
                        // Canonicalise using the swapped comparison.
                        let (ka, kb) = (OpKey::of(a), OpKey::of(rhs));
                        let key = if kb < ka {
                            VnKey::SetP(cmp.swapped(), kb, ka)
                        } else {
                            VnKey::SetP(*cmp, ka, kb)
                        };
                        if let Some(&(prev, def_pos)) = vn.get(&key) {
                            if kept.len().saturating_sub(def_pos) <= config.cse_window {
                                subst.insert(dst.index, Operand::Reg(prev));
                                continue;
                            }
                        }
                        vn.insert(key, (*dst, kept.len()));
                    }
                }
                Instr::SelP {
                    dst,
                    a,
                    b: rhs,
                    pred,
                } => {
                    if config.fold {
                        if let Some(&v) = const_preds.get(&pred.index) {
                            subst.insert(dst.index, if v { *a } else { *rhs });
                            continue;
                        }
                        if OpKey::of(a) == OpKey::of(rhs) {
                            subst.insert(dst.index, *a);
                            continue;
                        }
                    }
                    if config.cse {
                        let key = VnKey::SelP(dst.ty, OpKey::of(a), OpKey::of(rhs), pred.index);
                        if let Some(&(prev, def_pos)) = vn.get(&key) {
                            if kept.len().saturating_sub(def_pos) <= config.cse_window {
                                subst.insert(dst.index, Operand::Reg(prev));
                                continue;
                            }
                        }
                        vn.insert(key, (*dst, kept.len()));
                    }
                }
                Instr::Sreg { dst, sreg } => {
                    if config.cse {
                        let key = VnKey::Sreg(*sreg);
                        if let Some(&(prev, def_pos)) = vn.get(&key) {
                            if kept.len().saturating_sub(def_pos) <= config.cse_window {
                                subst.insert(dst.index, Operand::Reg(prev));
                                continue;
                            }
                        }
                        vn.insert(key, (*dst, kept.len()));
                    }
                }
                Instr::LdParam { dst, index } => {
                    if config.cse {
                        let key = VnKey::LdParam(*index);
                        if let Some(&(prev, def_pos)) = vn.get(&key) {
                            if kept.len().saturating_sub(def_pos) <= config.cse_window {
                                subst.insert(dst.index, Operand::Reg(prev));
                                continue;
                            }
                        }
                        vn.insert(key, (*dst, kept.len()));
                    }
                }
                Instr::Ld { dst, buf, addr } => {
                    if config.cse {
                        let key = VnKey::Ld(*buf, OpKey::of(addr));
                        if let Some(&(prev, def_pos)) = vn.get(&key) {
                            if kept.len().saturating_sub(def_pos) <= config.cse_window_loads {
                                subst.insert(dst.index, Operand::Reg(prev));
                                continue;
                            }
                        }
                        vn.insert(key, (*dst, kept.len()));
                    }
                }
                Instr::Tex { dst, buf, x, y } => {
                    if config.cse {
                        let key = VnKey::Tex(*buf, OpKey::of(x), OpKey::of(y));
                        if let Some(&(prev, def_pos)) = vn.get(&key) {
                            if kept.len().saturating_sub(def_pos) <= config.cse_window_loads {
                                subst.insert(dst.index, Operand::Reg(prev));
                                continue;
                            }
                        }
                        vn.insert(key, (*dst, kept.len()));
                    }
                }
                Instr::St { .. } | Instr::Lds { .. } | Instr::Sts { .. } | Instr::Bar => {}
            }
            kept.push(instr);
        }
        b.instrs = kept;
        // Rewrite / simplify the terminator.
        b.terminator = match b.terminator.clone() {
            Terminator::CondBr {
                pred,
                if_true,
                if_false,
            } => {
                let pred = match resolve(&subst, Operand::Reg(pred)) {
                    Operand::Reg(r) => r,
                    _ => pred,
                };
                if let Some(&v) = const_preds.get(&pred.index) {
                    Terminator::Br {
                        target: if v { if_true } else { if_false },
                    }
                } else if if_true == if_false {
                    Terminator::Br { target: if_true }
                } else {
                    Terminator::CondBr {
                        pred,
                        if_true,
                        if_false,
                    }
                }
            }
            t => t,
        };
    }
}

fn canonical_pair(op: BinOp, a: &Operand, b: &Operand) -> (OpKey, OpKey) {
    let (ka, kb) = (OpKey::of(a), OpKey::of(b));
    if op.commutative() && kb < ka {
        (kb, ka)
    } else {
        (ka, kb)
    }
}

fn fold_un(op: UnOp, ty: Ty, a: &Operand) -> Option<Operand> {
    match (ty, a) {
        (Ty::S32, Operand::ImmI(v)) => {
            let v = *v;
            let r = match op {
                UnOp::Neg => v.wrapping_neg(),
                UnOp::Abs => v.wrapping_abs(),
                UnOp::Not => !v,
                _ => return None,
            };
            Some(Operand::ImmI(r))
        }
        (Ty::F32, Operand::ImmF(v)) => {
            let v = *v;
            let r = match op {
                UnOp::Neg => -v,
                UnOp::Abs => v.abs(),
                UnOp::Exp => v.exp(),
                UnOp::Log => v.ln(),
                UnOp::Sqrt => v.sqrt(),
                UnOp::Rsqrt => 1.0 / v.sqrt(),
                UnOp::Floor => v.floor(),
                _ => return None,
            };
            Some(Operand::ImmF(r))
        }
        _ => None,
    }
}

fn rewrite_operands(instr: Instr, subst: &HashMap<u32, Operand>) -> Instr {
    let f = |op: Operand| resolve(subst, op);
    let fr = |r: VReg| match resolve(subst, Operand::Reg(r)) {
        Operand::Reg(nr) => nr,
        _ => r, // predicate folded to constant; handled by caller
    };
    match instr {
        Instr::Bin { op, dst, a, b } => Instr::Bin {
            op,
            dst,
            a: f(a),
            b: f(b),
        },
        Instr::Mad { dst, a, b, c } => Instr::Mad {
            dst,
            a: f(a),
            b: f(b),
            c: f(c),
        },
        Instr::Un { op, dst, a } => Instr::Un { op, dst, a: f(a) },
        Instr::Cvt { dst, a } => Instr::Cvt { dst, a: f(a) },
        Instr::SetP { cmp, dst, a, b } => Instr::SetP {
            cmp,
            dst,
            a: f(a),
            b: f(b),
        },
        Instr::SelP { dst, a, b, pred } => Instr::SelP {
            dst,
            a: f(a),
            b: f(b),
            pred: fr(pred),
        },
        Instr::Sreg { .. } | Instr::LdParam { .. } => instr,
        Instr::Ld { dst, buf, addr } => Instr::Ld {
            dst,
            buf,
            addr: f(addr),
        },
        Instr::Tex { dst, buf, x, y } => Instr::Tex {
            dst,
            buf,
            x: f(x),
            y: f(y),
        },
        Instr::St { buf, addr, val } => Instr::St {
            buf,
            addr: f(addr),
            val: f(val),
        },
        Instr::Lds { dst, addr } => Instr::Lds { dst, addr: f(addr) },
        Instr::Sts { addr, val } => Instr::Sts {
            addr: f(addr),
            val: f(val),
        },
        Instr::Bar => Instr::Bar,
    }
}

/// Remove pure instructions whose destination is never read (worklist to a
/// fixpoint so chains of dead computations all disappear).
fn dead_code_elim(k: &mut Kernel) {
    loop {
        let mut used = vec![false; k.num_vregs as usize];
        for b in &k.blocks {
            for i in &b.instrs {
                for s in i.sources() {
                    used[s.index as usize] = true;
                }
            }
            if let Some(p) = b.terminator.pred() {
                used[p.index as usize] = true;
            }
        }
        let mut removed = false;
        for b in &mut k.blocks {
            let before = b.instrs.len();
            b.instrs.retain(|i| {
                if !i.is_pure() {
                    return true;
                }
                match i.dst() {
                    Some(d) => used[d.index as usize],
                    None => true,
                }
            });
            removed |= b.instrs.len() != before;
        }
        if !removed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IrBuilder;
    use crate::cost::{InstrCategory, InstrHistogram};
    use crate::instr::SReg;

    #[test]
    fn cse_removes_duplicate_address_checks() {
        // Mimic two pixel accesses both clamping the same x coordinate.
        let mut b = IrBuilder::new("k", 2);
        let x = b.sreg(SReg::TidX);
        let c1 = b.bin(BinOp::Max, Ty::S32, x, 0i32);
        let c2 = b.bin(BinOp::Max, Ty::S32, x, 0i32); // duplicate
        let a1 = b.bin(BinOp::Add, Ty::S32, c1, 1i32);
        let a2 = b.bin(BinOp::Add, Ty::S32, c2, 1i32); // becomes duplicate after CSE
        let v1 = b.ld(Ty::F32, 0, a1);
        let v2 = b.ld(Ty::F32, 0, a2);
        let s = b.bin(BinOp::Add, Ty::F32, v1, v2);
        b.st(1, a1, s);
        b.ret();
        let k = b.finish();
        let opt = optimize(&k, OptConfig::full());
        let h = InstrHistogram::of_kernel(&opt);
        assert_eq!(h.get(InstrCategory::Max), 1, "duplicate max must be CSE'd");
        assert_eq!(h.get(InstrCategory::Add), 2, "one address add + float add");
        assert_eq!(
            h.get(InstrCategory::Ld),
            1,
            "identical restrict-loads collapse"
        );
    }

    #[test]
    fn no_cse_config_keeps_duplicates() {
        let mut b = IrBuilder::new("k", 2);
        let x = b.sreg(SReg::TidX);
        let c1 = b.bin(BinOp::Max, Ty::S32, x, 0i32);
        let c2 = b.bin(BinOp::Max, Ty::S32, x, 0i32);
        let v1 = b.ld(Ty::F32, 0, c1);
        let v2 = b.ld(Ty::F32, 0, c2);
        let s = b.bin(BinOp::Add, Ty::F32, v1, v2);
        b.st(1, c1, s);
        b.ret();
        let k = b.finish();
        let opt = optimize(&k, OptConfig::no_cse());
        assert_eq!(InstrHistogram::of_kernel(&opt).get(InstrCategory::Max), 2);
    }

    #[test]
    fn constant_folding_collapses_immediates() {
        let mut b = IrBuilder::new("k", 1);
        let a = b.bin(BinOp::Add, Ty::S32, 3i32, 4i32); // 7
        let m = b.bin(BinOp::Mul, Ty::S32, a, 2i32); // 14
        b.st(0, m, Operand::ImmF(1.0));
        b.ret();
        let k = b.finish();
        let opt = optimize(&k, OptConfig::full());
        assert_eq!(opt.blocks[0].instrs.len(), 1);
        match &opt.blocks[0].instrs[0] {
            Instr::St { addr, .. } => assert_eq!(*addr, Operand::ImmI(14)),
            other => panic!("expected st, got {other:?}"),
        }
    }

    #[test]
    fn algebraic_identities() {
        let mut b = IrBuilder::new("k", 1);
        let x = b.sreg(SReg::TidX);
        let a = b.bin(BinOp::Add, Ty::S32, x, 0i32); // = x
        let m = b.bin(BinOp::Mul, Ty::S32, a, 1i32); // = x
        b.st(0, m, Operand::ImmF(0.0));
        b.ret();
        let k = b.finish();
        let opt = optimize(&k, OptConfig::full());
        // Only the sreg read and the store survive.
        assert_eq!(opt.blocks[0].instrs.len(), 2);
    }

    #[test]
    fn dce_removes_unused_chains() {
        let mut b = IrBuilder::new("k", 1);
        let x = b.sreg(SReg::TidX);
        let dead1 = b.bin(BinOp::Mul, Ty::S32, x, 5i32);
        let _dead2 = b.bin(BinOp::Add, Ty::S32, dead1, 7i32);
        b.st(0, x, Operand::ImmF(2.0));
        b.ret();
        let k = b.finish();
        let opt = optimize(&k, OptConfig::full());
        assert_eq!(opt.blocks[0].instrs.len(), 2); // sreg + st
    }

    #[test]
    fn loads_and_stores_survive_dce() {
        let mut b = IrBuilder::new("k", 2);
        // Load whose result is unused: must NOT be eliminated (may fault /
        // has observable memory behaviour in the performance model).
        let _v = b.ld(Ty::F32, 0, 3i32);
        b.st(1, 0i32, Operand::ImmF(1.0));
        b.ret();
        let k = b.finish();
        let opt = optimize(&k, OptConfig::full());
        let h = InstrHistogram::of_kernel(&opt);
        assert_eq!(h.get(InstrCategory::Ld), 1);
        assert_eq!(h.get(InstrCategory::St), 1);
    }

    #[test]
    fn constant_predicate_flattens_branch() {
        let mut b = IrBuilder::new("k", 1);
        let t = b.create_block("t");
        let f = b.create_block("f");
        let p = b.setp(CmpOp::Lt, 1i32, 2i32); // always true
        b.cond_br(p, t, f);
        b.switch_to(t);
        b.st(0, 0i32, Operand::ImmF(1.0));
        b.ret();
        b.switch_to(f);
        b.st(0, 0i32, Operand::ImmF(2.0));
        b.ret();
        let k = b.finish();
        let opt = optimize(&k, OptConfig::full());
        assert!(matches!(
            opt.blocks[0].terminator,
            Terminator::Br { target } if target == crate::kernel::BlockId(1)
        ));
    }

    #[test]
    fn commutative_canonicalisation() {
        let mut b = IrBuilder::new("k", 1);
        let x = b.sreg(SReg::TidX);
        let y = b.sreg(SReg::TidY);
        let a = b.bin(BinOp::Add, Ty::S32, x, y);
        let c = b.bin(BinOp::Add, Ty::S32, y, x); // same value, swapped
        let s = b.bin(BinOp::Mul, Ty::S32, a, c);
        b.st(0, s, Operand::ImmF(0.0));
        b.ret();
        let k = b.finish();
        let opt = optimize(&k, OptConfig::full());
        let h = InstrHistogram::of_kernel(&opt);
        assert_eq!(h.get(InstrCategory::Add), 1);
        // mul x*x simplification is not applied (not an identity), so 1 mul.
        assert_eq!(h.get(InstrCategory::Mul), 1);
    }

    #[test]
    fn setp_swapped_operands_cse() {
        let mut b = IrBuilder::new("k", 1);
        let x = b.sreg(SReg::TidX);
        let p1 = b.setp(CmpOp::Lt, x, 5i32);
        let p2 = b.setp(CmpOp::Gt, 5i32, x); // same predicate
        let s1 = b.selp(Ty::S32, 1i32, 0i32, p1);
        let s2 = b.selp(Ty::S32, 1i32, 0i32, p2);
        let s = b.bin(BinOp::Add, Ty::S32, s1, s2);
        b.st(0, s, Operand::ImmF(0.0));
        b.ret();
        let k = b.finish();
        let opt = optimize(&k, OptConfig::full());
        let h = InstrHistogram::of_kernel(&opt);
        assert_eq!(h.get(InstrCategory::Setp), 1);
        assert_eq!(
            h.get(InstrCategory::Selp),
            1,
            "identical selects collapse too"
        );
    }

    #[test]
    fn mov_copy_propagation() {
        let mut b = IrBuilder::new("k", 1);
        let x = b.sreg(SReg::TidX);
        let m = b.mov(Ty::S32, x);
        let m2 = b.mov(Ty::S32, m);
        b.st(0, m2, Operand::ImmF(0.0));
        b.ret();
        let k = b.finish();
        let opt = optimize(&k, OptConfig::full());
        assert_eq!(opt.blocks[0].instrs.len(), 2); // sreg + st
    }

    #[test]
    fn optimization_is_idempotent() {
        let mut b = IrBuilder::new("k", 2);
        let x = b.sreg(SReg::TidX);
        let c1 = b.bin(BinOp::Max, Ty::S32, x, 0i32);
        let c2 = b.bin(BinOp::Min, Ty::S32, c1, 63i32);
        let v = b.ld(Ty::F32, 0, c2);
        let w = b.bin(BinOp::Mul, Ty::F32, v, 0.5f32);
        b.st(1, c2, w);
        b.ret();
        let k = b.finish();
        let once = optimize(&k, OptConfig::full());
        let twice = optimize(&once, OptConfig::full());
        assert_eq!(once, twice);
    }
}
